"""E5 — Control iteration.

PageRank expressed as an algebra ``Iterate``, executed three ways:

* **native in-server** — the graph provider recognizes the tree and runs
  its vectorized CSR kernel (one round trip);
* **generic in-server** — no intent tag; the provider's embedded relational
  executor iterates, still inside the server (one round trip);
* **client-driven loop** — the E5 baseline: one federated query per
  iteration, loop state shipped inside each query and pulled back out.

Expected shape: one round trip vs dozens; client bytes grow with
iterations x state size; in-server wins and the gap widens with graph size.
"""

import pytest

from _workloads import pagerank_setup

SIZES = (300, 1000)


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.benchmark(group="e5-iteration")
def test_bench_native_in_server(benchmark, n):
    ctx, tree = pagerank_setup(n)
    result = benchmark.pedantic(
        lambda: ctx.run(ctx.query(tree)), rounds=2, iterations=1
    )
    assert len(result) == n
    assert ctx.last_report.round_trips == 1
    assert ctx.catalog.provider("graphd").stats_native_hits > 0


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.benchmark(group="e5-iteration")
def test_bench_generic_in_server(benchmark, n):
    ctx, tree = pagerank_setup(n)
    untagged = tree.with_intent(None)
    result = benchmark.pedantic(
        lambda: ctx.run(ctx.query(untagged)), rounds=2, iterations=1
    )
    assert len(result) == n
    assert ctx.last_report.round_trips == 1
    assert ctx.catalog.provider("graphd").stats_native_hits == 0


@pytest.mark.parametrize("n", SIZES[:1])
@pytest.mark.benchmark(group="e5-iteration")
def test_bench_client_driven_loop(benchmark, n):
    ctx, tree = pagerank_setup(n)
    result = benchmark.pedantic(
        lambda: ctx.run_clientside_loop(ctx.query(tree)),
        rounds=2, iterations=1,
    )
    assert len(result) == n
    assert ctx.last_report.round_trips > 5


def test_all_three_paths_agree():
    ctx, tree = pagerank_setup(200, max_iter=60)
    native = ctx.run(ctx.query(tree))
    generic = ctx.run(ctx.query(tree.with_intent(None)))
    client = ctx.run_clientside_loop(ctx.query(tree))
    assert native.table.same_rows(generic.table, float_tol=1e-6)
    assert native.table.same_rows(client.table, float_tol=1e-6)


def test_client_loop_pays_communication():
    ctx, tree = pagerank_setup(200, max_iter=60)
    ctx.run(ctx.query(tree))
    in_server = ctx.last_report
    ctx.run_clientside_loop(ctx.query(tree))
    client = ctx.last_report
    assert in_server.round_trips == 1
    assert client.round_trips > 10
    assert client.metrics.query_bytes > 20 * in_server.metrics.query_bytes
    assert client.result_bytes > 10 * in_server.result_bytes


def iteration_rows(sizes=SIZES):
    """(n, mode, round_trips, client_bytes, wall_s) for the harness."""
    import time

    rows = []
    for n in sizes:
        ctx, tree = pagerank_setup(n)
        modes = [
            ("native", lambda: ctx.run(ctx.query(tree))),
            ("generic", lambda: ctx.run(ctx.query(tree.with_intent(None)))),
            ("client-loop", lambda: ctx.run_clientside_loop(ctx.query(tree))),
        ]
        for name, run in modes:
            start = time.perf_counter()
            run()
            wall = time.perf_counter() - start
            report = ctx.last_report
            rows.append((
                n, name, report.round_trips, report.client_bytes, wall
            ))
    return rows

"""E8 — Logical-optimizer ablation.

A selective filter over a wide join, executed with each rewrite rule
toggled.  Expected shape: predicate pushdown gives the big multiplicative
win (the join shrinks before it happens); projection pruning adds a smaller
win (narrower columns through the join); all-off is the slowest.
"""

import json
import os
import time
from pathlib import Path

import pytest

from _workloads import ablation_context, ablation_query
from repro import RewriteOptions

DEFAULT_SCALE = int(os.environ.get("E8_SCALE", "80"))

# cost-based passes stay off in every config: E8 isolates the rule
# passes, E15 (bench_e15_optimizer) ablates the cost-based ones
_COST_OFF = dict(
    join_reordering=False, conjunct_ordering=False, aggregate_pushdown=False,
)

CONFIGS = {
    "all-on": RewriteOptions(**_COST_OFF),
    "no-pushdown": RewriteOptions(predicate_pushdown=False, **_COST_OFF),
    "no-pruning": RewriteOptions(projection_pruning=False, **_COST_OFF),
    "all-off": RewriteOptions(
        filter_fusion=False, predicate_pushdown=False,
        projection_pruning=False, extend_fusion=False,
        recognize_intents=False, **_COST_OFF,
    ),
}


@pytest.mark.parametrize("config", list(CONFIGS))
@pytest.mark.benchmark(group="e8-rewriter")
def test_bench_rewriter_config(benchmark, config):
    ctx = ablation_context(CONFIGS[config])
    tree = ablation_query(ctx)
    result = benchmark.pedantic(
        lambda: ctx.run(ctx.query(tree)), rounds=3, iterations=1
    )
    assert len(result) > 0


def test_all_configs_agree():
    results = []
    for options in CONFIGS.values():
        ctx = ablation_context(options, scale=3)
        tree = ablation_query(ctx)
        results.append(ctx.run(ctx.query(tree)).table)
    baseline = results[0]
    for other in results[1:]:
        assert baseline.same_rows(other, float_tol=1e-9)


def test_pushdown_wins():
    times = {}
    for name in ("all-on", "all-off"):
        ctx = ablation_context(CONFIGS[name], scale=20)
        tree = ablation_query(ctx)
        ctx.run(ctx.query(tree))  # warm caches (numpy, schema inference)
        samples = []
        for _ in range(3):
            start = time.perf_counter()
            ctx.run(ctx.query(tree))
            samples.append(time.perf_counter() - start)
        times[name] = min(samples)
    assert times["all-on"] < times["all-off"], times


def ablation_rows(scale: int | None = None):
    """(config, wall_s) rows for the harness."""
    rows = []
    for name, options in CONFIGS.items():
        ctx = ablation_context(options, scale=scale or DEFAULT_SCALE)
        tree = ablation_query(ctx)
        ctx.run(ctx.query(tree))  # warm
        samples = []
        for _ in range(3):
            start = time.perf_counter()
            ctx.run(ctx.query(tree))
            samples.append(time.perf_counter() - start)
        rows.append((name, min(samples)))
    return rows


def emit_json(path: str | Path = "BENCH_E8.json", scale: int | None = None):
    """Write the ablation table (plus environment context) as JSON."""
    rows = ablation_rows(scale)
    walls = dict(rows)
    payload = {
        "experiment": "e8-rewriter-ablation",
        "scale": scale or DEFAULT_SCALE,
        "cpus": os.cpu_count(),
        "configs": [
            {
                "config": name,
                "wall_s": wall,
                "speedup_vs_all_off": walls["all-off"] / wall,
            }
            for name, wall in rows
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload


if __name__ == "__main__":
    for entry in emit_json()["configs"]:
        print(f"{entry['config']:>14s} {entry['wall_s'] * 1e3:9.1f} ms  "
              f"{entry['speedup_vs_all_off']:5.2f}x")

"""E1 — Coverage (desideratum 1).

The algebra must span standard relational *and* array operations.  We run a
canonical 14-query suite (relational, array, linear-algebra, graph) against
the federation and measure per-provider coverage: no single specialized
server covers the algebra, their union covers 100%, and the federation
executes the entire suite.
"""

import pytest

from _workloads import canonical_suite, full_context, load_suite_data
from repro.core import algebra as A


def coverage_table():
    """operator-suite coverage per provider; printed by the harness."""
    ctx = full_context()
    load_suite_data(ctx)
    suite = canonical_suite(ctx)
    rows = []
    for provider in ctx.providers:
        accepted = sum(1 for _, tree in suite if provider.accepts(tree))
        rows.append((provider.name, accepted, len(suite)))
    federated = sum(
        1 for _, tree in suite
        if _plannable(ctx, tree)
    )
    rows.append(("FEDERATION", federated, len(suite)))
    return rows


def _plannable(ctx, tree) -> bool:
    try:
        ctx.planner.plan(ctx.rewriter.rewrite(tree))
        return True
    except Exception:
        return False


def test_union_covers_everything_no_single_server_does():
    rows = dict((name, (got, total)) for name, got, total in coverage_table())
    got, total = rows["FEDERATION"]
    assert got == total, "the federation must cover the whole suite"
    for name in ("scidb", "scalapack", "graphd"):
        got, total = rows[name]
        assert got < total, f"{name} should not cover the whole suite alone"


def test_every_operator_has_a_provider():
    ctx = full_context()
    for op in A.ALL_OPERATORS:
        assert any(
            op.__name__ in p.capabilities for p in ctx.providers
        ), f"no provider claims {op.__name__}"


@pytest.mark.benchmark(group="e1-coverage")
def test_bench_full_suite_federated(benchmark):
    ctx = full_context()
    load_suite_data(ctx)
    suite = canonical_suite(ctx)

    def run_suite():
        total_rows = 0
        for _, tree in suite:
            total_rows += len(ctx.run(ctx.query(tree)))
        return total_rows

    total = benchmark(run_suite)
    assert total > 0

"""Benchmark-suite configuration.

This conftest puts the benchmarks directory on sys.path (so the shared
``_workloads`` module imports from any rootdir) and registers the pedantic
defaults: experiments are comparisons, so we keep rounds small and rely on
the asserted *shape* (who wins, by what factor) rather than absolute time.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

"""E4 — Server interoperation (desideratum 4).

A three-server pipeline (relational filter -> linalg matmul -> array
regrid) executed with intermediates passed directly between servers versus
routed through the application tier.  Direct routing must move **zero**
bytes through the application; app routing moves every intermediate twice,
and its simulated network time grows with the intermediate size.
"""

import pytest

from _workloads import interop_context

SIZES = (32, 64)


def _execute(n: int, routing: str):
    ctx, tree = interop_context(n, routing)
    result = ctx.run(ctx.query(tree))
    return ctx.last_report, result


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.benchmark(group="e4-interop")
def test_bench_direct_routing(benchmark, n):
    report, __ = benchmark.pedantic(
        lambda: _execute(n, "direct"), rounds=2, iterations=1
    )
    assert report.metrics.bytes_through_application == 0
    assert report.metrics.bytes_direct > 0


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.benchmark(group="e4-interop")
def test_bench_application_routing(benchmark, n):
    report, __ = benchmark.pedantic(
        lambda: _execute(n, "application"), rounds=2, iterations=1
    )
    assert report.metrics.bytes_direct == 0
    assert report.metrics.bytes_through_application > 0


def test_same_results_and_app_pays_double():
    direct_report, direct = _execute(48, "direct")
    app_report, app = _execute(48, "application")
    assert direct.table.same_rows(app.table, float_tol=1e-6)
    moved = sum(t.nbytes for t in direct_report.metrics.transfers)
    assert app_report.metrics.bytes_through_application == 2 * moved
    assert (
        app_report.metrics.simulated_network_s
        > direct_report.metrics.simulated_network_s
    )
    assert app_report.metrics.hop_count == 2 * direct_report.metrics.hop_count


def test_plan_spans_multiple_servers():
    ctx, tree = interop_context(32, "direct")
    plan = ctx.planner.plan(ctx.rewriter.rewrite(tree))
    assert len(plan.servers_used) >= 2


def interop_rows(sizes=SIZES):
    """(n, routing, app_bytes, direct_bytes, simulated_s) for the harness."""
    rows = []
    for n in sizes:
        for routing in ("direct", "application"):
            report, __ = _execute(n, routing)
            rows.append((
                n, routing,
                report.metrics.bytes_through_application,
                report.metrics.bytes_direct,
                report.metrics.simulated_network_s,
            ))
    return rows

"""E12 — Fused vectorized execution ablation.

A selective Filter -> Extend -> Project chain over a wide table (1M rows,
17 columns), executed with the physical knobs toggled: pipeline fusion
(one operator, no intermediate tables, only live columns touched),
compiled-expression evaluation (Expr ASTs lowered once to numpy closures
and cached), and morsel-parallel scans (the fused pipeline split into row
ranges across worker threads).

Expected shape: fusion gives the big win on wide inputs — the unfused
Filter mask-compresses all 17 columns and materializes a full-width
intermediate, while the fused pipeline only ever touches the 7 live ones.
Compilation shaves the per-operator AST walk on top.  Morsel parallelism
helps only with >1 CPU; on a single-core host the thread pool is honest
overhead, which the emitted JSON records rather than hides.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from _workloads import fusion_query, fusion_table
from repro.exec.compile import clear_expr_cache, expr_cache_stats
from repro.relational.engine import EngineOptions, RelationalEngine

#: override for CI smoke runs (full run is 1M rows)
DEFAULT_ROWS = int(os.environ.get("E12_ROWS", "1000000"))

CONFIGS = {
    "fused+compiled": EngineOptions(),
    "fused+compiled+mp": EngineOptions(morsel_workers=0),
    "fused-only": EngineOptions(compile_expressions=False),
    "compiled-only": EngineOptions(fuse_pipelines=False),
    "neither": EngineOptions(fuse_pipelines=False, compile_expressions=False),
}


def _run_once(options: EngineOptions, table, tree):
    engine = RelationalEngine(options)
    return engine.run(tree, lambda name: table)


def _timed(options: EngineOptions, table, tree, rounds: int = 3) -> float:
    _run_once(options, table, tree)  # warm numpy + expression cache
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        _run_once(options, table, tree)
        samples.append(time.perf_counter() - start)
    return min(samples)


@pytest.fixture(scope="module")
def workload():
    table = fusion_table(min(DEFAULT_ROWS, 200_000))
    return table, fusion_query(table.schema)


@pytest.mark.parametrize("config", list(CONFIGS))
@pytest.mark.benchmark(group="e12-fusion")
def test_bench_fusion_config(benchmark, config, workload):
    table, tree = workload
    result = benchmark.pedantic(
        lambda: _run_once(CONFIGS[config], table, tree), rounds=3, iterations=1
    )
    assert result.num_rows > 0


def test_all_configs_agree(workload):
    table, tree = workload
    results = [_run_once(opts, table, tree) for opts in CONFIGS.values()]
    baseline = results[0]
    for other in results[1:]:
        assert baseline.same_rows(other, float_tol=1e-12)


def test_fused_compiled_beats_neither():
    """Acceptance: fusion + compilation >= 2x over the unfused interpreted
    path on the selective chain at full scale."""
    table = fusion_table(DEFAULT_ROWS)
    tree = fusion_query(table.schema)
    fused = _timed(CONFIGS["fused+compiled"], table, tree)
    neither = _timed(CONFIGS["neither"], table, tree)
    assert neither / fused >= 2.0, f"speedup only {neither / fused:.2f}x"


def test_compile_cache_reused_across_runs():
    clear_expr_cache()
    table = fusion_table(10_000)
    tree = fusion_query(table.schema)
    _run_once(CONFIGS["fused+compiled"], table, tree)
    after_first = expr_cache_stats()
    _run_once(CONFIGS["fused+compiled"], table, tree)
    after_second = expr_cache_stats()
    assert after_second["misses"] == after_first["misses"]
    assert after_second["hits"] > after_first["hits"]


def fusion_rows(n_rows: int | None = None):
    """(config, wall_s, speedup_vs_neither) rows for the harness."""
    table = fusion_table(n_rows or DEFAULT_ROWS)
    tree = fusion_query(table.schema)
    times = {name: _timed(opts, table, tree) for name, opts in CONFIGS.items()}
    base = times["neither"]
    return [(name, wall, base / wall) for name, wall in times.items()]


def emit_json(path: str | Path = "BENCH_E12.json", n_rows: int | None = None):
    """Write the ablation table (plus environment context) as JSON."""
    rows = fusion_rows(n_rows)
    payload = {
        "experiment": "e12-fusion",
        "rows": n_rows or DEFAULT_ROWS,
        "cpus": os.cpu_count(),
        "configs": [
            {"config": name, "wall_s": wall, "speedup_vs_neither": speedup}
            for name, wall, speedup in rows
        ],
        "expr_cache": expr_cache_stats(),
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload


if __name__ == "__main__":
    for entry in emit_json()["configs"]:
        print(f"{entry['config']:>20s} {entry['wall_s'] * 1e3:9.1f} ms  "
              f"{entry['speedup_vs_neither']:5.2f}x")

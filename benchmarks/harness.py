"""Experiment harness: regenerates every table in EXPERIMENTS.md.

Run with:  python benchmarks/harness.py  [e1 e3 ...]

Each section prints the same rows EXPERIMENTS.md records, computed fresh
from the shared workload definitions in ``_workloads`` — so the documented
numbers and the reproducible ones come from one source.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))


def _fmt_bytes(n: int) -> str:
    if n >= 1_000_000:
        return f"{n / 1e6:.2f} MB"
    if n >= 1_000:
        return f"{n / 1e3:.1f} kB"
    return f"{n} B"


def e1() -> None:
    from bench_e1_coverage import coverage_table

    print("\n== E1: coverage of the canonical 14-query suite ==")
    print(f"{'provider':12s} {'queries accepted':>18s}")
    for name, got, total in coverage_table():
        print(f"{name:12s} {got:>8d} / {total}")


def e2() -> None:
    from bench_e2_translatability import (
        engine_vs_reference_times, translatability_table,
    )

    print("\n== E2: translatability ==")
    unclaimed = [
        op for op, claimants in translatability_table() if not claimants
    ]
    print(f"operators with no provider: {unclaimed or 'none'}")
    engine_s, reference_s = engine_vs_reference_times()
    print(f"join+filter+aggregate pipeline (4k orders):")
    print(f"  relational engine: {engine_s * 1e3:8.1f} ms")
    print(f"  reference interp:  {reference_s * 1e3:8.1f} ms   "
          f"({reference_s / engine_s:.1f}x slower)")


def e3() -> None:
    from bench_e3_intent import intent_times

    print("\n== E3: intent preservation (lowered matmul) ==")
    print(f"{'n':>4s} {'join-agg on sql':>16s} {'recognized->linalg':>20s} {'speedup':>8s}")
    for n, lowered, recognized in intent_times():
        print(f"{n:>4d} {lowered * 1e3:>13.1f} ms {recognized * 1e3:>17.1f} ms "
              f"{lowered / recognized:>7.1f}x")


def e4() -> None:
    from bench_e4_interop import interop_rows

    print("\n== E4: server interoperation (3-server pipeline) ==")
    print(f"{'n':>4s} {'routing':>12s} {'app bytes':>12s} {'direct bytes':>13s} "
          f"{'simulated net':>14s}")
    for n, routing, app_bytes, direct_bytes, sim in interop_rows():
        print(f"{n:>4d} {routing:>12s} {_fmt_bytes(app_bytes):>12s} "
              f"{_fmt_bytes(direct_bytes):>13s} {sim * 1e3:>11.2f} ms")


def e5() -> None:
    from bench_e5_iteration import iteration_rows

    print("\n== E5: control iteration (PageRank) ==")
    print(f"{'n':>5s} {'mode':>12s} {'round trips':>12s} {'client bytes':>13s} "
          f"{'wall':>10s}")
    for n, mode, trips, client_bytes, wall in iteration_rows():
        print(f"{n:>5d} {mode:>12s} {trips:>12d} "
              f"{_fmt_bytes(client_bytes):>13s} {wall * 1e3:>7.1f} ms")


def e6() -> None:
    from bench_e6_portability import portability_rows

    print("\n== E6: portability (same program, swapped server) ==")
    print(f"{'program':>12s} {'server':>8s} {'wall':>10s} {'rows':>6s}")
    for program, server, wall, rows in portability_rows():
        print(f"{program:>12s} {server:>8s} {wall * 1e3:>7.1f} ms {rows:>6d}")


def e7() -> None:
    from bench_e7_shipping import shipping_rows

    print("\n== E7: expression-tree shipping vs call-at-a-time ==")
    print(f"{'mode':>16s} {'messages':>9s} {'query bytes':>12s} "
          f"{'result bytes':>13s} {'wall':>10s}")
    for mode, messages, qbytes, rbytes, wall in shipping_rows():
        print(f"{mode:>16s} {messages:>9d} {_fmt_bytes(qbytes):>12s} "
              f"{_fmt_bytes(rbytes):>13s} {wall * 1e3:>7.1f} ms")


def e8() -> None:
    from bench_e8_rewriter_ablation import emit_json

    print("\n== E8: rewriter ablation (selective filter over wide join) ==")
    payload = emit_json(Path(__file__).parent.parent / "BENCH_E8.json")
    print(f"scale: {payload['scale']}, cpus: {payload['cpus']}")
    print(f"{'config':>14s} {'wall':>10s} {'vs all-off':>11s}")
    for entry in payload["configs"]:
        print(f"{entry['config']:>14s} {entry['wall_s'] * 1e3:>7.1f} ms "
              f"{entry['speedup_vs_all_off']:>10.2f}x")


def e9() -> None:
    from bench_e9_chunking import chunking_rows

    print("\n== E9: array chunk-size sweep (windowed slice) ==")
    print(f"{'chunk side':>11s} {'wall':>10s}")
    for side, wall in chunking_rows():
        print(f"{side:>11d} {wall * 1e3:>7.1f} ms")


def e10() -> None:
    from bench_e10_joins import join_rows

    print("\n== E10: join algorithms ==")
    print(f"{'variant':>18s} {'n':>6s} {'wall':>10s}")
    for variant, n, wall in join_rows():
        print(f"{variant:>18s} {n:>6d} {wall * 1e3:>7.1f} ms")


def e11() -> None:
    from bench_e11_indexes import index_rows

    print("\n== E11: index vs scan (equality filter, 200k rows) ==")
    print(f"{'query':>14s} {'selectivity':>12s} {'path':>6s} {'wall':>10s}")
    for query, selectivity, path, wall in index_rows():
        print(f"{query:>14s} {selectivity:>12s} {path:>6s} "
              f"{wall * 1e3:>7.2f} ms")


def e12() -> None:
    from bench_e12_fusion import emit_json

    print("\n== E12: fused execution ablation (filter->extend->project, wide) ==")
    payload = emit_json(Path(__file__).parent.parent / "BENCH_E12.json")
    print(f"rows: {payload['rows']}, cpus: {payload['cpus']}")
    print(f"{'config':>20s} {'wall':>10s} {'vs neither':>11s}")
    for entry in payload["configs"]:
        print(f"{entry['config']:>20s} {entry['wall_s'] * 1e3:>7.1f} ms "
              f"{entry['speedup_vs_neither']:>10.2f}x")
    cache = payload["expr_cache"]
    print(f"expr cache: {cache['entries']} entries, "
          f"{cache['hits']} hits / {cache['misses']} misses")


def e13() -> None:
    from bench_e13_joins import emit_json

    print("\n== E13: join & aggregation kernel ablation ==")
    payload = emit_json(Path(__file__).parent.parent / "BENCH_E13.json")
    print(f"rows: {payload['rows']}, cpus: {payload['cpus']}")
    print(f"{'kind':>6s} {'path':>14s} {'wall':>10s} {'vs python':>10s}")
    for entry in payload["joins"]:
        print(f"{entry['kind']:>6s} {entry['path']:>14s} "
              f"{entry['wall_s'] * 1e3:>7.1f} ms "
              f"{entry['speedup_vs_python']:>9.2f}x")
    print(f"{'':>6s} {'group-by config':>14s} {'wall':>10s} {'vs 1-pass':>10s}")
    for entry in payload["groupby"]:
        print(f"{'':>6s} {entry['config']:>14s} "
              f"{entry['wall_s'] * 1e3:>7.1f} ms "
              f"{entry['speedup_vs_single_pass']:>9.2f}x")


def e14() -> None:
    from bench_e14_pruning import emit_json

    print("\n== E14: chunked storage & zone-map scan pruning ==")
    payload = emit_json(Path(__file__).parent.parent / "BENCH_E14.json")
    print(f"rows: {payload['rows']}, chunks: {payload['num_chunks']}, "
          f"cpus: {payload['cpus']}")
    print(f"{'config':>18s} {'wall':>10s} {'vs unchunked':>13s} {'chunks':>8s}")
    for entry in payload["configs"]:
        chunks = (
            f"{entry['chunks_scanned']}/{entry['chunks_total']}"
            if entry["chunks_total"] else "-"
        )
        print(f"{entry['config']:>18s} {entry['wall_s'] * 1e3:>7.1f} ms "
              f"{entry['speedup_vs_unchunked']:>12.2f}x {chunks:>8s}")


def e15() -> None:
    from bench_e15_optimizer import emit_json

    print("\n== E15: cost-based optimizer ablation ==")
    payload = emit_json(Path(__file__).parent.parent / "BENCH_E15.json")
    print(f"scale: {payload['scale']} customers, cpus: {payload['cpus']}")
    print(f"{'config':>12s} {'wall':>10s} {'vs rule-only':>13s}")
    for entry in payload["configs"]:
        print(f"{entry['config']:>12s} {entry['wall_s'] * 1e3:>7.1f} ms "
              f"{entry['speedup_vs_rule_only']:>12.2f}x")


ALL = {
    "e1": e1, "e2": e2, "e3": e3, "e4": e4, "e5": e5,
    "e6": e6, "e7": e7, "e8": e8, "e9": e9, "e10": e10, "e11": e11,
    "e12": e12, "e13": e13, "e14": e14, "e15": e15,
}

#: one-line summaries for --list
TITLES = {
    "e1": "coverage of the canonical 14-query suite",
    "e2": "translatability: engine vs reference interpreter",
    "e3": "intent preservation (recognized matmul -> linalg)",
    "e4": "server interoperation (3-server pipeline)",
    "e5": "control iteration (PageRank round trips)",
    "e6": "portability (same program, swapped server)",
    "e7": "expression-tree shipping vs call-at-a-time",
    "e8": "rewriter ablation (selective filter over wide join)",
    "e9": "array chunk-size sweep (windowed slice)",
    "e10": "join algorithms (nested / merge / hash)",
    "e11": "index vs scan (equality filter)",
    "e12": "fused execution ablation (+ BENCH_E12.json gate)",
    "e13": "join & aggregation kernel ablation (+ BENCH_E13.json gate)",
    "e14": "chunked storage & zone-map pruning (+ BENCH_E14.json gate)",
    "e15": "cost-based optimizer ablation (+ BENCH_E15.json gate)",
}

#: experiments whose emitted BENCH_*.json carries a --check speedup gate
GATED = {"e8": "BENCH_E8.json", "e12": "BENCH_E12.json",
         "e13": "BENCH_E13.json", "e14": "BENCH_E14.json",
         "e15": "BENCH_E15.json"}


def _check_speedups(wanted: list[str], strict: bool = False) -> None:
    """Perf smoke: assert the optimized configs are not slower than their
    baselines, from the BENCH_*.json files the harness just emitted.

    By default a missing BENCH file is skipped silently (the experiment may
    simply not have run); ``strict`` turns a missing file for a *wanted*
    gated experiment into a failure, so CI cannot pass by emitting nothing.
    """
    import json

    root = Path(__file__).parent.parent
    failures: list[str] = []

    if strict:
        for name in wanted:
            bench = GATED.get(name)
            if bench is not None and not (root / bench).exists():
                failures.append(f"{name}: {bench} was not emitted")

    e8_path = root / "BENCH_E8.json"
    if e8_path.exists():
        payload = json.loads(e8_path.read_text())
        for entry in payload["configs"]:
            if entry["config"] == "all-on":
                if entry["speedup_vs_all_off"] < 1.0:
                    failures.append(
                        f"e8: all rewrites on slower than all off "
                        f"({entry['speedup_vs_all_off']:.2f}x)"
                    )

    e12_path = root / "BENCH_E12.json"
    if e12_path.exists():
        payload = json.loads(e12_path.read_text())
        for entry in payload["configs"]:
            if entry["config"] == "fused+compiled":
                if entry["speedup_vs_neither"] < 1.0:
                    failures.append(
                        f"e12: fused+compiled slower than neither "
                        f"({entry['speedup_vs_neither']:.2f}x)"
                    )

    e13_path = root / "BENCH_E13.json"
    if e13_path.exists():
        payload = json.loads(e13_path.read_text())
        for entry in payload["joins"]:
            if entry["path"] == "vectorized":
                if entry["speedup_vs_python"] < 1.0:
                    failures.append(
                        f"e13: vectorized {entry['kind']}-key join slower "
                        f"than python hash ({entry['speedup_vs_python']:.2f}x)"
                    )
        for entry in payload["groupby"]:
            # small slack: at smoke scale partials and one pass are close
            if entry["config"] == "partials":
                if entry["speedup_vs_single_pass"] < 0.8:
                    failures.append(
                        f"e13: partial aggregation badly slower than "
                        f"single-pass ({entry['speedup_vs_single_pass']:.2f}x)"
                    )

    e14_path = root / "BENCH_E14.json"
    if e14_path.exists():
        payload = json.loads(e14_path.read_text())
        # the 3x acceptance bar applies at full scale; tiny smoke runs are
        # dominated by fixed per-query overhead, so they only get a
        # no-regression floor
        bar = 3.0 if payload["rows"] >= 500_000 else 1.2
        for entry in payload["configs"]:
            if entry["config"] == "chunked+pruned":
                if entry["speedup_vs_unchunked"] < bar:
                    failures.append(
                        f"e14: pruned scan under the {bar}x bar vs unchunked "
                        f"({entry['speedup_vs_unchunked']:.2f}x at "
                        f"{payload['rows']} rows)"
                    )
                total = entry["chunks_total"] or 1
                if entry["chunks_scanned"] / total > 0.05:
                    failures.append(
                        f"e14: filter not selective — scanned "
                        f"{entry['chunks_scanned']}/{entry['chunks_total']} "
                        f"chunks (> 5%)"
                    )

    e15_path = root / "BENCH_E15.json"
    if e15_path.exists():
        payload = json.loads(e15_path.read_text())
        for entry in payload["configs"]:
            if entry["config"] == "cost-based":
                if entry["speedup_vs_rule_only"] < 1.0:
                    failures.append(
                        f"e15: cost-based plan slower than rule-only "
                        f"({entry['speedup_vs_rule_only']:.2f}x)"
                    )

    if failures:
        raise SystemExit("perf smoke failed:\n  " + "\n  ".join(failures))
    print("\nperf smoke: optimized configs are not slower than baselines")


def main(argv: list[str]) -> None:
    if "--list" in argv:
        for name in ALL:
            gate = "  [--check gate]" if name in GATED else ""
            print(f"{name:>4s}  {TITLES[name]}{gate}")
        return
    check = "--check" in argv
    strict = "--strict" in argv
    if strict and not check:
        raise SystemExit("--strict only makes sense with --check")
    flags = {"--check", "--strict"}
    wanted = [a.lower() for a in argv if a not in flags] or list(ALL)
    unknown = [w for w in wanted if w not in ALL]
    if unknown:
        raise SystemExit(f"unknown experiments {unknown}; have {list(ALL)}")
    for name in wanted:
        ALL[name]()
    if check:
        _check_speedups(wanted, strict)


if __name__ == "__main__":
    main(sys.argv[1:])

"""E6 — Portability (framework goal 1).

The same client program — unchanged — runs against different back ends by
swapping the target server (a parameter, not code).  Results must be
identical; the specialized engine should be faster than the reference
interpreter.
"""

import pytest

from repro import BigDataContext, col
from repro.datasets import customers, orders, sensor_grid
from repro.providers import ArrayProvider, ReferenceProvider, RelationalProvider


def portable_context() -> BigDataContext:
    ctx = BigDataContext()
    ctx.add_provider(RelationalProvider("sql"))
    ctx.add_provider(ArrayProvider("scidb"))
    ctx.add_provider(ReferenceProvider("naive"))
    ctx.load("customers", customers(300, seed=0), on=["sql", "naive"])
    ctx.load("orders", orders(2000, 300, seed=1), on=["sql", "naive"])
    ctx.load("grid", sensor_grid(48, 48, seed=2), on=["scidb", "naive"])
    return ctx


def relational_program(ctx: BigDataContext):
    """A client program written once; the server is chosen at collect()."""
    return (
        ctx.table("orders")
        .where(col("amount") > 30.0)
        .join(ctx.table("customers"), on=[("cust", "cid")])
        .aggregate(["segment"], total=("sum", col("amount")),
                   biggest=("max", col("amount")))
        .order_by("total", ascending=False)
    )


def array_program(ctx: BigDataContext):
    return (
        ctx.table("grid")
        .slice_dims(x=(4, 43), y=(4, 43))
        .regrid({"x": 4, "y": 4}, reading=("mean", col("reading")))
    )


def test_identical_results_across_servers():
    ctx = portable_context()
    rel = relational_program(ctx)
    assert rel.collect(on="sql").table.same_rows(
        rel.collect(on="naive").table, float_tol=1e-9
    )
    arr = array_program(ctx)
    assert arr.collect(on="scidb").table.same_rows(
        arr.collect(on="naive").table, float_tol=1e-9
    )


@pytest.mark.parametrize("server", ["sql", "naive"])
@pytest.mark.benchmark(group="e6-relational-program")
def test_bench_relational_program(benchmark, server):
    ctx = portable_context()
    program = relational_program(ctx)
    result = benchmark.pedantic(
        lambda: program.collect(on=server), rounds=2, iterations=1
    )
    assert len(result) > 0


@pytest.mark.parametrize("server", ["scidb", "naive"])
@pytest.mark.benchmark(group="e6-array-program")
def test_bench_array_program(benchmark, server):
    ctx = portable_context()
    program = array_program(ctx)
    result = benchmark.pedantic(
        lambda: program.collect(on=server), rounds=2, iterations=1
    )
    assert len(result) > 0


def portability_rows():
    """(program, server, wall_s, rows) for the harness."""
    import time

    ctx = portable_context()
    rows = []
    for name, program, servers in (
        ("relational", relational_program(ctx), ("sql", "naive")),
        ("array", array_program(ctx), ("scidb", "naive")),
    ):
        for server in servers:
            start = time.perf_counter()
            result = program.collect(on=server)
            rows.append((name, server, time.perf_counter() - start, len(result)))
    return rows

"""E10 — Join-algorithm ablation.

The same equi-join executed with the engine's three physical algorithms.
Expected shape: hash wins on unsorted inputs; merge wins when inputs are
pre-sorted on the key (no sort, single pass); the nested loop is quadratic
and falls off a cliff as inputs grow.
"""

import time

import numpy as np
import pytest

from repro.relational import joins
from repro.core.schema import Attribute, Schema
from repro.core.types import DType
from repro.storage.table import ColumnTable

LEFT = Schema([Attribute("k", DType.INT64), Attribute("a", DType.FLOAT64)])
RIGHT = Schema([Attribute("k2", DType.INT64), Attribute("b", DType.FLOAT64)])


def make_inputs(n_left: int, n_right: int, key_range: int, seed: int = 0,
                presorted: bool = False):
    rng = np.random.default_rng(seed)
    lk = rng.integers(0, key_range, n_left)
    rk = rng.integers(0, key_range, n_right)
    if presorted:
        lk = np.sort(lk)
        rk = np.sort(rk)
    left = ColumnTable.from_arrays(LEFT, {
        "k": lk, "a": rng.uniform(0, 1, n_left),
    })
    right = ColumnTable.from_arrays(RIGHT, {
        "k2": rk, "b": rng.uniform(0, 1, n_right),
    })
    return left, right


SIZES = {"small": (2000, 2000, 4000), "medium": (8000, 8000, 16000)}


@pytest.mark.parametrize("size", list(SIZES))
@pytest.mark.benchmark(group="e10-joins-unsorted")
def test_bench_hash_join(benchmark, size):
    left, right = make_inputs(*SIZES[size])
    pairs = benchmark(lambda: joins.hash_join(left, right, ["k"], ["k2"]))
    assert len(pairs[0]) > 0


@pytest.mark.parametrize("size", list(SIZES))
@pytest.mark.benchmark(group="e10-joins-unsorted")
def test_bench_merge_join_unsorted(benchmark, size):
    left, right = make_inputs(*SIZES[size])
    pairs = benchmark(lambda: joins.merge_join(left, right, ["k"], ["k2"]))
    assert len(pairs[0]) > 0


@pytest.mark.parametrize("size", list(SIZES))
@pytest.mark.benchmark(group="e10-joins-presorted")
def test_bench_merge_join_presorted(benchmark, size):
    left, right = make_inputs(*SIZES[size], presorted=True)
    pairs = benchmark(
        lambda: joins.merge_join(left, right, ["k"], ["k2"], presorted=True)
    )
    assert len(pairs[0]) > 0


@pytest.mark.parametrize("size", list(SIZES))
@pytest.mark.benchmark(group="e10-joins-presorted")
def test_bench_hash_join_presorted_inputs(benchmark, size):
    left, right = make_inputs(*SIZES[size], presorted=True)
    pairs = benchmark(lambda: joins.hash_join(left, right, ["k"], ["k2"]))
    assert len(pairs[0]) > 0


@pytest.mark.benchmark(group="e10-joins-nested")
def test_bench_nested_loop_small(benchmark):
    left, right = make_inputs(400, 400, 800)
    pairs = benchmark.pedantic(
        lambda: joins.nested_loop_join(left, right, ["k"], ["k2"]),
        rounds=2, iterations=1,
    )
    assert len(pairs[0]) > 0


def test_nested_loop_is_quadratic():
    timings = []
    for n in (200, 400):
        left, right = make_inputs(n, n, 2 * n)
        start = time.perf_counter()
        joins.nested_loop_join(left, right, ["k"], ["k2"])
        timings.append(time.perf_counter() - start)
    # doubling input should much-more-than-double work (allow noise: 2.5x)
    assert timings[1] > 2.5 * timings[0], timings


def join_rows():
    """(variant, n, wall_s) rows for the harness."""
    rows = []
    n = 8000
    left, right = make_inputs(n, n, 2 * n)
    sleft, sright = make_inputs(n, n, 2 * n, presorted=True)
    variants = [
        ("hash/unsorted", lambda: joins.hash_join(left, right, ["k"], ["k2"])),
        ("merge/unsorted", lambda: joins.merge_join(left, right, ["k"], ["k2"])),
        ("merge/presorted", lambda: joins.merge_join(
            sleft, sright, ["k"], ["k2"], presorted=True)),
        ("hash/presorted", lambda: joins.hash_join(sleft, sright, ["k"], ["k2"])),
    ]
    for name, run in variants:
        start = time.perf_counter()
        run()
        rows.append((name, n, time.perf_counter() - start))
    small_left, small_right = make_inputs(400, 400, 800)
    start = time.perf_counter()
    joins.nested_loop_join(small_left, small_right, ["k"], ["k2"])
    rows.append(("nested/unsorted", 400, time.perf_counter() - start))
    return rows

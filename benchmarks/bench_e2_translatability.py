"""E2 — Translatability (desideratum 2).

Every algebra operator must translate to at least one back end — and
translation must be worth it: a specialized engine should beat the naive
reference interpreter by a wide margin, while the cost of shipping the
expression tree (serialize + parse) stays negligible next to execution.
"""

import pytest

from _workloads import full_context
from repro import BigDataContext, col
from repro.core import algebra as A
from repro.core import serialize
from repro.datasets import customers, orders
from repro.providers import ReferenceProvider, RelationalProvider


def translatability_table():
    """operator -> providers that claim it (excluding the reference)."""
    ctx = full_context()
    rows = []
    for op in A.ALL_OPERATORS:
        claimants = [
            p.name for p in ctx.providers if op.__name__ in p.capabilities
        ]
        rows.append((op.__name__, claimants))
    return rows


def test_every_operator_translates_to_a_specialized_engine():
    for op_name, claimants in translatability_table():
        specialized = [c for c in claimants if c != "reference"]
        assert specialized, f"{op_name} translates to no specialized engine"


def _pipeline(ctx: BigDataContext) -> A.Node:
    return (
        ctx.table("customers")
        .join(ctx.table("orders"), on=[("cid", "cust")])
        .where(col("amount") > 40.0)
        .aggregate(["country"], total=("sum", col("amount")),
                   n=("count", None))
        .order_by("total", ascending=False)
        .node
    )


def _context_on(provider) -> BigDataContext:
    ctx = BigDataContext()
    ctx.add_provider(provider)
    ctx.load("customers", customers(500, seed=0), on=provider.name)
    ctx.load("orders", orders(4000, 500, seed=1), on=provider.name)
    return ctx


@pytest.mark.benchmark(group="e2-engine-vs-reference")
def test_bench_relational_engine(benchmark):
    ctx = _context_on(RelationalProvider("sql"))
    tree = _pipeline(ctx)
    result = benchmark(lambda: ctx.run(ctx.query(tree)))
    assert len(result) > 0


@pytest.mark.benchmark(group="e2-engine-vs-reference")
def test_bench_reference_interpreter(benchmark):
    ctx = _context_on(ReferenceProvider("naive"))
    tree = _pipeline(ctx)
    result = benchmark(lambda: ctx.run(ctx.query(tree)))
    assert len(result) > 0


@pytest.mark.benchmark(group="e2-translation-overhead")
def test_bench_wire_round_trip(benchmark):
    """Serialize + parse of the whole tree: the translation cost itself."""
    ctx = _context_on(RelationalProvider("sql"))
    tree = _pipeline(ctx)

    def round_trip():
        return serialize.loads(serialize.dumps(tree))

    decoded = benchmark(round_trip)
    assert decoded.same_as(tree)


def engine_vs_reference_times(repeat: int = 3):
    """(engine_s, reference_s) medians for the harness table."""
    import time

    out = []
    for provider in (RelationalProvider("sql"), ReferenceProvider("naive")):
        ctx = _context_on(provider)
        tree = _pipeline(ctx)
        samples = []
        for _ in range(repeat):
            start = time.perf_counter()
            ctx.run(ctx.query(tree))
            samples.append(time.perf_counter() - start)
        out.append(sorted(samples)[len(samples) // 2])
    return tuple(out)

"""E9 — Array-engine chunking ablation.

A 5x5 mean window over a *slice* of a dense grid, swept across chunk sides.
Expected shape: a U-curve.  Tiny chunks pay per-chunk dispatch and
halo-gather overhead; one array-sized chunk defeats slicing (the partial
chunk stays resident, so the window gathers the full array box for a query
that asks for a quarter of it); the sweet spot sits in the middle.
"""

import time

import pytest

from _workloads import chunked_window_context

CHUNK_SIDES = (6, 12, 24, 48, 192)


@pytest.mark.parametrize("chunk_side", CHUNK_SIDES)
@pytest.mark.benchmark(group="e9-chunking")
def test_bench_window_by_chunk_side(benchmark, chunk_side):
    ctx, tree, expected_cells = chunked_window_context(chunk_side)
    result = benchmark.pedantic(
        lambda: ctx.run(ctx.query(tree)), rounds=2, iterations=1
    )
    assert len(result) == expected_cells


def test_all_chunk_sizes_agree():
    reference = None
    for chunk_side in (6, 48, 192):
        ctx, tree, __ = chunked_window_context(chunk_side, grid_side=64)
        result = ctx.run(ctx.query(tree)).table
        if reference is None:
            reference = result
        else:
            assert result.same_rows(reference, float_tol=1e-9)


def test_middle_chunk_beats_extremes():
    times = chunking_rows(chunk_sides=(6, 24, 192))
    by_side = dict(times)
    assert by_side[24] < by_side[6], times
    assert by_side[24] < by_side[192], times


def chunking_rows(chunk_sides=CHUNK_SIDES):
    """(chunk_side, wall_s) rows for the harness."""
    rows = []
    for chunk_side in chunk_sides:
        ctx, tree, __ = chunked_window_context(chunk_side)
        ctx.run(ctx.query(tree))  # warm
        samples = []
        for _ in range(3):
            start = time.perf_counter()
            ctx.run(ctx.query(tree))
            samples.append(time.perf_counter() - start)
        rows.append((chunk_side, min(samples)))
    return rows

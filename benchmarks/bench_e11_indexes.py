"""E11 — Index ablation on the relational server.

Selective equality and range filters over a stored table, with and without
secondary indexes, across selectivities.  Expected shape: index probes win
when few rows match (they touch only those rows); as selectivity approaches
1 the full vectorized scan catches up — indexes are an access-path choice,
not a universal win.
"""

import time

import numpy as np
import pytest

from repro.core import algebra as A
from repro.core.expressions import col
from repro.providers import RelationalProvider
from repro.core.schema import Attribute, Schema
from repro.core.types import DType
from repro.storage.table import ColumnTable

ROWS = 200_000
SCHEMA = Schema([
    Attribute("k", DType.INT64),
    Attribute("grp", DType.INT64),
    Attribute("v", DType.FLOAT64),
])


def make_provider(groups: int, indexed: bool, seed: int = 0) -> RelationalProvider:
    rng = np.random.default_rng(seed)
    table = ColumnTable.from_arrays(SCHEMA, {
        "k": np.arange(ROWS, dtype=np.int64),
        "grp": rng.integers(0, groups, ROWS),
        "v": rng.uniform(0, 1, ROWS),
    })
    provider = RelationalProvider("sql")
    provider.register_dataset("data", table)
    if indexed:
        provider.create_index("data", "grp", "hash")
        provider.create_index("data", "k", "sorted")
    return provider


EQUALITY = A.Filter(A.Scan("data", SCHEMA), col("grp") == 3)
RANGE = A.Filter(A.Scan("data", SCHEMA), col("k") < 500)


@pytest.mark.parametrize("indexed", [True, False],
                         ids=["indexed", "full-scan"])
@pytest.mark.benchmark(group="e11-equality")
def test_bench_selective_equality(benchmark, indexed):
    provider = make_provider(groups=1000, indexed=indexed)
    result = benchmark(lambda: provider.execute(EQUALITY))
    assert result.num_rows > 0
    assert (provider.engine.index_hits > 0) == indexed


@pytest.mark.parametrize("indexed", [True, False],
                         ids=["indexed", "full-scan"])
@pytest.mark.benchmark(group="e11-range")
def test_bench_selective_range(benchmark, indexed):
    provider = make_provider(groups=1000, indexed=indexed)
    result = benchmark(lambda: provider.execute(RANGE))
    assert result.num_rows == 500
    assert (provider.engine.index_hits > 0) == indexed


def test_results_identical_with_and_without_index():
    with_index = make_provider(groups=100, indexed=True)
    without = make_provider(groups=100, indexed=False)
    for tree in (EQUALITY, RANGE):
        assert with_index.execute(tree).same_rows(without.execute(tree))


def test_index_wins_when_selective():
    indexed = make_provider(groups=1000, indexed=True)
    plain = make_provider(groups=1000, indexed=False)
    for p in (indexed, plain):
        p.execute(EQUALITY)  # warm
    times = {}
    for name, p in (("indexed", indexed), ("scan", plain)):
        samples = []
        for _ in range(3):
            start = time.perf_counter()
            p.execute(EQUALITY)
            samples.append(time.perf_counter() - start)
        times[name] = min(samples)
    assert times["indexed"] < times["scan"], times


def index_rows():
    """(query, selectivity, access path, wall_s) rows for the harness."""
    rows = []
    for groups, label in ((1000, "0.1%"), (10, "10%"), (2, "50%")):
        for indexed in (True, False):
            provider = make_provider(groups=groups, indexed=indexed)
            tree = A.Filter(A.Scan("data", SCHEMA), col("grp") == 1)
            provider.execute(tree)  # warm
            samples = []
            for _ in range(3):
                start = time.perf_counter()
                provider.execute(tree)
                samples.append(time.perf_counter() - start)
            rows.append((
                "grp equality", label,
                "index" if indexed else "scan", min(samples),
            ))
    return rows

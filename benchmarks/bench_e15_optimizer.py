"""E15 — Cost-based optimization ablation.

A TPC-H-like three-table join (orders ⋈ lineitems ⋈ customers) written in
a deliberately bad order: the wide lineitems join happens first, and the
selective customer-country filter sits above everything.  Both configs run
the same rule passes (predicate pushdown moves the filter onto the
customers scan either way); the ablation isolates the cost-based passes:

* **cost-based** — join reordering, conjunct ordering and eager
  aggregation enabled, fed by the federation catalog's statistics.  The
  estimator sees that orders ⋈ filtered-customers is far smaller than
  orders ⋈ lineitems and joins the selective dimension first;
* **rule-only** — the same rule fixpoint with every cost-based pass off:
  the query executes in its written (bad) join order.

Both configurations are asserted row-identical before anything is timed.
The emitted BENCH_E15.json carries ``speedup_vs_rule_only`` which the
harness ``--check`` gate enforces to be >= 1.0.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro import BigDataContext, RewriteOptions
from repro.core import algebra as A
from repro.core.expressions import col, lit
from repro.datasets import customers, lineitems, orders
from repro.datasets.tpch_like import (
    CUSTOMER_SCHEMA, LINEITEM_SCHEMA, ORDER_SCHEMA,
)
from repro.providers import RelationalProvider

#: number of customers; orders are 10x, lineitems ~3x orders (E15_SCALE
#: overrides for CI smoke runs)
DEFAULT_SCALE = int(os.environ.get("E15_SCALE", "2000"))

CONFIGS = {
    "cost-based": RewriteOptions(),
    "rule-only": RewriteOptions(
        join_reordering=False, conjunct_ordering=False,
        aggregate_pushdown=False,
    ),
}


def optimizer_context(options: RewriteOptions, scale: int) -> BigDataContext:
    ctx = BigDataContext(rewrite=options)
    ctx.add_provider(RelationalProvider("sql"))
    ctx.load("customers", customers(scale), on="sql")
    ctx.load("orders", orders(scale * 10, scale), on="sql")
    ctx.load("lineitems", lineitems(scale * 10), on="sql")
    return ctx


def optimizer_query() -> A.Node:
    """Revenue by segment for one country — written in the worst order."""
    joined = A.Join(
        A.Join(
            A.Scan("orders", ORDER_SCHEMA),
            A.Scan("lineitems", LINEITEM_SCHEMA),
            (("oid", "oid"),),
        ),
        A.Scan("customers", CUSTOMER_SCHEMA),
        (("cust", "cid"),),
    )
    filtered = A.Filter(
        joined,
        (col("quantity") >= lit(1)) & (col("country") == lit("jp")),
    )
    return A.Aggregate(
        filtered,
        ("segment",),
        (
            A.AggSpec("revenue", "sum", col("price") * col("quantity")),
            A.AggSpec("n", "count", None),
        ),
    )


def _timed(ctx: BigDataContext, tree: A.Node, rounds: int = 3) -> float:
    ctx.run(ctx.query(tree))  # warm the plan and expression caches
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        ctx.run(ctx.query(tree))
        samples.append(time.perf_counter() - start)
    return min(samples)


def test_cost_based_reorders_the_join():
    """The rewriter must actually move the selective customer join first."""
    ctx = optimizer_context(CONFIGS["cost-based"], scale=50)
    text = ctx.explain(ctx.query(optimizer_query()))
    # the reordered fragment joins customers before lineitems: the scan
    # order in the annotated logical tree makes that visible
    lines = text.splitlines()
    cust_line = next(i for i, l in enumerate(lines) if "Scan(customers)" in l)
    li_line = next(i for i, l in enumerate(lines) if "Scan(lineitems)" in l)
    assert cust_line < li_line, text


def test_configs_agree():
    tree = optimizer_query()
    results = []
    for options in CONFIGS.values():
        ctx = optimizer_context(options, scale=40)
        results.append(ctx.run(ctx.query(tree)).table)
    assert results[0].same_rows(results[1], float_tol=1e-6)


@pytest.mark.parametrize("config", list(CONFIGS))
@pytest.mark.benchmark(group="e15-optimizer")
def test_bench_optimizer_config(benchmark, config):
    ctx = optimizer_context(CONFIGS[config], DEFAULT_SCALE)
    tree = optimizer_query()
    result = benchmark.pedantic(
        lambda: ctx.run(ctx.query(tree)), rounds=3, iterations=1
    )
    assert len(result) > 0


def optimizer_rows(scale: int | None = None):
    """(config, wall_s, speedup_vs_rule_only) rows for the harness."""
    n = scale or DEFAULT_SCALE
    tree = optimizer_query()
    times = {}
    for name, options in CONFIGS.items():
        ctx = optimizer_context(options, n)
        times[name] = _timed(ctx, tree)
    base = times["rule-only"]
    return [(name, wall, base / wall) for name, wall in times.items()]


def emit_json(path: str | Path = "BENCH_E15.json", scale: int | None = None):
    """Write the ablation table (plus environment context) as JSON."""
    payload = {
        "experiment": "e15-cost-based-optimizer",
        "scale": scale or DEFAULT_SCALE,
        "cpus": os.cpu_count(),
        "configs": [
            {
                "config": name,
                "wall_s": wall,
                "speedup_vs_rule_only": speedup,
            }
            for name, wall, speedup in optimizer_rows(scale)
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload


if __name__ == "__main__":
    for entry in emit_json()["configs"]:
        print(f"{entry['config']:>11s} {entry['wall_s'] * 1e3:9.1f} ms  "
              f"{entry['speedup_vs_rule_only']:5.2f}x")

"""E3 — Intent preservation (desideratum 3).

A matrix multiply written in *relational* form (join + multiply + group-by
+ sum) is executed two ways:

* recognition OFF — the lowered form runs as-is on the relational engine;
* recognition ON — the optimizer's recognizer restores a native ``MatMul``,
  the planner routes it to the linear-algebra server, and blocked kernels
  run it.

Expected shape: the recognized path wins by a factor that grows with n
(matmul is O(n^3) work that the join-aggregate formulation handles row by
row at n^3 joined tuples).
"""

import time

import pytest

from _workloads import intent_context
from repro.core import algebra as A

SIZES = (32, 64, 96)


def _run(n: int, recognize: bool):
    ctx, lowered = intent_context(n, recognize)
    return ctx, lambda: ctx.run(ctx.query(lowered))


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.benchmark(group="e3-intent")
def test_bench_lowered_on_relational(benchmark, n):
    __, run = _run(n, recognize=False)
    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(result) == n * n


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.benchmark(group="e3-intent")
def test_bench_recognized_on_linalg(benchmark, n):
    ctx, run = _run(n, recognize=True)
    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(result) == n * n
    # the matmul fragment must actually land on the linalg server
    assert "scalapack" in {
        f.server for f in ctx.planner.plan(
            ctx.rewriter.rewrite(intent_context(n, True)[1])
        ).fragments
    }


def test_results_identical_both_paths():
    ctx_off, lowered = intent_context(24, recognize=False)
    ctx_on, lowered_on = intent_context(24, recognize=True)
    off = ctx_off.run(ctx_off.query(lowered))
    on = ctx_on.run(ctx_on.query(lowered_on))
    assert on.table.same_rows(off.table, float_tol=1e-6)


def test_recognized_path_wins_at_largest_size():
    n = SIZES[-1]
    ctx_off, run_off = _run(n, recognize=False)
    ctx_on, run_on = _run(n, recognize=True)
    start = time.perf_counter()
    run_off()
    t_off = time.perf_counter() - start
    start = time.perf_counter()
    run_on()
    t_on = time.perf_counter() - start
    assert t_on < t_off, (
        f"recognized path ({t_on:.3f}s) should beat relational ({t_off:.3f}s)"
    )


def intent_times(sizes=SIZES):
    """(n, lowered_s, recognized_s) rows for the harness table."""
    rows = []
    for n in sizes:
        times = []
        for recognize in (False, True):
            __, run = _run(n, recognize)
            start = time.perf_counter()
            run()
            times.append(time.perf_counter() - start)
        rows.append((n, times[0], times[1]))
    return rows

"""E13 — Vectorized join & morsel-parallel aggregation ablation.

Two ablations over the kernel layer PR 2 introduced:

* **Joins**: the row-at-a-time Python hash table (the pre-kernel
  implementation, kept as ``python_hash_join``) vs the vectorized
  code-encoding join, serial and morsel-parallel, across key shapes —
  single int64, multi-column (int + string), and single string.  The
  single-int case was already vectorized before this layer existed; the
  multi-key and string cases are where the Python path used to be the only
  option, and where the acceptance bar (>=3x at 100k+ rows) applies.
* **Group-by**: one single-pass scatter per aggregate (the old
  ``np.add.at`` formulation, recovered by making the morsel one
  table-sized range) vs per-morsel partial aggregates merged in morsel
  order, serial and parallel.

Every path is asserted to return identical results (bit-identical across
worker counts) before anything is timed.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import algebra as A
from repro.core.expressions import col
from repro.core.schema import Attribute, Schema
from repro.core.types import DType
from repro.relational.aggregation import group_aggregate
from repro.relational.joins import hash_join, merge_join, python_hash_join
from repro.storage.table import ColumnTable

#: override for CI smoke runs (full run is 200k rows)
DEFAULT_ROWS = int(os.environ.get("E13_ROWS", "200000"))

KINDS = ("int", "multi", "str")

JOIN_PATHS = {
    "python-hash": lambda l, r, lk, rk, how: python_hash_join(l, r, lk, rk, how),
    "vectorized": lambda l, r, lk, rk, how: hash_join(
        l, r, lk, rk, how, workers=1
    ),
    "vectorized+mp": lambda l, r, lk, rk, how: hash_join(
        l, r, lk, rk, how, workers=0, morsel_size=32_768
    ),
}


def _strings(ids: np.ndarray) -> np.ndarray:
    return np.array([f"key-{i:07d}" for i in ids], dtype=object)


def join_workload(kind: str, n: int, seed: int = 0):
    """(left, right, left_keys, right_keys) with ~1 match per probe row."""
    rng = np.random.default_rng(seed)
    n_right = max(n // 2, 1)
    probe = rng.integers(0, n_right * 2, size=n)  # ~half dangle
    build = np.arange(n_right, dtype=np.int64)
    v = rng.standard_normal(n)
    w = rng.standard_normal(n_right)
    if kind == "int":
        left = ColumnTable.from_arrays(
            Schema([Attribute("k", DType.INT64), Attribute("v", DType.FLOAT64)]),
            {"k": probe, "v": v},
        )
        right = ColumnTable.from_arrays(
            Schema([Attribute("k2", DType.INT64), Attribute("w", DType.FLOAT64)]),
            {"k2": build, "w": w},
        )
        return left, right, ["k"], ["k2"]
    if kind == "str":
        left = ColumnTable.from_arrays(
            Schema([Attribute("s", DType.STRING), Attribute("v", DType.FLOAT64)]),
            {"s": _strings(probe), "v": v},
        )
        right = ColumnTable.from_arrays(
            Schema([Attribute("s2", DType.STRING), Attribute("w", DType.FLOAT64)]),
            {"s2": _strings(build), "w": w},
        )
        return left, right, ["s"], ["s2"]
    # multi: the (int, string) pair jointly identifies the key
    left = ColumnTable.from_arrays(
        Schema([
            Attribute("k", DType.INT64), Attribute("tag", DType.STRING),
            Attribute("v", DType.FLOAT64),
        ]),
        {"k": probe // 1000, "tag": _strings(probe % 1000), "v": v},
    )
    right = ColumnTable.from_arrays(
        Schema([
            Attribute("k2", DType.INT64), Attribute("tag2", DType.STRING),
            Attribute("w", DType.FLOAT64),
        ]),
        {"k2": build // 1000, "tag2": _strings(build % 1000), "w": w},
    )
    return left, right, ["k", "tag"], ["k2", "tag2"]


GROUPS = 1000

GROUP_AGGS = (
    A.AggSpec("rows", "count", None),
    A.AggSpec("total", "sum", col("v")),
    A.AggSpec("avg", "mean", col("v")),
    A.AggSpec("lo", "min", col("v")),
    A.AggSpec("hi", "max", col("n")),
    A.AggSpec("first_tag", "min", col("tag")),
)


def groupby_workload(n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    sch = Schema([
        Attribute("g", DType.INT64), Attribute("tag", DType.STRING),
        Attribute("v", DType.FLOAT64), Attribute("n", DType.INT64),
    ])
    data = ColumnTable.from_arrays(sch, {
        "g": rng.integers(0, GROUPS, size=n),
        "tag": _strings(rng.integers(0, 50, size=n)),
        "v": rng.standard_normal(n),
        "n": rng.integers(-100, 100, size=n),
    })
    out_schema = A.Aggregate(
        A.InlineTable(sch, ()), ("g",), GROUP_AGGS
    ).schema
    return data, out_schema


def groupby_configs(n: int):
    """name -> (workers, morsel_size); "single-pass" is the old serial path."""
    return {
        "single-pass": (1, n + 1),
        "partials": (1, 65_536),
        "partials+mp": (0, 65_536),
    }


def _timed(fn, rounds: int = 3) -> float:
    fn()  # warm up
    return min(
        (lambda s: (fn(), time.perf_counter() - s)[1])(time.perf_counter())
        for _ in range(rounds)
    )


# -- agreement (asserted before anything is timed) ---------------------------


def _pairs(how, idx):
    lidx, ridx = idx
    if how in ("semi", "anti"):
        return sorted(lidx.tolist())
    return sorted(zip(lidx.tolist(), ridx.tolist()))


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("how", ["inner", "left", "full", "semi", "anti"])
def test_all_join_paths_agree(kind, how):
    left, right, lk, rk = join_workload(kind, 4000)
    base = _pairs(how, JOIN_PATHS["python-hash"](left, right, lk, rk, how))
    for name in ("vectorized", "vectorized+mp"):
        assert _pairs(how, JOIN_PATHS[name](left, right, lk, rk, how)) == base
    if how in ("inner", "left"):
        assert _pairs(how, merge_join(left, right, lk, rk, how=how)) == base
    # bit-identity across worker counts (not just equal row sets)
    one = hash_join(left, right, lk, rk, how, workers=1, morsel_size=512)
    for workers in (2, 4):
        multi = hash_join(
            left, right, lk, rk, how, workers=workers, morsel_size=512
        )
        assert np.array_equal(one[0], multi[0])
        assert np.array_equal(one[1], multi[1])


def test_all_groupby_configs_agree():
    n = 20_000
    data, out_schema = groupby_workload(n)
    results = {
        name: group_aggregate(
            data, ("g",), GROUP_AGGS, out_schema,
            workers=workers, morsel_size=morsel,
        )
        for name, (workers, morsel) in groupby_configs(n).items()
    }
    base = results["single-pass"]
    for name, other in results.items():
        assert base.same_rows(other, float_tol=1e-9), name
    # same decomposition, different worker count -> identical bits
    serial = group_aggregate(
        data, ("g",), GROUP_AGGS, out_schema, workers=1, morsel_size=4096
    )
    parallel = group_aggregate(
        data, ("g",), GROUP_AGGS, out_schema, workers=0, morsel_size=4096
    )
    for name in serial.schema.names:
        c1, c2 = serial.column(name), parallel.column(name)
        if c1.dtype is DType.STRING:
            assert all(a == b for a, b in zip(c1.values, c2.values))
        else:
            assert np.array_equal(c1.values, c2.values), name


# -- pytest-benchmark hooks ---------------------------------------------------


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("path", list(JOIN_PATHS))
@pytest.mark.benchmark(group="e13-joins")
def test_bench_join_path(benchmark, kind, path):
    left, right, lk, rk = join_workload(kind, min(DEFAULT_ROWS, 50_000))
    out = benchmark.pedantic(
        lambda: JOIN_PATHS[path](left, right, lk, rk, "inner"),
        rounds=3, iterations=1,
    )
    assert len(out[0]) > 0


@pytest.mark.parametrize("config", ["single-pass", "partials", "partials+mp"])
@pytest.mark.benchmark(group="e13-groupby")
def test_bench_groupby_config(benchmark, config):
    n = min(DEFAULT_ROWS, 100_000)
    data, out_schema = groupby_workload(n)
    workers, morsel = groupby_configs(n)[config]
    out = benchmark.pedantic(
        lambda: group_aggregate(
            data, ("g",), GROUP_AGGS, out_schema,
            workers=workers, morsel_size=morsel,
        ),
        rounds=3, iterations=1,
    )
    assert out.num_rows == GROUPS


# -- acceptance ----------------------------------------------------------------


@pytest.mark.skipif(
    DEFAULT_ROWS < 100_000,
    reason="speedup bar applies at 100k+ rows (set E13_ROWS)",
)
@pytest.mark.parametrize("kind", ["multi", "str"])
def test_vectorized_beats_python_hash_3x(kind):
    left, right, lk, rk = join_workload(kind, DEFAULT_ROWS)
    python = _timed(
        lambda: python_hash_join(left, right, lk, rk, "inner"), rounds=2
    )
    vec = _timed(lambda: hash_join(left, right, lk, rk, "inner"), rounds=2)
    assert python / vec >= 3.0, f"{kind}: only {python / vec:.2f}x"


# -- harness rows --------------------------------------------------------------


def join_ablation_rows(n: int | None = None):
    """(kind, path, wall_s, speedup_vs_python) rows for the harness."""
    n = n or DEFAULT_ROWS
    rows = []
    for kind in KINDS:
        left, right, lk, rk = join_workload(kind, n)
        times = {
            name: _timed(lambda fn=fn: fn(left, right, lk, rk, "inner"))
            for name, fn in JOIN_PATHS.items()
        }
        base = times["python-hash"]
        rows.extend(
            (kind, name, wall, base / wall) for name, wall in times.items()
        )
    return rows


def groupby_ablation_rows(n: int | None = None):
    """(config, wall_s, speedup_vs_single_pass) rows for the harness."""
    n = n or DEFAULT_ROWS
    data, out_schema = groupby_workload(n)
    times = {
        name: _timed(lambda w=workers, m=morsel: group_aggregate(
            data, ("g",), GROUP_AGGS, out_schema, workers=w, morsel_size=m,
        ))
        for name, (workers, morsel) in groupby_configs(n).items()
    }
    base = times["single-pass"]
    return [(name, wall, base / wall) for name, wall in times.items()]


def emit_json(path: str | Path = "BENCH_E13.json", n_rows: int | None = None):
    """Write both ablation tables (plus environment context) as JSON."""
    payload = {
        "experiment": "e13-join-kernels",
        "rows": n_rows or DEFAULT_ROWS,
        "cpus": os.cpu_count(),
        "joins": [
            {"kind": kind, "path": name, "wall_s": wall,
             "speedup_vs_python": speedup}
            for kind, name, wall, speedup in join_ablation_rows(n_rows)
        ],
        "groupby": [
            {"config": name, "wall_s": wall, "speedup_vs_single_pass": speedup}
            for name, wall, speedup in groupby_ablation_rows(n_rows)
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload


if __name__ == "__main__":
    data = emit_json()
    for entry in data["joins"]:
        print(f"{entry['kind']:>6s} {entry['path']:>14s} "
              f"{entry['wall_s'] * 1e3:9.1f} ms  "
              f"{entry['speedup_vs_python']:6.2f}x")
    for entry in data["groupby"]:
        print(f"group  {entry['config']:>14s} "
              f"{entry['wall_s'] * 1e3:9.1f} ms  "
              f"{entry['speedup_vs_single_pass']:6.2f}x")

"""E7 — Expression-tree shipping (LINQ property 2).

The framework sends a whole query as ONE serialized expression tree; a
call-at-a-time remote API sends one message per operator and materializes
every intermediate back at the client.  We emulate the latter by splitting
a five-operator pipeline into one query per operator, inlining each
intermediate into the next query.

Expected shape: tree shipping sends 1 query message and moves only the
final result; call-at-a-time sends k messages whose payloads *contain the
data* — and forfeits provider-side optimization (the pushdown the optimizer
applies to the whole tree cannot happen across call boundaries).
"""

import pytest

from repro import BigDataContext, col
from repro.client.query import Query
from repro.core import algebra as A
from repro.datasets import customers, orders
from repro.providers import RelationalProvider


def make_context() -> BigDataContext:
    ctx = BigDataContext()
    ctx.add_provider(RelationalProvider("sql"))
    ctx.load("customers", customers(200, seed=0), on="sql")
    ctx.load("orders", orders(1500, 200, seed=1), on="sql")
    return ctx


def pipeline_stages(ctx: BigDataContext):
    """The pipeline as five single-operator steps."""
    return [
        lambda q: q.join(ctx.table("customers"), on=[("cust", "cid")]),
        lambda q: q.where(col("amount") > 40.0),
        lambda q: q.derive(taxed=col("amount") * 1.21),
        lambda q: q.aggregate(["country"], total=("sum", col("taxed"))),
        lambda q: q.order_by("total", ascending=False),
    ]


def run_tree_shipped(ctx: BigDataContext):
    query = ctx.table("orders")
    for stage in pipeline_stages(ctx):
        query = stage(query)
    return ctx.run(query)


def run_call_at_a_time(ctx: BigDataContext):
    """One round trip per operator; intermediates inlined into each call."""
    current = ctx.run(ctx.table("orders"))
    total_reports = [ctx.last_report]
    for stage in pipeline_stages(ctx):
        base = ctx.inline(current.schema, current.rows())
        current = ctx.run(stage(base))
        total_reports.append(ctx.last_report)
    return current, total_reports


def test_same_answers_both_ways():
    ctx = make_context()
    shipped = run_tree_shipped(ctx)
    called, __ = run_call_at_a_time(ctx)
    assert shipped.table.same_rows(called.table, float_tol=1e-9)


def test_message_and_byte_asymmetry():
    ctx = make_context()
    run_tree_shipped(ctx)
    tree_report = ctx.last_report
    __, call_reports = run_call_at_a_time(ctx)
    tree_queries = len(tree_report.metrics.queries)
    call_queries = sum(len(r.metrics.queries) for r in call_reports)
    assert tree_queries == 1
    assert call_queries == len(call_reports) == 6
    tree_bytes = tree_report.metrics.query_bytes
    call_bytes = sum(r.metrics.query_bytes for r in call_reports)
    assert call_bytes > 50 * tree_bytes, (
        f"call-at-a-time should ship data in queries: {call_bytes} vs {tree_bytes}"
    )


@pytest.mark.benchmark(group="e7-shipping")
def test_bench_tree_shipping(benchmark):
    ctx = make_context()
    result = benchmark(lambda: run_tree_shipped(ctx))
    assert len(result) > 0


@pytest.mark.benchmark(group="e7-shipping")
def test_bench_call_at_a_time(benchmark):
    ctx = make_context()
    result = benchmark(lambda: run_call_at_a_time(ctx)[0])
    assert len(result) > 0


def shipping_rows():
    """(mode, query_messages, query_bytes, result_bytes, wall_s) rows."""
    import time

    ctx = make_context()
    rows = []
    start = time.perf_counter()
    run_tree_shipped(ctx)
    wall = time.perf_counter() - start
    r = ctx.last_report
    rows.append(("tree", len(r.metrics.queries), r.metrics.query_bytes,
                 r.result_bytes, wall))
    start = time.perf_counter()
    __, reports = run_call_at_a_time(ctx)
    wall = time.perf_counter() - start
    rows.append((
        "call-at-a-time",
        sum(len(r.metrics.queries) for r in reports),
        sum(r.metrics.query_bytes for r in reports),
        sum(r.result_bytes for r in reports),
        wall,
    ))
    return rows

"""Shared workload builders for the experiment benchmarks (E1-E10).

Each experiment bench imports from here so workload parameters live in one
place and the harness (``python benchmarks/harness.py``) reproduces the
EXPERIMENTS.md tables from the same definitions.
"""

from __future__ import annotations

import numpy as np

from repro import BigDataContext, RewriteOptions, col
from repro.core import algebra as A
from repro.core.intents import matmul_as_join_aggregate
from repro.datasets import (
    customers, dense_matrix_table, matrix_schema, orders,
    random_edges, sensor_grid, vertex_table,
)
from repro.frontends.matrix import Matrix
from repro.graph import queries as graph_queries
from repro.providers import (
    ArrayProvider, GraphProvider, LinalgProvider, ReferenceProvider,
    RelationalProvider,
)
from repro.array.engine import ArrayEngineOptions
from repro.federation.channels import NetworkModel

#: a slow-ish WAN-like model so simulated network time is legible
WAN = NetworkModel(latency_s=5e-3, bandwidth_bytes_per_s=100e6)


def full_context(routing: str = "direct",
                 rewrite: RewriteOptions | None = None) -> BigDataContext:
    """Four specialized servers plus datasets for the canonical suite."""
    ctx = BigDataContext(routing=routing, rewrite=rewrite, network=WAN)
    ctx.add_provider(RelationalProvider("sql"))
    ctx.add_provider(ArrayProvider("scidb"))
    ctx.add_provider(LinalgProvider("scalapack"))
    ctx.add_provider(GraphProvider("graphd"))
    return ctx


# -- canonical query suite (E1 coverage / E2 translatability) ------------------

def load_suite_data(ctx: BigDataContext, scale: int = 1) -> None:
    ctx.load("customers", customers(200 * scale, seed=0), on="sql")
    ctx.load("orders", orders(1000 * scale, 200 * scale, seed=1), on="sql")
    ctx.load("grid", sensor_grid(24, 24, seed=2), on="scidb")
    ctx.load("ma", dense_matrix_table(16, 16, seed=3), on="scalapack")
    ctx.load("mb", dense_matrix_table(
        16, 16, seed=4, row_name="j", col_name="k", value_name="w"
    ), on="scalapack")
    ctx.load("edges", random_edges(60, 240, seed=5), on="graphd")
    ctx.load("vertices", vertex_table(60), on="graphd")


def canonical_suite(ctx: BigDataContext) -> list[tuple[str, A.Node]]:
    """Named queries spanning relational, array, linear algebra and graphs."""
    grid = ctx.table("grid")
    suite = [
        ("rel-filter", ctx.table("orders").where(col("amount") > 100.0).node),
        ("rel-join", ctx.table("customers").join(
            ctx.table("orders"), on=[("cid", "cust")]).node),
        ("rel-aggregate", ctx.table("orders").aggregate(
            ["status"], total=("sum", col("amount")), n=("count", None)).node),
        ("rel-sort-limit", ctx.table("orders").order_by(
            "amount", ascending=False).limit(10).node),
        ("rel-distinct", ctx.table("customers").select("country").distinct().node),
        ("rel-set-ops", ctx.table("orders").select("cust").rename(cust="cid")
            .intersect(ctx.table("customers").select("cid")).node),
        ("arr-slice", grid.slice_dims(x=(0, 9), y=(0, 9)).node),
        ("arr-regrid", grid.regrid({"x": 4, "y": 4},
                                   reading=("mean", col("reading"))).node),
        ("arr-window", grid.window({"x": 1, "y": 1},
                                   reading=("mean", col("reading"))).node),
        ("arr-reduce", grid.reduce_dims(["x"], total=("sum", col("reading"))).node),
        ("la-matmul", ctx.table("ma").matmul(ctx.table("mb")).node),
        ("la-transpose", ctx.table("ma").transpose("j", "i").node),
        ("graph-pagerank", graph_queries.pagerank(
            ctx.table("vertices").node, ctx.table("edges").node, 60,
            tolerance=1e-6, max_iter=50)),
        ("graph-bfs", graph_queries.bfs_levels(
            ctx.table("vertices").node, ctx.table("edges").node, 0,
            max_iter=100)),
    ]
    return suite


# -- E3 intent preservation -------------------------------------------------------

def intent_context(n: int, recognize: bool) -> tuple[BigDataContext, A.Node]:
    """A lowered (join-aggregate) matmul of two dense n x n matrices.

    Data is replicated on the relational and linalg servers so the planner's
    choice is purely about operators, not data placement.
    """
    rewrite = RewriteOptions(recognize_intents=recognize)
    ctx = BigDataContext(rewrite=rewrite, network=WAN)
    ctx.add_provider(RelationalProvider("sql"))
    ctx.add_provider(LinalgProvider("scalapack"))
    a = dense_matrix_table(n, n, seed=10)
    b = dense_matrix_table(n, n, seed=11, row_name="j", col_name="k",
                           value_name="w")
    ctx.load("a", a, on=["sql", "scalapack"])
    ctx.load("b", b, on=["sql", "scalapack"])
    lowered = matmul_as_join_aggregate(
        ctx.table("a").node, ctx.table("b").node
    )
    return ctx, lowered


# -- E4 interoperation ---------------------------------------------------------------

def interop_context(n: int, routing: str) -> tuple[BigDataContext, A.Node]:
    """relational filter -> matmul -> array regrid across three servers."""
    ctx = full_context(routing=routing)
    a = dense_matrix_table(n, n, seed=20)
    b = dense_matrix_table(n, n, seed=21, row_name="j", col_name="k",
                           value_name="w")
    ctx.load("fa", a, on="sql")
    ctx.load("fb", b, on="scalapack")
    filtered = A.Filter(ctx.table("fa").node, col("v") > 0.6)
    keyed = A.AsDims(filtered, ("i", "j"))
    product = A.MatMul(keyed, ctx.table("fb").node)
    tree = A.Regrid(product, (("i", 4), ("k", 4)),
                    (A.AggSpec("v", "mean", col("v")),))
    return ctx, tree


# -- E5 control iteration --------------------------------------------------------------

def pagerank_setup(n: int, avg_degree: int = 4,
                   max_iter: int = 50, tolerance: float = 1e-8):
    ctx = full_context()
    ctx.load("edges", random_edges(n, n * avg_degree, seed=30), on="graphd")
    ctx.load("vertices", vertex_table(n), on="graphd")
    tree = graph_queries.pagerank(
        ctx.table("vertices").node, ctx.table("edges").node, n,
        tolerance=tolerance, max_iter=max_iter,
    )
    return ctx, tree


# -- E8 rewriter ablation ----------------------------------------------------------------

def ablation_context(options: RewriteOptions, scale: int = 20) -> BigDataContext:
    ctx = BigDataContext(rewrite=options)
    ctx.add_provider(RelationalProvider("sql"))
    ctx.load("customers", customers(100 * scale, seed=40), on="sql")
    ctx.load("orders", orders(500 * scale, 100 * scale, seed=41), on="sql")
    return ctx


def ablation_query(ctx: BigDataContext) -> A.Node:
    """Selective filter over a join with wide inputs: the rewriter's bread
    and butter (pushdown shrinks the join; pruning narrows the columns)."""
    return (
        ctx.table("customers")
        .join(ctx.table("orders"), on=[("cid", "cust")])
        .where((col("country") == "jp") & (col("amount") > 50.0))
        .select("name", "amount")
        .node
    )


# -- E9 chunking -----------------------------------------------------------------------------

def chunked_window_context(chunk_side: int, grid_side: int = 192,
                           slice_frac: float = 0.25):
    """A windowed query over a *slice* of a larger grid.

    This is where chunk size genuinely trades off: tiny chunks pay per-chunk
    dispatch and halo-gather overhead; one giant chunk cannot skip anything —
    slicing keeps the whole block resident and the window gathers the full
    array box even though only a quarter of it is asked for.
    """
    ctx = BigDataContext()
    ctx.add_provider(
        ArrayProvider("scidb", ArrayEngineOptions(chunk_side=chunk_side))
    )
    ctx.load("grid", sensor_grid(grid_side, grid_side, seed=50,
                                 missing_fraction=0.0, null_fraction=0.0),
             on="scidb")
    lo = int(grid_side * 0.5)
    hi = lo + int(grid_side * slice_frac) - 1
    query = (
        ctx.table("grid")
        .slice_dims(x=(lo, hi), y=(lo, hi))
        .window({"x": 2, "y": 2}, reading=("mean", col("reading")))
    )
    return ctx, query.node, (hi - lo + 1) ** 2


# -- E12 fused execution ------------------------------------------------------------------

def fusion_table(n_rows: int, n_extra: int = 14, seed: int = 60) -> ColumnTable:
    """A wide float table: the workload where fusion pays.

    An unfused Filter must mask-compress every column and materialize a
    full-width intermediate; the fused pipeline only ever touches the
    columns its output needs.
    """
    from repro.core.schema import Attribute, DType, Schema

    rng = np.random.default_rng(seed)
    attrs = [Attribute("k", DType.INT64)]
    attrs += [Attribute(f"c{i}", DType.FLOAT64) for i in range(n_extra + 2)]
    schema = Schema(tuple(attrs))
    columns = {"k": np.arange(n_rows, dtype=np.int64)}
    for i in range(n_extra + 2):
        columns[f"c{i}"] = rng.normal(size=n_rows)
    from repro.storage.column import Column
    from repro.storage.table import ColumnTable as CT

    return CT(schema, {n: Column(schema[n].dtype, v) for n, v in columns.items()})


def fusion_query(schema) -> A.Node:
    """Selective Filter -> Extend -> Project: the canonical fusible chain."""
    from repro import lit

    scan = A.Scan("wide", schema)
    filtered = A.Filter(scan, col("c0") > lit(0.2))          # ~42% selective
    extended = A.Extend(
        filtered,
        ("score", "ratio"),
        (col("c1") * col("c2") + col("c3"),
         (col("c4") - col("c5")) / (col("c0") + lit(1.0))),
    )
    return A.Project(extended, ("k", "score", "ratio", "c1"))


def pruning_table(n_rows: int, n_payload: int = 6, seed: int = 61):
    """An event log whose timestamp correlates with storage order.

    ``ts`` ascends with the row id (append-order ingestion), so chunk zone
    maps carve the table into disjoint ``ts`` ranges and a recent-window
    filter statically rules out almost every chunk.  ``region`` is a
    low-cardinality string (dictionary-encoded by the catalog) and the
    payload columns are dead weight the scan should never touch for
    pruned chunks.
    """
    from repro.core.schema import Attribute, DType, Schema
    from repro.storage.column import Column
    from repro.storage.table import ColumnTable as CT

    rng = np.random.default_rng(seed)
    attrs = [
        Attribute("ts", DType.INT64),
        Attribute("region", DType.STRING),
        Attribute("amount", DType.FLOAT64),
    ]
    attrs += [Attribute(f"p{i}", DType.FLOAT64) for i in range(n_payload)]
    schema = Schema(tuple(attrs))
    regions = np.array(
        ["apac", "emea", "latam", "na-east", "na-west"], dtype=object
    )
    columns = {
        "ts": Column(DType.INT64, np.arange(n_rows, dtype=np.int64)),
        "region": Column(
            DType.STRING, regions[rng.integers(0, len(regions), n_rows)]
        ),
        "amount": Column(DType.FLOAT64, rng.random(n_rows) * 100.0),
    }
    for i in range(n_payload):
        columns[f"p{i}"] = Column(DType.FLOAT64, rng.normal(size=n_rows))
    return CT(schema, columns)


def pruning_query(schema, n_rows: int) -> A.Node:
    """Recent-window filter: ``ts >= 0.97n`` touches ~3% of the rows —
    and, with 32 chunks, exactly 1 chunk survives the zone maps."""
    from repro import lit

    scan = A.Scan("events", schema)
    filtered = A.Filter(scan, col("ts") >= lit(int(n_rows * 0.97)))
    return A.Project(filtered, ("ts", "region", "amount", "p0", "p1"))

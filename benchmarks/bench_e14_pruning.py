"""E14 — Chunked storage: zone-map scan pruning ablation.

A selective recent-window filter (``ts >= 0.97n``: ~3% of the rows, and —
with the table split into 32 chunks — exactly 1 of 32 chunks) over an
append-ordered event log, executed three ways:

* **unchunked** — no catalog: a plain full scan feeding the fused
  pipeline (the pre-chunking execution path, serial);
* **chunked+pruned** — the table registered through a
  :class:`~repro.relational.catalog.RelationalCatalog` that splits it
  into chunks with per-column zone maps; lowering compiles the filter
  into a chunk-pruning predicate so the scan reads 1/32 of the table;
* **chunked+pruned+mp** — the same, with surviving chunks doubling as
  morsel units across one worker per CPU.

Every configuration is asserted to return bit-identical rows (including
at worker counts 1/2/4) before anything is timed.  The emitted JSON
records ``chunks_scanned``/``chunks_total`` so the documented speedup can
be read against the fraction of the table actually touched.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from _workloads import pruning_query, pruning_table
from repro.relational.catalog import RelationalCatalog
from repro.relational.engine import EngineOptions, RelationalEngine

#: override for CI smoke runs (full run is 1M rows)
DEFAULT_ROWS = int(os.environ.get("E14_ROWS", "1000000"))

#: chunks per table: 1/32 surviving chunks = 3.1% of the rows scanned
NUM_CHUNKS = 32

CONFIGS = {
    "unchunked": (EngineOptions(), False),
    "chunked+pruned": (EngineOptions(), True),
    "chunked+pruned+mp": (EngineOptions(morsel_workers=0), True),
}


def _make_engine(options: EngineOptions, table, chunked: bool):
    """(engine, resolver) for one configuration over one stored table."""
    if not chunked:
        return RelationalEngine(options), lambda name: table
    catalog = RelationalCatalog(chunk_rows=max(len(table.columns["ts"]) // NUM_CHUNKS, 1))
    entry = catalog.register("events", table)
    # serve the catalog's (dictionary-encoded) representation, as the
    # relational provider does, so plans and stored codes agree
    return RelationalEngine(options, catalog), lambda name: entry.table


def _run_once(engine, resolver, tree):
    return engine.run(tree, resolver)


def _timed(engine, resolver, tree, rounds: int = 3) -> float:
    _run_once(engine, resolver, tree)  # warm plan + expression caches
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        _run_once(engine, resolver, tree)
        samples.append(time.perf_counter() - start)
    return min(samples)


@pytest.fixture(scope="module")
def workload():
    n = min(DEFAULT_ROWS, 200_000)
    table = pruning_table(n)
    return table, pruning_query(table.schema, n)


def test_all_configs_bit_identical(workload):
    table, tree = workload
    engine, resolver = _make_engine(EngineOptions(), table, False)
    baseline = _run_once(engine, resolver, tree)
    for workers in (1, 2, 4):
        engine, resolver = _make_engine(
            EngineOptions(morsel_workers=workers), table, True
        )
        out = _run_once(engine, resolver, tree)
        assert out.schema.names == baseline.schema.names
        for name in baseline.schema.names:
            assert out.column(name).to_list() == baseline.column(name).to_list()


def test_pruned_scan_skips_chunks(workload):
    table, tree = workload
    engine, resolver = _make_engine(EngineOptions(), table, True)
    _run_once(engine, resolver, tree)
    assert engine.counters.chunks_pruned > 0
    scanned = engine.counters.chunks_scanned
    total = scanned + engine.counters.chunks_pruned
    assert scanned / total <= 0.05  # the acceptance bar's "selective" shape


@pytest.mark.parametrize("config", list(CONFIGS))
@pytest.mark.benchmark(group="e14-pruning")
def test_bench_pruning_config(benchmark, config, workload):
    table, tree = workload
    options, chunked = CONFIGS[config]
    engine, resolver = _make_engine(options, table, chunked)
    result = benchmark.pedantic(
        lambda: _run_once(engine, resolver, tree), rounds=3, iterations=1
    )
    assert result.num_rows > 0


@pytest.mark.skipif(
    DEFAULT_ROWS < 500_000,
    reason="speedup bar applies at 500k+ rows (set E14_ROWS)",
)
def test_pruned_beats_unchunked_3x():
    table = pruning_table(DEFAULT_ROWS)
    tree = pruning_query(table.schema, DEFAULT_ROWS)
    unchunked = _timed(*_make_engine(EngineOptions(), table, False), tree)
    pruned = _timed(*_make_engine(EngineOptions(), table, True), tree)
    assert unchunked / pruned >= 3.0, f"only {unchunked / pruned:.2f}x"


def pruning_rows(n_rows: int | None = None):
    """(config, wall_s, speedup_vs_unchunked, scanned, total) for the harness."""
    n = n_rows or DEFAULT_ROWS
    table = pruning_table(n)
    tree = pruning_query(table.schema, n)
    rows = []
    times = {}
    for name, (options, chunked) in CONFIGS.items():
        engine, resolver = _make_engine(options, table, chunked)
        times[name] = _timed(engine, resolver, tree)
        # per-query chunk counts (the timing loop accumulated several runs)
        engine.counters.chunks_scanned = 0
        engine.counters.chunks_pruned = 0
        _run_once(engine, resolver, tree)
        scanned = engine.counters.chunks_scanned
        total = scanned + engine.counters.chunks_pruned
        rows.append((name, times[name], scanned, total))
    base = times["unchunked"]
    return [
        (name, wall, base / wall, scanned, total)
        for name, wall, scanned, total in rows
    ]


def emit_json(path: str | Path = "BENCH_E14.json", n_rows: int | None = None):
    """Write the ablation table (plus environment context) as JSON."""
    payload = {
        "experiment": "e14-scan-pruning",
        "rows": n_rows or DEFAULT_ROWS,
        "num_chunks": NUM_CHUNKS,
        "cpus": os.cpu_count(),
        "configs": [
            {
                "config": name,
                "wall_s": wall,
                "speedup_vs_unchunked": speedup,
                "chunks_scanned": scanned,
                "chunks_total": total,
            }
            for name, wall, speedup, scanned, total in pruning_rows(n_rows)
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return payload


if __name__ == "__main__":
    data = emit_json()
    for entry in data["configs"]:
        chunks = (
            f"{entry['chunks_scanned']}/{entry['chunks_total']}"
            if entry["chunks_total"] else "-"
        )
        print(f"{entry['config']:>18s} {entry['wall_s'] * 1e3:9.1f} ms  "
              f"{entry['speedup_vs_unchunked']:6.2f}x  chunks {chunks}")

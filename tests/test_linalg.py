"""Tests for blocked matrices, kernels, and the linalg provider."""

import numpy as np
import pytest

from repro.core import algebra as A
from repro.core.errors import ExecutionError
from repro.linalg import kernels
from repro.linalg.blocked import BlockedMatrix
from repro.providers.linalg_p import LinalgProvider

from .helpers import MATRIX, matrix_table, schema, table


def random_dense(rng, shape):
    return rng.normal(size=shape)


class TestBlockedMatrix:
    def test_dense_round_trip(self):
        rng = np.random.default_rng(0)
        dense = random_dense(rng, (10, 7))
        for block in (1, 3, 4, 16):
            m = BlockedMatrix.from_dense(dense, block)
            assert np.allclose(m.to_dense(), dense)

    def test_grid_and_block_shapes(self):
        m = BlockedMatrix((10, 7), 4)
        assert m.grid == (3, 2)
        assert m.block_shape(2, 1) == (2, 3)  # clipped edge tile

    def test_zero_tiles_not_stored(self):
        dense = np.zeros((8, 8))
        dense[0, 0] = 1.0
        m = BlockedMatrix.from_dense(dense, 4)
        assert len(m.blocks) == 1

    def test_set_block_validates_shape(self):
        m = BlockedMatrix((10, 7), 4)
        with pytest.raises(ExecutionError):
            m.set_block(2, 1, np.zeros((4, 4)))

    def test_table_round_trip(self):
        t = matrix_table([[1, 0, 2], [0, 3, 0]])
        m = BlockedMatrix.from_table(t, 2)
        assert m.shape == (2, 3)
        # zero cells of the table are indistinguishable from absent (dense)
        back = m.to_table()
        assert back.same_rows(table(MATRIX, [(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]))

    def test_from_table_rejects_negative_coords(self):
        t = table(MATRIX, [(-1, 0, 1.0)])
        with pytest.raises(ExecutionError):
            BlockedMatrix.from_table(t)

    def test_from_table_rejects_nulls(self):
        t = table(MATRIX, [(0, 0, None)])
        with pytest.raises(ExecutionError):
            BlockedMatrix.from_table(t)


class TestKernels:
    def test_blocked_matmul_matches_numpy(self):
        rng = np.random.default_rng(1)
        a = random_dense(rng, (13, 9))
        b = random_dense(rng, (9, 11))
        for block in (2, 4, 64):
            out = kernels.matmul(
                BlockedMatrix.from_dense(a, block),
                BlockedMatrix.from_dense(b, block),
            )
            assert np.allclose(out.to_dense(), a @ b)

    def test_matmul_mixed_block_sizes(self):
        rng = np.random.default_rng(2)
        a = random_dense(rng, (6, 6))
        b = random_dense(rng, (6, 6))
        out = kernels.matmul(
            BlockedMatrix.from_dense(a, 4), BlockedMatrix.from_dense(b, 3)
        )
        assert np.allclose(out.to_dense(), a @ b)

    def test_matmul_shape_mismatch(self):
        with pytest.raises(ExecutionError):
            kernels.matmul(BlockedMatrix((2, 3), 2), BlockedMatrix((2, 3), 2))

    def test_transpose(self):
        rng = np.random.default_rng(3)
        a = random_dense(rng, (5, 8))
        out = kernels.transpose(BlockedMatrix.from_dense(a, 3))
        assert np.allclose(out.to_dense(), a.T)

    def test_add_and_scale(self):
        rng = np.random.default_rng(4)
        a = random_dense(rng, (5, 5))
        b = random_dense(rng, (5, 5))
        am, bm = BlockedMatrix.from_dense(a, 2), BlockedMatrix.from_dense(b, 2)
        assert np.allclose(kernels.add(am, bm, beta=-2.0).to_dense(), a - 2 * b)
        assert np.allclose(kernels.scale(am, 3.0).to_dense(), 3 * a)

    def test_norms(self):
        rng = np.random.default_rng(5)
        a = random_dense(rng, (6, 4))
        m = BlockedMatrix.from_dense(a, 3)
        assert np.isclose(kernels.frobenius_norm(m), np.linalg.norm(a, "fro"))
        assert np.isclose(kernels.inf_norm(m), np.abs(a).sum(axis=1).max())

    def test_lu_reconstructs(self):
        rng = np.random.default_rng(6)
        a = random_dense(rng, (12, 12)) + 12 * np.eye(12)
        lower, upper, perm = kernels.lu_factor(BlockedMatrix.from_dense(a, 4))
        reconstructed = lower.to_dense() @ upper.to_dense()
        assert np.allclose(reconstructed, a[perm])

    def test_lu_rejects_singular(self):
        with pytest.raises(ExecutionError):
            kernels.lu_factor(BlockedMatrix.from_dense(np.zeros((4, 4)), 2))

    def test_solve_matches_numpy(self):
        rng = np.random.default_rng(7)
        a = random_dense(rng, (15, 15)) + 15 * np.eye(15)
        rhs = random_dense(rng, (15,))
        x = kernels.solve(BlockedMatrix.from_dense(a, 4), rhs)
        assert np.allclose(x, np.linalg.solve(a, rhs))

    def test_solve_multiple_rhs(self):
        rng = np.random.default_rng(8)
        a = random_dense(rng, (9, 9)) + 9 * np.eye(9)
        rhs = random_dense(rng, (9, 3))
        x = kernels.solve(BlockedMatrix.from_dense(a, 3), rhs)
        assert np.allclose(x, np.linalg.solve(a, rhs))

    def test_matvec(self):
        rng = np.random.default_rng(9)
        a = random_dense(rng, (7, 5))
        x = random_dense(rng, (5,))
        out = kernels.matvec(BlockedMatrix.from_dense(a, 3), x)
        assert np.allclose(out, a @ x)

    def test_power_iteration_finds_dominant_eigenpair(self):
        rng = np.random.default_rng(10)
        q, _ = np.linalg.qr(random_dense(rng, (8, 8)))
        a = q @ np.diag([5.0, 2.0, 1.0, 0.5, 0.3, 0.2, 0.1, 0.05]) @ q.T
        value, vector, iterations = kernels.power_iteration(
            BlockedMatrix.from_dense(a, 4), tolerance=1e-12, max_iter=2000
        )
        assert np.isclose(value, 5.0, atol=1e-5)
        assert np.allclose(np.abs(a @ vector), np.abs(5.0 * vector), atol=1e-4)
        assert iterations < 2000


class TestLinalgProvider:
    M2 = schema(("j", "int", True), ("k", "int", True), ("w", "float"))

    def test_matmul_via_algebra(self):
        rng = np.random.default_rng(11)
        a = rng.uniform(1, 2, (5, 4))
        b = rng.uniform(1, 2, (4, 6))
        provider = LinalgProvider("sca", block_size=2)
        provider.register_dataset("m", table(MATRIX, [
            (i, j, float(v)) for (i, j), v in np.ndenumerate(a)
        ]))
        provider.register_dataset("m2", table(self.M2, [
            (i, j, float(v)) for (i, j), v in np.ndenumerate(b)
        ]))
        tree = A.MatMul(A.Scan("m", MATRIX), A.Scan("m2", self.M2))
        result = provider.execute(tree)
        dense = np.zeros((5, 6))
        for i, k, v in result.iter_rows():
            dense[i, k] = v
        assert np.allclose(dense, a @ b)

    def test_matmul_chain(self):
        provider = LinalgProvider("sca", block_size=2)
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        provider.register_dataset("m", table(MATRIX, [
            (i, j, float(v)) for (i, j), v in np.ndenumerate(a)
        ]))
        m2 = schema(("j", "int", True), ("k", "int", True), ("v2", "float"))
        m3 = schema(("k", "int", True), ("l", "int", True), ("v3", "float"))
        provider.register_dataset("m2", table(m2, [
            (i, j, float(v)) for (i, j), v in np.ndenumerate(a)
        ]))
        provider.register_dataset("m3", table(m3, [
            (i, j, float(v)) for (i, j), v in np.ndenumerate(a)
        ]))
        tree = A.MatMul(
            A.MatMul(A.Scan("m", MATRIX), A.Scan("m2", m2)),
            A.Scan("m3", m3),
        )
        result = provider.execute(tree)
        dense = np.zeros((2, 2))
        for i, l, v in result.iter_rows():
            dense[i, l] = v
        assert np.allclose(dense, a @ a @ a)

    def test_rejects_relational_operators(self):
        from repro.core.expressions import col

        provider = LinalgProvider("sca")
        tree = A.Filter(A.Scan("m", MATRIX), col("v") > 0.0)
        assert not provider.accepts(tree)

    def test_rejects_non_matrix_scans(self):
        provider = LinalgProvider("sca")
        vector = schema(("i", "int", True), ("v", "float"))
        assert not provider.accepts(A.Scan("vec", vector))

"""Round-trip tests for the expression-tree wire format."""

import json

import pytest

from repro.core import algebra as A
from repro.core.expressions import col, func, if_, lit
from repro.core.serialize import (
    SerializationError, dumps, expr_from_dict, expr_to_dict, loads,
    node_from_dict, schema_from_dict, schema_to_dict,
)
from repro.core.types import DType

from .helpers import CUSTOMERS, MATRIX, ORDERS, schema


def round_trip(node: A.Node) -> A.Node:
    return loads(dumps(node))


CUST = A.Scan("customers", CUSTOMERS)
ORD = A.Scan("orders", ORDERS)
MAT = A.Scan("m", MATRIX)


class TestSchemaPayload:
    def test_round_trip_preserves_dimensions(self):
        s = schema(("i", "int", True), ("v", "float"))
        assert schema_from_dict(schema_to_dict(s)) == s

    def test_bad_payload_raises(self):
        with pytest.raises(SerializationError):
            schema_from_dict({"not": "a list"})
        with pytest.raises(SerializationError):
            schema_from_dict([{"name": "x", "dtype": "decimal"}])


class TestExprPayload:
    CASES = [
        col("a"),
        lit(3),
        lit(2.5),
        lit("hello"),
        lit(None, DType.FLOAT64),
        (col("a") + 1) * col("b"),
        (col("a") > 3) & ~col("flag"),
        func("sqrt", col("a")),
        if_(col("flag"), lit(1), lit(0)),
        col("a").is_null(),
        col("a").cast(DType.STRING),
    ]

    @pytest.mark.parametrize("expr", CASES, ids=lambda e: repr(e)[:40])
    def test_round_trip(self, expr):
        decoded = expr_from_dict(expr_to_dict(expr))
        assert decoded.same_as(expr)

    def test_payload_is_json(self):
        payload = expr_to_dict((col("a") + 1) > col("b"))
        json.dumps(payload)  # must not raise

    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializationError):
            expr_from_dict({"expr": "Lambda"})


class TestNodePayload:
    CASES = [
        CUST,
        A.InlineTable(schema(("x", "int")), ((1,), (2,))),
        A.Filter(ORD, col("amount") > 10.0),
        A.Project(CUST, ("name",)),
        A.Extend(ORD, ("t",), (col("amount") * 1.1,)),
        A.Rename(CUST, (("name", "n"),)),
        A.Join(CUST, ORD, (("cid", "cust"),), "left"),
        A.Product(A.Scan("a", schema(("x", "int"))), A.Scan("b", schema(("y", "int")))),
        A.Aggregate(ORD, ("cust",), (A.AggSpec("n", "count"),
                                     A.AggSpec("s", "sum", col("amount")))),
        A.Sort(ORD, ("amount",), (False,)),
        A.Limit(ORD, 5, 2),
        A.Reverse(ORD),
        A.Distinct(CUST),
        A.Union(ORD, ORD),
        A.Intersect(ORD, ORD),
        A.Except(ORD, ORD),
        A.AsDims(A.Scan("t", schema(("i", "int"), ("v", "float"))), ("i",)),
        A.SliceDims(MAT, (("i", 0, 9),)),
        A.ShiftDim(MAT, "i", -3),
        A.Regrid(MAT, (("i", 4),), (A.AggSpec("v", "mean", col("v")),)),
        A.Window(MAT, (("i", 1), ("j", 2)), (A.AggSpec("v", "sum", col("v")),)),
        A.ReduceDims(MAT, ("i",), (A.AggSpec("s", "sum", col("v")),)),
        A.TransposeDims(MAT, ("j", "i")),
        A.MatMul(MAT, A.Scan("m2", schema(("j", "int", True), ("k", "int", True),
                                          ("w", "float")))),
        A.CellJoin(MAT, A.Scan("m2", schema(("i", "int", True), ("j", "int", True),
                                            ("w", "float")))),
    ]

    @pytest.mark.parametrize("node", CASES, ids=lambda n: n.op_name)
    def test_round_trip(self, node):
        assert round_trip(node).same_as(node)

    def test_iterate_round_trip(self):
        state = schema(("i", "int", True), ("v", "float"))
        init = A.InlineTable(state, ((0, 1.0),))
        body = A.Rename(
            A.Project(
                A.Extend(A.LoopVar("s", state), ("v2",), (col("v") * 0.5,)),
                ("i", "v2"),
            ),
            (("v2", "v"),),
        )
        node = A.Iterate(init, body, var="s",
                         stop=A.Convergence("v", 1e-6, "l1"),
                         max_iter=42, strict=True)
        decoded = round_trip(node)
        assert decoded.same_as(node)
        assert decoded.stop == node.stop
        assert decoded.max_iter == 42 and decoded.strict

    def test_intent_tag_survives(self):
        node = A.MatMul(
            MAT,
            A.Scan("m2", schema(("j", "int", True), ("k", "int", True), ("w", "float"))),
        ).with_intent("matmul")
        assert round_trip(node).intent == "matmul"

    def test_schema_preserved_through_wire(self):
        tree = A.Filter(ORD, col("amount") > 10.0)
        assert round_trip(tree).schema == tree.schema

    def test_wire_format_is_compact_json(self):
        payload = dumps(A.Filter(ORD, col("amount") > 10.0))
        assert " " not in payload
        json.loads(payload)

    def test_garbage_rejected(self):
        with pytest.raises(SerializationError):
            loads("not json at all {")
        with pytest.raises(SerializationError):
            node_from_dict({"op": "DropTable"})
        with pytest.raises(SerializationError):
            node_from_dict({"op": "Filter"})  # missing fields

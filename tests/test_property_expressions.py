"""Property-based agreement: vectorized expression evaluation must match
the row-at-a-time reference semantics on random expressions and tables."""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import expressions as E
from repro.core.errors import ReproError
from repro.core.expressions import col, eval_row, func, if_, lit
from repro.core.types import DType
from repro.relational.eval import eval_vector
from repro.storage.table import ColumnTable

from .helpers import schema

S = schema(("a", "int"), ("b", "float"), ("flag", "bool"), ("s", "str"))

# value pools kept small/finite so arithmetic stays exact enough to compare
INTS = st.one_of(st.none(), st.integers(-100, 100))
FLOATS = st.one_of(st.none(), st.integers(-50, 50).map(lambda v: v / 4.0))
BOOLS = st.one_of(st.none(), st.booleans())
STRINGS = st.one_of(st.none(), st.sampled_from(["", "a", "b", "Hello", "zz"]))

ROWS = st.lists(st.tuples(INTS, FLOATS, BOOLS, STRINGS), max_size=20)


def numeric_expr(depth: int = 2):
    leaf = st.one_of(
        st.just(col("a")), st.just(col("b")),
        st.integers(-10, 10).map(lit),
        st.integers(-20, 20).map(lambda v: lit(v / 4.0)),
    )
    if depth == 0:
        return leaf
    sub = numeric_expr(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(st.sampled_from(["+", "-", "*"]), sub, sub).map(
            lambda t: E.BinOp(t[0], t[1], t[2])
        ),
        sub.map(lambda e: E.UnaryOp("-", e)),
        st.tuples(bool_expr(0), sub, sub).map(lambda t: E.If(*t)),
    )


def bool_expr(depth: int = 1):
    leaf = st.one_of(
        st.just(col("flag")),
        st.booleans().map(lit),
        st.tuples(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]),
                  st.just(col("a")), st.integers(-10, 10).map(lit)).map(
            lambda t: E.BinOp(t[0], t[1], t[2])
        ),
        st.just(col("b").is_null()),
        st.just(col("s").is_null()),
    )
    if depth == 0:
        return leaf
    sub = bool_expr(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(st.sampled_from(["and", "or"]), sub, sub).map(
            lambda t: E.BinOp(t[0], t[1], t[2])
        ),
        sub.map(lambda e: E.UnaryOp("not", e)),
    )


def assert_agreement(expr, rows):
    table = ColumnTable.from_rows(S, rows)
    vector = eval_vector(expr, table).to_list()
    reference = [eval_row(expr, r) for r in table.iter_dicts()]
    assert len(vector) == len(reference)
    for got, want in zip(vector, reference):
        if want is None:
            assert got is None, f"{expr!r}: expected null, got {got!r}"
        elif isinstance(want, float):
            if math.isnan(want):
                assert isinstance(got, float) and math.isnan(got)
            else:
                assert got == want or math.isclose(got, want, rel_tol=1e-12), (
                    f"{expr!r}: {got!r} != {want!r}"
                )
        else:
            assert got == want, f"{expr!r}: {got!r} != {want!r}"


class TestVectorizedAgreement:
    @settings(max_examples=150, deadline=None)
    @given(numeric_expr(), ROWS)
    def test_numeric_expressions(self, expr, rows):
        assert_agreement(expr, rows)

    @settings(max_examples=150, deadline=None)
    @given(bool_expr(2), ROWS)
    def test_boolean_expressions(self, expr, rows):
        assert_agreement(expr, rows)

    @settings(max_examples=60, deadline=None)
    @given(st.sampled_from(["sqrt", "exp", "log", "abs", "floor", "ceil",
                            "sign", "sin", "cos"]),
           ROWS)
    def test_math_functions(self, name, rows):
        assert_agreement(func(name, col("b")), rows)

    @settings(max_examples=60, deadline=None)
    @given(st.sampled_from(["upper", "lower", "length"]), ROWS)
    def test_string_functions(self, name, rows):
        assert_agreement(func(name, col("s")), rows)

    @settings(max_examples=60, deadline=None)
    @given(st.sampled_from([DType.FLOAT64, DType.STRING]), ROWS)
    def test_casts_from_int(self, target, rows):
        assert_agreement(col("a").cast(target), rows)

    @settings(max_examples=60, deadline=None)
    @given(ROWS)
    def test_string_concat_and_compare(self, rows):
        assert_agreement(col("s") + col("s"), rows)
        assert_agreement(col("s") == lit("a"), rows)
        assert_agreement(col("s") < lit("b"), rows)

    @settings(max_examples=60, deadline=None)
    @given(numeric_expr(1), ROWS)
    def test_division_agreement_including_by_zero(self, denominator, rows):
        assert_agreement(col("b") / denominator, rows)

"""Physical execution layer: fused pipelines, compiled expressions, morsels.

Property tests pit three evaluation paths against each other on random
fusible chains — the fused engine, the unfused engine, and the reference
interpreter — including null masks, empty tables and string columns.
Regression tests pin the parts that are easy to silently break: morsel
order determinism, compile-cache reuse, index access paths under fusion,
and plan-cache invalidation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import algebra as A
from repro.core.expressions import col, func, if_, lit
from repro.core.rewriter import fusion_regions, split_fusible_chain
from repro.core.schema import Schema
from repro.exec.compile import (
    clear_expr_cache, compile_expr, expr_cache_stats, expr_key,
)
from repro.exec.morsel import morsel_ranges, run_pipeline_morsels
from repro.exec.pipeline import FusedPipeline, pipeline_key
from repro.providers import ReferenceProvider, RelationalProvider
from repro.relational.engine import EngineOptions, RelationalEngine
from repro.relational.eval import eval_vector
from repro.storage.table import ColumnTable

from .helpers import schema

BASE = schema(("k", "int"), ("v", "float"), ("tag", "str"))

base_rows = st.lists(
    st.tuples(
        st.integers(-5, 5),
        st.one_of(st.none(), st.integers(-20, 20).map(lambda v: v / 2.0)),
        st.one_of(st.none(), st.sampled_from(["ab", "cd", ""])),
    ),
    max_size=30,
)

PREDICATES = [
    col("v") > 0.0,
    col("k") % 2 == 0,
    (col("tag") == "ab") | (col("v") < -1.0),
    ~col("v").is_null(),
]

EXTENSIONS = [
    ("d", col("v") * 2 + col("k")),
    ("d", if_(col("v") > 0, col("v"), lit(0.0))),
    ("t2", func("upper", col("tag"))),
    ("d", col("k") + lit(1)),
]


@st.composite
def fusible_chain(draw):
    """A random maximal Filter/Project/Extend/Rename chain over BASE."""
    node = A.Scan("base", BASE)
    for _ in range(draw(st.integers(1, 5))):
        names = node.schema.names
        choice = draw(st.integers(0, 3))
        if choice == 0 and {"v", "k", "tag"} <= set(names):
            node = A.Filter(node, draw(st.sampled_from(PREDICATES)))
        elif choice == 1 and len(names) > 1:
            keep = draw(st.sets(st.sampled_from(list(names)), min_size=1))
            node = A.Project(node, tuple(n for n in names if n in keep))
        elif choice == 2 and {"v", "k", "tag"} <= set(names):
            name, expr = draw(st.sampled_from(EXTENSIONS))
            if name not in names:
                node = A.Extend(node, (name,), (expr,))
        elif choice == 3:
            target = draw(st.sampled_from(list(names)))
            fresh = f"{target}_r"
            if fresh not in names:
                node = A.Rename(node, ((target, fresh),))
    return node


def _run_engine(tree, table, **options):
    engine = RelationalEngine(EngineOptions(**options))
    return engine.run(tree, lambda name: table)


def _run_reference(tree, table):
    provider = ReferenceProvider("ref")
    provider.register_dataset("base", table)
    return provider.execute(tree)


class TestFusionAgreement:
    @settings(max_examples=120, deadline=None)
    @given(fusible_chain(), base_rows)
    def test_fused_unfused_reference_agree(self, tree, rows):
        table = ColumnTable.from_rows(BASE, rows)
        expected = _run_reference(tree, table)
        fused = _run_engine(tree, table)
        unfused = _run_engine(
            tree, table, fuse_pipelines=False, compile_expressions=False
        )
        assert fused.same_rows(expected, float_tol=1e-9), f"tree: {tree!r}"
        assert unfused.same_rows(expected, float_tol=1e-9), f"tree: {tree!r}"

    @settings(max_examples=60, deadline=None)
    @given(fusible_chain(), base_rows, st.sampled_from([2, 3, 7]))
    def test_morsel_parallel_agrees(self, tree, rows, workers):
        table = ColumnTable.from_rows(BASE, rows)
        serial = _run_engine(tree, table)
        parallel = _run_engine(
            tree, table, morsel_workers=workers, morsel_size=5
        )
        assert parallel.same_rows(serial, float_tol=0.0), f"tree: {tree!r}"

    def test_empty_table(self):
        table = ColumnTable.from_rows(BASE, [])
        tree = A.Project(
            A.Extend(A.Filter(A.Scan("base", BASE), col("v") > 0.0),
                     ("d",), (col("v") * 2,)),
            ("k", "d"),
        )
        result = _run_engine(tree, table)
        assert result.num_rows == 0
        assert result.schema.names == ("k", "d")

    def test_intent_tags_survive_fusion(self):
        """Fusion is physical: the logical tree (and its tags) is untouched."""
        scan = A.Scan("base", BASE)
        filt = A.Filter(scan, col("v") > 0.0).with_intent("hot-filter")
        proj = A.Project(filt, ("k", "v")).with_intent("narrow")
        chain, source = split_fusible_chain(proj)
        assert [n.intent for n in chain] == ["narrow", "hot-filter"]
        assert source is scan
        table = ColumnTable.from_rows(BASE, [(1, 2.0, "ab"), (2, -1.0, "cd")])
        engine = RelationalEngine()
        result = engine.run(proj, lambda name: table)
        assert engine.fused_runs == 1
        assert proj.intent == "narrow" and filt.intent == "hot-filter"
        assert result.num_rows == 1


class TestFusionRegions:
    def test_split_stops_at_breaker(self):
        scan = A.Scan("base", BASE)
        agg = A.Aggregate(A.Filter(scan, col("v") > 0.0), ("k",),
                          (A.AggSpec("n", "count"),))
        top = A.Project(A.Filter(agg, col("n") > 1), ("k",))
        chain, source = split_fusible_chain(top)
        assert len(chain) == 2
        assert source is agg

    def test_regions_are_maximal_and_disjoint(self):
        scan = A.Scan("base", BASE)
        inner = A.Extend(A.Filter(scan, col("v") > 0.0), ("d",), (col("v"),))
        agg = A.Aggregate(inner, ("k",), (A.AggSpec("n", "count"),))
        outer = A.Project(A.Rename(agg, (("n", "cnt"),)), ("k", "cnt"))
        regions = fusion_regions(outer)
        assert len(regions) == 2
        tops = [r[0][0] for r in regions]
        assert tops == [outer, inner]

    def test_pipeline_key_ignores_intent(self):
        scan = A.Scan("base", BASE)
        plain = [A.Filter(scan, col("v") > 0.0)]
        tagged = [A.Filter(scan, col("v") > 0.0).with_intent("x")]
        assert pipeline_key(plain) == pipeline_key(tagged)


class TestCompileCache:
    def test_structurally_equal_exprs_share_entry(self):
        clear_expr_cache()
        expr_a = col("v") * 2 + col("k")
        expr_b = col("v") * 2 + col("k")
        compile_expr(expr_a, BASE)
        before = expr_cache_stats()
        compile_expr(expr_b, BASE)
        after = expr_cache_stats()
        assert expr_key(expr_a) == expr_key(expr_b)
        assert after["hits"] == before["hits"] + 1
        assert after["entries"] == before["entries"]

    def test_schema_dtype_part_of_key(self):
        clear_expr_cache()
        other = schema(("v", "int"), ("k", "int"))
        expr = col("v") + col("k")
        compile_expr(expr, BASE)
        compile_expr(expr, other)
        assert expr_cache_stats()["entries"] == 2

    def test_nan_literals_do_not_collide_with_strings(self):
        assert expr_key(lit(float("nan"))) != expr_key(lit("nan"))

    def test_compiled_matches_interpreted_on_strings_with_nulls(self):
        table = ColumnTable.from_rows(
            BASE, [(1, 1.0, "ab"), (2, None, None), (3, -1.0, "")]
        )
        exprs = [
            func("upper", col("tag")),
            func("length", col("tag")),
            col("tag") + lit("!"),
            col("tag") < lit("c"),
        ]
        for expr in exprs:
            compiled = eval_vector(expr, table, compiled=True)
            interpreted = eval_vector(expr, table, compiled=False)
            assert compiled.dtype is interpreted.dtype
            assert np.array_equal(
                compiled.mask if compiled.mask is not None else
                np.zeros(3, bool),
                interpreted.mask if interpreted.mask is not None else
                np.zeros(3, bool),
            )
            keep = np.ones(3, bool) if compiled.mask is None else ~compiled.mask
            assert np.array_equal(
                compiled.values[keep], interpreted.values[keep]
            ), expr


class TestMorselDeterminism:
    def test_ranges_cover_exactly(self):
        assert morsel_ranges(10, 4) == [(0, 4), (4, 8), (8, 10)]
        assert morsel_ranges(0, 4) == []
        assert morsel_ranges(3, 4) == [(0, 3)]

    def test_any_worker_count_preserves_row_order(self):
        """Regression: morsel merge must keep single-threaded row order."""
        rng = np.random.default_rng(7)
        n = 20_000
        rows = [
            (int(k), float(v), "ab" if k % 3 else "cd")
            for k, v in zip(
                rng.integers(-5, 5, n), np.round(rng.normal(size=n), 3)
            )
        ]
        table = ColumnTable.from_rows(BASE, rows)
        chain = [
            A.Project(
                A.Extend(A.Filter(A.Scan("base", BASE), col("v") > 0.0),
                         ("d",), (col("v") * col("k"),)),
                ("k", "d"),
            )
        ]
        chain = split_fusible_chain(chain[0])[0]
        pipeline = FusedPipeline(chain)
        baseline = pipeline.run(table)
        for workers in (2, 3, 8):
            result = run_pipeline_morsels(
                pipeline, table, workers=workers, morsel_size=777
            )
            for name in baseline.schema.names:
                assert np.array_equal(
                    result.columns[name].values, baseline.columns[name].values
                ), (workers, name)

    def test_array_engine_workers_deterministic(self):
        from repro.array.engine import ArrayEngine, ArrayEngineOptions

        grid = schema(("i", "int", True), ("j", "int", True),
                      ("cell", "float"))
        rng = np.random.default_rng(3)
        coords = {(int(a), int(b))
                  for a, b in zip(rng.integers(0, 40, 600),
                                  rng.integers(0, 40, 600))}
        table = ColumnTable.from_rows(
            grid, [(i, j, float(rng.normal())) for i, j in sorted(coords)]
        )
        tree = A.Regrid(
            A.Extend(A.Filter(A.Scan("grid", grid), col("cell") > 0.0),
                     ("twice",), (col("cell") * 2,)),
            (("i", 4), ("j", 4)),
            (A.AggSpec("s", "sum", col("twice")),),
        )

        def run(workers):
            engine = ArrayEngine(ArrayEngineOptions(chunk_side=8,
                                                    workers=workers))
            return engine.run(tree, lambda name: table)

        baseline = run(1)
        for workers in (2, 4):
            assert run(workers).same_rows(baseline, float_tol=0.0)

    @pytest.mark.skipif(
        (__import__("os").cpu_count() or 1) < 2,
        reason="multi-worker speedup needs >1 CPU",
    )
    def test_multi_worker_not_slower(self):
        import time

        table = ColumnTable.from_rows(
            BASE,
            [(i % 7, float(i % 100), "ab") for i in range(400_000)],
        )
        tree = A.Project(
            A.Extend(A.Filter(A.Scan("base", BASE), col("v") > 10.0),
                     ("d",), (col("v") * 2 + col("k"),)),
            ("k", "d"),
        )

        def best(workers):
            samples = []
            for _ in range(3):
                start = time.perf_counter()
                _run_engine(tree, table, morsel_workers=workers)
                samples.append(time.perf_counter() - start)
            return min(samples)

        best(1)  # warm
        assert best(0) < best(1) * 1.5


class TestEngineIntegration:
    def test_fused_runs_counter(self):
        table = ColumnTable.from_rows(BASE, [(1, 1.0, "ab")])
        tree = A.Project(A.Filter(A.Scan("base", BASE), col("v") > 0.0),
                         ("k",))
        engine = RelationalEngine()
        engine.run(tree, lambda name: table)
        assert engine.fused_runs == 1
        off = RelationalEngine(EngineOptions(fuse_pipelines=False))
        off.run(tree, lambda name: table)
        assert off.fused_runs == 0

    def test_single_operator_not_fused(self):
        table = ColumnTable.from_rows(BASE, [(1, 1.0, "ab")])
        tree = A.Filter(A.Scan("base", BASE), col("v") > 0.0)
        engine = RelationalEngine()
        engine.run(tree, lambda name: table)
        assert engine.fused_runs == 0

    def test_index_path_survives_fusion(self):
        provider = RelationalProvider("sql")
        table = ColumnTable.from_rows(
            BASE, [(i % 50, float(i), "ab") for i in range(500)]
        )
        provider.register_dataset("base", table)
        provider.create_index("base", "k")
        tree = A.Project(
            A.Extend(A.Filter(A.Scan("base", BASE), col("k") == 7),
                     ("d",), (col("v") * 2,)),
            ("k", "d"),
        )
        result = provider.execute(tree)
        assert provider.engine.index_hits == 1
        assert provider.engine.fused_runs == 1
        assert result.num_rows == 10

    def test_pipeline_cache_reused_across_runs(self):
        table = ColumnTable.from_rows(BASE, [(1, 1.0, "ab")])
        tree = A.Project(A.Filter(A.Scan("base", BASE), col("v") > 0.0),
                         ("k",))
        engine = RelationalEngine()
        engine.run(tree, lambda name: table)
        engine.run(tree, lambda name: table)
        assert engine.fused_runs == 2
        assert len(engine._pipelines) == 1


class TestPlanCache:
    def _context(self):
        from repro import BigDataContext

        ctx = BigDataContext()
        ctx.add_provider(RelationalProvider("sql"))
        ctx.load(
            "base",
            ColumnTable.from_rows(BASE, [(1, 1.0, "ab"), (2, -1.0, "cd")]),
            on="sql",
        )
        return ctx

    def test_repeat_query_hits_cache(self):
        ctx = self._context()
        query = ctx.table("base").where(col("v") > 0.0).select("k")
        first = ctx.run(query)
        assert ctx.plan_cache_misses == 1
        second = ctx.run(query)
        assert ctx.plan_cache_hits == 1
        assert first.table.same_rows(second.table)

    def test_load_invalidates(self):
        ctx = self._context()
        query = ctx.table("base").where(col("v") > 0.0).select("k")
        ctx.run(query)
        ctx.load(
            "extra",
            ColumnTable.from_rows(BASE, [(9, 9.0, "zz")]),
            on="sql",
        )
        ctx.run(query)
        assert ctx.plan_cache_hits == 0
        assert ctx.plan_cache_misses == 2

    def test_pin_server_part_of_key(self):
        ctx = self._context()
        tree = ctx.table("base").where(col("v") > 0.0).node
        ctx.run(ctx.query(tree))
        ctx.run(ctx.query(tree), pin_server="sql")
        assert ctx.plan_cache_misses == 2

    def test_provider_stage_timing_recorded(self):
        ctx = self._context()
        ctx.run(ctx.table("base").where(col("v") > 0.0))
        provider = ctx.providers[0]
        snapshot = provider.perf_snapshot()
        assert snapshot["queries"] >= 1
        assert snapshot["seconds"] > 0.0
        assert set(snapshot["stage_seconds"]) == {"validate", "execute"}
        assert snapshot["fused_runs"] >= 0

"""Property-based tests for blocked linear algebra and chunked arrays."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.array.chunked import ChunkedArray
from repro.linalg import kernels
from repro.linalg.blocked import BlockedMatrix
from repro.storage.table import ColumnTable

from .helpers import schema

DIMS = st.integers(1, 12)
BLOCKS = st.sampled_from([1, 2, 3, 5, 8])


def random_dense(draw, rows, cols):
    seed = draw(st.integers(0, 2**16))
    return np.random.default_rng(seed).normal(size=(rows, cols))


class TestBlockedMatrixProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_matmul_matches_numpy(self, data):
        m, k, n = data.draw(DIMS), data.draw(DIMS), data.draw(DIMS)
        block = data.draw(BLOCKS)
        a = random_dense(data.draw, m, k)
        b = random_dense(data.draw, k, n)
        out = kernels.matmul(
            BlockedMatrix.from_dense(a, block),
            BlockedMatrix.from_dense(b, block),
        )
        assert out.shape == (m, n)
        assert np.allclose(out.to_dense(), a @ b)

    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_transpose_involution(self, data):
        m, n = data.draw(DIMS), data.draw(DIMS)
        a = random_dense(data.draw, m, n)
        blocked = BlockedMatrix.from_dense(a, data.draw(BLOCKS))
        assert np.allclose(
            kernels.transpose(kernels.transpose(blocked)).to_dense(), a
        )

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_solve_inverts_matmul(self, data):
        n = data.draw(st.integers(2, 10))
        a = random_dense(data.draw, n, n) + n * np.eye(n)
        x = random_dense(data.draw, n, 1).reshape(-1)
        blocked = BlockedMatrix.from_dense(a, data.draw(BLOCKS))
        rhs = kernels.matvec(blocked, x)
        solved = kernels.solve(blocked, rhs)
        assert np.allclose(solved, x, atol=1e-8)

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_norms_match_numpy(self, data):
        m, n = data.draw(DIMS), data.draw(DIMS)
        a = random_dense(data.draw, m, n)
        blocked = BlockedMatrix.from_dense(a, data.draw(BLOCKS))
        assert np.isclose(kernels.frobenius_norm(blocked),
                          np.linalg.norm(a, "fro"))
        assert np.isclose(kernels.inf_norm(blocked),
                          np.abs(a).sum(axis=1).max())


GRID = schema(("i", "int", True), ("j", "int", True), ("v", "float"))


@st.composite
def sparse_cells(draw):
    coords = draw(st.sets(
        st.tuples(st.integers(-20, 20), st.integers(-20, 20)),
        min_size=1, max_size=40,
    ))
    return [
        (i, j, draw(st.one_of(st.none(), st.integers(-8, 8).map(float))))
        for i, j in sorted(coords)
    ]


class TestChunkedArrayProperties:
    @settings(max_examples=60, deadline=None)
    @given(sparse_cells(), st.sampled_from([1, 2, 4, 7, 32]))
    def test_table_round_trip(self, rows, chunk):
        table = ColumnTable.from_rows(GRID, rows)
        arr = ChunkedArray.from_table(table, chunk)
        assert arr.cell_count == len(rows)
        assert arr.to_table().same_rows(table)

    @settings(max_examples=60, deadline=None)
    @given(sparse_cells(), st.sampled_from([2, 5]), st.data())
    def test_get_region_agrees_with_rows(self, rows, chunk, data):
        table = ColumnTable.from_rows(GRID, rows)
        arr = ChunkedArray.from_table(table, chunk)
        lo = (data.draw(st.integers(-25, 10)), data.draw(st.integers(-25, 10)))
        hi = (lo[0] + data.draw(st.integers(0, 30)),
              lo[1] + data.draw(st.integers(0, 30)))
        present, values, masks = arr.get_region(lo, hi)
        cells = {
            (i, j): v for i, j, v in rows
        }
        for i in range(lo[0], hi[0] + 1):
            for j in range(lo[1], hi[1] + 1):
                pos = (i - lo[0], j - lo[1])
                if (i, j) in cells:
                    assert present[pos], (i, j)
                    want = cells[(i, j)]
                    if want is None:
                        assert masks["v"] is not None and masks["v"][pos]
                    else:
                        assert values["v"][pos] == want
                else:
                    assert not present[pos], (i, j)

    @settings(max_examples=40, deadline=None)
    @given(sparse_cells(), st.sampled_from([2, 6]), st.sampled_from([3, 9]))
    def test_rechunking_preserves_contents(self, rows, chunk_a, chunk_b):
        table = ColumnTable.from_rows(GRID, rows)
        a = ChunkedArray.from_table(table, chunk_a)
        b = ChunkedArray.from_table(a.to_table(), chunk_b)
        assert b.to_table().same_rows(table)

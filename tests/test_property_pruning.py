"""Property-based safety net for zone-map scan pruning.

The chunk-pruned, late-materialized, possibly parallel scan must be
**bit-identical** to the plain full scan for every predicate, chunk size
and worker count — pruning only skips rows the predicate could never
keep, never changes what the kept rows look like.  Columns cover the
zone-map corner cases: ints and floats with nulls, NaN (which survives
``!=`` against everything), and low-cardinality strings (which the
catalog dictionary-encodes).  All-pruned and none-pruned predicates are
pinned explicitly below the random sweep.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import example, given, settings, strategies as st

from repro.core import algebra as A
from repro.core.expressions import col, lit
from repro.relational.catalog import RelationalCatalog
from repro.relational.engine import EngineOptions, RelationalEngine

from .helpers import schema, table

EVENTS = schema(("i", "int"), ("f", "float"), ("s", "str"))

_rows = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(-10, 10)),
        st.one_of(
            st.none(),
            st.just(float("nan")),
            st.integers(-20, 20).map(lambda v: v / 2.0),
        ),
        st.one_of(st.none(), st.sampled_from(["ash", "birch", "cedar"])),
    ),
    max_size=40,
)

_OPS = ("==", "!=", "<", "<=", ">", ">=")


@st.composite
def _predicate(draw):
    op = draw(st.sampled_from(_OPS))
    which = draw(st.sampled_from(["i", "f", "s"]))
    if which == "i":
        value = lit(draw(st.integers(-12, 12)))
    elif which == "f":
        value = lit(draw(st.integers(-24, 24)) / 2.0)
    else:
        value = lit(draw(st.sampled_from(["ash", "birch", "cedar", "aa", "zz"])))
    left = col(which)
    if op == "==":
        return left == value
    if op == "!=":
        return left != value
    if op == "<":
        return left < value
    if op == "<=":
        return left <= value
    if op == ">":
        return left > value
    return left >= value


def _columns_equal(a, b) -> bool:
    """Exact per-row equality, NaN equal to NaN (bit-identity, not ==)."""
    la, lb = a.to_list(), b.to_list()
    if len(la) != len(lb):
        return False
    for x, y in zip(la, lb):
        if isinstance(x, float) and isinstance(y, float):
            if math.isnan(x) and math.isnan(y):
                continue
        if x != y:
            return False
    return True


def _run_plain(tree, data):
    engine = RelationalEngine(EngineOptions())
    return engine.run(tree, lambda name: data)


def _run_chunked(tree, data, chunk_rows: int, workers: int):
    catalog = RelationalCatalog(chunk_rows=chunk_rows)
    entry = catalog.register("events", data)
    engine = RelationalEngine(
        EngineOptions(morsel_workers=workers), catalog
    )
    result = engine.run(tree, lambda name: entry.table)
    return result, engine


class TestPrunedScanBitIdentity:
    @settings(max_examples=120, deadline=None)
    @given(
        rows=_rows,
        predicate=_predicate(),
        chunk_rows=st.integers(1, 12),
        workers=st.sampled_from([1, 2, 4]),
        project=st.booleans(),
    )
    # none pruned: every chunk holds rows on both sides of the bound
    @example(
        rows=[(i % 7, float(i % 3), "ash") for i in range(20)],
        predicate=col("i") >= lit(3), chunk_rows=4, workers=2, project=False,
    )
    # all pruned: the predicate is statically impossible everywhere
    @example(
        rows=[(i, float(i), "birch") for i in range(20)],
        predicate=col("i") < lit(-50), chunk_rows=4, workers=2, project=True,
    )
    def test_pruned_equals_full_scan(
        self, rows, predicate, chunk_rows, workers, project
    ):
        data = table(EVENTS, rows)
        tree: A.Node = A.Filter(A.Scan("events", EVENTS), predicate)
        if project:
            tree = A.Project(tree, ("i", "s"))
        expected = _run_plain(tree, data)
        actual, _ = _run_chunked(tree, data, chunk_rows, workers)
        assert actual.schema.names == expected.schema.names
        for name in expected.schema.names:
            assert _columns_equal(
                actual.column(name), expected.column(name)
            ), (name, rows, str(predicate), chunk_rows, workers)

    @settings(max_examples=40, deadline=None)
    @given(rows=_rows, predicate=_predicate(), chunk_rows=st.integers(1, 12))
    def test_worker_count_never_changes_bits(self, rows, predicate, chunk_rows):
        data = table(EVENTS, rows)
        tree = A.Filter(A.Scan("events", EVENTS), predicate)
        base, _ = _run_chunked(tree, data, chunk_rows, workers=1)
        for workers in (2, 4):
            other, _ = _run_chunked(tree, data, chunk_rows, workers)
            for name in base.schema.names:
                assert _columns_equal(base.column(name), other.column(name))

    def test_counters_account_for_every_chunk(self):
        rows = [(i, float(i), "ash") for i in range(60)]
        data = table(EVENTS, rows)
        tree = A.Filter(A.Scan("events", EVENTS), col("i") >= lit(55))
        _, engine = _run_chunked(tree, data, chunk_rows=10, workers=1)
        c = engine.counters
        assert c.chunks_scanned + c.chunks_pruned == 6
        assert c.chunks_scanned == 1

"""Unit tests for Attribute/Schema."""

import pytest

from repro.core.errors import SchemaError
from repro.core.schema import Attribute, Schema
from repro.core.types import DType

from .helpers import schema


class TestAttribute:
    def test_dimension_must_be_int64(self):
        with pytest.raises(SchemaError):
            Attribute("x", DType.FLOAT64, dimension=True)

    def test_as_dimension_round_trip(self):
        attr = Attribute("i", DType.INT64)
        dim = attr.as_dimension()
        assert dim.dimension
        assert dim.as_value() == attr

    def test_as_dimension_rejects_string(self):
        with pytest.raises(SchemaError):
            Attribute("s", DType.STRING).as_dimension()

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("", DType.INT64)

    def test_renamed(self):
        attr = Attribute("a", DType.STRING)
        assert attr.renamed("b").name == "b"
        assert attr.renamed("b").dtype is DType.STRING


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            schema(("a", "int"), ("a", "float"))

    def test_lookup_by_name_and_position(self):
        s = schema(("a", "int"), ("b", "str"))
        assert s["a"].dtype is DType.INT64
        assert s[1].name == "b"
        assert s.position("b") == 1
        assert "a" in s and "z" not in s

    def test_missing_name_raises_with_available_names(self):
        s = schema(("a", "int"))
        with pytest.raises(SchemaError, match="'z'"):
            s["z"]

    def test_dimension_value_split(self):
        s = schema(("i", "int", True), ("j", "int", True), ("v", "float"))
        assert s.dimension_names == ("i", "j")
        assert s.value_names == ("v",)

    def test_project_preserves_order(self):
        s = schema(("a", "int"), ("b", "str"), ("c", "float"))
        assert s.project(["c", "a"]).names == ("c", "a")

    def test_project_rejects_duplicates(self):
        s = schema(("a", "int"), ("b", "str"))
        with pytest.raises(SchemaError):
            s.project(["a", "a"])

    def test_drop(self):
        s = schema(("a", "int"), ("b", "str"), ("c", "float"))
        assert s.drop(["b"]).names == ("a", "c")

    def test_rename(self):
        s = schema(("a", "int"), ("b", "str"))
        renamed = s.rename({"a": "x"})
        assert renamed.names == ("x", "b")
        assert renamed["x"].dtype is DType.INT64

    def test_rename_requires_existing(self):
        s = schema(("a", "int"))
        with pytest.raises(SchemaError):
            s.rename({"zzz": "y"})

    def test_concat_rejects_collisions(self):
        left = schema(("a", "int"))
        right = schema(("a", "float"))
        with pytest.raises(SchemaError):
            left.concat(right)

    def test_with_dimensions_retags_exactly(self):
        s = schema(("i", "int", True), ("j", "int"), ("v", "float"))
        retagged = s.with_dimensions(["j"])
        assert retagged.dimension_names == ("j",)
        assert not retagged["i"].dimension

    def test_with_dimensions_rejects_non_int(self):
        s = schema(("v", "float"))
        with pytest.raises(SchemaError):
            s.with_dimensions(["v"])

    def test_without_dimensions(self):
        s = schema(("i", "int", True), ("v", "float"))
        assert s.without_dimensions().dimension_names == ()

    def test_equality_and_hash(self):
        a = schema(("i", "int", True), ("v", "float"))
        b = schema(("i", "int", True), ("v", "float"))
        c = schema(("i", "int"), ("v", "float"))
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

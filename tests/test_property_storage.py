"""Property-based tests (hypothesis) for the storage layer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.types import DType
from repro.storage.column import Column
from repro.storage.table import ColumnTable

from .helpers import schema


def value_strategy(dtype: DType, allow_null: bool = True):
    base = {
        DType.INT64: st.integers(-2**40, 2**40),
        DType.FLOAT64: st.floats(allow_nan=False, allow_infinity=False,
                                 width=32),
        DType.BOOL: st.booleans(),
        DType.STRING: st.text(max_size=8),
    }[dtype]
    if allow_null:
        return st.one_of(st.none(), base)
    return base


def column_strategy(dtype: DType):
    return st.lists(value_strategy(dtype), max_size=30).map(
        lambda values: Column.from_values(dtype, values)
    )


class TestColumnProperties:
    @pytest.mark.parametrize("dtype", list(DType))
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_to_list_round_trips(self, dtype, data):
        values = data.draw(st.lists(value_strategy(dtype), max_size=30))
        column = Column.from_values(dtype, values)
        out = column.to_list()
        assert len(out) == len(values)
        for got, want in zip(out, values):
            if want is None:
                assert got is None
            elif dtype is DType.FLOAT64:
                assert got == float(want)
            else:
                assert got == want

    @given(st.lists(value_strategy(DType.INT64), min_size=1, max_size=30),
           st.data())
    def test_take_matches_pointwise(self, values, data):
        column = Column.from_values(DType.INT64, values)
        indices = data.draw(st.lists(
            st.integers(0, len(values) - 1), max_size=40
        ))
        taken = column.take(np.array(indices, dtype=np.int64))
        assert taken.to_list() == [column[i] for i in indices]

    @given(st.lists(value_strategy(DType.FLOAT64), max_size=30))
    def test_reverse_is_involution(self, values):
        column = Column.from_values(DType.FLOAT64, values)
        assert column.reverse().reverse().to_list() == column.to_list()

    @given(st.lists(st.lists(value_strategy(DType.STRING), max_size=10),
                    min_size=1, max_size=5))
    def test_concat_preserves_order_and_length(self, chunks):
        columns = [Column.from_values(DType.STRING, c) for c in chunks]
        merged = Column.concat(columns)
        expected = [v for chunk in chunks for v in chunk]
        assert merged.to_list() == expected


ROW = st.tuples(
    value_strategy(DType.INT64),
    value_strategy(DType.FLOAT64),
    value_strategy(DType.STRING),
)


class TestTableProperties:
    S = schema(("a", "int"), ("b", "float"), ("s", "str"))

    @given(st.lists(ROW, max_size=25))
    def test_rows_round_trip(self, rows):
        table = ColumnTable.from_rows(self.S, rows)
        assert table.to_rows() == [
            (a, None if b is None else float(b), s) for a, b, s in rows
        ]

    @given(st.lists(ROW, max_size=25))
    def test_same_rows_reflexive_and_order_insensitive(self, rows):
        table = ColumnTable.from_rows(self.S, rows)
        assert table.same_rows(table)
        shuffled = ColumnTable.from_rows(self.S, list(reversed(rows)))
        assert table.same_rows(shuffled)

    @given(st.lists(ROW, min_size=1, max_size=25))
    def test_filter_then_concat_partitions(self, rows):
        table = ColumnTable.from_rows(self.S, rows)
        keep = np.array([i % 2 == 0 for i in range(len(rows))])
        kept = table.filter(keep)
        dropped = table.filter(~keep)
        assert kept.num_rows + dropped.num_rows == table.num_rows
        assert ColumnTable.concat([kept, dropped]).same_rows(table)

    @given(st.lists(ROW, max_size=25))
    def test_nbytes_monotone_in_rows(self, rows):
        table = ColumnTable.from_rows(self.S, rows)
        half = table.slice(0, table.num_rows // 2)
        assert half.nbytes <= table.nbytes

"""Physical-plan layer tests: golden plan renders, plan caching, EXPLAIN.

The golden snapshots pin the *lowering rules* — which physical operator
each logical tree becomes, with which properties — for the trees the
benchmarks care about: the E8 rewriter-ablation shape (selective filter
over a wide join), the E10 join-algorithm matrix, and the E3 matmul in
its lowered (join-aggregate) and native (blocked kernel) forms.  The
hypothesis test checks the semantic contract behind all of it: executing
a lowered plan equals interpreting the tree, for every accepting
provider.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import algebra as A
from repro.core.expressions import col, lit
from repro.providers.graph_p import GraphProvider
from repro.providers.linalg_p import LinalgProvider
from repro.providers.relational_p import RelationalProvider
from repro.relational.catalog import RelationalCatalog
from repro.relational.engine import EngineOptions, RelationalEngine

from .helpers import run_reference, schema, table

CUSTOMERS = schema(("cid", "int"), ("name", "str"), ("country", "str"))
ORDERS = schema(("oid", "int"), ("cust", "int"), ("amount", "float"))
MA = schema(("i", "int", True), ("j", "int", True), ("v", "float"))
MB = schema(("j", "int", True), ("k", "int", True), ("w", "float"))


def _catalog() -> RelationalCatalog:
    catalog = RelationalCatalog()
    catalog.register(
        "customers",
        table(CUSTOMERS, [(i, "n", "jp") for i in range(100)]),
    )
    catalog.register(
        "orders",
        table(ORDERS, [(i, i % 10, float(i)) for i in range(500)]),
    )
    return catalog


def _join_tree() -> A.Join:
    return A.Join(
        A.Scan("customers", CUSTOMERS), A.Scan("orders", ORDERS),
        (("cid", "cust"),),
    )


def _matrix_tables():
    ta = table(MA, [(i, j, 1.0) for i in range(4) for j in range(4)])
    tb = table(MB, [(j, k, 2.0) for j in range(4) for k in range(4)])
    return ta, tb


class TestGoldenPlans:
    def test_e10_join_algorithms(self):
        """Each join_algorithm option lowers to its own physical operator."""
        catalog = _catalog()
        expected = {
            "hash": "PhysHashJoin",
            "merge": "PhysMergeJoin",
            "nested": "PhysNestedLoopJoin",
            "python": "PhysPythonHashJoin",
        }
        for algorithm, op_name in expected.items():
            engine = RelationalEngine(
                EngineOptions(join_algorithm=algorithm), _catalog()
            )
            assert engine.explain(_join_tree()) == (
                f"{op_name}(inner on cid=cust)  [rows~500]\n"
                "  PhysScan(customers)  [rows~100]\n"
                "  PhysScan(orders)  [rows~500]"
            ), algorithm
        del catalog

    def test_e8_filter_over_wide_join(self):
        """The ablation shape: fused filter/project above a hash join,
        with catalog cardinalities and selectivities in the properties."""
        engine = RelationalEngine(None, _catalog())
        predicate = (col("country") == lit("jp")) & (col("amount") > lit(50.0))
        tree = A.Project(A.Filter(_join_tree(), predicate), ("name", "amount"))
        assert engine.explain(tree) == (
            "PhysFusedPipeline(project>filter)  [rows~449 sel~0.90]\n"
            "  PhysHashJoin(inner on cid=cust)  [rows~500]\n"
            "    PhysScan(customers)  [rows~100]\n"
            "    PhysScan(orders)  [rows~500]"
        )

    def test_e3_matmul_native_on_relational(self):
        """A native MatMul on the relational server lowers to the fused
        join-aggregate operator, not a generic join + aggregate pair."""
        ta, tb = _matrix_tables()
        provider = RelationalProvider("sql")
        provider.register_dataset("ma", ta)
        provider.register_dataset("mb", tb)
        tree = A.MatMul(A.Scan("ma", MA), A.Scan("mb", MB))
        assert provider.lower(tree).render() == (
            "PhysMatMulJoinAgg(j=j sum(v*w))  [rows~16? dims=i,k]\n"
            "  PhysScan(ma)  [rows~16 dims=i,j]\n"
            "  PhysScan(mb)  [rows~16 dims=j,k]"
        )

    def test_e3_matmul_native_on_linalg(self):
        """The same MatMul on the linalg server becomes a blocked kernel
        call; Rename-free name threading happens statically."""
        ta, tb = _matrix_tables()
        provider = LinalgProvider("scalapack")
        provider.register_dataset("ma", ta)
        provider.register_dataset("mb", tb)
        tree = A.MatMul(A.Scan("ma", MA), A.Scan("mb", MB))
        plan = provider.lower(tree)
        assert plan.engine == "linalg"
        assert plan.render() == (
            "PhysMatrixToTable(i,k,v)  [rows~16? dims=i,k]\n"
            "  PhysBlockedMatMul  [rows~16? dims=i,k]\n"
            "    PhysMatrixSource(ma)  [rows~16 dims=i,j]\n"
            "    PhysMatrixSource(mb)  [rows~16 dims=j,k]"
        )

    def test_e14_pruned_scan(self):
        """A prunable range predicate lowers to a chunked scan that names
        how many chunks survived its zone maps."""
        catalog = RelationalCatalog(chunk_rows=125)
        catalog.register(
            "orders", table(ORDERS, [(i, i % 10, float(i)) for i in range(500)])
        )
        engine = RelationalEngine(None, catalog)
        tree = A.Project(
            A.Filter(A.Scan("orders", ORDERS), col("oid") >= lit(400)),
            ("oid", "amount"),
        )
        assert engine.explain(tree) == (
            "PhysFusedPipeline(project>filter)  [rows~99 sel~0.20]\n"
            "  PhysChunkedScan(orders chunks: 1/4)  [rows~125]"
        )

    def test_e14_unprunable_scan_stays_plain(self):
        """A predicate zone maps cannot evaluate (computed column) keeps
        the ordinary full scan."""
        catalog = RelationalCatalog(chunk_rows=125)
        catalog.register(
            "orders", table(ORDERS, [(i, i % 10, float(i)) for i in range(500)])
        )
        engine = RelationalEngine(None, catalog)
        tree = A.Project(
            A.Filter(
                A.Scan("orders", ORDERS), (col("oid") + lit(1)) > lit(400)
            ),
            ("oid", "amount"),
        )
        assert engine.explain(tree) == (
            "PhysFusedPipeline(project>filter)  [rows~165? sel~0.33]\n"
            "  PhysScan(orders)  [rows~500]"
        )

    def test_e14_all_chunks_pruned(self):
        """A statically-impossible predicate keeps zero chunks."""
        catalog = RelationalCatalog(chunk_rows=125)
        catalog.register(
            "orders", table(ORDERS, [(i, i % 10, float(i)) for i in range(500)])
        )
        engine = RelationalEngine(None, catalog)
        tree = A.Filter(A.Scan("orders", ORDERS), col("oid") < lit(0))
        rendered = engine.explain(tree)
        assert "PhysChunkedScan(orders chunks: 0/4)  [rows~0]" in rendered
        resolver = lambda name: catalog.entry(name).table
        assert engine.run(tree, resolver).num_rows == 0

    def test_render_is_deterministic_and_cached(self):
        engine = RelationalEngine(None, _catalog())
        tree = _join_tree()
        first = engine.plan_for(tree)
        second = engine.plan_for(tree)
        assert first is second  # plan cache hit, not a re-lowering
        assert first.render() == second.render()

    def test_index_creation_invalidates_plans(self):
        """Creating an index bumps the catalog version: the same tree
        re-lowers to an index probe instead of a filtered scan."""
        provider = RelationalProvider("sql")
        provider.register_dataset(
            "orders", table(ORDERS, [(i, i % 10, float(i)) for i in range(500)])
        )
        tree = A.Filter(A.Scan("orders", ORDERS), col("cust") == lit(3))
        before = provider.lower(tree).render()
        assert "PhysIndexProbe" not in before
        provider.create_index("orders", "cust", kind="hash")
        after = provider.lower(tree).render()
        assert "PhysIndexProbe" in after


class TestExplainPhysical:
    def test_query_explain_physical(self):
        from repro.client.context import BigDataContext

        ctx = BigDataContext()
        ctx.add_provider(RelationalProvider("sql"))
        ctx.load(
            "orders",
            table(ORDERS, [(i, i % 10, float(i)) for i in range(500)]),
            on="sql",
        )
        query = ctx.table("orders").where(col("amount") > lit(50.0))
        logical = query.explain()
        assert "fragment 0 on sql" in logical
        assert "Phys" not in logical  # default stays logical-only
        physical = query.explain(physical=True)
        assert "fragment 0 on sql" in physical
        assert "relational engine, cost~" in physical
        assert "PhysScan(orders)  [rows~500]" in physical

    def test_explain_physical_multi_fragment(self):
        """Each fragment shows its own server's lowered plan."""
        from repro.client.context import BigDataContext

        ta, tb = _matrix_tables()
        ctx = BigDataContext()
        ctx.add_provider(RelationalProvider("sql"))
        ctx.add_provider(LinalgProvider("scalapack"))
        ctx.load("ma", ta, on="scalapack")
        ctx.load(
            "orders",
            table(ORDERS, [(i, i % 10, float(i)) for i in range(50)]),
            on="sql",
        )
        tree = A.Join(
            A.ReduceDims(
                A.Scan("ma", MA), ("i",), (A.AggSpec("v", "sum", col("v")),)
            ),
            A.Scan("orders", ORDERS),
            (("i", "cust"),),
        )
        text = ctx.explain(tree, physical=True)
        assert "on scalapack" in text and "on sql" in text
        assert "engine, cost~" in text


# --------------------------------------------------------------------------
# Lowered execution == reference interpretation
# --------------------------------------------------------------------------

LEFT = schema(("k", "int"), ("v", "float"), ("tag", "str"))
RIGHT = schema(("k2", "int"), ("w", "float"))

_floats = st.one_of(
    st.none(), st.floats(allow_nan=False, allow_infinity=False, width=32)
)
left_rows = st.lists(
    st.tuples(st.integers(0, 4), _floats, st.sampled_from(["x", "y"])),
    max_size=8,
)
right_rows = st.lists(st.tuples(st.integers(0, 4), _floats), max_size=6)


@st.composite
def lowerable_tree(draw) -> A.Node:
    """Filter/Project/Join/Aggregate trees over the left/right datasets."""
    node: A.Node = A.Scan("left", LEFT)
    if draw(st.booleans()):
        node = A.Filter(node, col("k") >= lit(draw(st.integers(0, 3))))
    if draw(st.booleans()):
        how = draw(st.sampled_from(["inner", "left", "semi", "anti"]))
        node = A.Join(node, A.Scan("right", RIGHT), (("k", "k2"),), how)
    finish = draw(st.integers(0, 2))
    if finish == 1:
        node = A.Project(node, ("k", "v"))
    elif finish == 2:
        node = A.Aggregate(
            node, ("k",),
            (A.AggSpec("total", "sum", col("v")), A.AggSpec("n", "count")),
        )
    return node


class TestLoweredExecutionAgreement:
    @settings(max_examples=60, deadline=None)
    @given(lowerable_tree(), left_rows, right_rows)
    def test_plans_match_reference_on_accepting_providers(
        self, tree, lrows, rrows
    ):
        datasets = {
            "left": table(LEFT, lrows),
            "right": table(RIGHT, rrows),
        }
        expected = run_reference(tree, **datasets)
        for provider in (RelationalProvider("rel"), GraphProvider("gra")):
            if not provider.accepts(tree):
                continue
            for name, data in datasets.items():
                provider.register_dataset(name, data)
            # the executed plan is exactly the lowered, inspectable one
            assert provider.lower(tree) is provider.lower(tree)
            actual = provider.execute(tree)
            assert actual.same_rows(expected, float_tol=1e-6), (
                f"\nprovider: {provider.name}\ntree: {tree!r}"
                f"\nplan:\n{provider.lower(tree).render()}"
            )

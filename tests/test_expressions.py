"""Unit tests for the scalar expression language."""

import pytest

from repro.core.errors import TypeMismatchError
from repro.core.expressions import (
    BinOp, Cast, Col, Func, If, IsNull, Lit, UnaryOp,
    col, eval_row, func, if_, lit,
)
from repro.core.types import DType

from .helpers import schema

S = schema(("a", "int"), ("b", "float"), ("s", "str"), ("flag", "bool"))


class TestBuilders:
    def test_operator_sugar_builds_tree(self):
        expr = (col("a") + 1) * col("b")
        assert isinstance(expr, BinOp)
        assert expr.op == "*"
        assert expr.left.op == "+"
        assert isinstance(expr.left.right, Lit)

    def test_comparison_sugar(self):
        expr = col("a") >= 10
        assert expr.op == ">="

    def test_boolean_sugar(self):
        expr = (col("a") > 1) & ~(col("flag"))
        assert expr.op == "and"
        assert expr.right.op == "not"

    def test_reflected_operators(self):
        expr = 1 - col("a")
        assert expr.op == "-"
        assert isinstance(expr.left, Lit)

    def test_null_literal_requires_dtype(self):
        with pytest.raises(TypeMismatchError):
            lit(None)
        assert lit(None, DType.INT64).dtype is DType.INT64

    def test_unknown_function_rejected(self):
        with pytest.raises(TypeMismatchError):
            func("frobnicate", col("a"))


class TestTypeInference:
    def test_arithmetic_promotion(self):
        assert (col("a") + 1).infer_type(S) is DType.INT64
        assert (col("a") + col("b")).infer_type(S) is DType.FLOAT64
        assert (col("a") / 2).infer_type(S) is DType.FLOAT64
        assert (col("a") // 2).infer_type(S) is DType.INT64

    def test_string_concatenation(self):
        assert (col("s") + col("s")).infer_type(S) is DType.STRING

    def test_arithmetic_on_string_rejected(self):
        with pytest.raises(TypeMismatchError):
            (col("s") * 2).infer_type(S)

    def test_comparison_yields_bool(self):
        assert (col("a") < col("b")).infer_type(S) is DType.BOOL

    def test_cross_type_comparison_rejected(self):
        with pytest.raises(TypeMismatchError):
            (col("s") == col("a")).infer_type(S)

    def test_boolean_ops_require_bool(self):
        with pytest.raises(TypeMismatchError):
            (col("a") & col("flag")).infer_type(S)

    def test_if_common_type(self):
        expr = if_(col("flag"), col("a"), col("b"))
        assert expr.infer_type(S) is DType.FLOAT64

    def test_if_requires_bool_condition(self):
        with pytest.raises(TypeMismatchError):
            if_(col("a"), 1, 2).infer_type(S)

    def test_func_types(self):
        assert func("sqrt", col("a")).infer_type(S) is DType.FLOAT64
        assert func("abs", col("a")).infer_type(S) is DType.INT64
        assert func("length", col("s")).infer_type(S) is DType.INT64
        assert func("upper", col("s")).infer_type(S) is DType.STRING

    def test_func_argument_types_checked(self):
        with pytest.raises(TypeMismatchError):
            func("sqrt", col("s")).infer_type(S)
        with pytest.raises(TypeMismatchError):
            func("upper", col("a")).infer_type(S)

    def test_cast_rules(self):
        assert col("a").cast(DType.FLOAT64).infer_type(S) is DType.FLOAT64
        assert col("s").cast(DType.INT64).infer_type(S) is DType.INT64
        with pytest.raises(TypeMismatchError):
            col("flag").cast(DType.STRING).infer_type(S)

    def test_missing_column_raises(self):
        from repro.core.errors import SchemaError

        with pytest.raises(SchemaError):
            col("zzz").infer_type(S)


class TestEvalRow:
    ROW = {"a": 4, "b": 2.5, "s": "Hi", "flag": True}

    def test_arithmetic(self):
        assert eval_row((col("a") + 1) * 2, self.ROW) == 10
        assert eval_row(col("a") / 8, self.ROW) == 0.5
        assert eval_row(col("a") % 3, self.ROW) == 1
        assert eval_row(col("a") ** 2, self.ROW) == 16

    def test_comparisons_and_boolean(self):
        assert eval_row((col("a") > 3) & col("flag"), self.ROW) is True
        assert eval_row((col("a") > 5) | col("flag"), self.ROW) is True
        assert eval_row(~col("flag"), self.ROW) is False

    def test_functions(self):
        assert eval_row(func("sqrt", col("a")), self.ROW) == 2.0
        assert eval_row(func("upper", col("s")), self.ROW) == "HI"
        assert eval_row(func("length", col("s")), self.ROW) == 2

    def test_conditional(self):
        expr = if_(col("a") > 3, lit("big"), lit("small"))
        assert eval_row(expr, self.ROW) == "big"
        assert eval_row(expr, {**self.ROW, "a": 1}) == "small"

    def test_cast(self):
        assert eval_row(col("b").cast(DType.INT64), self.ROW) == 2
        assert eval_row(col("a").cast(DType.STRING), self.ROW) == "4"

    def test_null_propagation(self):
        row = {"a": None, "b": 2.5, "s": None, "flag": True}
        assert eval_row(col("a") + 1, row) is None
        assert eval_row(col("a") > 3, row) is None
        assert eval_row(func("upper", col("s")), row) is None
        assert eval_row(-col("a"), row) is None
        assert eval_row(col("a").cast(DType.FLOAT64), row) is None

    def test_is_null_never_null(self):
        row = {"a": None, "b": 2.5, "s": "x", "flag": True}
        assert eval_row(col("a").is_null(), row) is True
        assert eval_row(col("b").is_null(), row) is False

    def test_null_condition_takes_else_branch(self):
        row = {"a": None, "b": 2.5, "s": "x", "flag": True}
        expr = if_(col("a") > 0, lit(1), lit(-1))
        assert eval_row(expr, row) == -1


class TestStructure:
    def test_columns_collects_references(self):
        expr = if_(col("flag"), col("a") + col("b"), func("length", col("s")))
        assert expr.columns() == {"flag", "a", "b", "s"}

    def test_same_as_structural(self):
        assert (col("a") + 1).same_as(col("a") + 1)
        assert not (col("a") + 1).same_as(col("a") + 2)
        assert not (col("a") + 1).same_as(col("a") - 1)

    def test_with_children_rebuilds(self):
        expr = col("a") + col("b")
        rebuilt = expr.with_children((col("x"), col("y")))
        assert rebuilt.same_as(col("x") + col("y"))

    def test_walk_preorder(self):
        expr = (col("a") + 1) * col("b")
        kinds = [type(n).__name__ for n in expr.walk()]
        assert kinds == ["BinOp", "BinOp", "Col", "Lit", "Col"]

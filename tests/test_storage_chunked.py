"""Unit tests for the chunked storage layer: zone maps, dictionary
encoding, chunk slicing, and the lazy-null-count column fast path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.types import DType
from repro.relational.catalog import ColumnStats, RelationalCatalog
from repro.storage.chunked import ChunkedTable, ZoneMap, _zone_map
from repro.storage.column import Column
from repro.storage.dictionary import DictColumn

from .helpers import schema, table


# --------------------------------------------------------------------------
# ZoneMap.may_match
# --------------------------------------------------------------------------


class TestZoneMap:
    def test_range_predicates(self):
        zm = ZoneMap(min=10, max=20, null_count=0)
        assert zm.may_match("==", 15) and not zm.may_match("==", 25)
        assert zm.may_match("<", 11) and not zm.may_match("<", 10)
        assert zm.may_match("<=", 10) and not zm.may_match("<=", 9)
        assert zm.may_match(">", 19) and not zm.may_match(">", 20)
        assert zm.may_match(">=", 20) and not zm.may_match(">=", 21)

    def test_not_equal_prunes_only_constant_chunks(self):
        constant = ZoneMap(min=7, max=7, null_count=0)
        varied = ZoneMap(min=7, max=8, null_count=0)
        assert not constant.may_match("!=", 7)
        assert constant.may_match("!=", 8)
        assert varied.may_match("!=", 7)

    def test_all_null_chunk_never_matches(self):
        zm = ZoneMap(min=None, max=None, null_count=4)
        for op in ("==", "!=", "<", "<=", ">", ">="):
            assert not zm.may_match(op, 3)

    def test_nan_survives_not_equal(self):
        # NaN != x is True for every x, so a chunk holding NaN cannot be
        # pruned by !=, even when its non-NaN values are constant
        zm = ZoneMap(min=1.0, max=1.0, null_count=0, has_nan=True)
        assert zm.may_match("!=", 1.0)
        all_nan = ZoneMap(min=None, max=None, null_count=0, has_nan=True)
        assert all_nan.may_match("!=", 1.0)
        assert not all_nan.may_match("==", 1.0)

    def test_type_mismatch_is_conservative(self):
        zm = ZoneMap(min="a", max="c", null_count=0)
        assert zm.may_match("<", 5)  # str-vs-int raises -> must not prune


class TestZoneMapConstruction:
    def test_int_bounds_skip_nulls(self):
        c = Column.from_values(DType.INT64, [5, None, 2, 9])
        zm = _zone_map(c, 0, 4)
        assert (zm.min, zm.max, zm.null_count) == (2, 9, 1)

    def test_float_nan_flag(self):
        c = Column(DType.FLOAT64, np.array([1.0, np.nan, 3.0]))
        zm = _zone_map(c, 0, 3)
        assert (zm.min, zm.max, zm.has_nan) == (1.0, 3.0, True)

    def test_all_nan_range(self):
        c = Column(DType.FLOAT64, np.array([np.nan, np.nan]))
        zm = _zone_map(c, 0, 2)
        assert zm.min is None and zm.has_nan

    def test_dict_column_bounds_by_code(self):
        c = DictColumn.encode(
            Column.from_values(DType.STRING, ["b", "a", "c", "a"] * 8)
        )
        zm = _zone_map(c, 0, 2)  # rows "b", "a"
        assert (zm.min, zm.max) == ("a", "b")


# --------------------------------------------------------------------------
# ChunkedTable
# --------------------------------------------------------------------------


def _events(n: int):
    return table(
        schema(("ts", "int"), ("tag", "str")),
        [(i, "even" if i % 2 == 0 else "odd") for i in range(n)],
    )


class TestChunkedTable:
    def test_chunk_boundaries_cover_all_rows(self):
        chunked = ChunkedTable(_events(10), chunk_rows=4)
        assert chunked.ranges == [(0, 4), (4, 8), (8, 10)]
        assert chunked.num_chunks == 3
        assert [chunked.chunk_length(i) for i in range(3)] == [4, 4, 2]

    def test_empty_table_has_one_empty_chunk(self):
        chunked = ChunkedTable(_events(0), chunk_rows=4)
        assert chunked.num_chunks == 1
        assert chunked.chunk_length(0) == 0

    def test_zone_maps_are_per_chunk(self):
        chunked = ChunkedTable(_events(10), chunk_rows=5)
        maps = chunked.zone_maps["ts"]
        assert [(m.min, m.max) for m in maps] == [(0, 4), (5, 9)]

    def test_pruned_chunks_conjunction(self):
        chunked = ChunkedTable(_events(100), chunk_rows=10)
        assert chunked.pruned_chunks([("ts", ">=", 95)]) == [9]
        assert chunked.pruned_chunks([("ts", ">=", 35), ("ts", "<", 42)]) == [3, 4]
        assert chunked.pruned_chunks([("ts", "<", 0)]) == []
        assert chunked.pruned_chunks([]) == list(range(10))

    def test_take_chunks_identity_and_order(self):
        t = _events(10)
        chunked = ChunkedTable(t, chunk_rows=4)
        assert chunked.take_chunks([0, 1, 2]) is t or (
            chunked.take_chunks([0, 1, 2]).num_rows == 10
        )
        partial = chunked.take_chunks([0, 2])
        assert partial.column("ts").to_list() == [0, 1, 2, 3, 8, 9]
        assert chunked.take_chunks([]).num_rows == 0

    def test_low_cardinality_strings_dictionary_encoded(self):
        chunked = ChunkedTable(_events(64), chunk_rows=16)
        assert isinstance(chunked.table.columns["tag"], DictColumn)
        sliced, n = chunked.chunk_columns(1, ("tag",))
        assert n == 16 and isinstance(sliced["tag"], DictColumn)

    def test_high_cardinality_strings_stay_plain(self):
        t = table(
            schema(("s", "str")), [(f"unique-{i}",) for i in range(64)]
        )
        chunked = ChunkedTable(t, chunk_rows=16)
        assert not isinstance(chunked.table.columns["s"], DictColumn)


# --------------------------------------------------------------------------
# DictColumn
# --------------------------------------------------------------------------


class TestDictColumn:
    def _col(self):
        return DictColumn.encode(
            Column.from_values(
                DType.STRING, ["b", "a", None, "c", "a"] * 8
            )
        )

    def test_encode_round_trip(self):
        c = self._col()
        assert c is not None
        assert list(c.dictionary) == ["a", "b", "c"]
        assert c.to_list()[:5] == ["b", "a", None, "c", "a"]
        assert c.null_count == 8

    def test_encode_declines_all_null_and_non_string(self):
        assert DictColumn.encode(Column.from_values(DType.STRING, [None, None])) is None
        assert DictColumn.encode(Column.from_values(DType.INT64, [1, 2])) is None

    def test_compare_value_matches_decoded(self):
        c = self._col()
        decoded = np.asarray(c.values)
        for op, fn in [
            ("==", lambda v: decoded == v), ("!=", lambda v: decoded != v),
            ("<", lambda v: decoded < v), ("<=", lambda v: decoded <= v),
            (">", lambda v: decoded > v), (">=", lambda v: decoded >= v),
        ]:
            for v in ("a", "b", "bb", "c", "z", ""):
                got = c.compare_value(op, v)
                want = fn(v)
                valid = ~c.mask
                assert np.array_equal(got[valid], want[valid]), (op, v)

    def test_bulk_ops_stay_encoded(self):
        c = self._col()
        assert isinstance(c.take(np.array([0, 3, 2])), DictColumn)
        assert isinstance(c.filter(np.arange(len(c)) % 2 == 0), DictColumn)
        assert isinstance(c.slice(1, 9), DictColumn)
        assert isinstance(c.reverse(), DictColumn)
        assert c.slice(1, 4).to_list() == ["a", None, "c"]
        assert c.take(np.array([3, -1, 0])).to_list() == ["c", None, "b"]

    def test_concat_of_shared_dictionary_slices_stays_encoded(self):
        c = self._col()
        merged = Column.concat([c.slice(0, 5), c.slice(10, 15)])
        assert isinstance(merged, DictColumn)
        assert merged.to_list() == c.to_list()[0:5] + c.to_list()[10:15]

    def test_nbytes_matches_plain_representation(self):
        plain = Column.from_values(DType.STRING, ["b", "a", None, "c"] * 8)
        encoded = DictColumn.encode(plain)
        assert encoded.nbytes == plain.nbytes

    def test_gather_values_decodes_only_requested_rows(self):
        c = self._col()
        assert list(c.gather_values(np.array([0, 3]))) == ["b", "c"]
        assert c._materialized is None  # no full decode happened


# --------------------------------------------------------------------------
# Catalog integration + lazy null_count
# --------------------------------------------------------------------------


class TestCatalogChunking:
    def test_register_builds_chunks_and_encodes(self):
        catalog = RelationalCatalog(chunk_rows=16)
        entry = catalog.register("events", _events(64))
        assert entry.chunked is not None
        assert entry.chunked.num_chunks == 4
        assert isinstance(entry.table.columns["tag"], DictColumn)
        # stats ride the sorted dictionary, no value scan
        stats = entry.stats["tag"]
        assert stats.distinct == 2
        assert (stats.min, stats.max) == ("even", "odd")

    def test_column_stats_dict_fast_path_agrees_with_plain(self):
        t = table(schema(("s", "str")), [("b",), (None,), ("a",), ("b",)] * 8)
        plain = ColumnStats.compute(t, "s")
        encoded_col = DictColumn.encode(t.column("s"))
        t2 = type(t)(t.schema, {"s": encoded_col})
        encoded = ColumnStats.compute(t2, "s")
        assert (plain.distinct, plain.min, plain.max, plain.null_count) == (
            encoded.distinct, encoded.min, encoded.max, encoded.null_count
        )


class TestLazyNullCount:
    def test_all_false_mask_normalizes_on_first_access(self):
        mask = np.zeros(4, dtype=bool)
        c = Column(DType.INT64, np.arange(4), mask)
        assert c._mask is mask  # construction did not scan
        assert c.null_count == 0
        assert c.mask is None  # normalized and cached

    def test_known_null_count_skips_the_scan(self):
        mask = np.array([True, False, True])
        c = Column(DType.INT64, np.zeros(3, dtype=np.int64), mask,
                   null_count=2)
        assert c._null_count == 2
        assert c.null_count == 2 and c.mask is mask

    def test_null_count_zero_drops_mask_eagerly(self):
        c = Column(DType.INT64, np.arange(3),
                   np.zeros(3, dtype=bool), null_count=0)
        assert c._mask is None

    def test_mask_length_still_validated(self):
        from repro.core.errors import TypeMismatchError

        with pytest.raises(TypeMismatchError):
            Column(DType.INT64, np.arange(3), np.zeros(2, dtype=bool))

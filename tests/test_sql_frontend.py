"""SQL frontend tests: lexing, parsing, translation, and end-to-end
execution against the fluent API's results."""

import pytest

from repro import BigDataContext, col
from repro.core import algebra as A
from repro.core.errors import ParseError, SchemaError
from repro.frontends.sql import parse_sql, tokenize
from repro.providers import RelationalProvider

from .helpers import CUSTOMERS, ORDERS, customers_table, orders_table, schema


def resolver(name):
    return {"customers": CUSTOMERS, "orders": ORDERS}[name]


def make_context():
    ctx = BigDataContext()
    ctx.add_provider(RelationalProvider("sql"))
    ctx.load("customers", customers_table(), on="sql")
    ctx.load("orders", orders_table(), on="sql")
    return ctx


def run_sql(ctx, text):
    tree = parse_sql(text, ctx.catalog.schema_of)
    return ctx.run(ctx.query(tree))


class TestLexer:
    def test_token_kinds(self):
        tokens = tokenize("SELECT a, 1.5 FROM t WHERE s = 'x''y'")
        kinds = [t.kind for t in tokens]
        assert kinds == ["keyword", "name", "op", "float", "keyword", "name",
                         "keyword", "name", "op", "string", "eof"]

    def test_keywords_case_insensitive(self):
        tokens = tokenize("select SELECT SeLeCt")
        assert all(t.kind == "keyword" and t.text == "select"
                   for t in tokens[:-1])

    def test_rejects_garbage(self):
        with pytest.raises(ParseError):
            tokenize("select @ from t")

    def test_operators(self):
        tokens = tokenize("<> <= >= != = < >")
        assert [t.text for t in tokens[:-1]] == [
            "<>", "<=", ">=", "!=", "=", "<", ">"
        ]


class TestParsing:
    def test_simple_select(self):
        tree = parse_sql("SELECT name, country FROM customers", resolver)
        assert tree.schema.names == ("name", "country")

    def test_select_star(self):
        tree = parse_sql("SELECT * FROM orders", resolver)
        assert tree.schema == ORDERS

    def test_computed_item_needs_alias(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT amount * 2 FROM orders", resolver)

    def test_unknown_column_caught_at_parse_time(self):
        with pytest.raises(SchemaError):
            parse_sql("SELECT frobnitz FROM orders", resolver)

    def test_having_requires_group(self):
        with pytest.raises(SchemaError):
            parse_sql("SELECT oid FROM orders HAVING oid > 2", resolver)

    def test_star_with_aggregate_rejected(self):
        with pytest.raises(SchemaError):
            parse_sql("SELECT *, COUNT(*) FROM orders", resolver)

    def test_non_key_select_with_group_rejected(self):
        with pytest.raises(SchemaError):
            parse_sql(
                "SELECT oid, SUM(amount) AS s FROM orders GROUP BY cust",
                resolver,
            )

    def test_join_condition_orientation(self):
        # both "cid = cust" and "cust = cid" must work
        for cond in ("cid = cust", "cust = cid"):
            tree = parse_sql(
                f"SELECT name FROM customers JOIN orders ON {cond}", resolver
            )
            joins = [n for n in tree.walk() if isinstance(n, A.Join)]
            assert joins[0].on == (("cid", "cust"),)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT * FROM orders banana", resolver)


class TestExecution:
    def test_filter_order_limit(self):
        ctx = make_context()
        result = run_sql(ctx, """
            SELECT oid, amount FROM orders
            WHERE amount > 20.0
            ORDER BY amount DESC
            LIMIT 2
        """)
        assert result.rows() == [(103, 300.0), (101, 75.0)]

    def test_matches_fluent_api(self):
        ctx = make_context()
        via_sql = run_sql(ctx, """
            SELECT country, SUM(amount) AS total, COUNT(*) AS n
            FROM customers JOIN orders ON cid = cust
            GROUP BY country
            ORDER BY total DESC
        """)
        via_fluent = (
            ctx.table("customers")
            .join(ctx.table("orders"), on=[("cid", "cust")])
            .aggregate(["country"], total=("sum", col("amount")),
                       n=("count", None))
            .select("country", "total", "n")
            .order_by("total", ascending=False)
            .collect()
        )
        assert via_sql.rows() == via_fluent.rows()

    def test_left_join_is_null(self):
        ctx = make_context()
        result = run_sql(ctx, """
            SELECT name FROM customers LEFT JOIN orders ON cid = cust
            WHERE oid IS NULL
        """)
        assert result.rows() == [("dee",)]

    def test_case_expression(self):
        ctx = make_context()
        result = run_sql(ctx, """
            SELECT oid, CASE WHEN amount > 50.0 THEN 'big' ELSE 'small' END AS size
            FROM orders ORDER BY oid
        """)
        sizes = dict(result.rows())
        assert sizes[103] == "big" and sizes[100] == "small"

    def test_scalar_functions(self):
        ctx = make_context()
        result = run_sql(ctx, """
            SELECT upper(name) AS shout FROM customers ORDER BY shout LIMIT 1
        """)
        assert result.rows() == [("ADA",)]

    def test_having(self):
        ctx = make_context()
        result = run_sql(ctx, """
            SELECT cust, COUNT(*) AS n FROM orders
            GROUP BY cust HAVING n > 1
        """)
        assert result.rows() == [(1, 2)]

    def test_distinct(self):
        ctx = make_context()
        result = run_sql(ctx, "SELECT DISTINCT country FROM customers")
        assert len(result) == 3

    def test_avg_maps_to_mean(self):
        ctx = make_context()
        result = run_sql(ctx, "SELECT AVG(amount) AS a FROM orders")
        assert result.scalar() == pytest.approx(415.0 / 5)

    def test_arithmetic_and_boolean(self):
        ctx = make_context()
        result = run_sql(ctx, """
            SELECT oid FROM orders
            WHERE (amount > 20.0 AND amount < 100.0) OR cust = 9
            ORDER BY oid
        """)
        assert [r[0] for r in result] == [100, 101, 104]

    def test_not_and_negative_literals(self):
        ctx = make_context()
        result = run_sql(ctx, """
            SELECT oid FROM orders WHERE NOT amount > -5.0
        """)
        assert result.rows() == []

    def test_limit_offset(self):
        ctx = make_context()
        result = run_sql(ctx, """
            SELECT oid FROM orders ORDER BY oid LIMIT 2 OFFSET 2
        """)
        assert [r[0] for r in result] == [102, 103]

"""End-to-end integration scenarios crossing every layer: frontends,
rewriter, planner, multiple engines, channels and client collections."""

import numpy as np
import pytest

from repro import BigDataContext, RewriteOptions, col, if_, lit
from repro.analytics.kmeans import POINT_SCHEMA, kmeans_fit
from repro.core import algebra as A
from repro.core.intents import INTENT_MATMUL
from repro.datasets import (
    customers, dense_matrix_table, lineitems, orders, random_edges,
    sensor_grid, sensor_metadata, vertex_table,
)
from repro.frontends.matrix import Matrix
from repro.frontends.sql import parse_sql
from repro.graph import queries as graph_queries
from repro.providers import (
    ArrayProvider, GraphProvider, LinalgProvider, ReferenceProvider,
    RelationalProvider,
)
from repro.storage.table import ColumnTable


@pytest.fixture()
def world():
    """A fully-populated four-server federation plus a reference twin."""
    ctx = BigDataContext()
    ctx.add_provider(RelationalProvider("sql"))
    ctx.add_provider(ArrayProvider("scidb"))
    ctx.add_provider(LinalgProvider("scalapack"))
    ctx.add_provider(GraphProvider("graphd"))

    ref = ReferenceProvider("oracle")

    def load(name, table, on):
        ctx.load(name, table, on=on)
        ref.register_dataset(name, table)

    load("customers", customers(120, seed=0), "sql")
    load("orders", orders(600, 120, seed=1), "sql")
    load("lineitems", lineitems(200, seed=2), "sql")
    load("grid", sensor_grid(32, 32, seed=3), "scidb")
    load("sensors", sensor_metadata(32, 32, seed=4), "sql")
    load("ma", dense_matrix_table(12, 12, seed=5), "scalapack")
    load("mb", dense_matrix_table(12, 12, seed=6, row_name="j",
                                  col_name="k", value_name="w"), "scalapack")
    load("edges", random_edges(40, 140, seed=7), "graphd")
    load("vertices", vertex_table(40), "graphd")
    return ctx, ref


def check(ctx, ref, tree, float_tol=1e-9):
    result = ctx.run(ctx.query(tree))
    expected = ref.execute(tree)
    assert result.table.same_rows(expected, float_tol=float_tol), (
        f"federated result diverged from oracle for {tree!r}"
    )
    return result


class TestEndToEnd:
    def test_tpch_flavored_report(self, world):
        ctx, ref = world
        tree = (
            ctx.table("orders")
            .where(col("status") != "returned")
            .join(ctx.table("customers"), on=[("cust", "cid")])
            .derive(weighted=col("amount") *
                    if_(col("segment") == "retail", lit(1.1), lit(1.0)))
            .aggregate(["country", "segment"],
                       revenue=("sum", col("weighted")),
                       orders=("count", None))
            .order_by("revenue", ascending=False)
            .limit(10)
            .node
        )
        result = check(ctx, ref, tree, float_tol=1e-6)
        assert 0 < len(result) <= 10

    def test_three_table_join_through_sql_frontend(self, world):
        ctx, ref = world
        tree = parse_sql(
            """
            SELECT country, COUNT(*) AS lines, SUM(price) AS spend
            FROM lineitems
            JOIN orders ON oid = oid
            JOIN customers ON cust = cid
            WHERE discount = 0.0
            GROUP BY country
            ORDER BY spend DESC
            """,
            ctx.catalog.schema_of,
        )
        result = check(ctx, ref, tree, float_tol=1e-6)
        assert len(result) >= 1

    def test_cross_model_sensor_pipeline(self, world):
        ctx, ref = world
        tree = (
            ctx.table("grid")
            .window({"x": 1, "y": 1}, reading=("mean", col("reading")))
            .where(col("reading") > 40.0)
            .join(ctx.table("sensors"),
                  on=[("x", "sensor_x"), ("y", "sensor_y")])
            .aggregate(["vendor"], hot=("count", None))
            .node
        )
        result = check(ctx, ref, tree, float_tol=1e-6)
        plan = ctx.planner.plan(ctx.rewriter.rewrite(tree))
        assert set(plan.servers_used) >= {"scidb", "sql"}
        assert len(result) >= 1

    def test_matrix_dsl_to_linalg_server(self, world):
        ctx, ref = world
        product = (Matrix.wrap(ctx.table("ma")) @ Matrix.wrap(ctx.table("mb"))).node
        result = check(ctx, ref, product, float_tol=1e-6)
        plan = ctx.planner.plan(ctx.rewriter.rewrite(product))
        assert "scalapack" in plan.servers_used
        assert len(result) == 144

    def test_relationally_lowered_matmul_end_to_end(self, world):
        ctx, ref = world
        lowered = (
            Matrix.wrap(ctx.table("ma"), lowering="relational")
            @ Matrix.wrap(ctx.table("mb"), lowering="relational")
        ).node
        optimized = ctx.rewriter.rewrite(lowered)
        assert any(isinstance(n, A.MatMul) for n in optimized.walk())
        assert INTENT_MATMUL in {
            n.intent for n in optimized.walk() if n.intent
        }
        check(ctx, ref, lowered, float_tol=1e-6)

    def test_pagerank_under_rewriter_and_planner(self, world):
        ctx, ref = world
        tree = graph_queries.pagerank(
            ctx.table("vertices").node, ctx.table("edges").node, 40,
            tolerance=1e-9, max_iter=100,
        )
        result = check(ctx, ref, tree, float_tol=1e-6)
        assert ctx.catalog.provider("graphd").stats_native_hits == 1
        total = sum(r[1] for r in result)
        assert total <= 1.0 + 1e-9  # dangling vertices may leak mass

    def test_disabling_rewriter_changes_nothing_semantically(self, world):
        ctx, ref = world
        plain = BigDataContext(rewrite=RewriteOptions(
            filter_fusion=False, predicate_pushdown=False,
            projection_pruning=False, extend_fusion=False,
            recognize_intents=False,
        ))
        for provider in ctx.providers:
            plain.catalog._providers[provider.name] = provider
        tree = (
            ctx.table("orders")
            .where((col("amount") > 30.0) & (col("status") == "open"))
            .join(ctx.table("customers"), on=[("cust", "cid")])
            .select("name", "amount")
            .node
        )
        optimized = ctx.run(ctx.query(tree))
        unoptimized = plain.run(plain.query(tree))
        assert optimized.table.same_rows(unoptimized.table, float_tol=1e-9)

    def test_kmeans_on_the_federation(self, world):
        ctx, ref = world
        rng = np.random.default_rng(0)
        pts = ColumnTable.from_rows(POINT_SCHEMA, [
            (i, float(rng.normal(0 if i < 30 else 20, 1.0)),
             float(rng.normal(0 if i < 30 else 20, 1.0)))
            for i in range(60)
        ])
        ctx.load("points", pts, on="sql")
        centroids, assignments = kmeans_fit(ctx, "points", 2, seed=1)
        assert len(centroids) == 2
        clusters = {c for _, c in assignments}
        assert len(clusters) == 2

    def test_replicated_dataset_avoids_transfers(self, world):
        ctx, ref = world
        # replicate orders onto graphd; a pure-relational query should still
        # run on sql in one fragment with no transfers
        ctx.load("orders", ref.dataset("orders"), on="graphd")
        tree = ctx.table("orders").where(col("amount") > 100.0).node
        plan = ctx.planner.plan(ctx.rewriter.rewrite(tree))
        assert len(plan.fragments) == 1
        result = check(ctx, ref, tree)
        assert ctx.last_report.metrics.hop_count == 0

    def test_explain_is_stable_and_informative(self, world):
        ctx, __ = world
        tree = (
            ctx.table("grid")
            .window({"x": 1}, reading=("mean", col("reading")))
            .node
        )
        text = ctx.explain(ctx.query(tree))
        assert "scidb" in text and "fragment" in text

    def test_collection_report_exposes_metrics(self, world):
        ctx, __ = world
        result = ctx.table("customers").limit(3).collect()
        assert result.report is not None
        assert result.report.result_bytes > 0
        assert len(result.report.metrics.queries) == 1

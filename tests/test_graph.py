"""Tests for CSR graphs, native algorithms (vs networkx), algebra graph
queries (vs the reference interpreter), and the graph provider's native
fast path."""

import networkx as nx
import numpy as np
import pytest

from repro.core import algebra as A
from repro.graph import algorithms, queries
from repro.graph.csr import CSRGraph
from repro.providers.graph_p import GraphProvider
from repro.providers.reference import ReferenceProvider

from .helpers import schema, table

EDGES = schema(("src", "int"), ("dst", "int"))
VERTS = schema(("v", "int", True))


def random_graph(seed=0, n=30, m=80):
    rng = np.random.default_rng(seed)
    edges = set()
    while len(edges) < m:
        u, v = rng.integers(0, n, 2)
        if u != v:
            edges.add((int(u), int(v)))
    return sorted(edges), n


def edge_table(edges):
    return table(EDGES, edges)


def vertex_table(n):
    return table(VERTS, [(i,) for i in range(n)])


class TestCSR:
    def test_degrees_and_neighbors(self):
        g = CSRGraph.from_arrays([0, 0, 1, 2], [1, 2, 2, 0])
        assert g.num_vertices == 3
        assert g.out_degree().tolist() == [2, 1, 1]
        assert sorted(g.neighbors(0).tolist()) == [1, 2]

    def test_reverse(self):
        g = CSRGraph.from_arrays([0, 0, 1], [1, 2, 2])
        r = g.reverse()
        assert r.out_degree().tolist() == [0, 1, 2]
        assert sorted(r.neighbors(2).tolist()) == [0, 1]

    def test_from_edge_table_compacts_sparse_ids(self):
        t = edge_table([(100, 200), (200, 300)])
        g = CSRGraph.from_edge_table(t)
        assert g.num_vertices == 3
        assert g.vertex_ids.tolist() == [100, 200, 300]

    def test_weights_follow_edges(self):
        t = table(schema(("src", "int"), ("dst", "int"), ("w", "float")),
                  [(1, 0, 5.0), (0, 1, 3.0)])
        g = CSRGraph.from_edge_table(t, weight="w")
        # edges sorted by src: (0,1,3.0) then (1,0,5.0)
        assert g.weights.tolist() == [3.0, 5.0]


class TestNativeAlgorithms:
    def nx_graph(self, edges, n):
        g = nx.DiGraph()
        g.add_nodes_from(range(n))
        g.add_edges_from(edges)
        return g

    def test_pagerank_close_to_networkx(self):
        edges, n = random_graph(seed=1)
        g = CSRGraph.from_arrays(*zip(*edges), num_vertices=n)
        ranks, iterations = algorithms.pagerank(g, tolerance=1e-12, max_iter=500)
        expected = nx.pagerank(
            self.nx_graph(edges, n), alpha=0.85, tol=1e-12, max_iter=500
        )
        # networkx redistributes dangling mass; our kernel leaks it — both
        # formulations agree after renormalization
        ours = ranks / ranks.sum()
        theirs = np.array([expected[i] for i in range(n)])
        assert np.allclose(ours, theirs, atol=1e-6)
        assert iterations < 500

    def test_pagerank_sums_to_one_without_dangling(self):
        # a cycle has no dangling vertices: mass is conserved
        n = 10
        edges = [(i, (i + 1) % n) for i in range(n)]
        g = CSRGraph.from_arrays(*zip(*edges), num_vertices=n)
        ranks, _ = algorithms.pagerank(g, tolerance=1e-14, max_iter=1000)
        assert np.isclose(ranks.sum(), 1.0)
        assert np.allclose(ranks, 1.0 / n)

    def test_bfs_levels_match_networkx(self):
        edges, n = random_graph(seed=2)
        g = CSRGraph.from_arrays(*zip(*edges), num_vertices=n)
        levels = algorithms.bfs_levels(g, 0)
        expected = nx.single_source_shortest_path_length(self.nx_graph(edges, n), 0)
        for v in range(n):
            assert levels[v] == expected.get(v, -1)

    def test_connected_components_match_networkx(self):
        edges, n = random_graph(seed=3, m=25)
        g = CSRGraph.from_arrays(*zip(*edges), num_vertices=n)
        labels = algorithms.connected_components(g)
        expected = list(nx.weakly_connected_components(self.nx_graph(edges, n)))
        assert len(set(labels.tolist())) == len(expected)
        for component in expected:
            got = {labels[v] for v in component}
            assert len(got) == 1

    def test_triangle_count_matches_networkx(self):
        edges, n = random_graph(seed=4, n=15, m=40)
        g = CSRGraph.from_arrays(*zip(*edges), num_vertices=n)
        undirected = nx.Graph()
        undirected.add_nodes_from(range(n))
        undirected.add_edges_from(edges)
        expected = sum(nx.triangles(undirected).values()) // 3
        assert algorithms.triangle_count(g) == expected


class TestAlgebraQueries:
    """The algebra formulations agree with the native kernels."""

    def setup_providers(self, edges, n):
        ref = ReferenceProvider("ref")
        gp = GraphProvider("graph")
        for p in (ref, gp):
            p.register_dataset("edges", edge_table(edges))
            p.register_dataset("vertices", vertex_table(n))
        return ref, gp

    def tree_inputs(self):
        return A.Scan("vertices", VERTS), A.Scan("edges", EDGES)

    def test_pagerank_algebra_matches_native(self):
        edges, n = random_graph(seed=5, n=12, m=30)
        ref, gp = self.setup_providers(edges, n)
        vertices, edge_scan = self.tree_inputs()
        tree = queries.pagerank(vertices, edge_scan, n, tolerance=1e-10,
                                max_iter=200)
        ref_result = ref.execute(tree)
        native_result = gp.execute(tree)
        assert gp.stats_native_hits == 1
        assert native_result.same_rows(ref_result, float_tol=1e-6)

    def test_generic_path_without_intent_tag(self):
        edges, n = random_graph(seed=6, n=10, m=20)
        ref, gp = self.setup_providers(edges, n)
        vertices, edge_scan = self.tree_inputs()
        tree = queries.pagerank(vertices, edge_scan, n, tolerance=1e-10,
                                max_iter=100).with_intent(None)
        result = gp.execute(tree)
        assert gp.stats_native_hits == 0  # fell back to generic iteration
        assert result.same_rows(ref.execute(tree), float_tol=1e-9)

    def test_bfs_algebra_matches_native(self):
        edges, n = random_graph(seed=7, n=12, m=25)
        ref, gp = self.setup_providers(edges, n)
        vertices, edge_scan = self.tree_inputs()
        tree = queries.bfs_levels(vertices, edge_scan, source=0, max_iter=50)
        result = gp.execute(tree)
        g = CSRGraph.from_arrays(*zip(*edges), num_vertices=n)
        expected = algorithms.bfs_levels(g, 0)
        got = {r["v"]: r["level"] for r in result.iter_dicts()}
        for v in range(n):
            want = expected[v] if expected[v] >= 0 else queries.UNREACHABLE
            assert got[v] == want

    def test_connected_components_algebra(self):
        edges, n = random_graph(seed=8, n=14, m=18)
        ref, gp = self.setup_providers(edges, n)
        vertices, edge_scan = self.tree_inputs()
        tree = queries.connected_components(vertices, edge_scan, max_iter=100)
        result = gp.execute(tree)
        g = CSRGraph.from_arrays(*zip(*edges), num_vertices=n)
        expected = algorithms.connected_components(g)
        got = {r["v"]: r["label"] for r in result.iter_dicts()}
        # same partition: vertices share a label iff they share a component
        for u in range(n):
            for v in range(u + 1, n):
                assert (got[u] == got[v]) == (expected[u] == expected[v])

    def test_match_pagerank_extracts_parameters(self):
        vertices, edge_scan = self.tree_inputs()
        tree = queries.pagerank(vertices, edge_scan, 50, damping=0.9,
                                tolerance=1e-6, max_iter=77)
        spec = queries.match_pagerank(tree)
        assert spec is not None
        assert spec.damping == 0.9
        assert np.isclose(spec.teleport, 0.1 / 50)
        assert spec.tolerance == 1e-6
        assert spec.max_iter == 77

    def test_match_rejects_other_iterates(self):
        vertices, edge_scan = self.tree_inputs()
        tree = queries.bfs_levels(vertices, edge_scan, 0)
        assert queries.match_pagerank(tree) is None

    def test_builder_validates_schemas(self):
        from repro.core.errors import AlgebraError

        bad_vertices = A.Scan("x", schema(("node", "int", True)))
        with pytest.raises(AlgebraError):
            queries.pagerank(bad_vertices, A.Scan("edges", EDGES), 10)

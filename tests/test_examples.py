"""Smoke tests: every example script must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_all_examples_are_covered():
    assert len(EXAMPLES) >= 6


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=120,
    )
    assert completed.returncode == 0, (
        f"{script} failed:\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script} printed nothing"

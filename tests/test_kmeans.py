"""K-means in the algebra: agreement with the numpy oracle, in-server
execution, and clustering quality on well-separated blobs."""

import numpy as np
import pytest

from repro import BigDataContext
from repro.analytics.kmeans import (
    CENTROID_SCHEMA, POINT_SCHEMA,
    assignments_query, initial_centroids_table, kmeans_fit, kmeans_numpy,
    kmeans_query,
)
from repro.core import algebra as A
from repro.core.errors import AlgebraError
from repro.providers import ReferenceProvider, RelationalProvider
from repro.storage.table import ColumnTable

from .helpers import schema, table


def blobs(seed=0, per_blob=20, centers=((0.0, 0.0), (10.0, 10.0), (-8.0, 6.0))):
    rng = np.random.default_rng(seed)
    rows = []
    pid = 0
    for cx, cy in centers:
        for _ in range(per_blob):
            rows.append((
                pid,
                float(cx + rng.normal(0, 0.8)),
                float(cy + rng.normal(0, 0.8)),
            ))
            pid += 1
    return ColumnTable.from_rows(POINT_SCHEMA, rows)


def make_context(points):
    ctx = BigDataContext()
    ctx.add_provider(RelationalProvider("sql"))
    ctx.load("points", points, on="sql")
    return ctx


class TestKmeansQuery:
    def test_validates_schemas(self):
        bad = A.Scan("p", schema(("pid", "int", True), ("x", "float")))
        good_c = A.Scan("c", CENTROID_SCHEMA)
        with pytest.raises(AlgebraError):
            kmeans_query(bad, good_c)

    def test_matches_numpy_oracle(self):
        points = blobs(seed=1)
        init = initial_centroids_table(points, 3, seed=2)
        ctx = make_context(points)
        loop = kmeans_query(
            A.Scan("points", POINT_SCHEMA),
            A.InlineTable(CENTROID_SCHEMA, tuple(init.iter_rows())),
            tolerance=1e-9, max_iter=40,
        )
        result = ctx.run(ctx.query(loop))
        expected_centroids, __ = kmeans_numpy(
            points.array("x"), points.array("y"),
            np.array([[cx, cy] for _, cx, cy in init.iter_rows()]),
            tolerance=1e-9, max_iter=40,
        )
        got = {c: (cx, cy) for c, cx, cy in result.table.iter_rows()}
        assert len(got) == len(expected_centroids)
        got_sorted = np.array([got[c] for c in sorted(got)])
        assert np.allclose(got_sorted, expected_centroids, atol=1e-9)

    def test_engine_and_reference_agree(self):
        points = blobs(seed=3, per_blob=8)
        init = initial_centroids_table(points, 3, seed=4)
        loop = kmeans_query(
            A.Scan("points", POINT_SCHEMA),
            A.InlineTable(CENTROID_SCHEMA, tuple(init.iter_rows())),
            tolerance=1e-9, max_iter=30,
        )
        ref = ReferenceProvider("ref")
        rel = RelationalProvider("rel")
        for p in (ref, rel):
            p.register_dataset("points", points)
        assert rel.execute(loop).same_rows(ref.execute(loop), float_tol=1e-9)

    def test_clusters_separate_blobs(self):
        points = blobs(seed=5)
        ctx = make_context(points)
        centroids, assignments = kmeans_fit(ctx, "points", 3, seed=6)
        assert len(centroids) == 3
        # each blob occupies a contiguous pid range; all members must share
        # a cluster, and the three blobs must get three distinct clusters
        by_pid = {pid: c for pid, c in assignments}
        blob_clusters = []
        for blob_index in range(3):
            members = {by_pid[pid] for pid in range(blob_index * 20,
                                                    (blob_index + 1) * 20)}
            assert len(members) == 1, f"blob {blob_index} split: {members}"
            blob_clusters.append(members.pop())
        assert len(set(blob_clusters)) == 3

    def test_runs_in_one_round_trip(self):
        points = blobs(seed=7, per_blob=6)
        ctx = make_context(points)
        init = initial_centroids_table(points, 2, seed=8)
        loop = kmeans_query(
            A.Scan("points", POINT_SCHEMA),
            A.InlineTable(CENTROID_SCHEMA, tuple(init.iter_rows())),
            max_iter=25,
        )
        ctx.run(ctx.query(loop))
        assert ctx.last_report.round_trips == 1
        assert ctx.last_report.fragments == 1

    def test_assignments_cover_all_points(self):
        points = blobs(seed=9, per_blob=5)
        ctx = make_context(points)
        __, assignments = kmeans_fit(ctx, "points", 2, seed=10)
        assert len(assignments) == points.num_rows
        assert {pid for pid, _ in assignments} == set(range(points.num_rows))

    def test_initialization_needs_enough_points(self):
        points = blobs(seed=11, per_blob=1)  # 3 points
        with pytest.raises(AlgebraError):
            initial_centroids_table(points, 10)

    def test_intent_tag_present(self):
        points = blobs(seed=12, per_blob=4)
        init = initial_centroids_table(points, 2)
        loop = kmeans_query(
            A.Scan("points", POINT_SCHEMA),
            A.InlineTable(CENTROID_SCHEMA, tuple(init.iter_rows())),
        )
        assert loop.intent == "kmeans"

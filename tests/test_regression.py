"""OLS regression across servers: agreement with numpy's solver, routing
of the Gram products to the linear-algebra server."""

import numpy as np
import pytest

from repro import BigDataContext
from repro.analytics.regression import (
    design_matrix_tables, fit_linear_regression, normal_equation_trees,
)
from repro.core import algebra as A
from repro.core.errors import ExecutionError
from repro.providers import LinalgProvider, ReferenceProvider, RelationalProvider


def make_problem(seed=0, n=120, d=3, noise=0.01):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, d))
    true_coefficients = rng.normal(size=d + 1)  # with intercept
    targets = (
        true_coefficients[0]
        + features @ true_coefficients[1:]
        + rng.normal(0, noise, n)
    )
    return features, targets, true_coefficients


def make_context(features, targets):
    ctx = BigDataContext()
    ctx.add_provider(RelationalProvider("sql"))
    ctx.add_provider(LinalgProvider("scalapack"))
    x, y = design_matrix_tables(features, targets)
    ctx.load("X", x, on=["sql", "scalapack"])
    ctx.load("Y", y, on=["sql", "scalapack"])
    return ctx


class TestDesignMatrices:
    def test_intercept_column_prepended(self):
        x, y = design_matrix_tables(np.ones((4, 2)), np.zeros(4))
        assert x.num_rows == 4 * 3  # d + intercept
        ones = [v for i, j, v in x.iter_rows() if j == 0]
        assert ones == [1.0] * 4

    def test_shape_validation(self):
        with pytest.raises(ExecutionError):
            design_matrix_tables(np.ones((3, 2)), np.zeros(4))
        with pytest.raises(ExecutionError):
            design_matrix_tables(np.ones(3), np.zeros(3))


class TestNormalEquations:
    def test_gram_tree_contracts_one_dimension(self):
        features, targets, __ = make_problem(n=20, d=2)
        ctx = make_context(features, targets)
        gram_tree, moment_tree = normal_equation_trees(
            ctx.table("X").node, ctx.table("Y").node
        )
        assert gram_tree.schema.dimension_names == ("jT", "j")
        assert moment_tree.schema.dimension_names == ("jT", "j")

    def test_gram_matches_numpy(self):
        features, targets, __ = make_problem(n=30, d=2)
        ctx = make_context(features, targets)
        gram_tree, __ = normal_equation_trees(
            ctx.table("X").node, ctx.table("Y").node
        )
        gram = ctx.run(ctx.query(gram_tree)).table
        with_intercept = np.hstack([np.ones((30, 1)), features])
        expected = with_intercept.T @ with_intercept
        dense = np.zeros_like(expected)
        for i, j, v in gram.iter_rows():
            dense[i, j] = v
        assert np.allclose(dense, expected, atol=1e-9)

    def test_products_route_to_linalg_server(self):
        features, targets, __ = make_problem(n=25, d=2)
        ctx = make_context(features, targets)
        gram_tree, __ = normal_equation_trees(
            ctx.table("X").node, ctx.table("Y").node
        )
        plan = ctx.planner.plan(ctx.rewriter.rewrite(gram_tree))
        assert "scalapack" in plan.servers_used


class TestFit:
    def test_recovers_coefficients(self):
        features, targets, truth = make_problem(seed=1, noise=1e-9)
        ctx = make_context(features, targets)
        coefficients = fit_linear_regression(ctx, "X", "Y")
        assert np.allclose(coefficients, truth, atol=1e-5)

    def test_matches_numpy_lstsq_with_noise(self):
        features, targets, __ = make_problem(seed=2, noise=0.5)
        ctx = make_context(features, targets)
        coefficients = fit_linear_regression(ctx, "X", "Y")
        with_intercept = np.hstack([np.ones((len(features), 1)), features])
        expected, *_ = np.linalg.lstsq(with_intercept, targets, rcond=None)
        assert np.allclose(coefficients, expected, atol=1e-8)

    def test_agrees_with_reference_oracle(self):
        features, targets, __ = make_problem(seed=3, n=40, d=2)
        ctx = make_context(features, targets)
        ref = ReferenceProvider("oracle")
        x, y = design_matrix_tables(features, targets)
        ref.register_dataset("X", x)
        ref.register_dataset("Y", y)
        gram_tree, moment_tree = normal_equation_trees(
            ctx.table("X").node, ctx.table("Y").node
        )
        for tree in (gram_tree, moment_tree):
            assert ctx.run(ctx.query(tree)).table.same_rows(
                ref.execute(tree), float_tol=1e-9
            )

    def test_unknown_dataset(self):
        features, targets, __ = make_problem(n=10, d=1)
        ctx = make_context(features, targets)
        with pytest.raises(Exception):
            fit_linear_regression(ctx, "ghost", "Y")

"""Dataflow (pipeline) frontend tests."""

import pytest

from repro import BigDataContext, col
from repro.core import algebra as A
from repro.core.errors import ParseError, SchemaError
from repro.frontends.dataflow import parse_pipeline
from repro.providers import RelationalProvider

from .helpers import CUSTOMERS, ORDERS, customers_table, orders_table, schema


def resolver(name):
    return {"customers": CUSTOMERS, "orders": ORDERS}[name]


def make_context():
    ctx = BigDataContext()
    ctx.add_provider(RelationalProvider("sql"))
    ctx.load("customers", customers_table(), on="sql")
    ctx.load("orders", orders_table(), on="sql")
    return ctx


def run(ctx, text):
    return ctx.run(ctx.query(parse_pipeline(text, ctx.catalog.schema_of)))


class TestParsing:
    def test_must_start_with_load(self):
        with pytest.raises(ParseError):
            parse_pipeline("filter x > 1", resolver)

    def test_load_only(self):
        tree = parse_pipeline("load orders", resolver)
        assert isinstance(tree, A.Scan)
        assert tree.schema == ORDERS

    def test_unknown_stage(self):
        with pytest.raises(ParseError):
            parse_pipeline("load orders | frobnicate", resolver)

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError):
            parse_pipeline("load orders extra", resolver)

    def test_drop_all_columns_rejected(self):
        with pytest.raises(ParseError):
            parse_pipeline("load orders | drop oid, cust, amount", resolver)

    def test_schema_errors_surface_at_parse(self):
        with pytest.raises(SchemaError):
            parse_pipeline("load orders | keep nonexistent", resolver)

    def test_stage_chain_shapes(self):
        tree = parse_pipeline(
            """
            load orders
            | filter amount > 10.0
            | derive taxed = amount * 1.1
            | keep oid, taxed
            | sort taxed desc
            | limit 3
            """,
            resolver,
        )
        ops = [n.op_name for n in tree.walk()]
        assert ops == ["Limit", "Sort", "Project", "Extend", "Filter", "Scan"]

    def test_group_syntax(self):
        tree = parse_pipeline(
            "load orders | group cust: total = sum(amount), n = count(*)",
            resolver,
        )
        agg = tree
        assert isinstance(agg, A.Aggregate)
        assert agg.group_by == ("cust",)
        assert [s.func for s in agg.aggs] == ["sum", "count"]

    def test_global_group(self):
        tree = parse_pipeline("load orders | group : n = count(*)", resolver)
        assert isinstance(tree, A.Aggregate)
        assert tree.group_by == ()

    def test_join_orientation_and_how(self):
        tree = parse_pipeline(
            "load customers | join orders on cust = cid how left", resolver
        )
        join = next(n for n in tree.walk() if isinstance(n, A.Join))
        assert join.on == (("cid", "cust"),)
        assert join.how == "left"

    def test_rename_arrow(self):
        tree = parse_pipeline("load orders | rename amount -> total", resolver)
        assert "total" in tree.schema


class TestExecution:
    def test_full_pipeline(self):
        ctx = make_context()
        result = run(ctx, """
            load orders
            | filter amount > 10.0
            | join customers on cust = cid
            | group country: total = sum(amount), n = count(*)
            | sort total desc
            | limit 2
        """)
        assert result.rows()[0][0] == "jp"

    def test_matches_fluent_equivalent(self):
        ctx = make_context()
        via_pipeline = run(ctx, """
            load orders
            | derive taxed = amount * 1.2
            | keep oid, taxed
            | sort taxed desc
        """)
        via_fluent = (
            ctx.table("orders")
            .derive(taxed=col("amount") * 1.2)
            .select("oid", "taxed")
            .order_by("taxed", ascending=False)
            .collect()
        )
        assert via_pipeline.rows() == via_fluent.rows()

    def test_distinct_and_reverse(self):
        ctx = make_context()
        result = run(ctx, """
            load customers | keep country | distinct
            | sort country | reverse
        """)
        assert result.rows() == [("us",), ("uk",), ("jp",)]

    def test_case_expression_in_pipeline(self):
        ctx = make_context()
        result = run(ctx, """
            load orders
            | derive bucket = case when amount > 50.0 then 'big'
                                   else 'small' end
            | group bucket: n = count(*)
            | sort bucket
        """)
        assert result.rows() == [("big", 2), ("small", 3)]

    def test_semi_join(self):
        ctx = make_context()
        result = run(ctx, """
            load customers | join orders on cid = cust how semi | sort name
        """)
        assert [r[1] for r in result] == ["ada", "bob", "cho"]

    def test_limit_offset(self):
        ctx = make_context()
        result = run(ctx, "load orders | sort oid | limit 2 offset 1")
        assert [r[0] for r in result] == [101, 102]

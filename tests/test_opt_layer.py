"""Tests for the unified statistics and cost layer (:mod:`repro.opt`).

Covers statistics derivation from the chunked storage layout (dictionary
ndv, zone-map min/max), the shared cardinality estimator's provenance and
rules, the cost-based rewrite passes, and — via Hypothesis — that
cost-based plans stay bit-identical to rule-only plans and the reference
interpreter at any worker count.
"""

from hypothesis import given, settings, strategies as st

from repro import BigDataContext, RewriteOptions, Rewriter
from repro.core import algebra as A
from repro.core.expressions import BinOp, col, lit
from repro.opt.estimator import (
    DEFAULT, MAX_SELECTIVITY, STATS, CardinalityEstimator, split_conjuncts,
)
from repro.opt.rewrite import order_conjuncts, push_aggregates, reorder_joins
from repro.opt.stats import ColumnStats, TableStats
from repro.providers import ReferenceProvider, RelationalProvider
from repro.relational.catalog import RelationalCatalog
from repro.relational.engine import EngineOptions
from repro.storage.dictionary import DictColumn

from .helpers import (
    CUSTOMERS, ORDERS, customers_table, orders_table, run_reference,
    schema, table,
)

CUST = A.Scan("customers", CUSTOMERS)
ORD = A.Scan("orders", ORDERS)


def _catalog() -> RelationalCatalog:
    catalog = RelationalCatalog()
    catalog.register("customers", customers_table())
    catalog.register("orders", orders_table())
    return catalog


def _estimator(catalog: RelationalCatalog | None = None) -> CardinalityEstimator:
    if catalog is None:
        catalog = _catalog()
    return CardinalityEstimator(catalog.table_stats)


# --------------------------------------------------------------------------
# Statistics derivation from chunked storage
# --------------------------------------------------------------------------


class TestStatsDerivation:
    def test_ndv_from_dictionary_column(self):
        """Low-cardinality strings are dictionary-encoded at registration;
        their distinct count comes from the dictionary, not a value scan."""
        sch = schema(("tag", "str"), ("v", "int"))
        rows = [("ab" if i % 3 else "cd", i) for i in range(600)]
        catalog = RelationalCatalog()
        entry = catalog.register("t", table(sch, rows))
        assert isinstance(entry.table.column("tag"), DictColumn)
        stats = entry.stats["tag"]
        assert stats.distinct == 2
        assert stats.min == "ab" and stats.max == "cd"

    def test_minmax_and_nulls_from_zone_maps(self):
        sch = schema(("x", "int"), ("y", "float"))
        rows = [(i, None if i % 50 == 0 else float(i)) for i in range(300)]
        catalog = RelationalCatalog(chunk_rows=64)
        entry = catalog.register("t", table(sch, rows))
        assert entry.stats["x"].min == 0 and entry.stats["x"].max == 299
        assert entry.stats["x"].null_count == 0
        assert entry.stats["y"].null_count == 6
        assert entry.stats["y"].max == 299.0

    def test_table_stats_lookup(self):
        catalog = _catalog()
        stats = catalog.table_stats("orders")
        assert isinstance(stats, TableStats)
        assert stats.row_count == 5
        assert stats.ndv("cust") == 4
        assert catalog.table_stats("nope") is None
        assert stats.null_fraction("amount") == 0.0

    def test_stats_refresh_on_reregistration(self):
        """Re-registering a table bumps the catalog version and serves the
        new statistics — no stale numbers survive."""
        catalog = _catalog()
        before = catalog.version
        assert catalog.table_stats("orders").row_count == 5
        catalog.register(
            "orders", table(ORDERS, [(i, i, float(i)) for i in range(7)])
        )
        assert catalog.version == before + 1
        refreshed = catalog.table_stats("orders")
        assert refreshed.row_count == 7
        assert refreshed.ndv("cust") == 7

    def test_provider_stats_cached_and_invalidated(self):
        """Non-relational providers derive stats from the stored table,
        cache them, and recompute after re-registration."""
        provider = ReferenceProvider("ref")
        provider.register_dataset("orders", orders_table())
        first = provider.table_stats("orders")
        assert first.row_count == 5
        assert provider.table_stats("orders") is first  # cached
        provider.register_dataset(
            "orders", table(ORDERS, [(1, 1, 1.0)])
        )
        assert provider.table_stats("orders").row_count == 1
        assert provider.table_stats("missing") is None

    def test_federation_catalog_delegates_to_holding_provider(self):
        ctx = BigDataContext()
        ctx.add_provider(RelationalProvider("sql"))
        ctx.load("orders", orders_table(), on="sql")
        stats = ctx.catalog.table_stats("orders")
        assert stats is not None and stats.row_count == 5
        assert ctx.catalog.table_stats("unknown") is None

    def test_column_stats_of_whole_table(self):
        stats = TableStats.of(orders_table())
        assert stats.row_count == 5
        assert stats.column("amount").min == 5.0
        assert stats.column("amount").max == 300.0


# --------------------------------------------------------------------------
# The shared estimator
# --------------------------------------------------------------------------


class TestEstimator:
    def test_scan_provenance(self):
        est = _estimator()
        known = est.estimate(ORD)
        assert known.rows == 5 and known.source == STATS
        unknown = est.estimate(A.Scan("mystery", ORDERS))
        assert unknown.rows == 1000 and unknown.source == DEFAULT

    def test_equality_selectivity_is_one_over_ndv(self):
        est = _estimator()
        hit = est.estimate(A.Filter(ORD, col("cust") == lit(2)))
        assert hit.source == STATS
        assert hit.selectivity == 0.25  # ndv(cust) == 4

    def test_equality_outside_range_estimates_zero(self):
        est = _estimator()
        miss = est.estimate(A.Filter(ORD, col("cust") == lit(50)))
        assert miss.selectivity == 0.0 and miss.rows == 0

    def test_selectivity_never_reaches_one(self):
        est = _estimator()
        keep_all = est.estimate(A.Filter(ORD, col("amount") > lit(0.0)))
        assert keep_all.selectivity <= MAX_SELECTIVITY
        assert keep_all.rows < 5

    def test_opaque_predicate_falls_back_to_default(self):
        est = _estimator()
        opaque = est.estimate(
            A.Filter(ORD, (col("amount") * lit(2.0)) > lit(10.0))
        )
        assert opaque.source == DEFAULT
        assert opaque.selectivity == 0.33

    def test_join_containment(self):
        est = _estimator()
        join = A.Join(ORD, CUST, (("cust", "cid"),))
        # |O|*|C| / max(ndv(cust), ndv(cid)) = 5*4/4
        assert est.rows(join) == 5.0
        assert est.estimate(join).source == STATS

    def test_group_by_bounded_by_ndv(self):
        est = _estimator()
        agg = A.Aggregate(
            ORD, ("cust",), (A.AggSpec("total", "sum", col("amount")),)
        )
        assert est.rows(agg) == 4.0  # ndv(cust)


# --------------------------------------------------------------------------
# Cost-based rewrite passes
# --------------------------------------------------------------------------

FACT = schema(("k1", "int"), ("k2", "int"), ("v", "float"))
DIM1 = schema(("d1", "int"), ("x", "float"))
DIM2 = schema(("d2", "int"), ("y", "float"))


def _star_stats(name):
    """Synthetic warehouse stats: dim2 is tiny, dim1 matches everything."""
    shapes = {
        "fact": (10_000, {"k1": 100, "k2": 100, "v": 5_000}),
        "dim1": (100, {"d1": 100, "x": 100}),
        "dim2": (5, {"d2": 5, "y": 5}),
    }
    if name not in shapes:
        return None
    rows, ndvs = shapes[name]
    return TableStats(
        row_count=rows,
        columns={
            c: ColumnStats(distinct=n, null_count=0, min=0, max=n)
            for c, n in ndvs.items()
        },
    )


def _star_join() -> A.Node:
    return A.Join(
        A.Join(A.Scan("fact", FACT), A.Scan("dim1", DIM1), (("k1", "d1"),)),
        A.Scan("dim2", DIM2),
        (("k2", "d2"),),
    )


def _star_data() -> dict:
    return {
        "fact": table(FACT, [(i % 4, i % 3, float(i)) for i in range(12)]),
        "dim1": table(DIM1, [(i, float(i)) for i in range(4)]),
        "dim2": table(DIM2, [(i, float(10 + i)) for i in range(3)]),
    }


class TestJoinReordering:
    def test_selective_dimension_joins_first(self):
        tree = _star_join()
        out = reorder_joins(tree, CardinalityEstimator(_star_stats))
        # column order changed, so a projection restores it
        assert isinstance(out, A.Project)
        inner = out.child
        assert isinstance(inner, A.Join)
        assert isinstance(inner.right, A.Scan) and inner.right.name == "dim1"
        first = inner.left
        assert isinstance(first.right, A.Scan) and first.right.name == "dim2"
        assert out.schema == tree.schema

    def test_reordered_plan_matches_reference(self):
        tree = _star_join()
        out = reorder_joins(tree, CardinalityEstimator(_star_stats))
        data = _star_data()
        assert run_reference(out, **data).same_rows(
            run_reference(tree, **data), float_tol=0.0
        )

    def test_no_stats_no_reorder(self):
        tree = _star_join()
        assert reorder_joins(tree, CardinalityEstimator(None)) is tree

    def test_intent_tagged_join_untouched(self):
        tree = _star_join().with_intent("pinned")
        assert reorder_joins(tree, CardinalityEstimator(_star_stats)) is tree

    def test_rewriter_integration(self):
        """The full rewriter applies the reorder when given a stats source
        and leaves the tree alone without one."""
        tree = _star_join()
        plain = Rewriter().rewrite(tree)
        assert plain.same_as(tree)
        cost_based = Rewriter(stats_source=_star_stats).rewrite(tree)
        assert isinstance(cost_based, A.Project)


class TestConjunctOrdering:
    def test_most_selective_conjunct_first(self):
        pred = (col("amount") > lit(4.0)) & (col("cust") == lit(2))
        tree = A.Filter(ORD, pred)
        out = order_conjuncts(tree, _estimator())
        parts = split_conjuncts(out.predicate)
        # equality (sel 0.25) must now precede the near-total range scan
        assert isinstance(parts[0], BinOp) and parts[0].op == "=="
        data = {"orders": orders_table(), "customers": customers_table()}
        assert run_reference(out, **data).same_rows(
            run_reference(tree, **data), float_tol=0.0
        )

    def test_noop_without_stats(self):
        pred = (col("amount") > lit(4.0)) & (col("cust") == lit(2))
        tree = A.Filter(ORD, pred)
        assert order_conjuncts(tree, CardinalityEstimator(None)) is tree


class TestAggregatePushdown:
    BIG = schema(("g", "int"), ("amount", "float"))
    SMALL = schema(("gid", "int"), ("label", "str"))

    def _stats(self, name):
        shapes = {
            "big": (1_000, {"g": 4, "amount": 500}),
            "small": (4, {"gid": 4, "label": 4}),
        }
        if name not in shapes:
            return None
        rows, ndvs = shapes[name]
        return TableStats(
            row_count=rows,
            columns={
                c: ColumnStats(distinct=n, null_count=0, min=0, max=n)
                for c, n in ndvs.items()
            },
        )

    def _tree(self) -> A.Aggregate:
        join = A.Join(
            A.Scan("big", self.BIG), A.Scan("small", self.SMALL),
            (("g", "gid"),),
        )
        return A.Aggregate(
            join, ("g",),
            (
                A.AggSpec("total", "sum", col("amount")),
                A.AggSpec("n", "count", None),
            ),
        )

    def _data(self) -> dict:
        return {
            "big": table(
                self.BIG, [(i % 3, float(i)) for i in range(30)]
            ),
            "small": table(
                self.SMALL, [(0, "a"), (1, "b"), (1, "b"), (2, "c")]
            ),
        }

    def test_pushdown_applies_below_join(self):
        out = push_aggregates(self._tree(), CardinalityEstimator(self._stats))
        assert isinstance(out, A.Aggregate)
        join = out.child
        assert isinstance(join, A.Join)
        assert isinstance(join.left, A.Aggregate)  # partial on the big side
        assert join.left.group_by == ("g",)

    def test_pushdown_matches_reference(self):
        tree = self._tree()
        out = push_aggregates(tree, CardinalityEstimator(self._stats))
        data = self._data()
        assert run_reference(out, **data).same_rows(
            run_reference(tree, **data), float_tol=1e-9
        )

    def test_gated_off_without_benefit(self):
        """When the group count is close to the input size the pushdown
        would not pay, so the tree stays put."""

        def stats(name):
            base = self._stats(name)
            if name != "big" or base is None:
                return base
            return TableStats(
                row_count=1_000,
                columns={
                    "g": ColumnStats(
                        distinct=900, null_count=0, min=0, max=900
                    ),
                    "amount": ColumnStats(
                        distinct=500, null_count=0, min=0, max=500
                    ),
                },
            )

        tree = self._tree()
        assert push_aggregates(tree, CardinalityEstimator(stats)) is tree

    def test_noop_without_stats(self):
        tree = self._tree()
        assert push_aggregates(tree, CardinalityEstimator(None)) is tree


# --------------------------------------------------------------------------
# Property: cost-based == rule-only == reference, at any worker count
# --------------------------------------------------------------------------

R0 = schema(("k", "int"), ("a", "float"))
R1 = schema(("k1", "int"), ("b", "float"))
R2 = schema(("k2", "int"), ("c", "float"))

_rel = lambda key_hi: st.lists(
    st.tuples(
        st.integers(0, key_hi), st.integers(-8, 8).map(float)
    ),
    max_size=12,
)

RULE_ONLY = RewriteOptions(
    join_reordering=False, conjunct_ordering=False, aggregate_pushdown=False,
)


class TestCostBasedPlansAgree:
    @settings(deadline=None, max_examples=25)
    @given(r0=_rel(3), r1=_rel(3), r2=_rel(4), cut=st.integers(-4, 4))
    def test_multi_join_trees_agree(self, r0, r1, r2, cut):
        t0, t1, t2 = table(R0, r0), table(R1, r1), table(R2, r2)
        tree = A.Aggregate(
            A.Filter(
                A.Join(
                    A.Join(A.Scan("r0", R0), A.Scan("r1", R1), (("k", "k1"),)),
                    A.Scan("r2", R2),
                    (("k", "k2"),),
                ),
                (col("a") > lit(float(cut))) & (col("k") >= lit(0)),
            ),
            ("k",),
            (
                A.AggSpec("total", "sum", col("b")),
                A.AggSpec("n", "count", None),
            ),
        )
        expected = run_reference(tree, r0=t0, r1=t1, r2=t2)
        for workers in (1, 3):
            for options in (RewriteOptions(), RULE_ONLY):
                ctx = BigDataContext(rewrite=options)
                ctx.add_provider(RelationalProvider(
                    "sql", EngineOptions(morsel_workers=workers, morsel_size=4)
                ))
                ctx.load("r0", t0, on="sql")
                ctx.load("r1", t1, on="sql")
                ctx.load("r2", t2, on="sql")
                result = ctx.run(ctx.query(tree)).table
                assert result.same_rows(expected, float_tol=0.0)

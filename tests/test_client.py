"""Client layer tests: BigDataContext, fluent Query builder, Collections."""

import pytest

from repro import BigDataContext, col, lit
from repro.core import algebra as A
from repro.core.errors import AlgebraError, PlanningError
from repro.providers import (
    ArrayProvider, GraphProvider, LinalgProvider, ReferenceProvider,
    RelationalProvider,
)

from .helpers import (
    CUSTOMERS, MATRIX, ORDERS,
    customers_table, matrix_table, orders_table, schema, table,
)


def make_context(**kwargs) -> BigDataContext:
    ctx = BigDataContext(**kwargs)
    ctx.add_provider(RelationalProvider("sql"))
    ctx.add_provider(ArrayProvider("scidb"))
    ctx.load("customers", customers_table(), on="sql")
    ctx.load("orders", orders_table(), on="sql")
    ctx.load("m", matrix_table([[1, 2, 3], [4, 5, 6], [7, 8, 9]]), on="scidb")
    return ctx


class TestContext:
    def test_table_requires_registered_dataset(self):
        ctx = make_context()
        with pytest.raises(PlanningError):
            ctx.table("ghost")

    def test_simple_pipeline(self):
        ctx = make_context()
        result = (
            ctx.table("orders")
            .where(col("amount") > 20.0)
            .order_by("amount", ascending=False)
            .select("oid", "amount")
            .collect()
        )
        assert result.rows() == [(103, 300.0), (101, 75.0), (100, 25.0)]

    def test_join_aggregate_pipeline(self):
        ctx = make_context()
        result = (
            ctx.table("customers")
            .join(ctx.table("orders"), on=[("cid", "cust")])
            .aggregate(["country"], total=("sum", col("amount")),
                       n=("count", None))
            .order_by("total", ascending=False)
            .collect()
        )
        assert result.rows()[0] == ("jp", 300.0, 1)

    def test_last_report_populated(self):
        ctx = make_context()
        ctx.table("orders").collect()
        assert ctx.last_report is not None
        assert ctx.last_report.fragments == 1

    def test_array_pipeline(self):
        ctx = make_context()
        result = (
            ctx.table("m")
            .slice_dims(i=(0, 1))
            .regrid({"i": 2, "j": 2}, v=("mean", col("v")))
            .collect()
        )
        assert result.schema.dimension_names == ("i", "j")

    def test_matmul_fluent(self):
        ctx = make_context()
        m2 = schema(("j", "int", True), ("k", "int", True), ("w", "float"))
        ctx.load("m2", table(m2, [(i, i, 1.0) for i in range(3)]), on="scidb")
        result = ctx.table("m").matmul(ctx.table("m2")).collect()
        # multiplying by the identity: same values, dims renamed to (i, k)
        expected = matrix_table([[1, 2, 3], [4, 5, 6], [7, 8, 9]]).rename(
            {"j": "k"}
        )
        assert result.table.same_rows(expected, float_tol=1e-9)

    def test_inline_query(self):
        ctx = make_context()
        result = ctx.inline(
            schema(("x", "int")), [(3,), (1,), (2,)]
        ).order_by("x").collect()
        assert result.rows() == [(1,), (2,), (3,)]

    def test_explain_mentions_server(self):
        ctx = make_context()
        text = ctx.table("orders").where(col("amount") > 0.0).explain()
        assert "sql" in text

    def test_coverage_matrix_shape(self):
        ctx = make_context()
        matrix = ctx.coverage_matrix()
        assert matrix["Window"]["sql"] is False
        assert matrix["Window"]["scidb"] is True
        assert matrix["Join"]["sql"] is True

    def test_unbound_query_cannot_collect(self):
        from repro.client.query import Query

        q = Query(A.Scan("orders", ORDERS))
        with pytest.raises(AlgebraError):
            q.collect()

    def test_pin_server_portability(self):
        """The same client program runs unchanged on different servers."""
        ctx = make_context()
        ctx.add_provider(ReferenceProvider("naive"))
        ctx.load("orders", orders_table(), on="naive")
        query = ctx.table("orders").where(col("amount") > 20.0)
        on_sql = query.collect(on="sql")
        on_naive = query.collect(on="naive")
        assert on_sql.table.same_rows(on_naive.table)


class TestQueryVerbs:
    def test_derive_and_rename(self):
        ctx = make_context()
        result = (
            ctx.table("orders")
            .derive(taxed=col("amount") * 1.1)
            .rename(taxed="with_tax")
            .select("oid", "with_tax")
            .limit(1)
            .collect()
        )
        assert result.schema.names == ("oid", "with_tax")

    def test_set_operations(self):
        ctx = make_context()
        a = ctx.inline(schema(("x", "int")), [(1,), (2,), (2,)])
        b = ctx.inline(schema(("x", "int")), [(2,), (3,)])
        assert len(a.union(b).collect()) == 5
        assert a.intersect(b).collect().rows() == [(2,)]
        assert a.except_(b).collect().rows() == [(1,)]

    def test_distinct_reverse_limit(self):
        ctx = make_context()
        q = ctx.inline(schema(("x", "int")), [(1,), (1,), (2,), (3,)])
        assert len(q.distinct().collect()) == 3
        assert q.reverse().limit(1).collect().rows() == [(3,)]

    def test_aggregate_requires_specs(self):
        ctx = make_context()
        with pytest.raises(AlgebraError):
            ctx.table("orders").aggregate(["cust"])

    def test_iterate_fluent(self):
        ctx = make_context()
        state = schema(("i", "int", True), ("v", "float"))
        ctx.load("seed", table(state, [(0, 1.0), (1, 4.0)]), on="sql")
        result = (
            ctx.table("seed")
            .iterate(
                lambda s: s.derive(nv=col("v") * 0.5)
                          .select("i", "nv")
                          .rename(nv="v"),
                until=("v", 0.3),
                max_iter=50,
            )
            .collect()
        )
        values = {r[0]: r[1] for r in result}
        assert values[1] == pytest.approx(0.25)  # 4 -> 2 -> 1 -> .5 -> .25

    def test_semi_join_string_keys(self):
        ctx = make_context()
        us = ctx.table("customers").where(col("country") == "us")
        result = (
            ctx.table("customers")
            .join(us.rename(cid="cid2", name="n2", country="c2"),
                  on=[("cid", "cid2")], how="semi")
            .collect()
        )
        assert {r[1] for r in result} == {"bob", "dee"}


class TestCollection:
    def test_protocol(self):
        ctx = make_context()
        result = ctx.table("customers").order_by("cid").collect()
        assert len(result) == 4
        assert result[0][1] == "ada"
        assert result[-1][1] == "dee"
        assert [r[0] for r in result] == [1, 2, 3, 4]
        assert bool(result)

    def test_out_of_range(self):
        ctx = make_context()
        result = ctx.table("customers").collect()
        with pytest.raises(IndexError):
            result[99]

    def test_column_and_dicts(self):
        ctx = make_context()
        result = ctx.table("customers").order_by("cid").limit(2).collect()
        assert result.column("name") == ["ada", "bob"]
        assert result.dicts()[0]["country"] == "uk"

    def test_scalar(self):
        ctx = make_context()
        total = (
            ctx.table("orders")
            .aggregate([], total=("sum", col("amount")))
            .collect()
            .scalar()
        )
        assert total == pytest.approx(415.0)

    def test_scalar_rejects_non_scalar(self):
        ctx = make_context()
        with pytest.raises(ValueError):
            ctx.table("orders").collect().scalar()


class TestFrontendShortcuts:
    def test_sql_shortcut(self):
        ctx = make_context()
        result = ctx.sql(
            "SELECT oid FROM orders WHERE amount > 100.0 ORDER BY oid"
        ).collect()
        assert result.rows() == [(103,)]

    def test_pipeline_shortcut(self):
        ctx = make_context()
        result = ctx.pipeline(
            "load orders | filter amount > 100.0 | keep oid"
        ).collect()
        assert result.rows() == [(103,)]

    def test_all_three_surfaces_agree(self):
        ctx = make_context()
        fluent = (ctx.table("orders").where(col("amount") > 20.0)
                    .select("oid").order_by("oid").collect())
        sql = ctx.sql("SELECT oid FROM orders WHERE amount > 20.0 "
                      "ORDER BY oid").collect()
        pipe = ctx.pipeline("load orders | filter amount > 20.0 "
                            "| keep oid | sort oid").collect()
        assert fluent.rows() == sql.rows() == pipe.rows()

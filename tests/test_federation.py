"""Federation tests: planning, fragment execution, channel metering, and the
interoperation (direct vs application routing) comparison."""

import numpy as np
import pytest

from repro.core import algebra as A
from repro.core.errors import PlanningError
from repro.core.expressions import col
from repro.federation.catalog import FederationCatalog
from repro.federation.channels import (
    ApplicationChannel, DirectChannel, NetworkModel, TransferMetrics,
)
from repro.federation.executor import FederatedExecutor, run_iterate_clientside
from repro.federation.planner import FederationPlanner
from repro.graph import queries
from repro.providers import (
    ArrayProvider, GraphProvider, LinalgProvider, ReferenceProvider,
    RelationalProvider,
)

from .helpers import (
    CUSTOMERS, MATRIX, ORDERS,
    customers_table, matrix_table, orders_table, schema, table,
)


def full_catalog():
    catalog = FederationCatalog()
    catalog.add_provider(RelationalProvider("sql"))
    catalog.add_provider(ArrayProvider("scidb"))
    catalog.add_provider(LinalgProvider("scalapack"))
    catalog.add_provider(GraphProvider("graphd"))
    catalog.register_dataset("customers", customers_table(), on="sql")
    catalog.register_dataset("orders", orders_table(), on="sql")
    catalog.register_dataset(
        "m", matrix_table([[1, 2, 3], [4, 5, 6], [7, 8, 9]]), on="scidb"
    )
    return catalog


class TestChannels:
    def test_direct_channel_one_hop(self):
        metrics = TransferMetrics()
        channel = DirectChannel(metrics, NetworkModel(latency_s=0.01,
                                                      bandwidth_bytes_per_s=1e6))
        t = customers_table()
        channel.send(t, "a", "b")
        assert metrics.hop_count == 1
        assert metrics.bytes_direct == t.nbytes
        assert metrics.bytes_through_application == 0
        assert metrics.simulated_network_s == pytest.approx(
            0.01 + t.nbytes / 1e6
        )

    def test_application_channel_two_hops(self):
        metrics = TransferMetrics()
        channel = ApplicationChannel(metrics, NetworkModel(latency_s=0.01,
                                                           bandwidth_bytes_per_s=1e6))
        t = customers_table()
        channel.send(t, "a", "b")
        assert metrics.hop_count == 2
        assert metrics.bytes_through_application == 2 * t.nbytes
        assert metrics.simulated_network_s == pytest.approx(
            2 * (0.01 + t.nbytes / 1e6)
        )


class TestCatalog:
    def test_locations_and_replication(self):
        catalog = full_catalog()
        catalog.register_dataset("orders", orders_table(), on=["scidb"])
        assert catalog.locations("orders") == ["scidb", "sql"]

    def test_duplicate_provider_rejected(self):
        catalog = full_catalog()
        with pytest.raises(PlanningError):
            catalog.add_provider(RelationalProvider("sql"))

    def test_unknown_dataset(self):
        catalog = full_catalog()
        assert catalog.locations("nope") == []
        with pytest.raises(PlanningError):
            catalog.schema_of("nope")


class TestPlanner:
    def test_single_server_query_is_one_fragment(self):
        catalog = full_catalog()
        planner = FederationPlanner(catalog)
        tree = A.Filter(A.Scan("orders", ORDERS), col("amount") > 10.0)
        plan = planner.plan(tree)
        assert len(plan.fragments) == 1
        assert plan.root.server == "sql"

    def test_window_routed_to_array_server(self):
        catalog = full_catalog()
        planner = FederationPlanner(catalog)
        tree = A.Window(
            A.Scan("m", MATRIX), (("i", 1),),
            (A.AggSpec("v", "sum", col("v")),),
        )
        plan = planner.plan(tree)
        assert plan.root.server == "scidb"

    def test_cross_server_query_gets_cut(self):
        # relational data feeding an array-only operator forces a transfer
        catalog = full_catalog()
        catalog.register_dataset(
            "grid_rel", matrix_table([[1, 2], [3, 4]]), on="sql"
        )
        planner = FederationPlanner(catalog)
        tree = A.Window(
            A.Scan("grid_rel", MATRIX), (("i", 1), ("j", 1)),
            (A.AggSpec("v", "mean", col("v")),),
        )
        plan = planner.plan(tree)
        assert len(plan.fragments) == 2
        assert plan.fragments[0].server == "sql"
        assert plan.root.server == "scidb"
        assert plan.transfers() == [(0, 1)]

    def test_uncovered_operator_fails_with_names(self):
        catalog = FederationCatalog()
        catalog.add_provider(LinalgProvider("scalapack"))
        catalog.register_dataset("orders", orders_table(), on="scalapack")
        planner = FederationPlanner(catalog)
        tree = A.Filter(A.Scan("orders", ORDERS), col("amount") > 10.0)
        with pytest.raises(PlanningError, match="Filter"):
            planner.plan(tree)

    def test_unregistered_dataset_fails(self):
        catalog = full_catalog()
        planner = FederationPlanner(catalog)
        with pytest.raises(PlanningError):
            planner.plan(A.Scan("ghost", ORDERS))

    def test_pin_server_forces_placement(self):
        catalog = full_catalog()
        catalog.register_dataset("orders", orders_table(), on="graphd")
        planner = FederationPlanner(catalog)
        tree = A.Filter(A.Scan("orders", ORDERS), col("amount") > 10.0)
        plan = planner.plan(tree, pin_server="graphd")
        assert plan.root.server == "graphd"

    def test_pin_server_checks_coverage(self):
        catalog = full_catalog()
        planner = FederationPlanner(catalog)
        tree = A.Filter(A.Scan("orders", ORDERS), col("amount") > 10.0)
        with pytest.raises(PlanningError):
            planner.plan(tree, pin_server="scalapack")

    def test_iterate_is_atomic(self):
        catalog = full_catalog()
        catalog.register_dataset(
            "edges", table(schema(("src", "int"), ("dst", "int")),
                           [(0, 1), (1, 2), (2, 0)]),
            on="graphd",
        )
        catalog.register_dataset(
            "vertices", table(schema(("v", "int", True)), [(0,), (1,), (2,)]),
            on="graphd",
        )
        planner = FederationPlanner(catalog)
        tree = queries.pagerank(
            A.Scan("vertices", queries.VERTEX_SCHEMA),
            A.Scan("edges", queries.EDGE_SCHEMA),
            3,
        )
        plan = planner.plan(tree)
        assert len(plan.fragments) == 1
        assert plan.root.server == "graphd"

    def test_iterate_ships_missing_datasets(self):
        # edge data lives on sql; the loop must run on graphd with inputs fed
        catalog = full_catalog()
        catalog.register_dataset(
            "edges", table(schema(("src", "int"), ("dst", "int")),
                           [(0, 1), (1, 2), (2, 0)]),
            on="sql",
        )
        catalog.register_dataset(
            "vertices", table(schema(("v", "int", True)), [(0,), (1,), (2,)]),
            on="sql",
        )
        planner = FederationPlanner(catalog)
        tree = queries.pagerank(
            A.Scan("vertices", queries.VERTEX_SCHEMA),
            A.Scan("edges", queries.EDGE_SCHEMA),
            3,
        )
        plan = planner.plan(tree)
        # feeders for the two datasets plus the loop fragment
        assert plan.root.server in ("graphd", "sql")
        if plan.root.server == "graphd":
            assert len(plan.fragments) == 3
            assert all(f.server == "sql" for f in plan.fragments[:-1])


class TestExecutor:
    def test_cross_server_execution_matches_reference(self):
        catalog = full_catalog()
        catalog.register_dataset(
            "grid_rel", matrix_table([[1, 2], [3, 4]]), on="sql"
        )
        planner = FederationPlanner(catalog)
        executor = FederatedExecutor(catalog, routing="direct")
        tree = A.Window(
            A.Scan("grid_rel", MATRIX), (("i", 1), ("j", 1)),
            (A.AggSpec("v", "mean", col("v")),),
        )
        report = executor.execute(planner.plan(tree))
        ref = ReferenceProvider("ref")
        ref.register_dataset("grid_rel", matrix_table([[1, 2], [3, 4]]))
        assert report.result.same_rows(ref.execute(tree), float_tol=1e-9)
        assert report.metrics.bytes_direct > 0
        assert report.metrics.bytes_through_application == 0

    def test_application_routing_doubles_the_bytes(self):
        catalog = full_catalog()
        catalog.register_dataset(
            "grid_rel", matrix_table([[1, 2], [3, 4]]), on="sql"
        )
        tree = A.Window(
            A.Scan("grid_rel", MATRIX), (("i", 1), ("j", 1)),
            (A.AggSpec("v", "mean", col("v")),),
        )
        reports = {}
        for routing in ("direct", "application"):
            planner = FederationPlanner(catalog)
            executor = FederatedExecutor(catalog, routing=routing)
            reports[routing] = executor.execute(planner.plan(tree))
        direct, app = reports["direct"], reports["application"]
        assert direct.result.same_rows(app.result)
        moved = direct.metrics.bytes_direct
        assert app.metrics.bytes_through_application == 2 * moved
        assert app.metrics.simulated_network_s > direct.metrics.simulated_network_s

    def test_query_shipping_is_metered(self):
        catalog = full_catalog()
        planner = FederationPlanner(catalog)
        executor = FederatedExecutor(catalog)
        tree = A.Filter(A.Scan("orders", ORDERS), col("amount") > 10.0)
        report = executor.execute(planner.plan(tree))
        assert len(report.metrics.queries) == 1
        assert report.metrics.query_bytes > 0
        assert report.result_bytes > 0

    def test_three_server_pipeline(self):
        """relational filter -> linalg matmul -> array regrid, end to end."""
        rng = np.random.default_rng(0)
        a = rng.uniform(1, 2, (8, 8))
        m2 = schema(("j", "int", True), ("k", "int", True), ("w", "float"))
        catalog = full_catalog()
        catalog.register_dataset("ga", table(MATRIX, [
            (i, j, float(v)) for (i, j), v in np.ndenumerate(a)
        ]), on="sql")
        catalog.register_dataset("gb", table(m2, [
            (i, j, float(v)) for (i, j), v in np.ndenumerate(a)
        ]), on="scalapack")
        planner = FederationPlanner(catalog)
        executor = FederatedExecutor(catalog)

        filtered = A.Filter(A.Scan("ga", MATRIX), col("v") > 1.2)
        keyed = A.AsDims(filtered, ("i", "j"))
        product = A.MatMul(keyed, A.Scan("gb", m2))
        tree = A.Regrid(product, (("i", 2), ("k", 2)),
                        (A.AggSpec("v", "mean", col("v")),))
        plan = planner.plan(tree)
        assert len(plan.servers_used) >= 2
        report = executor.execute(plan)

        ref = ReferenceProvider("ref")
        ref.register_dataset("ga", catalog.provider("sql").dataset("ga"))
        ref.register_dataset("gb", catalog.provider("scalapack").dataset("gb"))
        assert report.result.same_rows(ref.execute(tree), float_tol=1e-6)
        assert report.metrics.bytes_through_application == 0


class TestClientsideIteration:
    def make(self):
        catalog = FederationCatalog()
        catalog.add_provider(GraphProvider("graphd"))
        edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 0)]
        catalog.register_dataset(
            "edges", table(schema(("src", "int"), ("dst", "int")), edges),
            on="graphd",
        )
        catalog.register_dataset(
            "vertices", table(schema(("v", "int", True)),
                              [(i,) for i in range(4)]),
            on="graphd",
        )
        tree = queries.pagerank(
            A.Scan("vertices", queries.VERTEX_SCHEMA),
            A.Scan("edges", queries.EDGE_SCHEMA),
            4, tolerance=1e-8, max_iter=100,
        )
        return catalog, tree

    def test_clientside_loop_matches_inserver(self):
        catalog, tree = self.make()
        planner = FederationPlanner(catalog)
        executor = FederatedExecutor(catalog)
        in_server = executor.execute(planner.plan(tree))
        client = run_iterate_clientside(tree, planner, executor)
        assert client.result.same_rows(in_server.result, float_tol=1e-6)

    def test_clientside_loop_pays_round_trips(self):
        catalog, tree = self.make()
        planner = FederationPlanner(catalog)
        executor = FederatedExecutor(catalog)
        in_server = executor.execute(planner.plan(tree))
        client = run_iterate_clientside(tree, planner, executor)
        assert in_server.round_trips == 1
        assert client.round_trips > 5
        # the client loop ships state in every query and pulls it back out
        assert client.metrics.query_bytes > 10 * in_server.metrics.query_bytes
        assert client.result_bytes > 5 * in_server.result_bytes

"""Unit tests for the columnar storage layer."""

import numpy as np
import pytest

from repro.core.errors import SchemaError, TypeMismatchError
from repro.core.types import DType
from repro.storage.column import Column
from repro.storage.table import ColumnTable

from .helpers import schema, table


class TestColumn:
    def test_from_values_without_nulls_has_no_mask(self):
        c = Column.from_values(DType.INT64, [1, 2, 3])
        assert c.mask is None
        assert c.to_list() == [1, 2, 3]

    def test_from_values_with_nulls(self):
        c = Column.from_values(DType.FLOAT64, [1.0, None, 3.0])
        assert c.null_count == 1
        assert c.to_list() == [1.0, None, 3.0]
        assert c[1] is None

    def test_all_false_mask_is_dropped(self):
        c = Column(DType.INT64, np.array([1, 2]), np.array([False, False]))
        assert c.mask is None

    def test_type_error_on_bad_values(self):
        with pytest.raises(TypeMismatchError):
            Column.from_values(DType.INT64, ["a", "b"])

    def test_take_with_negative_indices_pads_nulls(self):
        c = Column.from_values(DType.INT64, [10, 20, 30])
        taken = c.take(np.array([2, -1, 0]))
        assert taken.to_list() == [30, None, 10]

    def test_take_propagates_existing_nulls(self):
        c = Column.from_values(DType.INT64, [10, None, 30])
        taken = c.take(np.array([1, 1, 2]))
        assert taken.to_list() == [None, None, 30]

    def test_filter_and_slice_and_reverse(self):
        c = Column.from_values(DType.INT64, [1, 2, 3, 4])
        assert c.filter(np.array([True, False, True, False])).to_list() == [1, 3]
        assert c.slice(1, 3).to_list() == [2, 3]
        assert c.reverse().to_list() == [4, 3, 2, 1]

    def test_string_columns(self):
        c = Column.from_values(DType.STRING, ["a", None, "ccc"])
        assert c.to_list() == ["a", None, "ccc"]
        assert c.nbytes > 0

    def test_cast_numeric(self):
        c = Column.from_values(DType.INT64, [1, 2])
        assert c.cast(DType.FLOAT64).to_list() == [1.0, 2.0]

    def test_cast_string_preserves_nulls(self):
        c = Column.from_values(DType.INT64, [1, None])
        assert c.cast(DType.STRING).to_list() == ["1", None]

    def test_concat(self):
        a = Column.from_values(DType.INT64, [1])
        b = Column.from_values(DType.INT64, [None, 3])
        merged = Column.concat([a, b])
        assert merged.to_list() == [1, None, 3]

    def test_concat_rejects_mixed_types(self):
        a = Column.from_values(DType.INT64, [1])
        b = Column.from_values(DType.FLOAT64, [1.0])
        with pytest.raises(TypeMismatchError):
            Column.concat([a, b])

    def test_full_null_column(self):
        c = Column.full(DType.FLOAT64, None, 3)
        assert c.to_list() == [None, None, None]

    def test_equals(self):
        a = Column.from_values(DType.INT64, [1, None])
        b = Column.from_values(DType.INT64, [1, None])
        c = Column.from_values(DType.INT64, [1, 2])
        assert a.equals(b)
        assert not a.equals(c)


class TestColumnTable:
    S = schema(("a", "int"), ("b", "str"))

    def test_from_rows_round_trip(self):
        t = table(self.S, [(1, "x"), (2, None)])
        assert t.to_rows() == [(1, "x"), (2, None)]
        assert t.num_rows == 2

    def test_schema_column_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            ColumnTable(self.S, {"a": Column.from_values(DType.INT64, [1])})

    def test_ragged_columns_rejected(self):
        with pytest.raises(SchemaError):
            ColumnTable(self.S, {
                "a": Column.from_values(DType.INT64, [1, 2]),
                "b": Column.from_values(DType.STRING, ["x"]),
            })

    def test_dtype_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            ColumnTable(self.S, {
                "a": Column.from_values(DType.FLOAT64, [1.0]),
                "b": Column.from_values(DType.STRING, ["x"]),
            })

    def test_null_in_dimension_rejected(self):
        dim_schema = schema(("i", "int", True), ("v", "float"))
        with pytest.raises(SchemaError):
            table(dim_schema, [(None, 1.0)])

    def test_iter_dicts(self):
        t = table(self.S, [(1, "x")])
        assert list(t.iter_dicts()) == [{"a": 1, "b": "x"}]

    def test_take_filter_slice_reverse(self):
        t = table(self.S, [(1, "a"), (2, "b"), (3, "c")])
        assert t.take(np.array([2, 0])).to_rows() == [(3, "c"), (1, "a")]
        assert t.filter(np.array([True, False, True])).to_rows() == [(1, "a"), (3, "c")]
        assert t.slice(1, 2).to_rows() == [(2, "b")]
        assert t.reverse().to_rows() == [(3, "c"), (2, "b"), (1, "a")]

    def test_select_and_rename(self):
        t = table(self.S, [(1, "a")])
        assert t.select(["b"]).to_rows() == [("a",)]
        renamed = t.rename({"a": "x"})
        assert renamed.schema.names == ("x", "b")

    def test_concat(self):
        t1 = table(self.S, [(1, "a")])
        t2 = table(self.S, [(2, "b")])
        assert ColumnTable.concat([t1, t2]).num_rows == 2

    def test_from_arrays_zero_copy(self):
        s = schema(("x", "int"), ("y", "float"))
        t = ColumnTable.from_arrays(s, {
            "x": np.arange(3), "y": np.linspace(0, 1, 3),
        })
        assert t.num_rows == 3
        assert t.array("x").dtype == np.int64

    def test_same_rows_order_insensitive(self):
        t1 = table(self.S, [(1, "a"), (2, "b")])
        t2 = table(self.S, [(2, "b"), (1, "a")])
        assert t1.same_rows(t2)

    def test_same_rows_detects_multiset_difference(self):
        t1 = table(self.S, [(1, "a"), (1, "a")])
        t2 = table(self.S, [(1, "a"), (2, "b")])
        assert not t1.same_rows(t2)

    def test_same_rows_with_float_tolerance(self):
        s = schema(("v", "float"))
        t1 = table(s, [(1.0,)])
        t2 = table(s, [(1.0 + 1e-12,)])
        assert not t1.same_rows(t2)
        assert t1.same_rows(t2, float_tol=1e-9)

    def test_same_rows_nulls_match_only_nulls(self):
        s = schema(("v", "float"))
        assert not table(s, [(None,)]).same_rows(table(s, [(0.0,)]))
        assert table(s, [(None,)]).same_rows(table(s, [(None,)]))

    def test_nbytes_positive(self):
        t = table(self.S, [(1, "hello")])
        assert t.nbytes > 0

    def test_empty_table(self):
        t = ColumnTable.empty(self.S)
        assert t.num_rows == 0
        assert t.to_rows() == []

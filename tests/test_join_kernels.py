"""Property tests for the vectorized join & aggregation kernel layer.

Three families of guarantees:

* every join implementation (vectorized code join, python hash baseline,
  merge, nested loop) returns the same row *set* for the same inputs, for
  every join kind and key shape (multi-key, string, nullable);
* the morsel-parallel paths are **bit-identical** to serial for every
  worker count — joins because the gather arrays are pure integer
  arithmetic, aggregation because the partial decomposition is a pure
  function of the data shape;
* engine-level wiring: pipeline fusion into join/aggregate inputs, the
  ``join_algorithm="python"`` ablation knob, and per-stage timings.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import algebra as A
from repro.core.expressions import col
from repro.core.types import DType
from repro.providers import ReferenceProvider, RelationalProvider
from repro.relational.aggregation import group_aggregate
from repro.relational.engine import EngineOptions, RelationalEngine
from repro.relational.joins import (
    hash_join,
    merge_join,
    nested_loop_join,
    python_hash_join,
)

from .helpers import inline, rows_of, schema, table

# -- random join inputs ------------------------------------------------------

LEFT = schema(("a", "int"), ("b", "str"), ("x", "float"))
RIGHT = schema(("a2", "int"), ("b2", "str"), ("y", "float"))

key_int = st.one_of(st.none(), st.integers(0, 4))
key_str = st.one_of(st.none(), st.sampled_from(["p", "q", "r"]))
payload = st.integers(-20, 20).map(lambda v: v / 2.0)

left_rows = st.lists(st.tuples(key_int, key_str, payload), max_size=30)
right_rows = st.lists(st.tuples(key_int, key_str, payload), max_size=20)

HOWS = ["inner", "left", "full", "semi", "anti"]


def join_pairs(how, idx):
    """Order-insensitive canonical form of a join's gather arrays."""
    lidx, ridx = idx
    if how in ("semi", "anti"):
        return sorted(lidx.tolist())
    return sorted(zip(lidx.tolist(), ridx.tolist()))


@settings(max_examples=60, deadline=None)
@given(left_rows, right_rows, st.sampled_from(HOWS))
def test_vectorized_join_matches_python_hash(lrows, rrows, how):
    left, right = table(LEFT, lrows), table(RIGHT, rrows)
    keys = (["a", "b"], ["a2", "b2"])
    vec = hash_join(left, right, *keys, how)
    ref = python_hash_join(left, right, *keys, how)
    assert join_pairs(how, vec) == join_pairs(how, ref)


@settings(max_examples=40, deadline=None)
@given(left_rows, right_rows, st.sampled_from(HOWS))
def test_join_bit_identical_across_worker_counts(lrows, rrows, how):
    left, right = table(LEFT, lrows), table(RIGHT, rrows)
    keys = (["a", "b"], ["a2", "b2"])
    base = hash_join(left, right, *keys, how, workers=1, morsel_size=5)
    for workers in (2, 4):
        out = hash_join(
            left, right, *keys, how, workers=workers, morsel_size=5
        )
        assert np.array_equal(base[0], out[0])
        assert np.array_equal(base[1], out[1])


@settings(max_examples=40, deadline=None)
@given(left_rows, right_rows, st.sampled_from(["inner", "left"]))
def test_merge_join_matches_python_hash(lrows, rrows, how):
    left, right = table(LEFT, lrows), table(RIGHT, rrows)
    keys = (["a", "b"], ["a2", "b2"])
    merged = merge_join(left, right, *keys, how=how)
    ref = python_hash_join(left, right, *keys, how)
    assert join_pairs(how, merged) == join_pairs(how, ref)


@settings(max_examples=30, deadline=None)
@given(left_rows, right_rows)
def test_nested_loop_matches_vectorized_inner(lrows, rrows):
    left, right = table(LEFT, lrows), table(RIGHT, rrows)
    keys = (["a", "b"], ["a2", "b2"])
    assert join_pairs("inner", nested_loop_join(left, right, *keys)) == \
        join_pairs("inner", hash_join(left, right, *keys, "inner"))


def test_merge_join_left_keeps_null_key_rows():
    # regression: the old row-at-a-time merge dropped null-key left rows
    # even under how="left"; they must emit with a -1 right index.
    left = table(LEFT, [(1, "p", 0.5), (None, "p", 1.0), (2, None, 1.5)])
    right = table(RIGHT, [(1, "p", 9.0)])
    lidx, ridx = merge_join(left, right, ["a", "b"], ["a2", "b2"], how="left")
    got = sorted(zip(lidx.tolist(), ridx.tolist()))
    assert got == [(0, 0), (1, -1), (2, -1)]


def test_full_join_emits_unmatched_right_rows():
    left = table(LEFT, [(1, "p", 0.5)])
    right = table(RIGHT, [(1, "p", 9.0), (7, "q", 8.0), (None, "q", 7.0)])
    lidx, ridx = hash_join(left, right, ["a", "b"], ["a2", "b2"], "full")
    assert sorted(zip(lidx.tolist(), ridx.tolist())) == [
        (-1, 1), (-1, 2), (0, 0)
    ]


# -- aggregation: parallel partials vs serial --------------------------------

GROUPED = schema(
    ("g", "int"), ("tag", "str"), ("v", "float"), ("n", "int"), ("flag", "bool")
)

grouped_rows = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(0, 3)),
        st.sampled_from(["p", "q", "r"]),
        st.one_of(st.none(), payload),
        st.one_of(st.none(), st.integers(-50, 50)),
        st.booleans(),
    ),
    max_size=40,
)

ALL_AGGS = (
    A.AggSpec("rows", "count", None),
    A.AggSpec("nn", "count", col("v")),
    A.AggSpec("sv", "sum", col("v")),
    A.AggSpec("mv", "mean", col("v")),
    A.AggSpec("lo", "min", col("v")),
    A.AggSpec("hi", "max", col("n")),
    A.AggSpec("sn", "sum", col("n")),
    A.AggSpec("first_tag", "min", col("tag")),
    A.AggSpec("last_tag", "max", col("tag")),
    A.AggSpec("any_low", "min", col("flag")),
    A.AggSpec("any_high", "max", col("flag")),
)


def agg_schema(child_schema, group_by, aggs):
    return A.Aggregate(
        A.InlineTable(child_schema, ()), group_by, aggs
    ).schema


def assert_bit_identical(t1, t2):
    assert t1.schema.names == t2.schema.names
    assert t1.num_rows == t2.num_rows
    for name in t1.schema.names:
        c1, c2 = t1.column(name), t2.column(name)
        m1 = c1.mask if c1.mask is not None else np.zeros(len(c1), dtype=bool)
        m2 = c2.mask if c2.mask is not None else np.zeros(len(c2), dtype=bool)
        assert np.array_equal(m1, m2), name
        v1, v2 = c1.values[~m1], c2.values[~m2]
        if c1.dtype is DType.STRING:
            assert all(a == b for a, b in zip(v1, v2)), name
        else:
            assert np.array_equal(v1, v2), name


@settings(max_examples=50, deadline=None)
@given(grouped_rows)
def test_parallel_aggregation_bit_identical_to_serial(rows):
    data = table(GROUPED, rows)
    group_by = ("g", "tag")
    out_schema = agg_schema(GROUPED, group_by, ALL_AGGS)
    # tiny morsels force many partials even on small inputs
    serial = group_aggregate(
        data, group_by, ALL_AGGS, out_schema, workers=1, morsel_size=7
    )
    for workers in (2, 3, 0):
        parallel = group_aggregate(
            data, group_by, ALL_AGGS, out_schema,
            workers=workers, morsel_size=7,
        )
        assert_bit_identical(serial, parallel)


@settings(max_examples=50, deadline=None)
@given(grouped_rows)
def test_partial_aggregation_matches_single_pass(rows):
    data = table(GROUPED, rows)
    group_by = ("g", "tag")
    out_schema = agg_schema(GROUPED, group_by, ALL_AGGS)
    single = group_aggregate(
        data, group_by, ALL_AGGS, out_schema,
        workers=1, morsel_size=len(rows) + 1,
    )
    partial = group_aggregate(
        data, group_by, ALL_AGGS, out_schema, workers=2, morsel_size=7
    )
    assert single.schema.names == partial.schema.names
    assert single.num_rows == partial.num_rows
    for name in single.schema.names:
        c1, c2 = single.column(name), partial.column(name)
        m1 = c1.mask if c1.mask is not None else np.zeros(len(c1), dtype=bool)
        m2 = c2.mask if c2.mask is not None else np.zeros(len(c2), dtype=bool)
        assert np.array_equal(m1, m2), name
        v1, v2 = c1.values[~m1], c2.values[~m2]
        if c1.dtype is DType.STRING:
            assert all(a == b for a, b in zip(v1, v2)), name
        elif c1.dtype is DType.FLOAT64:
            # float partials may round differently from one long chain
            assert np.allclose(v1.astype(float), v2.astype(float),
                               rtol=1e-12, atol=1e-12), name
        else:
            assert np.array_equal(v1, v2), name


def test_mean_over_all_null_group_is_null():
    data = table(GROUPED, [
        (1, "p", None, 1, True),
        (1, "p", None, 2, True),
        (2, "p", 3.0, 3, False),
    ])
    aggs = (A.AggSpec("mv", "mean", col("v")),)
    out_schema = agg_schema(GROUPED, ("g",), aggs)
    for workers, morsel in ((1, 100), (3, 1)):
        out = group_aggregate(
            data, ("g",), aggs, out_schema, workers=workers, morsel_size=morsel
        )
        mv = out.column("mv")
        assert mv.mask is not None and mv.mask.tolist() == [True, False]
        assert mv.values[1] == 3.0


# -- engine wiring ------------------------------------------------------------


def _customer_order_tree(how="inner"):
    orders = inline(
        schema(("cust", "int"), ("amount", "float"), ("junk", "float")),
        [(1, 10.0, -1.0), (1, 20.0, -2.0), (2, 30.0, -3.0), (9, 4.0, -4.0)],
    )
    # fusible Filter+Extend chain under the aggregate: the engine should
    # narrow it to the consumed columns inside one fused pass
    chain = A.Extend(
        A.Filter(orders, col("amount") > 5.0),
        ("double",), (col("amount") * 2.0,),
    )
    return A.Aggregate(
        chain, ("cust",),
        (A.AggSpec("total", "sum", col("double")),
         A.AggSpec("rows", "count", None)),
    )


def test_aggregate_input_fuses_and_matches_reference():
    tree = _customer_order_tree()
    engine = RelationalEngine(EngineOptions(fuse_pipelines=True))
    fused = engine.run(tree, lambda name: None)
    assert engine.fused_runs >= 1  # the narrowed chain ran as one pipeline
    plain = RelationalEngine(EngineOptions(fuse_pipelines=False)).run(
        tree, lambda name: None
    )
    assert rows_of(fused) == rows_of(plain)
    ref = ReferenceProvider("ref")
    assert rows_of(ref.execute(tree)) == rows_of(fused)


def test_semi_join_build_side_narrows_to_keys():
    people = inline(
        schema(("pid", "int"), ("name", "str")),
        [(1, "ada"), (2, "bob"), (3, "cho")],
    )
    wide = inline(
        schema(("ref", "int"), ("a", "float"), ("b", "float")),
        [(1, 0.1, 0.2), (1, 0.3, 0.4), (3, 0.5, 0.6)],
    )
    # Filter+Extend above the build side: only "ref" is needed by the join
    build = A.Extend(
        A.Filter(wide, col("a") >= 0.0), ("c",), (col("b") + 1.0,)
    )
    tree = A.Join(people, build, (("pid", "ref"),), "semi")
    engine = RelationalEngine(EngineOptions(fuse_pipelines=True))
    out = engine.run(tree, lambda name: None)
    assert engine.fused_runs >= 1
    assert sorted(out.column("pid").to_list()) == [1, 3]


@pytest.mark.parametrize("how", HOWS)
def test_engine_python_join_algorithm_matches_auto(how):
    left = inline(
        schema(("k", "int"), ("tag", "str"), ("v", "float")),
        [(1, "p", 0.5), (2, "q", 1.5), (2, "q", 2.5), (5, "r", 3.5)],
    )
    right = inline(
        schema(("k2", "int"), ("tag2", "str"), ("w", "float")),
        [(2, "q", 9.0), (5, "x", 8.0), (7, "r", 7.0)],
    )
    tree = A.Join(left, right, (("k", "k2"), ("tag", "tag2")), how)
    auto = RelationalEngine(EngineOptions(join_algorithm="auto")).run(
        tree, lambda name: None
    )
    python = RelationalEngine(EngineOptions(join_algorithm="python")).run(
        tree, lambda name: None
    )
    assert rows_of(auto) == rows_of(python)


def test_provider_records_join_and_aggregate_timings():
    orders_schema = schema(("cust", "int"), ("amount", "float"))
    customers_schema = schema(("cid", "int"), ("name", "str"))
    provider = RelationalProvider("sql")
    provider.register_dataset(
        "orders",
        table(orders_schema, [(1, 10.0), (1, 20.0), (2, 30.0)]),
    )
    provider.register_dataset(
        "customers",
        table(customers_schema, [(1, "ada"), (2, "bob")]),
    )
    joined = A.Join(
        A.Scan("orders", orders_schema),
        A.Scan("customers", customers_schema),
        (("cust", "cid"),), "inner",
    )
    tree = A.Aggregate(
        joined, ("name",), (A.AggSpec("total", "sum", col("amount")),)
    )
    provider.execute(tree)
    snap = provider.perf_snapshot()
    assert snap["op_seconds"].keys() >= {"join", "aggregate"}
    assert all(v >= 0.0 for v in snap["op_seconds"].values())
    assert provider.stats.engine_stage_seconds.keys() >= {"join", "aggregate"}
    # engine-internal time is a subset of execute time, never double-counted
    assert provider.stats.seconds == pytest.approx(
        sum(provider.stats.stage_seconds.values())
    )

"""Semantics tests for the reference interpreter — the project's oracle.

These tests pin down the meaning of every operator; engines are later tested
for agreement with this provider, so correctness here is load-bearing.
"""

import pytest

from repro.core import algebra as A
from repro.core.errors import (
    ConvergenceError, ExecutionError, PlanningError, TranslationError,
)
from repro.core.expressions import col, func, if_, lit
from repro.providers.reference import ReferenceProvider

from .helpers import (
    CUSTOMERS, MATRIX, ORDERS,
    customers_table, inline, matrix_rows, matrix_table, orders_table,
    rows_of, run_reference, schema, table,
)

CUST = A.Scan("customers", CUSTOMERS)
ORD = A.Scan("orders", ORDERS)


def run(tree):
    return run_reference(
        tree, customers=customers_table(), orders=orders_table()
    )


class TestLeaves:
    def test_scan(self):
        assert run(CUST).num_rows == 4

    def test_missing_dataset(self):
        with pytest.raises(PlanningError):
            run_reference(A.Scan("nope", CUSTOMERS))

    def test_inline_table(self):
        t = inline(schema(("x", "int")), [(1,), (2,)])
        assert rows_of(run(t)) == [(1,), (2,)]

    def test_inline_rejects_type_error(self):
        t = inline(schema(("x", "int")), [("oops",)])
        with pytest.raises(Exception):
            run(t)


class TestRelational:
    def test_filter(self):
        result = run(A.Filter(ORD, col("amount") > 20.0))
        assert {r[0] for r in result.iter_rows()} == {100, 101, 103}

    def test_filter_null_predicate_drops_row(self):
        t = inline(schema(("x", "float")), [(1.0,), (None,), (3.0,)])
        result = run(A.Filter(t, col("x") > 0.0))
        assert result.num_rows == 2

    def test_project_and_extend(self):
        tree = A.Extend(
            A.Project(ORD, ("oid", "amount")),
            ("taxed",), (col("amount") * 1.1,),
        )
        result = run(tree)
        assert result.schema.names == ("oid", "amount", "taxed")
        first = dict(zip(result.schema.names, result.row(0)))
        assert first["taxed"] == pytest.approx(first["amount"] * 1.1)

    def test_rename(self):
        result = run(A.Rename(CUST, (("name", "customer_name"),)))
        assert "customer_name" in result.schema

    def test_inner_join(self):
        tree = A.Join(CUST, ORD, (("cid", "cust"),))
        result = run(tree)
        assert result.num_rows == 4  # order 104 dangles
        names = {r[1] for r in result.iter_rows()}
        assert names == {"ada", "bob", "cho"}

    def test_left_join_pads_with_null(self):
        tree = A.Join(CUST, ORD, (("cid", "cust"),), how="left")
        result = run(tree)
        assert result.num_rows == 5  # dee gets a null order
        dee = [r for r in result.iter_dicts() if r["name"] == "dee"]
        assert dee[0]["oid"] is None and dee[0]["amount"] is None

    def test_full_join(self):
        tree = A.Join(CUST, ORD, (("cid", "cust"),), how="full")
        result = run(tree)
        assert result.num_rows == 6  # 4 matches + dee + order 104
        dangling = [r for r in result.iter_dicts() if r["cid"] is None]
        assert len(dangling) == 1 and dangling[0]["oid"] == 104

    def test_semi_and_anti_join(self):
        semi = run(A.Join(CUST, ORD, (("cid", "cust"),), how="semi"))
        anti = run(A.Join(CUST, ORD, (("cid", "cust"),), how="anti"))
        assert {r[1] for r in semi.iter_rows()} == {"ada", "bob", "cho"}
        assert {r[1] for r in anti.iter_rows()} == {"dee"}

    def test_join_null_keys_never_match(self):
        left = inline(schema(("k", "int")), [(1,), (None,)])
        right = inline(schema(("k2", "int")), [(1,), (None,)])
        result = run(A.Join(left, right, (("k", "k2"),)))
        assert result.num_rows == 1

    def test_product(self):
        left = inline(schema(("a", "int")), [(1,), (2,)])
        right = inline(schema(("b", "str")), [("x",), ("y",)])
        result = run(A.Product(left, right))
        assert result.num_rows == 4

    def test_aggregate_grouped(self):
        tree = A.Aggregate(
            ORD, ("cust",),
            (A.AggSpec("n", "count"), A.AggSpec("total", "sum", col("amount"))),
        )
        result = {r["cust"]: r for r in run(tree).iter_dicts()}
        assert result[1]["n"] == 2 and result[1]["total"] == 100.0
        assert result[9]["total"] == 5.0

    def test_aggregate_global_on_empty_input(self):
        empty = A.Filter(ORD, lit(False))
        tree = A.Aggregate(
            empty, (),
            (A.AggSpec("n", "count"), A.AggSpec("total", "sum", col("amount")),
             A.AggSpec("avg", "mean", col("amount"))),
        )
        result = list(run(tree).iter_dicts())
        assert result == [{"n": 0, "total": None, "avg": None}]

    def test_count_arg_skips_nulls(self):
        t = inline(schema(("x", "int")), [(1,), (None,), (3,)])
        tree = A.Aggregate(
            t, (),
            (A.AggSpec("rows", "count"), A.AggSpec("vals", "count", col("x"))),
        )
        result = list(run(tree).iter_dicts())[0]
        assert result["rows"] == 3 and result["vals"] == 2

    def test_aggregate_null_group_key_is_a_group(self):
        t = inline(schema(("g", "int"), ("x", "int")),
                   [(1, 10), (None, 5), (None, 7)])
        tree = A.Aggregate(t, ("g",), (A.AggSpec("s", "sum", col("x")),))
        result = {r["g"]: r["s"] for r in run(tree).iter_dicts()}
        assert result == {1: 10, None: 12}

    def test_sort_multi_key_with_nulls_first(self):
        t = inline(schema(("a", "int"), ("b", "int")),
                   [(2, 1), (1, 2), (None, 0), (1, 1)])
        tree = A.Sort(t, ("a", "b"), (True, False))
        assert list(run(tree).iter_rows()) == [
            (None, 0), (1, 2), (1, 1), (2, 1)
        ]

    def test_sort_descending_puts_nulls_last(self):
        t = inline(schema(("a", "int")), [(1,), (None,), (3,)])
        tree = A.Sort(t, ("a",), (False,))
        assert list(run(tree).iter_rows()) == [(3,), (1,), (None,)]

    def test_limit_offset(self):
        tree = A.Limit(A.Sort(ORD, ("oid",), (True,)), 2, offset=1)
        assert [r[0] for r in run(tree).iter_rows()] == [101, 102]

    def test_reverse(self):
        tree = A.Reverse(A.Sort(ORD, ("oid",), (True,)))
        assert [r[0] for r in run(tree).iter_rows()] == [104, 103, 102, 101, 100]

    def test_distinct(self):
        t = inline(schema(("x", "int")), [(1,), (2,), (1,), (1,)])
        assert run(A.Distinct(t)).num_rows == 2

    def test_union_is_bag(self):
        t = inline(schema(("x", "int")), [(1,)])
        assert run(A.Union(t, t)).num_rows == 2

    def test_intersect_and_except_are_sets(self):
        a = inline(schema(("x", "int")), [(1,), (1,), (2,), (3,)])
        b = inline(schema(("x", "int")), [(1,), (3,), (4,)])
        assert rows_of(run(A.Intersect(a, b))) == [(1,), (3,)]
        assert rows_of(run(A.Except(a, b))) == [(2,)]


class TestDimensional:
    M = A.Scan("m", MATRIX)

    def run_m(self, tree, values):
        return run_reference(tree, m=matrix_table(values))

    def test_as_dims_enforces_key(self):
        t = inline(schema(("i", "int"), ("v", "float")),
                   [(0, 1.0), (0, 2.0)])
        with pytest.raises(ExecutionError, match="duplicate"):
            run(A.AsDims(t, ("i",)))

    def test_as_dims_rejects_null_coordinate(self):
        t = inline(schema(("i", "int"), ("v", "float")), [(None, 1.0)])
        with pytest.raises(ExecutionError, match="null"):
            run(A.AsDims(t, ("i",)))

    def test_slice_dims_inclusive(self):
        tree = A.SliceDims(self.M, (("i", 0, 1), ("j", 1, 1)))
        result = self.run_m(tree, [[1, 2, 3], [4, 5, 6], [7, 8, 9]])
        assert rows_of(result) == [(0, 1, 2.0), (1, 1, 5.0)]

    def test_shift_dim(self):
        tree = A.ShiftDim(self.M, "i", 10)
        result = self.run_m(tree, [[1.0]])
        assert list(result.iter_rows()) == [(10, 0, 1.0)]

    def test_regrid_means_blocks(self):
        tree = A.Regrid(
            self.M, (("i", 2), ("j", 2)),
            (A.AggSpec("v", "mean", col("v")),),
        )
        result = self.run_m(tree, [[1, 2], [3, 4]])
        assert list(result.iter_rows()) == [(0, 0, 2.5)]

    def test_window_sum(self):
        tree = A.Window(
            self.M, (("i", 1), ("j", 1)),
            (A.AggSpec("v", "sum", col("v")),),
        )
        result = self.run_m(tree, [[1, 2], [3, 4]])
        by_coord = {(r["i"], r["j"]): r["v"] for r in result.iter_dicts()}
        # every cell's window covers the whole 2x2 array
        assert by_coord == {(0, 0): 10.0, (0, 1): 10.0, (1, 0): 10.0, (1, 1): 10.0}

    def test_window_respects_unlisted_dims(self):
        tree = A.Window(self.M, (("j", 1),), (A.AggSpec("v", "sum", col("v")),))
        result = self.run_m(tree, [[1, 2], [3, 4]])
        by_coord = {(r["i"], r["j"]): r["v"] for r in result.iter_dicts()}
        assert by_coord == {(0, 0): 3.0, (0, 1): 3.0, (1, 0): 7.0, (1, 1): 7.0}

    def test_reduce_dims(self):
        tree = A.ReduceDims(self.M, ("i",), (A.AggSpec("s", "sum", col("v")),))
        result = self.run_m(tree, [[1, 2], [3, 4]])
        assert rows_of(result) == [(0, 3.0), (1, 7.0)]

    def test_reduce_to_scalar(self):
        tree = A.ReduceDims(self.M, (), (A.AggSpec("s", "sum", col("v")),))
        result = self.run_m(tree, [[1, 2], [3, 4]])
        assert list(result.iter_rows()) == [(10.0,)]

    def test_matmul_matches_numpy(self):
        import numpy as np

        rng = np.random.default_rng(7)
        a = rng.integers(0, 5, (3, 4)).astype(float)
        b = rng.integers(0, 5, (4, 2)).astype(float)
        other_schema = schema(("j", "int", True), ("k", "int", True), ("w", "float"))
        tree = A.MatMul(self.M, A.Scan("m2", other_schema))
        result = run_reference(
            tree,
            m=matrix_table(a.tolist()),
            m2=table(other_schema, [
                (i, j, float(v)) for i, row in enumerate(b) for j, v in enumerate(row)
            ]),
        )
        dense = np.zeros((3, 2))
        for i, k, v in result.iter_rows():
            dense[i, k] = v
        expected = a @ b
        # sparse result omits exact zeros; compare where defined
        assert np.allclose(dense[dense != 0], expected[dense != 0])
        assert np.allclose(dense, expected)

    def test_cell_join(self):
        other_schema = schema(("i", "int", True), ("j", "int", True), ("w", "float"))
        tree = A.CellJoin(self.M, A.Scan("m2", other_schema))
        result = run_reference(
            tree,
            m=matrix_table([[1, 2]]),
            m2=table(other_schema, [(0, 0, 10.0), (0, 5, 99.0)]),
        )
        assert list(result.iter_rows()) == [(0, 0, 1.0, 10.0)]


class TestIterate:
    STATE = schema(("i", "int", True), ("v", "float"))

    def test_fixed_iteration_count(self):
        init = inline(self.STATE, [(0, 1.0)])
        body = A.Extend(
            A.Project(A.LoopVar("s", self.STATE), ("i",)),
            ("v",), (lit(0.0),),
        )
        # v doubles each round: schema-preserving body computing v*2
        body = A.Extend(
            A.Project(A.LoopVar("s", self.STATE), ("i",)), ("v",), (lit(0.0),)
        )
        del body
        double = A.Project(
            A.Extend(A.LoopVar("s", self.STATE), ("v2",), (col("v") * 2,)),
            ("i", "v2"),
        )
        double = A.Rename(double, (("v2", "v"),))
        tree = A.Iterate(init, double, var="s", max_iter=5)
        result = list(run_reference(tree).iter_rows())
        assert result == [(0, 32.0)]

    def test_convergence_stops_early(self):
        init = inline(self.STATE, [(0, 1.0)])
        halve = A.Rename(
            A.Project(
                A.Extend(A.LoopVar("s", self.STATE), ("v2",), (col("v") * 0.5,)),
                ("i", "v2"),
            ),
            (("v2", "v"),),
        )
        tree = A.Iterate(
            init, halve, var="s",
            stop=A.Convergence("v", tolerance=0.3), max_iter=100,
        )
        result = list(run_reference(tree).iter_rows())
        # 1.0 -> .5 (delta .5) -> .25 (delta .25 <= .3, stop)
        assert result == [(0, 0.25)]

    def test_strict_nonconvergence_raises(self):
        init = inline(self.STATE, [(0, 1.0)])
        grow = A.Rename(
            A.Project(
                A.Extend(A.LoopVar("s", self.STATE), ("v2",), (col("v") + 1.0,)),
                ("i", "v2"),
            ),
            (("v2", "v"),),
        )
        tree = A.Iterate(
            init, grow, var="s",
            stop=A.Convergence("v", tolerance=1e-9), max_iter=3, strict=True,
        )
        with pytest.raises(ConvergenceError):
            run_reference(tree)

    def test_nested_scan_inside_body(self):
        # body joins loop state against a static dataset each round
        weights = schema(("i", "int", True), ("w", "float"))
        init = inline(self.STATE, [(0, 1.0), (1, 1.0)])
        body = A.Rename(
            A.Project(
                A.Extend(
                    A.Join(
                        A.LoopVar("s", self.STATE),
                        A.Scan("weights", weights),
                        (("i", "i"),),
                    ),
                    ("nv",), (col("v") * col("w"),),
                ),
                ("i", "nv"),
            ),
            (("nv", "v"),),
        )
        tree = A.Iterate(init, body, var="s", max_iter=2)
        result = run_reference(
            tree, weights=table(weights, [(0, 2.0), (1, 3.0)])
        )
        assert rows_of(result) == [(0, 4.0), (1, 9.0)]


class TestProviderContract:
    def test_unsupported_operator_raises_translation_error(self):
        class NoJoins(ReferenceProvider):
            capabilities = ReferenceProvider.capabilities - {"Join"}

        p = NoJoins("limited")
        p.register_dataset("customers", customers_table())
        p.register_dataset("orders", orders_table())
        with pytest.raises(TranslationError):
            p.execute(A.Join(CUST, ORD, (("cid", "cust"),)))

    def test_stats_accumulate(self):
        p = ReferenceProvider("ref")
        p.register_dataset("orders", orders_table())
        p.execute(A.Filter(ORD, col("amount") > 0.0))
        assert p.stats.queries == 1
        assert p.stats.ops_by_name["Filter"] == 1

    def test_fragment_inputs_override_datasets(self):
        p = ReferenceProvider("ref")
        t = table(schema(("x", "int")), [(1,), (2,)])
        result = p.execute(A.Scan("@frag0", t.schema), inputs={"@frag0": t})
        assert result.num_rows == 2

"""Array engine tests: agreement with the reference oracle across operators
and chunk sizes, plus array-specific behaviours (halo windows, O(1) shift)."""

import numpy as np
import pytest

from repro.array.engine import ArrayEngineOptions
from repro.core import algebra as A
from repro.core.errors import ExecutionError
from repro.core.expressions import col, func, lit
from repro.providers.array_p import ArrayProvider
from repro.providers.reference import ReferenceProvider

from .helpers import MATRIX, matrix_table, schema, table

MAT = A.Scan("m", MATRIX)


def both(tree, float_tol=1e-9, chunk=4, **datasets):
    ref = ReferenceProvider("ref")
    arr = ArrayProvider("arr", ArrayEngineOptions(chunk_side=chunk))
    for name, tbl in datasets.items():
        ref.register_dataset(name, tbl)
        arr.register_dataset(name, tbl)
    expected = ref.execute(tree)
    actual = arr.execute(tree)
    assert actual.schema == expected.schema
    assert actual.same_rows(expected, float_tol=float_tol), (
        f"array result differs from reference\n"
        f"reference: {expected.sort_key()[:12]}\n"
        f"array:     {actual.sort_key()[:12]}"
    )
    return actual


def grid(n, m, fn=lambda i, j: float(i * 31 + j * 7)):
    return table(MATRIX, [(i, j, fn(i, j)) for i in range(n) for j in range(m)])


def sparse_grid(seed=0, n=40, cells=60):
    rng = np.random.default_rng(seed)
    coords = set()
    while len(coords) < cells:
        coords.add((int(rng.integers(-n, n)), int(rng.integers(-n, n))))
    return table(MATRIX, [(i, j, float(i + j)) for i, j in sorted(coords)])


AGG_V = (A.AggSpec("v", "mean", col("v")),)
SUM_V = (A.AggSpec("s", "sum", col("v")),)

TREES = [
    A.SliceDims(MAT, (("i", 2, 5), ("j", 1, 3))),
    A.SliceDims(MAT, (("i", -100, 100),)),
    A.ShiftDim(MAT, "i", -7),
    A.TransposeDims(MAT, ("j", "i")),
    A.Filter(MAT, col("v") > 20.0),
    A.Filter(MAT, (col("i") + col("j")) % 2 == 0),
    A.Extend(MAT, ("w",), (func("sqrt", col("v")),)),
    A.Extend(MAT, ("w", "u"), (col("v") * 2, col("i") + col("j"))),
    A.Rename(MAT, (("v", "value"),)),
    A.Regrid(MAT, (("i", 2), ("j", 3)), AGG_V),
    A.Regrid(MAT, (("i", 4),), (A.AggSpec("n", "count"),
                                A.AggSpec("hi", "max", col("v")))),
    A.Window(MAT, (("i", 1), ("j", 1)), SUM_V),
    A.Window(MAT, (("i", 2),), (A.AggSpec("n", "count"),
                                A.AggSpec("lo", "min", col("v")))),
    A.ReduceDims(MAT, ("i",), SUM_V),
    A.ReduceDims(MAT, ("j",), (A.AggSpec("avg", "mean", col("v")),)),
    A.ReduceDims(MAT, (), SUM_V),
    A.Project(MAT, ("i", "j", "v")),
]


@pytest.mark.parametrize(
    "tree", TREES, ids=lambda t: f"{t.op_name}-{abs(hash(repr(t))) % 10**6}"
)
@pytest.mark.parametrize("chunk", [3, 16])
def test_dense_agreement(tree, chunk):
    both(tree, chunk=chunk, m=grid(9, 7))


@pytest.mark.parametrize(
    "tree", TREES, ids=lambda t: f"{t.op_name}-{abs(hash(repr(t))) % 10**6}"
)
def test_sparse_agreement(tree):
    both(tree, chunk=8, m=sparse_grid())


class TestMatMul:
    M2 = schema(("j", "int", True), ("k", "int", True), ("w", "float"))

    def test_dense_matches_numpy(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(6, 5))
        b = rng.normal(size=(5, 4))
        result = both(
            A.MatMul(MAT, A.Scan("m2", self.M2)),
            float_tol=1e-9, chunk=3,
            m=table(MATRIX, [(i, j, float(v)) for (i, j), v in np.ndenumerate(a)]),
            m2=table(self.M2, [(i, j, float(v)) for (i, j), v in np.ndenumerate(b)]),
        )
        dense = np.zeros((6, 4))
        for i, k, v in result.iter_rows():
            dense[i, k] = v
        assert np.allclose(dense, a @ b)

    def test_sparse_presence_semantics(self):
        # left row 1 has no entries -> no output cells in row 1
        m = table(MATRIX, [(0, 0, 2.0), (2, 1, 3.0)])
        m2 = table(self.M2, [(0, 0, 5.0), (1, 0, 7.0)])
        result = both(A.MatMul(MAT, A.Scan("m2", self.M2)), chunk=2, m=m, m2=m2)
        assert result.same_rows(table(
            result.schema, [(0, 0, 10.0), (2, 0, 21.0)]
        ))

    def test_disjoint_contraction_ranges_empty(self):
        m = table(MATRIX, [(0, 0, 1.0)])
        m2 = table(self.M2, [(50, 0, 1.0)])
        result = both(A.MatMul(MAT, A.Scan("m2", self.M2)), chunk=2, m=m, m2=m2)
        assert result.num_rows == 0


class TestCellJoin:
    M2 = schema(("i", "int", True), ("j", "int", True), ("w", "float"))

    def test_agreement(self):
        m = grid(6, 6)
        m2 = table(self.M2, [(i, j, float(i - j))
                             for i in range(3, 9) for j in range(3, 9)])
        both(A.CellJoin(MAT, A.Scan("m2", self.M2)), chunk=4, m=m, m2=m2)

    def test_dimension_order_mismatch(self):
        # right lists dims as (j, i); cell join must align them by name
        m2_swapped = schema(("j", "int", True), ("i", "int", True), ("w", "float"))
        m = grid(4, 4)
        m2 = table(m2_swapped, [(j, i, float(i * 10 + j))
                                for i in range(4) for j in range(4)])
        both(A.CellJoin(MAT, A.Scan("m2", m2_swapped)), chunk=2, m=m, m2=m2)


class TestIterate:
    def test_heat_diffusion_converges(self):
        """Repeated 3x3 mean-window smoothing converges; agreement + stop."""
        state = MATRIX
        body = A.Window(
            A.LoopVar("s", MATRIX), (("i", 1), ("j", 1)),
            (A.AggSpec("v", "mean", col("v")),),
        )
        tree = A.Iterate(
            A.Scan("m", MATRIX), body, var="s",
            stop=A.Convergence("v", tolerance=1e-3), max_iter=200,
        )
        init = grid(6, 6, lambda i, j: 100.0 if (i, j) == (3, 3) else 0.0)
        result = both(tree, float_tol=1e-6, chunk=3, m=init)
        values = [r[2] for r in result.iter_rows()]
        # smoothing preserves no mass guarantee, but spread must be flat-ish
        assert max(values) - min(values) < 20.0

    def test_fixed_count_scaling(self):
        body = A.Rename(
            A.Project(
                A.Extend(A.LoopVar("s", MATRIX), ("v2",), (col("v") * 2.0,)),
                ("i", "j", "v2"),
            ),
            (("v2", "v"),),
        )
        tree = A.Iterate(A.Scan("m", MATRIX), body, var="s", max_iter=3)
        result = both(tree, chunk=2, m=grid(3, 3))
        original = {(i, j): v for i, j, v in grid(3, 3).iter_rows()}
        for i, j, v in result.iter_rows():
            assert v == original[(i, j)] * 8.0


class TestArraySpecific:
    def test_shift_is_metadata_only(self):
        from repro.array.chunked import ChunkedArray
        from repro.array.ops import shift_array

        arr = ChunkedArray.from_table(grid(20, 20), 8)
        shifted = shift_array(arr, "i", 100)
        assert shifted.chunks is arr.chunks  # no data copied
        assert shifted.origin == (100, 0)

    def test_provider_rejects_plain_relations(self):
        plain = schema(("x", "int"), ("v", "float"))
        provider = ArrayProvider("arr")
        tree = A.Filter(A.Scan("t", plain), col("v") > 0.0)
        assert not provider.accepts(tree)

    def test_provider_rejects_dim_dropping_project(self):
        provider = ArrayProvider("arr")
        tree = A.Project(MAT, ("i", "v"))
        assert not provider.accepts(tree)

    def test_as_dims_enforces_uniqueness(self):
        provider = ArrayProvider("arr")
        t = schema(("i", "int"), ("v", "float"))
        tree = A.AsDims(
            A.InlineTable(t, ((0, 1.0), (0, 2.0))), ("i",)
        )
        with pytest.raises(ExecutionError):
            provider.execute(tree)

    def test_join_not_supported(self):
        provider = ArrayProvider("arr")
        other = schema(("k", "int"), ("w", "float"))
        tree = A.Join(A.Scan("a", other), A.Scan("b", other.rename({"k": "k2", "w": "w2"})),
                      (("k", "k2"),))
        assert not provider.accepts(tree)

"""Unit tests for chunked n-d array storage."""

import numpy as np
import pytest

from repro.core.errors import ExecutionError, SchemaError
from repro.array.chunked import ChunkedArray

from .helpers import MATRIX, matrix_table, schema, table


def sensor_table(n=10, m=8, chunk=None):
    rows = [(i, j, float(i * m + j)) for i in range(n) for j in range(m)]
    return table(MATRIX, rows)


class TestConstruction:
    def test_from_table_round_trip(self):
        t = sensor_table()
        arr = ChunkedArray.from_table(t, 4)
        assert arr.cell_count == 80
        assert arr.to_table().same_rows(t)

    def test_chunk_count(self):
        arr = ChunkedArray.from_table(sensor_table(10, 8), 4)
        # 10/4 -> 3 chunk rows, 8/4 -> 2 chunk cols
        assert len(arr.chunks) == 6

    def test_sparse_array_only_allocates_populated_chunks(self):
        rows = [(0, 0, 1.0), (100, 100, 2.0)]
        arr = ChunkedArray.from_table(table(MATRIX, rows), 10)
        assert len(arr.chunks) == 2
        assert arr.cell_count == 2

    def test_negative_coordinates(self):
        rows = [(-5, -3, 1.0), (4, 2, 2.0)]
        t = table(MATRIX, rows)
        arr = ChunkedArray.from_table(t, 4)
        assert arr.origin == (-5, -3)
        assert arr.to_table().same_rows(t)

    def test_empty_table(self):
        from repro.storage.table import ColumnTable

        arr = ChunkedArray.from_table(ColumnTable.empty(MATRIX), 4)
        assert arr.cell_count == 0
        assert arr.to_table().num_rows == 0

    def test_duplicate_coordinates_rejected(self):
        t = table(MATRIX.without_dimensions().with_dimensions(["i", "j"]),
                  [(0, 0, 1.0), (0, 0, 2.0)])
        with pytest.raises(ExecutionError):
            ChunkedArray.from_table(t, 4)

    def test_requires_dimensions(self):
        t = table(schema(("v", "float")), [(1.0,)])
        with pytest.raises(SchemaError):
            ChunkedArray.from_table(t, 4)

    def test_null_values_preserved(self):
        s = schema(("i", "int", True), ("v", "float"))
        t = table(s, [(0, 1.0), (1, None), (2, 3.0)])
        arr = ChunkedArray.from_table(t, 2)
        assert arr.to_table().same_rows(t)

    def test_chunk_shape_per_dimension(self):
        arr = ChunkedArray.from_table(sensor_table(10, 8), (5, 2))
        assert arr.chunk_shape == (5, 2)
        assert arr.to_table().same_rows(sensor_table(10, 8))


class TestGetRegion:
    def test_full_region(self):
        arr = ChunkedArray.from_table(sensor_table(6, 6), 4)
        present, values, masks = arr.get_region((0, 0), (5, 5))
        assert present.all()
        assert values["v"][2, 3] == 2 * 6 + 3

    def test_region_beyond_box_is_absent(self):
        arr = ChunkedArray.from_table(sensor_table(4, 4), 4)
        present, _, __ = arr.get_region((-2, -2), (5, 5))
        assert present.shape == (8, 8)
        assert not present[0, 0]
        assert present[2, 2]  # global (0,0)
        assert int(present.sum()) == 16

    def test_region_across_chunks(self):
        arr = ChunkedArray.from_table(sensor_table(8, 8), 3)
        present, values, _ = arr.get_region((2, 2), (5, 5))
        assert present.all()
        expected = np.array([
            [i * 8 + j for j in range(2, 6)] for i in range(2, 6)
        ], dtype=float)
        assert np.array_equal(values["v"], expected)

    def test_region_sees_null_masks(self):
        s = schema(("i", "int", True), ("v", "float"))
        arr = ChunkedArray.from_table(table(s, [(0, 1.0), (1, None)]), 4)
        present, values, masks = arr.get_region((0,), (1,))
        assert present.all()
        assert masks["v"] is not None
        assert masks["v"].tolist() == [False, True]


class TestDenseRegionRoundTrip:
    def test_from_dense_region(self):
        arr = ChunkedArray.from_table(sensor_table(5, 5), 2)
        lo, hi = arr.bounding_box()
        present, values, masks = arr.get_region(lo, hi)
        rebuilt = ChunkedArray.from_dense_region(
            MATRIX, lo, present, values, masks, 3
        )
        assert rebuilt.to_table().same_rows(arr.to_table())

    def test_from_dense_region_all_absent(self):
        present = np.zeros((3, 3), dtype=bool)
        arr = ChunkedArray.from_dense_region(
            MATRIX, (0, 0), present, {"v": np.zeros((3, 3))}, {"v": None}, 2
        )
        assert arr.cell_count == 0

"""Unit tests for the scalar type system."""

import numpy as np
import pytest

from repro.core.errors import TypeMismatchError
from repro.core.types import DType, common_type, comparable, promote


class TestDType:
    def test_numeric_flags(self):
        assert DType.INT64.is_numeric
        assert DType.FLOAT64.is_numeric
        assert not DType.BOOL.is_numeric
        assert not DType.STRING.is_numeric

    def test_numpy_round_trip(self):
        for dtype in DType:
            assert DType.from_numpy(dtype.to_numpy()) is dtype

    def test_from_numpy_classifies_narrow_ints(self):
        assert DType.from_numpy(np.dtype(np.int32)) is DType.INT64
        assert DType.from_numpy(np.dtype(np.float32)) is DType.FLOAT64

    def test_from_numpy_rejects_complex(self):
        with pytest.raises(TypeMismatchError):
            DType.from_numpy(np.dtype(np.complex128))

    def test_of_value(self):
        assert DType.of_value(3) is DType.INT64
        assert DType.of_value(3.5) is DType.FLOAT64
        assert DType.of_value(True) is DType.BOOL  # bool before int!
        assert DType.of_value("x") is DType.STRING

    def test_of_value_numpy_scalars(self):
        assert DType.of_value(np.int64(3)) is DType.INT64
        assert DType.of_value(np.float64(1.5)) is DType.FLOAT64
        assert DType.of_value(np.bool_(True)) is DType.BOOL

    def test_of_value_rejects_unknown(self):
        with pytest.raises(TypeMismatchError):
            DType.of_value(object())

    def test_validate_none_is_always_legal(self):
        for dtype in DType:
            assert dtype.validate(None)

    def test_validate_accepts_int_in_float(self):
        assert DType.FLOAT64.validate(3)
        assert not DType.INT64.validate(3.5)

    def test_validate_rejects_cross_type(self):
        assert not DType.STRING.validate(3)
        assert not DType.INT64.validate("x")
        assert not DType.INT64.validate(True)


class TestPromotion:
    def test_promote_int_float(self):
        assert promote(DType.INT64, DType.FLOAT64) is DType.FLOAT64
        assert promote(DType.FLOAT64, DType.INT64) is DType.FLOAT64
        assert promote(DType.INT64, DType.INT64) is DType.INT64

    def test_promote_rejects_non_numeric(self):
        with pytest.raises(TypeMismatchError):
            promote(DType.STRING, DType.INT64)
        with pytest.raises(TypeMismatchError):
            promote(DType.BOOL, DType.BOOL)

    def test_comparable(self):
        assert comparable(DType.INT64, DType.FLOAT64)
        assert comparable(DType.STRING, DType.STRING)
        assert not comparable(DType.STRING, DType.INT64)
        assert not comparable(DType.BOOL, DType.INT64)

    def test_common_type(self):
        assert common_type(DType.STRING, DType.STRING) is DType.STRING
        assert common_type(DType.INT64, DType.FLOAT64) is DType.FLOAT64
        with pytest.raises(TypeMismatchError):
            common_type(DType.BOOL, DType.INT64)

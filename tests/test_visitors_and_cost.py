"""Tests for tree traversal utilities and the federation cost model."""

import pytest

from repro.core import algebra as A
from repro.core.expressions import col, lit
from repro.core.visitors import (
    count_ops, find_all, substitute_loop_var, transform_bottom_up,
    transform_top_down,
)
from repro.federation.catalog import FederationCatalog
from repro.federation.cost import estimate_bytes, estimate_rows, row_width
from repro.providers import RelationalProvider

from .helpers import CUSTOMERS, ORDERS, customers_table, orders_table, schema

CUST = A.Scan("customers", CUSTOMERS)
ORD = A.Scan("orders", ORDERS)


class TestTransforms:
    def test_bottom_up_rebuilds_only_changed_paths(self):
        tree = A.Filter(A.Project(ORD, ("oid", "amount")), col("amount") > 0.0)

        def rename_scan(node):
            if isinstance(node, A.Scan):
                return A.Scan("orders2", node.source_schema)
            return node

        out = transform_bottom_up(tree, rename_scan)
        assert next(iter(find_all(out, A.Scan))).name == "orders2"
        assert isinstance(out, A.Filter)  # structure above preserved

    def test_top_down_sees_parent_first(self):
        seen = []

        def record(node):
            seen.append(node.op_name)
            return node

        transform_top_down(A.Filter(ORD, col("amount") > 0.0), record)
        assert seen == ["Filter", "Scan"]

    def test_identity_transform_returns_same_object(self):
        tree = A.Filter(ORD, col("amount") > 0.0)
        assert transform_bottom_up(tree, lambda n: n) is tree

    def test_count_ops(self):
        tree = A.Union(A.Filter(ORD, col("amount") > 0.0), ORD)
        ops = count_ops(tree)
        assert ops == {"Union": 1, "Filter": 1, "Scan": 2}


class TestLoopVarSubstitution:
    STATE = schema(("i", "int", True), ("v", "float"))

    def test_substitutes_matching_var(self):
        body = A.Filter(A.LoopVar("s", self.STATE), col("v") > 0.0)
        replacement = A.InlineTable(self.STATE, ((0, 1.0),))
        out = substitute_loop_var(body, "s", replacement)
        assert isinstance(out.child, A.InlineTable)

    def test_leaves_other_vars_alone(self):
        body = A.Filter(A.LoopVar("other", self.STATE), col("v") > 0.0)
        out = substitute_loop_var(
            body, "s", A.InlineTable(self.STATE, ())
        )
        assert isinstance(out.child, A.LoopVar)

    def test_shadowing_inner_iterate_body_untouched(self):
        inner_body = A.Filter(A.LoopVar("s", self.STATE), col("v") > 0.0)
        inner = A.Iterate(
            A.LoopVar("s", self.STATE),  # init sees the OUTER binding
            inner_body, var="s", max_iter=2,
        )
        replacement = A.InlineTable(self.STATE, ((0, 1.0),))
        out = substitute_loop_var(inner, "s", replacement)
        assert isinstance(out.init, A.InlineTable)  # init substituted
        inner_vars = list(find_all(out.body, A.LoopVar))
        assert len(inner_vars) == 1  # body still references its own var


class TestCostModel:
    def make_catalog(self):
        catalog = FederationCatalog()
        catalog.add_provider(RelationalProvider("sql"))
        catalog.register_dataset("customers", customers_table(), on="sql")
        catalog.register_dataset("orders", orders_table(), on="sql")
        return catalog

    def test_scan_uses_real_cardinality(self):
        catalog = self.make_catalog()
        assert estimate_rows(ORD, catalog) == 5
        assert estimate_rows(CUST, catalog) == 4

    def test_filter_reduces_estimate(self):
        catalog = self.make_catalog()
        filtered = A.Filter(ORD, col("amount") > 0.0)
        assert estimate_rows(filtered, catalog) < estimate_rows(ORD, catalog)

    def test_limit_caps_estimate(self):
        catalog = self.make_catalog()
        assert estimate_rows(A.Limit(ORD, 2), catalog) == 2

    def test_join_estimate_monotone_in_inputs(self):
        catalog = self.make_catalog()
        join = A.Join(CUST, ORD, (("cid", "cust"),))
        left_join = A.Join(CUST, ORD, (("cid", "cust"),), "left")
        assert estimate_rows(left_join, catalog) >= estimate_rows(CUST, catalog)
        assert estimate_rows(join, catalog) >= 1

    def test_aggregate_without_keys_is_one_row(self):
        catalog = self.make_catalog()
        agg = A.Aggregate(ORD, (), (A.AggSpec("n", "count"),))
        assert estimate_rows(agg, catalog) == 1

    def test_row_width_counts_types(self):
        s = schema(("a", "int"), ("b", "str"), ("c", "bool"))
        assert row_width(s) == 8 + 24 + 1

    def test_bytes_scale_with_rows(self):
        catalog = self.make_catalog()
        assert estimate_bytes(ORD, catalog) == 5 * row_width(ORDERS)

    def test_unregistered_scan_gets_default(self):
        catalog = self.make_catalog()
        ghost = A.Scan("ghost", ORDERS)
        assert estimate_rows(ghost, catalog) == 1000

    def test_union_adds(self):
        catalog = self.make_catalog()
        u = A.Union(ORD, ORD)
        assert estimate_rows(u, catalog) == 10

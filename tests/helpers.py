"""Shared fixtures and builders for the test suite."""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.core import algebra as A
from repro.core.schema import Attribute, Schema
from repro.core.types import DType
from repro.providers.reference import ReferenceProvider
from repro.storage.table import ColumnTable


def schema(*specs: tuple) -> Schema:
    """``schema(("i", "int", True), ("v", "float"))`` — compact test schemas."""
    names = {
        "int": DType.INT64,
        "float": DType.FLOAT64,
        "bool": DType.BOOL,
        "str": DType.STRING,
    }
    attrs = []
    for spec in specs:
        name, kind = spec[0], spec[1]
        dim = spec[2] if len(spec) > 2 else False
        attrs.append(Attribute(name, names[kind], dimension=dim))
    return Schema(attrs)


def table(sch: Schema, rows: Iterable[Sequence[Any]]) -> ColumnTable:
    return ColumnTable.from_rows(sch, rows)


def inline(sch: Schema, rows: Iterable[Sequence[Any]]) -> A.InlineTable:
    return A.InlineTable(sch, tuple(tuple(r) for r in rows))


def run_reference(tree: A.Node, **datasets: ColumnTable) -> ColumnTable:
    """Execute a tree on a fresh reference provider with the given datasets."""
    provider = ReferenceProvider("ref")
    for name, tbl in datasets.items():
        provider.register_dataset(name, tbl)
    return provider.execute(tree)


def rows_of(result: ColumnTable) -> list[tuple]:
    """Canonically-ordered rows for order-insensitive assertions."""
    return result.sort_key()


#: A tiny orders/customers pair reused across relational tests.
CUSTOMERS = schema(("cid", "int"), ("name", "str"), ("country", "str"))
ORDERS = schema(("oid", "int"), ("cust", "int"), ("amount", "float"))

CUSTOMER_ROWS = [
    (1, "ada", "uk"),
    (2, "bob", "us"),
    (3, "cho", "jp"),
    (4, "dee", "us"),
]

ORDER_ROWS = [
    (100, 1, 25.0),
    (101, 1, 75.0),
    (102, 2, 10.0),
    (103, 3, 300.0),
    (104, 9, 5.0),  # dangling customer reference
]


def customers_table() -> ColumnTable:
    return table(CUSTOMERS, CUSTOMER_ROWS)


def orders_table() -> ColumnTable:
    return table(ORDERS, ORDER_ROWS)


#: A small dense 3x3 matrix as a dimensioned table.
MATRIX = schema(("i", "int", True), ("j", "int", True), ("v", "float"))


def matrix_rows(values: Sequence[Sequence[float]]) -> list[tuple]:
    return [
        (i, j, float(v))
        for i, row in enumerate(values)
        for j, v in enumerate(row)
    ]


def matrix_table(values: Sequence[Sequence[float]]) -> ColumnTable:
    return table(MATRIX, matrix_rows(values))

"""Relational engine tests: direct behaviour plus agreement with the oracle.

Every operator the relational provider claims is executed on both the
vectorized engine and the reference interpreter over the same inputs, and
the results must match as multisets.
"""

import numpy as np
import pytest

from repro.core import algebra as A
from repro.core.errors import ExecutionError
from repro.core.expressions import col, func, if_, lit
from repro.providers.reference import ReferenceProvider
from repro.providers.relational_p import RelationalProvider
from repro.relational.engine import EngineOptions
from repro.relational import joins
from repro.relational.eval import eval_vector

from .helpers import (
    CUSTOMERS, MATRIX, ORDERS,
    customers_table, inline, matrix_table, orders_table, schema, table,
)

CUST = A.Scan("customers", CUSTOMERS)
ORD = A.Scan("orders", ORDERS)
MAT = A.Scan("m", MATRIX)


def both(tree, float_tol=1e-9, options=None, **datasets):
    """Run on reference and relational providers; assert agreement."""
    ref = ReferenceProvider("ref")
    rel = RelationalProvider("rel", options)
    for name, tbl in datasets.items():
        ref.register_dataset(name, tbl)
        rel.register_dataset(name, tbl)
    expected = ref.execute(tree)
    actual = rel.execute(tree)
    assert actual.schema == expected.schema
    assert actual.same_rows(expected, float_tol=float_tol), (
        f"relational result differs from reference\n"
        f"reference: {expected.sort_key()[:10]}\n"
        f"relational: {actual.sort_key()[:10]}"
    )
    return actual


def default_datasets():
    return {
        "customers": customers_table(),
        "orders": orders_table(),
        "m": matrix_table([[1, 2, 3], [4, 5, 6], [7, 8, 9]]),
    }


AGREEMENT_TREES = [
    A.Filter(ORD, col("amount") > 20.0),
    A.Filter(ORD, (col("amount") > 5.0) & (col("cust") != 9)),
    A.Project(CUST, ("country", "name")),
    A.Extend(ORD, ("t", "half"), (col("amount") * 1.1, col("amount") / 2)),
    A.Extend(CUST, ("u",), (func("upper", col("name")),)),
    A.Extend(ORD, ("big",), (if_(col("amount") > 50.0, lit("Y"), lit("N")),)),
    A.Rename(CUST, (("name", "customer"),)),
    A.Join(CUST, ORD, (("cid", "cust"),)),
    A.Join(CUST, ORD, (("cid", "cust"),), "left"),
    A.Join(CUST, ORD, (("cid", "cust"),), "full"),
    A.Join(CUST, ORD, (("cid", "cust"),), "semi"),
    A.Join(CUST, ORD, (("cid", "cust"),), "anti"),
    A.Product(A.Project(CUST, ("name",)), A.Project(ORD, ("oid",))),
    A.Aggregate(ORD, ("cust",), (
        A.AggSpec("n", "count"),
        A.AggSpec("total", "sum", col("amount")),
        A.AggSpec("top", "max", col("amount")),
        A.AggSpec("avg", "mean", col("amount")),
    )),
    A.Aggregate(CUST, ("country",), (A.AggSpec("first", "min", col("name")),)),
    A.Aggregate(ORD, (), (A.AggSpec("n", "count"),)),
    A.Sort(ORD, ("amount",), (False,)),
    A.Sort(ORD, ("cust", "amount"), (True, False)),
    A.Limit(A.Sort(ORD, ("oid",), (True,)), 3, 1),
    A.Reverse(A.Sort(ORD, ("oid",), (True,))),
    A.Distinct(A.Project(CUST, ("country",))),
    A.Union(A.Rename(A.Project(ORD, ("cust",)), (("cust", "cid"),)),
            A.Project(CUST, ("cid",))),
    A.Intersect(A.Rename(A.Project(ORD, ("cust",)), (("cust", "cid"),)),
                A.Project(CUST, ("cid",))),
    A.Except(A.Project(CUST, ("cid",)),
             A.Rename(A.Project(ORD, ("cust",)), (("cust", "cid"),))),
    A.SliceDims(MAT, (("i", 0, 1), ("j", 1, 2))),
    A.ShiftDim(MAT, "i", 5),
    A.Regrid(MAT, (("i", 2), ("j", 2)), (A.AggSpec("v", "mean", col("v")),)),
    A.ReduceDims(MAT, ("j",), (A.AggSpec("s", "sum", col("v")),)),
    A.ReduceDims(MAT, (), (A.AggSpec("s", "sum", col("v")),)),
    A.TransposeDims(MAT, ("j", "i")),
]


@pytest.mark.parametrize(
    "tree", AGREEMENT_TREES,
    ids=lambda t: f"{t.op_name}-{abs(hash(repr(t))) % 10**6}",
)
def test_agreement_with_reference(tree):
    both(tree, **default_datasets())


class TestOrderSensitive:
    """Sort/limit results must match in exact order, not just as multisets."""

    def run_rel(self, tree, **datasets):
        rel = RelationalProvider("rel")
        for name, tbl in datasets.items():
            rel.register_dataset(name, tbl)
        return rel.execute(tree)

    def test_sort_exact_order_with_nulls(self):
        t = inline(schema(("a", "int"), ("b", "int")),
                   [(2, 1), (1, 2), (None, 0), (1, 1)])
        tree = A.Sort(t, ("a", "b"), (True, False))
        assert self.run_rel(tree).to_rows() == [(None, 0), (1, 2), (1, 1), (2, 1)]

    def test_sort_descending_nulls_last(self):
        t = inline(schema(("a", "int")), [(1,), (None,), (3,)])
        tree = A.Sort(t, ("a",), (False,))
        assert self.run_rel(tree).to_rows() == [(3,), (1,), (None,)]

    def test_sort_string_keys(self):
        t = inline(schema(("s", "str")), [("b",), (None,), ("a",), ("c",)])
        asc = self.run_rel(A.Sort(t, ("s",), (True,)))
        desc = self.run_rel(A.Sort(t, ("s",), (False,)))
        assert asc.to_rows() == [(None,), ("a",), ("b",), ("c",)]
        assert desc.to_rows() == [("c",), ("b",), ("a",), (None,)]

    def test_sort_is_stable(self):
        t = inline(schema(("k", "int"), ("tag", "str")),
                   [(1, "first"), (2, "x"), (1, "second"), (1, "third")])
        result = self.run_rel(A.Sort(t, ("k",), (True,)))
        tags = [r[1] for r in result.to_rows() if r[0] == 1]
        assert tags == ["first", "second", "third"]

    def test_limit_offset_exact(self):
        t = inline(schema(("x", "int")), [(i,) for i in range(10)])
        tree = A.Limit(A.Sort(t, ("x",), (True,)), 3, 4)
        assert self.run_rel(tree).to_rows() == [(4,), (5,), (6,)]


class TestJoinAlgorithms:
    LEFT = schema(("k", "int"), ("lv", "str"))
    RIGHT = schema(("k2", "int"), ("rv", "str"))

    def make(self, seed=3, n_left=60, n_right=40, key_range=20):
        rng = np.random.default_rng(seed)
        left = table(self.LEFT, [
            (int(k), f"l{i}") for i, k in enumerate(rng.integers(0, key_range, n_left))
        ])
        right = table(self.RIGHT, [
            (int(k), f"r{i}") for i, k in enumerate(rng.integers(0, key_range, n_right))
        ])
        return left, right

    def pairs(self, lidx, ridx):
        return sorted(zip(lidx.tolist(), ridx.tolist()))

    def test_merge_equals_hash(self):
        left, right = self.make()
        h = joins.hash_join(left, right, ["k"], ["k2"], "inner")
        m = joins.merge_join(left, right, ["k"], ["k2"])
        assert self.pairs(*h) == self.pairs(*m)

    def test_nested_equals_hash(self):
        left, right = self.make(seed=11, n_left=30, n_right=30)
        h = joins.hash_join(left, right, ["k"], ["k2"], "inner")
        n = joins.nested_loop_join(left, right, ["k"], ["k2"])
        assert self.pairs(*h) == self.pairs(*n)

    def test_merge_presorted(self):
        left, right = self.make(seed=5)
        ls = table(self.LEFT, sorted(left.to_rows()))
        rs = table(self.RIGHT, sorted(right.to_rows()))
        h = joins.hash_join(ls, rs, ["k"], ["k2"], "inner")
        m = joins.merge_join(ls, rs, ["k"], ["k2"], presorted=True)
        assert self.pairs(*h) == self.pairs(*m)

    def test_null_keys_never_match(self):
        left = table(self.LEFT, [(1, "a"), (None, "b")])
        right = table(self.RIGHT, [(1, "x"), (None, "y")])
        for fn in (joins.hash_join, joins.nested_loop_join):
            lidx, ridx = fn(left, right, ["k"], ["k2"])
            assert len(lidx) == 1
        lidx, __ = joins.merge_join(left, right, ["k"], ["k2"])
        assert len(lidx) == 1

    def test_engine_option_forces_algorithm(self):
        datasets = default_datasets()
        tree = A.Join(CUST, ORD, (("cid", "cust"),))
        for algorithm in ("merge", "nested"):
            both(tree, options=EngineOptions(join_algorithm=algorithm), **datasets)

    def test_multi_key_join(self):
        s1 = schema(("a", "int"), ("b", "str"), ("x", "int"))
        s2 = schema(("c", "int"), ("d", "str"), ("y", "int"))
        t1 = inline(s1, [(1, "p", 10), (1, "q", 11), (2, "p", 12)])
        t2 = inline(s2, [(1, "p", 100), (2, "p", 200), (2, "q", 300)])
        both(A.Join(t1, t2, (("a", "c"), ("b", "d"))))


class TestMatMulViaJoinAggregate:
    def test_matches_reference_and_numpy(self):
        rng = np.random.default_rng(42)
        a = rng.integers(1, 5, (4, 3)).astype(float)
        b = rng.integers(1, 5, (3, 5)).astype(float)
        m2_schema = schema(("j", "int", True), ("k", "int", True), ("w", "float"))
        tree = A.MatMul(MAT, A.Scan("m2", m2_schema))
        result = both(
            tree,
            m=matrix_table(a.tolist()),
            m2=table(m2_schema, [
                (i, j, float(v)) for i, row in enumerate(b) for j, v in enumerate(row)
            ]),
        )
        dense = np.zeros((4, 5))
        for i, k, v in result.iter_rows():
            dense[i, k] = v
        assert np.allclose(dense, a @ b)

    def test_sparse_inputs_stay_sparse(self):
        # identity x identity: only diagonal cells exist in the output
        eye = [(i, i, 1.0) for i in range(5)]
        m2_schema = schema(("j", "int", True), ("k", "int", True), ("w", "float"))
        tree = A.MatMul(MAT, A.Scan("m2", m2_schema))
        result = both(
            tree,
            m=table(MATRIX, eye),
            m2=table(m2_schema, [(i, i, 1.0) for i in range(5)]),
        )
        assert result.num_rows == 5


class TestDimensionChecks:
    def test_as_dims_rejects_duplicates(self):
        t = inline(schema(("i", "int"), ("v", "float")), [(0, 1.0), (0, 2.0)])
        rel = RelationalProvider("rel")
        with pytest.raises(ExecutionError, match="key"):
            rel.execute(A.AsDims(t, ("i",)))

    def test_window_not_supported(self):
        rel = RelationalProvider("rel")
        tree = A.Window(MAT, (("i", 1),), (A.AggSpec("v", "sum", col("v")),))
        assert not rel.accepts(tree)
        assert rel.unsupported(tree) == ["Window"]


class TestIterateInEngine:
    STATE = schema(("i", "int", True), ("v", "float"))

    def test_iterate_agreement(self):
        init = inline(self.STATE, [(0, 1.0), (1, 10.0)])
        halve = A.Rename(
            A.Project(
                A.Extend(A.LoopVar("s", self.STATE), ("v2",), (col("v") * 0.5,)),
                ("i", "v2"),
            ),
            (("v2", "v"),),
        )
        tree = A.Iterate(init, halve, var="s",
                         stop=A.Convergence("v", 0.01), max_iter=50)
        both(tree)

    def test_iterate_with_join_body(self):
        weights = schema(("i", "int", True), ("w", "float"))
        init = inline(self.STATE, [(0, 1.0), (1, 1.0)])
        body = A.Rename(
            A.Project(
                A.Extend(
                    A.Join(A.LoopVar("s", self.STATE), A.Scan("weights", weights),
                           (("i", "i"),)),
                    ("nv",), (col("v") * col("w"),),
                ),
                ("i", "nv"),
            ),
            (("nv", "v"),),
        )
        tree = A.Iterate(init, body, var="s", max_iter=3)
        both(tree, weights=table(weights, [(0, 2.0), (1, 0.5)]))


class TestVectorizedEval:
    def test_null_propagation_matches_rows(self):
        s = schema(("x", "float"), ("y", "float"))
        t = table(s, [(1.0, 2.0), (None, 3.0), (4.0, None), (None, None)])
        for expr in [
            col("x") + col("y"),
            col("x") > col("y"),
            col("x").is_null(),
            if_(col("x") > 2.0, col("y"), col("x")),
            func("sqrt", col("x")),
            -col("x"),
        ]:
            from repro.core.expressions import eval_row

            vector = eval_vector(expr, t).to_list()
            rows = [eval_row(expr, r) for r in t.iter_dicts()]
            assert vector == rows, f"mismatch for {expr!r}"

    def test_division_ieee_semantics(self):
        s = schema(("x", "float"), ("y", "float"))
        t = table(s, [(1.0, 0.0), (0.0, 0.0), (-1.0, 0.0)])
        values = eval_vector(col("x") / col("y"), t).to_list()
        assert values[0] == float("inf")
        assert np.isnan(values[1])
        assert values[2] == float("-inf")

    def test_integer_floor_div_by_zero_raises(self):
        s = schema(("x", "int"),)
        t = table(s, [(1,)])
        with pytest.raises(ExecutionError):
            eval_vector(col("x") // 0, t)

    def test_string_operations(self):
        s = schema(("s", "str"),)
        t = table(s, [("ab",), (None,), ("c",)])
        assert eval_vector(col("s") + col("s"), t).to_list() == ["abab", None, "cc"]
        assert eval_vector(func("length", col("s")), t).to_list() == [2, None, 1]
        assert eval_vector(col("s") == "c", t).to_list() == [False, None, True]

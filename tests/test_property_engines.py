"""Property-based engine agreement: random algebra trees over random tables
must produce identical results on the relational engine, the array engine
(where applicable), the rewriter's output, and the serialization round trip
— all judged against the reference interpreter."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import algebra as A
from repro.core import serialize
from repro.core.expressions import col, lit
from repro.core.rewriter import Rewriter
from repro.providers import ArrayProvider, ReferenceProvider, RelationalProvider
from repro.storage.table import ColumnTable

from .helpers import schema

# -- random base data --------------------------------------------------------

LEFT = schema(("k", "int"), ("v", "float"), ("tag", "str"))
RIGHT = schema(("k2", "int"), ("w", "float"))
GRID = schema(("i", "int", True), ("j", "int", True), ("cell", "float"))

left_rows = st.lists(
    st.tuples(
        st.integers(0, 8),
        st.one_of(st.none(), st.integers(-20, 20).map(lambda v: v / 2.0)),
        st.sampled_from(["x", "y", "z"]),
    ),
    max_size=25,
)
right_rows = st.lists(
    st.tuples(
        st.integers(0, 8),
        st.integers(-20, 20).map(lambda v: v / 2.0),
    ),
    max_size=15,
)


@st.composite
def grid_rows(draw):
    coords = draw(st.sets(
        st.tuples(st.integers(-4, 8), st.integers(-4, 8)), max_size=30
    ))
    return [
        (i, j, draw(st.integers(-10, 10)) / 2.0) for i, j in sorted(coords)
    ]


# -- random relational trees over the base data ---------------------------------

PREDICATES = [
    col("v") > 0.0,
    col("k") % 2 == 0,
    (col("tag") == "x") | (col("v") < -1.0),
    ~col("v").is_null(),
]

AGGS = [
    (A.AggSpec("n", "count"),),
    (A.AggSpec("s", "sum", col("v")), A.AggSpec("m", "max", col("v"))),
    (A.AggSpec("avg", "mean", col("v")),),
]


@st.composite
def relational_tree(draw):
    node = A.Scan("left", LEFT)
    steps = draw(st.integers(0, 4))
    joined = False
    for _ in range(steps):
        choice = draw(st.integers(0, 6))
        names = node.schema.names
        if choice == 0 and "v" in names and "k" in names and "tag" in names:
            node = A.Filter(node, draw(st.sampled_from(PREDICATES)))
        elif choice == 1 and "v" in names:
            node = A.Extend(node, ("d",), (col("v") * 2,)) \
                if "d" not in names else node
        elif choice == 2 and not joined and "k" in names:
            node = A.Join(node, A.Scan("right", RIGHT), (("k", "k2"),),
                          draw(st.sampled_from(["inner", "left", "semi", "anti"])))
            joined = True
        elif choice == 3:
            key = draw(st.sampled_from(list(names)))
            node = A.Sort(node, (key,), (draw(st.booleans()),))
        elif choice == 4:
            node = A.Limit(node, draw(st.integers(0, 10)),
                           draw(st.integers(0, 3)))
        elif choice == 5:
            node = A.Distinct(node)
        elif choice == 6 and "v" in names and "k" in names:
            node = A.Aggregate(node, ("k",), draw(st.sampled_from(AGGS)))
    return node


ARRAY_AGG = (A.AggSpec("cell", "mean", col("cell")),)


@st.composite
def array_tree(draw):
    node = A.Scan("grid", GRID)
    steps = draw(st.integers(0, 3))
    for _ in range(steps):
        choice = draw(st.integers(0, 5))
        dims = node.schema.dimension_names
        if choice == 0 and len(dims) == 2:
            node = A.SliceDims(node, ((dims[0], draw(st.integers(-4, 0)),
                                       draw(st.integers(1, 8))),))
        elif choice == 1:
            node = A.ShiftDim(node, dims[0], draw(st.integers(-3, 3)))
        elif choice == 2 and len(dims) == 2:
            node = A.Regrid(node, ((dims[0], draw(st.integers(1, 3))),),
                            ARRAY_AGG)
        elif choice == 3 and len(dims) == 2:
            node = A.Window(node, ((dims[0], draw(st.integers(0, 2))),),
                            ARRAY_AGG)
        elif choice == 4 and len(dims) == 2:
            node = A.TransposeDims(node, (dims[1], dims[0]))
        elif choice == 5 and "cell" in node.schema.value_names:
            node = A.Filter(node, col("cell") > 0.0)
    return node


def run_provider(provider_cls, name, tree, datasets):
    provider = provider_cls(name)
    for dataset_name, table in datasets.items():
        provider.register_dataset(dataset_name, table)
    return provider.execute(tree)


class TestRelationalAgreement:
    @settings(max_examples=80, deadline=None)
    @given(relational_tree(), left_rows, right_rows)
    def test_engine_matches_reference(self, tree, lrows, rrows):
        datasets = {
            "left": ColumnTable.from_rows(LEFT, lrows),
            "right": ColumnTable.from_rows(RIGHT, rrows),
        }
        expected = run_provider(ReferenceProvider, "ref", tree, datasets)
        actual = run_provider(RelationalProvider, "rel", tree, datasets)
        # Sort/Limit interplay: different-but-valid orders can change which
        # rows a Limit keeps when keys tie, so compare as multisets only
        # when the tree has no Limit-after-Sort ambiguity; we sidestep by
        # comparing multisets plus cardinality, which every tree satisfies
        # because engine and reference use identical stable sort rules.
        assert actual.same_rows(expected, float_tol=1e-9), (
            f"\ntree: {tree!r}\nref: {expected.sort_key()[:8]}"
            f"\nrel: {actual.sort_key()[:8]}"
        )

    @settings(max_examples=60, deadline=None)
    @given(relational_tree(), left_rows, right_rows)
    def test_rewriter_preserves_semantics(self, tree, lrows, rrows):
        datasets = {
            "left": ColumnTable.from_rows(LEFT, lrows),
            "right": ColumnTable.from_rows(RIGHT, rrows),
        }
        rewritten = Rewriter().rewrite(tree)
        assert rewritten.schema == tree.schema
        expected = run_provider(ReferenceProvider, "ref", tree, datasets)
        actual = run_provider(ReferenceProvider, "ref2", rewritten, datasets)
        assert actual.same_rows(expected, float_tol=1e-9), f"tree: {tree!r}"

    @settings(max_examples=80, deadline=None)
    @given(relational_tree())
    def test_serialization_round_trips(self, tree):
        decoded = serialize.loads(serialize.dumps(tree))
        assert decoded.same_as(tree)
        assert decoded.schema == tree.schema


class TestArrayAgreement:
    @settings(max_examples=60, deadline=None)
    @given(array_tree(), grid_rows(), st.sampled_from([2, 5, 16]))
    def test_array_engine_matches_reference(self, tree, rows, chunk):
        from repro.array.engine import ArrayEngineOptions

        datasets = {"grid": ColumnTable.from_rows(GRID, rows)}
        expected = run_provider(ReferenceProvider, "ref", tree, datasets)
        provider = ArrayProvider("arr", ArrayEngineOptions(chunk_side=chunk))
        provider.register_dataset("grid", datasets["grid"])
        actual = provider.execute(tree)
        assert actual.same_rows(expected, float_tol=1e-9), (
            f"\ntree: {tree!r}\nchunk={chunk}"
            f"\nref: {expected.sort_key()[:8]}\narr: {actual.sort_key()[:8]}"
        )

    @settings(max_examples=50, deadline=None)
    @given(array_tree())
    def test_array_tree_serialization(self, tree):
        decoded = serialize.loads(serialize.dumps(tree))
        assert decoded.same_as(tree)

"""Unit tests for algebra node construction and schema inference."""

import pytest

from repro.core import algebra as A
from repro.core.errors import AlgebraError, SchemaError, TypeMismatchError
from repro.core.expressions import col, lit
from repro.core.types import DType

from .helpers import CUSTOMERS, MATRIX, ORDERS, inline, schema


def scan(name, sch):
    return A.Scan(name, sch)


CUST = scan("customers", CUSTOMERS)
ORD = scan("orders", ORDERS)
MAT = scan("m", MATRIX)


class TestConstruction:
    def test_join_requires_keys(self):
        with pytest.raises(AlgebraError):
            A.Join(CUST, ORD, on=(), how="inner")

    def test_join_rejects_unknown_kind(self):
        with pytest.raises(AlgebraError):
            A.Join(CUST, ORD, on=(("cid", "cust"),), how="sideways")

    def test_aggregate_needs_specs(self):
        with pytest.raises(AlgebraError):
            A.Aggregate(ORD, ("cust",), ())

    def test_aggspec_validates_func(self):
        with pytest.raises(AlgebraError):
            A.AggSpec("x", "median", col("amount"))

    def test_aggspec_sum_needs_argument(self):
        with pytest.raises(AlgebraError):
            A.AggSpec("x", "sum", None)

    def test_limit_rejects_negative(self):
        with pytest.raises(AlgebraError):
            A.Limit(ORD, -1)

    def test_slice_rejects_empty_range(self):
        with pytest.raises(AlgebraError):
            A.SliceDims(MAT, (("i", 5, 3),))

    def test_iterate_body_must_use_loop_var(self):
        with pytest.raises(AlgebraError):
            A.Iterate(MAT, MAT, var="state")

    def test_convergence_validates(self):
        with pytest.raises(AlgebraError):
            A.Convergence("v", -1.0)
        with pytest.raises(AlgebraError):
            A.Convergence("v", 0.1, norm="l7")

    def test_with_children_preserves_intent(self):
        node = A.Filter(ORD, col("amount") > 0).with_intent("selective")
        rebuilt = node.with_children((CUST,))
        assert rebuilt.intent == "selective"

    def test_same_as_ignores_schema_cache_but_not_intent(self):
        a = A.Filter(ORD, col("amount") > 0)
        b = A.Filter(ORD, col("amount") > 0)
        _ = a.schema  # populate cache on one side only
        assert a.same_as(b)
        assert not a.same_as(b.with_intent("x"))

    def test_walk_visits_all(self):
        tree = A.Filter(A.Join(CUST, ORD, (("cid", "cust"),)), col("amount") > 0)
        names = [n.op_name for n in tree.walk()]
        assert names == ["Filter", "Join", "Scan", "Scan"]


class TestInference:
    def test_filter_keeps_schema(self):
        node = A.Filter(ORD, col("amount") > 10)
        assert node.schema == ORDERS

    def test_filter_requires_bool(self):
        with pytest.raises(TypeMismatchError):
            A.Filter(ORD, col("amount") + 1).schema

    def test_project(self):
        node = A.Project(CUST, ("name", "cid"))
        assert node.schema.names == ("name", "cid")

    def test_extend_appends_typed_column(self):
        node = A.Extend(ORD, ("double",), (col("amount") * 2,))
        assert node.schema["double"].dtype is DType.FLOAT64

    def test_extend_rejects_shadowing(self):
        with pytest.raises(SchemaError):
            A.Extend(ORD, ("amount",), (col("amount") * 2,)).schema

    def test_extend_expressions_see_input_only(self):
        node = A.Extend(ORD, ("x", "y"), (col("amount"), col("x")))
        with pytest.raises(SchemaError):
            node.schema

    def test_join_drops_right_keys(self):
        node = A.Join(CUST, ORD, (("cid", "cust"),))
        assert node.schema.names == ("cid", "name", "country", "oid", "amount")

    def test_join_key_types_must_compare(self):
        with pytest.raises(TypeMismatchError):
            A.Join(CUST, ORD, (("name", "cust"),)).schema

    def test_semi_join_keeps_left_schema(self):
        node = A.Join(CUST, ORD, (("cid", "cust"),), how="semi")
        assert node.schema == CUSTOMERS

    def test_outer_join_untags_nullable_dimensions(self):
        left = scan("a", schema(("i", "int", True), ("v", "float")))
        right = scan("b", schema(("k", "int"), ("j", "int", True)))
        node = A.Join(left, right, (("i", "k"),), how="left")
        assert not node.schema["j"].dimension

    def test_aggregate_schema(self):
        node = A.Aggregate(
            ORD, ("cust",),
            (A.AggSpec("n", "count"), A.AggSpec("total", "sum", col("amount"))),
        )
        assert node.schema.names == ("cust", "n", "total")
        assert node.schema["n"].dtype is DType.INT64
        assert node.schema["total"].dtype is DType.FLOAT64

    def test_mean_always_float(self):
        node = A.Aggregate(ORD, (), (A.AggSpec("m", "mean", col("oid")),))
        assert node.schema["m"].dtype is DType.FLOAT64

    def test_sum_of_string_rejected(self):
        with pytest.raises(TypeMismatchError):
            A.Aggregate(CUST, (), (A.AggSpec("s", "sum", col("name")),)).schema

    def test_set_op_requires_matching_names(self):
        with pytest.raises(SchemaError):
            A.Union(CUST, ORD).schema

    def test_set_op_promotes_numeric(self):
        a = scan("a", schema(("x", "int")))
        b = scan("b", schema(("x", "float")))
        assert A.Union(a, b).schema["x"].dtype is DType.FLOAT64

    def test_as_dims_requires_int(self):
        node = A.AsDims(CUST, ("name",))
        with pytest.raises(SchemaError):
            node.schema

    def test_slice_requires_dimension(self):
        node = A.SliceDims(ORD, (("oid", 0, 10),))
        with pytest.raises(SchemaError):
            node.schema

    def test_regrid_schema(self):
        node = A.Regrid(MAT, (("i", 2),), (A.AggSpec("v", "mean", col("v")),))
        assert node.schema.dimension_names == ("i", "j")
        assert node.schema["v"].dtype is DType.FLOAT64

    def test_reduce_dims_schema(self):
        node = A.ReduceDims(MAT, ("i",), (A.AggSpec("total", "sum", col("v")),))
        assert node.schema.names == ("i", "total")
        assert node.schema["i"].dimension

    def test_transpose_requires_permutation(self):
        with pytest.raises(SchemaError):
            A.TransposeDims(MAT, ("i",)).schema
        node = A.TransposeDims(MAT, ("j", "i"))
        assert node.schema.dimension_names == ("j", "i")

    def test_matmul_schema(self):
        other = scan("m2", schema(("j", "int", True), ("k", "int", True), ("w", "float")))
        node = A.MatMul(MAT, other)
        assert node.schema.dimension_names == ("i", "k")
        assert node.schema.value_names == ("v",)

    def test_matmul_requires_shared_inner_dim(self):
        other = scan("m2", schema(("p", "int", True), ("q", "int", True), ("w", "float")))
        with pytest.raises(SchemaError):
            A.MatMul(MAT, other).schema

    def test_matmul_requires_matrix_shape(self):
        vec = scan("vec", schema(("j", "int", True), ("w", "float")))
        with pytest.raises(SchemaError):
            A.MatMul(MAT, vec).schema

    def test_cell_join_schema(self):
        other = scan("m2", schema(("i", "int", True), ("j", "int", True), ("w", "float")))
        node = A.CellJoin(MAT, other)
        assert node.schema.names == ("i", "j", "v", "w")

    def test_cell_join_rejects_value_collision(self):
        other = scan("m2", MATRIX)
        with pytest.raises(SchemaError):
            A.CellJoin(MAT, other).schema

    def test_iterate_schema_must_match(self):
        init = MAT
        body = A.Extend(
            A.Project(A.LoopVar("state", MATRIX), ("i", "j")),
            ("v",), (lit(1.0),),
        )
        node = A.Iterate(init, body, var="state")
        assert node.schema == MATRIX

    def test_iterate_rejects_schema_drift(self):
        body = A.Project(A.LoopVar("state", MATRIX), ("i", "j"))
        with pytest.raises(SchemaError):
            A.Iterate(MAT, body, var="state").schema

    def test_iterate_convergence_needs_dimensions(self):
        plain = scan("t", schema(("v", "float")))
        body = A.Filter(A.LoopVar("s", plain.schema), lit(True))
        node = A.Iterate(plain, body, var="s", stop=A.Convergence("v", 1e-3))
        with pytest.raises(SchemaError):
            node.schema

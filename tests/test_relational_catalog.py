"""Tests for the relational server's catalog, statistics and indexes."""

import numpy as np
import pytest

from repro.core import algebra as A
from repro.core.errors import PlanningError, SchemaError
from repro.core.expressions import col, lit
from repro.providers import ReferenceProvider, RelationalProvider
from repro.relational.catalog import ColumnStats, RelationalCatalog
from repro.relational.indexes import HashIndex, SortedIndex
from repro.storage.column import Column
from repro.core.types import DType

from .helpers import ORDERS, orders_table, schema, table


class TestColumnStats:
    def test_numeric_stats(self):
        t = table(schema(("x", "int")), [(3,), (1,), (3,), (7,)])
        stats = ColumnStats.compute(t, "x")
        assert stats.distinct == 3
        assert stats.min == 1 and stats.max == 7
        assert stats.null_count == 0

    def test_stats_with_nulls_and_strings(self):
        t = table(schema(("s", "str")), [("b",), (None,), ("a",), ("b",)])
        stats = ColumnStats.compute(t, "s")
        assert stats.distinct == 2
        assert stats.null_count == 1
        assert stats.min == "a" and stats.max == "b"

    def test_all_null_column(self):
        t = table(schema(("x", "float")), [(None,), (None,)])
        stats = ColumnStats.compute(t, "x")
        assert stats.distinct == 0 and stats.null_count == 2
        assert stats.min is None


class TestIndexes:
    def test_hash_index_lookup(self):
        column = Column.from_values(DType.INT64, [5, 3, 5, None, 7])
        index = HashIndex(column)
        assert index.lookup(5).tolist() == [0, 2]
        assert index.lookup(99).tolist() == []
        assert index.lookup(None).tolist() == []  # null matches nothing
        assert index.distinct_values == 3

    def test_hash_index_strings(self):
        column = Column.from_values(DType.STRING, ["a", "b", "a"])
        index = HashIndex(column)
        assert index.lookup("a").tolist() == [0, 2]

    def test_sorted_index_ranges(self):
        column = Column.from_values(DType.INT64, [30, 10, None, 20, 40])
        index = SortedIndex(column)
        assert index.range_lookup(15, 35).tolist() == [0, 3]
        assert index.range_lookup(None, 20).tolist() == [1, 3]
        assert index.range_lookup(20, None, low_inclusive=False).tolist() == [0, 4]
        assert index.equality_lookup(20).tolist() == [3]
        assert index.min == 10 and index.max == 40

    def test_sorted_index_exclusive_bounds(self):
        column = Column.from_values(DType.FLOAT64, [1.0, 2.0, 3.0])
        index = SortedIndex(column)
        assert index.range_lookup(1.0, 3.0, low_inclusive=False,
                                  high_inclusive=False).tolist() == [1]


class TestCatalog:
    def test_register_and_entry(self):
        catalog = RelationalCatalog()
        catalog.register("orders", orders_table())
        entry = catalog.entry("orders")
        assert entry.row_count == 5
        assert entry.stats["cust"].distinct == 4
        assert "orders" in catalog

    def test_missing_entry(self):
        with pytest.raises(PlanningError):
            RelationalCatalog().entry("ghost")

    def test_create_index_validates_column(self):
        catalog = RelationalCatalog()
        catalog.register("orders", orders_table())
        with pytest.raises(SchemaError):
            catalog.create_hash_index("orders", "ghost")

    def test_equality_selectivity(self):
        catalog = RelationalCatalog()
        catalog.register("orders", orders_table())
        sel = catalog.entry("orders").selectivity_of_equality("cust")
        assert sel == pytest.approx(1 / 4)


class TestIndexedExecution:
    def make_provider(self, rows=2000, seed=0):
        rng = np.random.default_rng(seed)
        s = schema(("k", "int"), ("grp", "int"), ("v", "float"))
        data = table(s, [
            (i, int(rng.integers(0, 50)), float(rng.uniform(0, 1)))
            for i in range(rows)
        ])
        provider = RelationalProvider("sql")
        provider.register_dataset("data", data)
        reference = ReferenceProvider("ref")
        reference.register_dataset("data", data)
        return provider, reference, s

    def test_hash_index_probe_fires_and_matches(self):
        provider, reference, s = self.make_provider()
        provider.create_index("data", "grp", "hash")
        tree = A.Filter(A.Scan("data", s), col("grp") == 7)
        result = provider.execute(tree)
        assert provider.engine.index_hits == 1
        assert result.same_rows(reference.execute(tree))

    def test_sorted_index_range_fires_and_matches(self):
        provider, reference, s = self.make_provider()
        provider.create_index("data", "k", "sorted")
        for predicate in (col("k") < 100, col("k") >= 1900,
                          lit(50) > col("k"), col("k") == 123):
            tree = A.Filter(A.Scan("data", s), predicate)
            hits_before = provider.engine.index_hits
            result = provider.execute(tree)
            assert provider.engine.index_hits == hits_before + 1
            assert result.same_rows(reference.execute(tree))

    def test_conjunct_uses_index_then_filters_rest(self):
        provider, reference, s = self.make_provider()
        provider.create_index("data", "grp", "hash")
        tree = A.Filter(
            A.Scan("data", s), (col("grp") == 7) & (col("v") > 0.5)
        )
        result = provider.execute(tree)
        assert provider.engine.index_hits == 1
        assert result.same_rows(reference.execute(tree))

    def test_no_index_means_no_hit(self):
        provider, reference, s = self.make_provider()
        tree = A.Filter(A.Scan("data", s), col("grp") == 7)
        result = provider.execute(tree)
        assert provider.engine.index_hits == 0
        assert result.same_rows(reference.execute(tree))

    def test_index_survives_through_planner_pipeline(self):
        """End-to-end: context + rewriter still hit the index."""
        from repro import BigDataContext

        provider, __, s = self.make_provider()
        provider.create_index("data", "grp", "hash")
        ctx = BigDataContext()
        ctx.add_provider(provider)
        result = (
            ctx.table("data")
            .where(col("grp") == 7)
            .aggregate([], n=("count", None))
            .collect()
        )
        assert provider.engine.index_hits >= 1
        assert result.scalar() > 0

    def test_unknown_index_kind_rejected(self):
        provider, __, ___ = self.make_provider(rows=10)
        with pytest.raises(ValueError):
            provider.create_index("data", "k", "btree9000")

    def test_fragment_inputs_bypass_catalog(self):
        provider, __, s = self.make_provider(rows=10)
        provider.create_index("data", "grp", "hash")
        other = table(s, [(0, 7, 0.5)])
        tree = A.Filter(A.Scan("@frag0", s), col("grp") == 7)
        result = provider.execute(tree, inputs={"@frag0": other})
        assert provider.engine.index_hits == 0
        assert result.num_rows == 1

"""Rewriter tests: structural effects, semantics preservation against the
oracle, and intent-tag preservation."""

import pytest

from repro.core import algebra as A
from repro.core import intents
from repro.core.expressions import col, func, lit
from repro.core.rewriter import RewriteOptions, Rewriter, prune_projections
from repro.core.visitors import count_ops, find_all

from .helpers import (
    CUSTOMERS, MATRIX, ORDERS,
    customers_table, matrix_table, orders_table, run_reference, schema, table,
)

CUST = A.Scan("customers", CUSTOMERS)
ORD = A.Scan("orders", ORDERS)
MAT = A.Scan("m", MATRIX)


def datasets():
    import numpy as np

    rng = np.random.default_rng(5)
    b = rng.integers(0, 4, (3, 4)).astype(float)
    m2_schema = schema(("j", "int", True), ("k", "int", True), ("w", "float"))
    return {
        "customers": customers_table(),
        "orders": orders_table(),
        "m": matrix_table([[1, 0, 2], [0, 3, 0], [4, 5, 6]]),
        "m2": table(m2_schema, [
            (i, j, float(v)) for i, row in enumerate(b) for j, v in enumerate(row)
        ]),
    }


def assert_equivalent(before: A.Node, after: A.Node):
    data = datasets()
    expected = run_reference(before, **data)
    actual = run_reference(after, **data)
    assert after.schema == before.schema
    assert actual.same_rows(expected, float_tol=1e-9)


class TestFilterRules:
    def test_filter_fusion(self):
        tree = A.Filter(A.Filter(ORD, col("amount") > 5.0), col("cust") == 1)
        out = Rewriter().rewrite(tree)
        filters = list(find_all(out, A.Filter))
        assert len(filters) == 1
        assert_equivalent(tree, out)

    def test_pushdown_through_project(self):
        tree = A.Filter(A.Project(ORD, ("oid", "amount")), col("amount") > 5.0)
        out = Rewriter(RewriteOptions(projection_pruning=False)).rewrite(tree)
        # filter must now sit below the project
        assert isinstance(out, A.Project)
        assert_equivalent(tree, out)

    def test_pushdown_into_inner_join_both_sides(self):
        tree = A.Filter(
            A.Join(CUST, ORD, (("cid", "cust"),)),
            (col("country") == "us") & (col("amount") > 5.0),
        )
        out = Rewriter(RewriteOptions(projection_pruning=False)).rewrite(tree)
        join = next(iter(find_all(out, A.Join)))
        assert isinstance(join.left, A.Filter)
        assert isinstance(join.right, A.Filter)
        assert_equivalent(tree, out)

    def test_left_join_pushes_only_left_conjuncts(self):
        tree = A.Filter(
            A.Join(CUST, ORD, (("cid", "cust"),), "left"),
            col("country") == "us",
        )
        out = Rewriter(RewriteOptions(projection_pruning=False)).rewrite(tree)
        join = next(iter(find_all(out, A.Join)))
        assert isinstance(join.left, A.Filter)
        assert_equivalent(tree, out)

    def test_left_join_keeps_right_conjuncts_above(self):
        tree = A.Filter(
            A.Join(CUST, ORD, (("cid", "cust"),), "left"),
            col("amount") > 5.0,
        )
        out = Rewriter(RewriteOptions(projection_pruning=False)).rewrite(tree)
        assert isinstance(out, A.Filter)  # stayed above the join
        assert_equivalent(tree, out)

    def test_full_join_pushes_nothing(self):
        tree = A.Filter(
            A.Join(CUST, ORD, (("cid", "cust"),), "full"),
            col("country") == "us",
        )
        out = Rewriter(RewriteOptions(projection_pruning=False)).rewrite(tree)
        join = next(iter(find_all(out, A.Join)))
        assert isinstance(join.left, A.Scan)
        assert_equivalent(tree, out)

    def test_pushdown_through_extend(self):
        tree = A.Filter(
            A.Extend(ORD, ("taxed",), (col("amount") * 1.1,)),
            (col("cust") == 1) & (col("taxed") > 20.0),
        )
        out = Rewriter(RewriteOptions(projection_pruning=False)).rewrite(tree)
        extend = next(iter(find_all(out, A.Extend)))
        assert isinstance(extend.child, A.Filter)  # cust conjunct moved down
        assert_equivalent(tree, out)

    def test_pushdown_through_sort(self):
        tree = A.Filter(A.Sort(ORD, ("oid",), (True,)), col("amount") > 5.0)
        out = Rewriter(RewriteOptions(projection_pruning=False)).rewrite(tree)
        assert isinstance(out, A.Sort)
        assert_equivalent(tree, out)

    def test_disabled_rule_is_inert(self):
        tree = A.Filter(A.Project(ORD, ("oid", "amount")), col("amount") > 5.0)
        out = Rewriter(RewriteOptions(
            predicate_pushdown=False, projection_pruning=False,
        )).rewrite(tree)
        assert out.same_as(tree)


class TestExtendFusion:
    def test_independent_extends_merge(self):
        tree = A.Extend(
            A.Extend(ORD, ("a",), (col("amount") * 2,)),
            ("b",), (col("amount") + 1,),
        )
        out = Rewriter().rewrite(tree)
        extends = list(find_all(out, A.Extend))
        assert len(extends) == 1
        assert extends[0].names == ("a", "b")
        assert_equivalent(tree, out)

    def test_dependent_extends_do_not_merge(self):
        tree = A.Extend(
            A.Extend(ORD, ("a",), (col("amount") * 2,)),
            ("b",), (col("a") + 1,),
        )
        out = Rewriter(RewriteOptions(projection_pruning=False)).rewrite(tree)
        assert len(list(find_all(out, A.Extend))) == 2
        assert_equivalent(tree, out)


class TestProjectionPruning:
    def test_join_inputs_narrowed(self):
        tree = A.Project(
            A.Join(CUST, ORD, (("cid", "cust"),)),
            ("name", "amount"),
        )
        out = prune_projections(tree)
        join = next(iter(find_all(out, A.Join)))
        assert set(join.left.schema.names) == {"cid", "name"}
        assert set(join.right.schema.names) == {"cust", "amount"}
        assert_equivalent(tree, out)

    def test_aggregate_child_narrowed(self):
        tree = A.Aggregate(
            A.Join(CUST, ORD, (("cid", "cust"),)),
            ("country",), (A.AggSpec("total", "sum", col("amount")),),
        )
        out = prune_projections(tree)
        join = next(iter(find_all(out, A.Join)))
        assert "name" not in join.schema.names
        assert_equivalent(tree, out)

    def test_global_count_star_survives(self):
        tree = A.Aggregate(CUST, (), (A.AggSpec("n", "count"),))
        out = prune_projections(tree)
        assert_equivalent(tree, out)

    def test_root_schema_unchanged(self):
        tree = A.Join(CUST, ORD, (("cid", "cust"),))
        out = prune_projections(tree)
        assert out.schema == tree.schema

    def test_unused_extend_column_dropped(self):
        tree = A.Project(
            A.Extend(ORD, ("a", "b"), (col("amount") * 2, col("amount") + 1)),
            ("oid", "a"),
        )
        out = prune_projections(tree)
        extend = next(iter(find_all(out, A.Extend)))
        assert extend.names == ("a",)
        assert_equivalent(tree, out)

    def test_distinct_keeps_all_columns(self):
        tree = A.Project(A.Distinct(CUST), ("country",))
        out = prune_projections(tree)
        distinct = next(iter(find_all(out, A.Distinct)))
        assert set(distinct.child.schema.names) == set(CUSTOMERS.names)
        assert_equivalent(tree, out)


class TestIntentRecognition:
    def m2_scan(self):
        return A.Scan("m2", schema(("j", "int", True), ("k", "int", True),
                                   ("w", "float")))

    def test_lowered_matmul_recognized(self):
        lowered = intents.matmul_as_join_aggregate(MAT, self.m2_scan())
        out = Rewriter().rewrite(lowered)
        assert count_ops(out).get("MatMul", 0) == 1
        assert count_ops(out).get("Join", 0) == 0
        assert_equivalent(lowered, out)

    def test_recognition_requires_dimensions_or_tag(self):
        # same shape but inputs untagged and no intent tag: not rewritten
        plain_left = A.Scan("a", schema(("i", "int"), ("k", "int"), ("v", "float")))
        plain_right = A.Scan("b", schema(("k2", "int"), ("j", "int"), ("w", "float")))
        joined = A.Join(plain_left, plain_right, (("k", "k2"),))
        product = A.Extend(joined, ("p",), (col("v") * col("w"),))
        agg = A.Aggregate(product, ("i", "j"), (A.AggSpec("s", "sum", col("p")),))
        out = Rewriter(RewriteOptions(projection_pruning=False)).rewrite(agg)
        assert count_ops(out).get("MatMul", 0) == 0

    def test_tag_makes_untagged_inputs_recognizable(self):
        plain_left = A.Scan("a", schema(("i", "int"), ("k", "int"), ("v", "float")))
        plain_right = A.Scan("b", schema(("k2", "int"), ("j", "int"), ("w", "float")))
        joined = A.Join(plain_left, plain_right, (("k", "k2"),))
        product = A.Extend(joined, ("p",), (col("v") * col("w"),))
        agg = A.Aggregate(product, ("i", "j"),
                          (A.AggSpec("s", "sum", col("p")),),
                          intent=intents.INTENT_MATMUL)
        out = Rewriter(RewriteOptions(projection_pruning=False)).rewrite(agg)
        assert count_ops(out).get("MatMul", 0) == 1

    def test_recognition_can_be_disabled(self):
        lowered = intents.matmul_as_join_aggregate(MAT, self.m2_scan())
        out = Rewriter(RewriteOptions(recognize_intents=False)).rewrite(lowered)
        assert count_ops(out).get("MatMul", 0) == 0

    def test_recognized_result_matches_native(self):
        lowered = intents.matmul_as_join_aggregate(MAT, self.m2_scan())
        native = A.MatMul(MAT, self.m2_scan())
        data = datasets()
        lowered_result = run_reference(Rewriter().rewrite(lowered), **data)
        native_result = run_reference(native, **data)
        # schemas have the same shape; compare rows directly
        assert sorted(lowered_result.iter_rows()) == sorted(native_result.iter_rows())


class TestTagPreservation:
    def test_tags_survive_all_rules(self):
        tree = A.Filter(
            A.Project(
                A.Join(CUST, ORD, (("cid", "cust"),), intent="hot-join"),
                ("name", "amount", "country"),
            ),
            col("amount") > 5.0,
        ).with_intent("selective")
        out = Rewriter().rewrite(tree)
        tags = intents.tags_in(out)
        assert tags.get("hot-join") == 1
        assert tags.get("selective") == 1
        assert_equivalent(tree, out)

    def test_matmul_tag_present_after_recognition(self):
        lowered = intents.matmul_as_join_aggregate(
            MAT,
            A.Scan("m2", schema(("j", "int", True), ("k", "int", True),
                                ("w", "float"))),
        )
        out = Rewriter().rewrite(lowered)
        assert intents.INTENT_MATMUL in intents.tags_in(out)

"""Matrix frontend tests: operator overloading, intent tagging, and the
native-vs-relational lowering paths agreeing."""

import numpy as np
import pytest

from repro import BigDataContext
from repro.core import algebra as A
from repro.core.errors import SchemaError
from repro.core.intents import INTENT_MATMUL, tags_in
from repro.datasets import dense_matrix_table
from repro.frontends.matrix import Matrix
from repro.providers import ArrayProvider, LinalgProvider, RelationalProvider

from .helpers import schema, table


def make_context():
    ctx = BigDataContext()
    ctx.add_provider(RelationalProvider("sql"))
    ctx.add_provider(ArrayProvider("scidb"))
    ctx.add_provider(LinalgProvider("scalapack"))
    a = dense_matrix_table(4, 3, seed=1)
    b = dense_matrix_table(3, 5, seed=2, row_name="j", col_name="k",
                           value_name="w")
    ctx.load("a", a, on="scidb")
    ctx.load("b", b, on="scidb")
    return ctx, a, b


def to_dense(collection, shape):
    out = np.zeros(shape)
    for i, j, v in collection:
        out[i, j] = v
    return out


def table_dense(t, shape):
    out = np.zeros(shape)
    for i, j, v in t.iter_rows():
        out[i, j] = v
    return out


class TestMatrixDsl:
    def test_wrap_validates_shape(self):
        ctx, *_ = make_context()
        vec = schema(("i", "int", True), ("v", "float"))
        ctx.load("vec", table(vec, [(0, 1.0)]), on="sql")
        with pytest.raises(SchemaError):
            Matrix.wrap(ctx.table("vec"))

    def test_matmul_is_intent_tagged(self):
        ctx, *_ = make_context()
        a = Matrix.wrap(ctx.table("a"))
        b = Matrix.wrap(ctx.table("b"))
        product = a @ b
        assert product.node.intent == INTENT_MATMUL
        assert isinstance(product.node, A.MatMul)

    def test_matmul_matches_numpy(self):
        ctx, a_table, b_table = make_context()
        a = Matrix.wrap(ctx.table("a"))
        b = Matrix.wrap(ctx.table("b"))
        result = (a @ b).collect()
        expected = table_dense(a_table, (4, 3)) @ table_dense(
            b_table.rename({"j": "i", "k": "j", "w": "v"}), (3, 5)
        )
        assert np.allclose(to_dense(result, (4, 5)), expected, atol=1e-9)

    def test_relational_lowering_still_recognized(self):
        """The lowered form keeps its intent and is rewritten to MatMul."""
        ctx, *_ = make_context()
        a = Matrix.wrap(ctx.table("a"), lowering="relational")
        b = Matrix.wrap(ctx.table("b"), lowering="relational")
        lowered = (a @ b).node
        assert not any(isinstance(n, A.MatMul) for n in lowered.walk())
        assert INTENT_MATMUL in tags_in(lowered)
        optimized = ctx.rewriter.rewrite(lowered)
        assert any(isinstance(n, A.MatMul) for n in optimized.walk())

    def test_both_lowerings_agree(self):
        ctx, *_ = make_context()
        native = (Matrix.wrap(ctx.table("a")) @ Matrix.wrap(ctx.table("b"))).collect()
        lowered = (
            Matrix.wrap(ctx.table("a"), lowering="relational")
            @ Matrix.wrap(ctx.table("b"), lowering="relational")
        ).collect()
        assert native.table.same_rows(lowered.table, float_tol=1e-9)

    def test_transpose(self):
        ctx, a_table, _ = make_context()
        result = Matrix.wrap(ctx.table("a")).T.collect()
        expected = table_dense(a_table, (4, 3)).T
        got = np.zeros((3, 4))
        for j, i, v in result:
            got[j, i] = v
        assert np.allclose(got, expected)

    def test_elementwise_add_and_hadamard(self):
        ctx, a_table, _ = make_context()
        a = Matrix.wrap(ctx.table("a"))
        dense = table_dense(a_table, (4, 3))
        total = (a + a).collect()
        assert np.allclose(to_dense(total, (4, 3)), 2 * dense, atol=1e-9)
        squared = (a * a).collect()
        assert np.allclose(to_dense(squared, (4, 3)), dense * dense, atol=1e-9)

    def test_scale(self):
        ctx, a_table, _ = make_context()
        a = Matrix.wrap(ctx.table("a"))
        result = (3.0 * a).collect()
        assert np.allclose(
            to_dense(result, (4, 3)), 3 * table_dense(a_table, (4, 3)),
            atol=1e-9,
        )

    def test_expression_chain(self):
        """(A @ B).T scaled — a realistic composite expression."""
        ctx, a_table, b_table = make_context()
        a = Matrix.wrap(ctx.table("a"))
        b = Matrix.wrap(ctx.table("b"))
        result = ((a @ b).T * 0.5).collect()
        expected = 0.5 * (
            table_dense(a_table, (4, 3))
            @ table_dense(b_table.rename({"j": "i", "k": "j", "w": "v"}), (3, 5))
        ).T
        got = np.zeros((5, 4))
        for i, j, v in result:
            got[i, j] = v
        assert np.allclose(got, expected, atol=1e-9)

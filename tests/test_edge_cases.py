"""Assorted edge cases across engines: unusual aggregate types, empty
inputs, degenerate shapes, provider bookkeeping."""

import numpy as np
import pytest

from repro.core import algebra as A
from repro.core.errors import ExecutionError, PlanningError
from repro.core.expressions import col, lit
from repro.providers import (
    ArrayProvider, ReferenceProvider, RelationalProvider,
)

from .helpers import (
    MATRIX, inline, matrix_table, run_reference, schema, table,
)


def both(tree, float_tol=0.0, **datasets):
    ref = ReferenceProvider("ref")
    rel = RelationalProvider("rel")
    for name, t in datasets.items():
        ref.register_dataset(name, t)
        rel.register_dataset(name, t)
    expected = ref.execute(tree)
    actual = rel.execute(tree)
    assert actual.same_rows(expected, float_tol=float_tol)
    return actual


class TestAggregateTypes:
    def test_string_min_max(self):
        t = inline(schema(("g", "int"), ("s", "str")),
                   [(1, "pear"), (1, "apple"), (2, None), (2, "fig")])
        tree = A.Aggregate(t, ("g",), (
            A.AggSpec("lo", "min", col("s")),
            A.AggSpec("hi", "max", col("s")),
        ))
        result = {r["g"]: (r["lo"], r["hi"]) for r in both(tree).iter_dicts()}
        assert result == {1: ("apple", "pear"), 2: ("fig", "fig")}

    def test_string_min_all_null_group(self):
        t = inline(schema(("g", "int"), ("s", "str")), [(1, None), (1, None)])
        tree = A.Aggregate(t, ("g",), (A.AggSpec("lo", "min", col("s")),))
        assert list(both(tree).iter_rows()) == [(1, None)]

    def test_bool_min_max(self):
        t = inline(schema(("g", "int"), ("b", "bool")),
                   [(1, True), (1, False), (2, True)])
        tree = A.Aggregate(t, ("g",), (
            A.AggSpec("any_false", "min", col("b")),
            A.AggSpec("any_true", "max", col("b")),
        ))
        result = {r["g"]: (r["any_false"], r["any_true"])
                  for r in both(tree).iter_dicts()}
        assert result == {1: (False, True), 2: (True, True)}

    def test_sum_on_computed_expression(self):
        t = inline(schema(("g", "int"), ("x", "int")),
                   [(1, 2), (1, 3), (2, 4)])
        tree = A.Aggregate(t, ("g",), (
            A.AggSpec("sq", "sum", col("x") * col("x")),
        ))
        result = {r["g"]: r["sq"] for r in both(tree).iter_dicts()}
        assert result == {1: 13, 2: 16}

    def test_int_sum_stays_exact(self):
        big = 2**52 + 1  # would lose precision through float64
        t = inline(schema(("x", "int")), [(big,), (big,)])
        tree = A.Aggregate(t, (), (A.AggSpec("s", "sum", col("x")),))
        assert both(tree).row(0)[0] == 2 * big


class TestEmptyInputs:
    def test_join_both_empty(self):
        left = inline(schema(("k", "int")), [])
        right = inline(schema(("k2", "int")), [])
        for how in ("inner", "left", "full", "semi", "anti"):
            tree = A.Join(left, right, (("k", "k2"),), how)
            assert both(tree).num_rows == 0

    def test_outer_join_empty_right_pads(self):
        left = inline(schema(("k", "int"), ("a", "str")), [(1, "x")])
        right = inline(schema(("k2", "int"), ("b", "float")), [])
        tree = A.Join(left, right, (("k", "k2"),), "left")
        assert list(both(tree).iter_rows()) == [(1, "x", None)]

    def test_full_join_empty_left(self):
        left = inline(schema(("k", "int"), ("a", "str")), [])
        right = inline(schema(("k2", "int"), ("b", "float")), [(7, 1.5)])
        tree = A.Join(left, right, (("k", "k2"),), "full")
        assert list(both(tree).iter_rows()) == [(None, None, 1.5)]

    def test_sort_limit_distinct_on_empty(self):
        t = inline(schema(("x", "int")), [])
        for tree in (
            A.Sort(t, ("x",), (True,)),
            A.Limit(t, 5),
            A.Distinct(t),
            A.Reverse(t),
        ):
            assert both(tree).num_rows == 0

    def test_grouped_aggregate_on_empty_is_empty(self):
        t = inline(schema(("g", "int"), ("x", "int")), [])
        tree = A.Aggregate(t, ("g",), (A.AggSpec("n", "count"),))
        assert both(tree).num_rows == 0

    def test_regrid_on_empty_array(self):
        t = inline(MATRIX, [])
        tree = A.Regrid(t, (("i", 2),), (A.AggSpec("v", "mean", col("v")),))
        arr = ArrayProvider("arr")
        arr.register_dataset("unused", matrix_table([[1.0]]))
        assert arr.execute(tree).num_rows == 0
        assert run_reference(tree).num_rows == 0

    def test_matmul_empty_side(self):
        m2 = schema(("j", "int", True), ("k", "int", True), ("w", "float"))
        tree = A.MatMul(inline(MATRIX, []), A.Scan("m2", m2))
        result = both(tree, m2=table(m2, [(0, 0, 1.0)]))
        assert result.num_rows == 0


class TestDegenerateShapes:
    def test_limit_beyond_end(self):
        t = inline(schema(("x", "int")), [(1,), (2,)])
        tree = A.Limit(t, 100, 1)
        assert list(both(tree).iter_rows()) == [(2,)]

    def test_limit_zero(self):
        t = inline(schema(("x", "int")), [(1,)])
        assert both(A.Limit(t, 0)).num_rows == 0

    def test_one_by_one_matmul(self):
        m2 = schema(("j", "int", True), ("k", "int", True), ("w", "float"))
        tree = A.MatMul(A.Scan("m", MATRIX), A.Scan("m2", m2))
        result = both(
            tree,
            m=matrix_table([[3.0]]),
            m2=table(m2, [(0, 0, 4.0)]),
        )
        assert list(result.iter_rows()) == [(0, 0, 12.0)]

    def test_window_radius_zero_is_identity_for_sum(self):
        tree = A.Window(A.Scan("m", MATRIX), (("i", 0), ("j", 0)),
                        (A.AggSpec("v", "sum", col("v")),))
        m = matrix_table([[1, 2], [3, 4]])
        arr = ArrayProvider("arr")
        arr.register_dataset("m", m)
        assert arr.execute(tree).same_rows(m)

    def test_single_column_single_row(self):
        t = inline(schema(("x", "int")), [(42,)])
        tree = A.Extend(t, ("y",), (col("x") + 1,))
        assert list(both(tree).iter_rows()) == [(42, 43)]

    def test_iterate_max_iter_one(self):
        state = schema(("i", "int", True), ("v", "float"))
        init = inline(state, [(0, 2.0)])
        body = A.Rename(
            A.Project(
                A.Extend(A.LoopVar("s", state), ("v2",), (col("v") * 3,)),
                ("i", "v2"),
            ),
            (("v2", "v"),),
        )
        tree = A.Iterate(init, body, var="s", max_iter=1)
        assert list(both(tree).iter_rows()) == [(0, 6.0)]


class TestProviderBookkeeping:
    def test_stats_reset(self):
        p = ReferenceProvider("ref")
        p.register_dataset("t", table(schema(("x", "int")), [(1,)]))
        p.execute(A.Scan("t", schema(("x", "int"))))
        assert p.stats.queries == 1
        p.stats.reset()
        assert p.stats.queries == 0 and not p.stats.ops_by_name

    def test_dataset_names_sorted(self):
        p = ReferenceProvider("ref")
        p.register_dataset("zeta", table(schema(("x", "int")), []))
        p.register_dataset("alpha", table(schema(("x", "int")), []))
        assert p.dataset_names() == ["alpha", "zeta"]

    def test_reregistering_replaces(self):
        p = RelationalProvider("sql")
        s = schema(("x", "int"))
        p.register_dataset("t", table(s, [(1,)]))
        p.register_dataset("t", table(s, [(1,), (2,)]))
        assert p.dataset("t").num_rows == 2
        assert p.catalog.entry("t").row_count == 2

    def test_missing_dataset_message_lists_known(self):
        p = ReferenceProvider("ref")
        p.register_dataset("known", table(schema(("x", "int")), []))
        with pytest.raises(PlanningError, match="known"):
            p.dataset("unknown")

"""Control iteration: PageRank inside the server vs a client-driven loop.

The algebra's Iterate operator lets a convergence loop run entirely inside
the graph server (one round trip).  The same tree can also be driven from
the client — one query per iteration — which is what frameworks without
control iteration must do.  This example runs both and prints the
communication bill.

Run with:  python examples/graph_pagerank.py
"""

from repro import BigDataContext
from repro.datasets import random_edges, vertex_table
from repro.graph import queries
from repro.providers import GraphProvider

N = 400
ctx = BigDataContext()
ctx.add_provider(GraphProvider("graphd"))
ctx.load("edges", random_edges(N, N * 5, seed=42), on="graphd")
ctx.load("vertices", vertex_table(N), on="graphd")

tree = queries.pagerank(
    ctx.table("vertices").node,
    ctx.table("edges").node,
    N,
    damping=0.85,
    tolerance=1e-9,
    max_iter=100,
)

# -- in-server: the whole Iterate ships once -----------------------------------

in_server = ctx.run(ctx.query(tree))
server_report = ctx.last_report
top = sorted(in_server, key=lambda r: -r[1])[:5]
print("top-5 vertices by PageRank (in-server iteration):")
for v, rank in top:
    print(f"  vertex {v:4d}  rank={rank:.6f}")
native = ctx.catalog.provider("graphd").stats_native_hits
print(f"(the server recognized the intent tag and ran its native CSR "
      f"kernel: {native} hit(s))")

# -- client-driven: one query per iteration ------------------------------------

client = ctx.run_clientside_loop(ctx.query(tree))
client_report = ctx.last_report
assert client.table.same_rows(in_server.table, float_tol=1e-6)

print("\nsame answer, very different communication bill:")
header = f"{'':14s} {'round trips':>12s} {'query bytes':>12s} {'result bytes':>13s}"
print(header)
print(f"{'in-server':14s} {server_report.round_trips:12d} "
      f"{server_report.metrics.query_bytes:12d} "
      f"{server_report.result_bytes:13d}")
print(f"{'client loop':14s} {client_report.round_trips:12d} "
      f"{client_report.metrics.query_bytes:12d} "
      f"{client_report.result_bytes:13d}")
factor = client_report.client_bytes / max(server_report.client_bytes, 1)
print(f"\nclient-visible traffic blow-up: {factor:.0f}x")

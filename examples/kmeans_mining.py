"""Data mining with control iteration: k-means inside the server.

The paper names data mining (with graph analytics) as the workload class
that needs "repeated execution of an expression until some convergence
criterion is met".  Here the entire Lloyd loop — assign points to nearest
centroid, recompute centroids, repeat until they stop moving — is one
algebra tree that ships to the relational server once.

Run with:  python examples/kmeans_mining.py
"""

import numpy as np

from repro import BigDataContext
from repro.analytics.kmeans import POINT_SCHEMA, kmeans_fit
from repro.providers import RelationalProvider
from repro.storage.table import ColumnTable

# -- three synthetic clusters of "customer behaviour" points -------------------

rng = np.random.default_rng(11)
CENTERS = [(2.0, 60.0), (25.0, 30.0), (48.0, 75.0)]
rows = []
pid = 0
for cx, cy in CENTERS:
    for _ in range(120):
        rows.append((pid, float(cx + rng.normal(0, 3.0)),
                     float(cy + rng.normal(0, 3.0))))
        pid += 1
points = ColumnTable.from_rows(POINT_SCHEMA, rows)

ctx = BigDataContext()
ctx.add_provider(RelationalProvider("sql"))
ctx.load("points", points, on="sql")

centroids, assignments = kmeans_fit(ctx, "points", k=3, seed=0,
                                    tolerance=1e-6, max_iter=100)

print(f"fit {len(points)} points into {len(centroids)} clusters "
      f"in {ctx.last_report.round_trips} round trip(s)\n")
print("learned centroids (true centers: "
      + ", ".join(f"({cx:.0f},{cy:.0f})" for cx, cy in CENTERS) + "):")
sizes = {}
for __, c in assignments:
    sizes[c] = sizes.get(c, 0) + 1
for c, cx, cy in sorted(centroids):
    print(f"  cluster {c}: center=({cx:6.2f}, {cy:6.2f})  "
          f"members={sizes.get(c, 0)}")

# sanity: every learned centroid sits near one true center
for c, cx, cy in centroids:
    nearest = min(
        ((cx - tx) ** 2 + (cy - ty) ** 2) ** 0.5 for tx, ty in CENTERS
    )
    assert nearest < 2.0, "a centroid drifted away from every true center"
print("\nall centroids within 2 units of a true center — converged inside "
      "the server.")

"""Sensor analytics: an array workload mixing both data models.

A 2-d sensor field lives on the array server; per-sensor metadata lives on
the relational server.  One query smooths the field, downsamples it, and
joins the hot cells against the metadata — the planner splits the tree
between the two servers and passes the intermediate directly.

Run with:  python examples/sensor_analytics.py
"""

from repro import BigDataContext, col
from repro.datasets import sensor_grid, sensor_metadata
from repro.providers import ArrayProvider, RelationalProvider

ctx = BigDataContext()
ctx.add_provider(ArrayProvider("scidb"))
ctx.add_provider(RelationalProvider("sql"))

WIDTH = HEIGHT = 64
ctx.load("field", sensor_grid(WIDTH, HEIGHT, seed=7, hotspots=4), on="scidb")
ctx.load("sensors", sensor_metadata(WIDTH, HEIGHT, seed=8), on="sql")

# -- array-side processing: denoise, then downsample 4x ------------------------

downsampled = (
    ctx.table("field")
    .window({"x": 1, "y": 1}, reading=("mean", col("reading")))  # 3x3 smooth
    .regrid({"x": 4, "y": 4}, reading=("max", col("reading")),
            samples=("count", None))
)

hot = downsampled.where(col("reading") > 60.0)
hot_cells = hot.collect()
print(f"hot 4x4 blocks after smoothing: {len(hot_cells)}")
for x, y, reading, samples in hot_cells.rows()[:5]:
    print(f"  block ({x:2d},{y:2d})  peak={reading:6.2f}  cells={samples}")

# -- cross-model join: which vendors own the hottest raw cells? ----------------

hottest_raw = (
    ctx.table("field")
    .where(col("reading") > 70.0)
    .join(ctx.table("sensors"),
          on=[("x", "sensor_x"), ("y", "sensor_y")])
    .aggregate(["vendor"], cells=("count", None),
               peak=("max", col("reading")))
    .order_by("cells", ascending=False)
)
print("\nvendor exposure to hot cells (array ⋈ relational):")
for vendor, cells, peak in hottest_raw.collect():
    print(f"  {vendor:8s} cells={cells:4d}  peak={peak:6.2f}")

report = ctx.last_report
print(f"\nplan used {report.fragments} fragment(s) across servers; "
      f"{report.metrics.bytes_direct} bytes moved server→server, "
      f"{report.metrics.bytes_through_application} through the app tier")
print("\nplan:")
print(ctx.explain(hottest_raw))

"""SQL as syntactic sugar over the algebra.

The framework's core is the algebra; SQL is one of several client frontends
that lower onto it.  This tour parses real SELECT statements, shows the
algebra they become, and runs them through the federation like any other
query.

Run with:  python examples/sql_frontend_tour.py
"""

from repro import BigDataContext
from repro.datasets import customers, orders
from repro.frontends.sql import parse_sql
from repro.providers import RelationalProvider

ctx = BigDataContext()
ctx.add_provider(RelationalProvider("sql"))
ctx.load("customers", customers(150, seed=0), on="sql")
ctx.load("orders", orders(900, 150, seed=1), on="sql")

STATEMENTS = [
    ("top spenders per country", """
        SELECT country, SUM(amount) AS total, COUNT(*) AS n
        FROM customers JOIN orders ON cid = cust
        GROUP BY country
        HAVING total > 1000.0
        ORDER BY total DESC
        LIMIT 5
    """),
    ("order size buckets", """
        SELECT oid,
               CASE WHEN amount > 200.0 THEN 'large' ELSE 'small' END AS bucket
        FROM orders
        WHERE status = 'shipped'
        ORDER BY oid
        LIMIT 5
    """),
    ("customers with no orders", """
        SELECT name, country
        FROM customers LEFT JOIN orders ON cid = cust
        WHERE oid IS NULL
        ORDER BY name
        LIMIT 5
    """),
    ("distinct segments", """
        SELECT DISTINCT segment FROM customers ORDER BY segment
    """),
]

for title, sql in STATEMENTS:
    tree = parse_sql(sql, ctx.catalog.schema_of)
    ops = [n.op_name for n in tree.walk()]
    print(f"== {title}")
    print(f"   algebra: {' -> '.join(dict.fromkeys(ops))}")
    result = ctx.run(ctx.query(tree))
    for row in result.rows():
        print(f"   {row}")
    print()

print("every statement above was shipped to the server as one expression "
      "tree;\nno SQL text ever crossed the provider boundary.")

"""A multi-server science pipeline, plus the four desiderata in action.

Observation matrices live on the relational server, a projection matrix on
the linear-algebra server, and the result is downsampled on the array
server.  The same query is executed twice: intermediates passed directly
between servers (the plan shape the paper argues for) and routed through
the application tier (the status quo).  Watch the byte counters.

Run with:  python examples/federated_science.py
"""

import numpy as np

from repro import BigDataContext, col
from repro.core import algebra as A
from repro.core.intents import matmul_as_join_aggregate
from repro.datasets import dense_matrix_table
from repro.federation.channels import NetworkModel
from repro.frontends.matrix import Matrix
from repro.providers import ArrayProvider, LinalgProvider, RelationalProvider

WAN = NetworkModel(latency_s=5e-3, bandwidth_bytes_per_s=50e6)
N = 64


def build_context(routing: str) -> BigDataContext:
    ctx = BigDataContext(routing=routing, network=WAN)
    ctx.add_provider(RelationalProvider("sql"))
    ctx.add_provider(LinalgProvider("scalapack"))
    ctx.add_provider(ArrayProvider("scidb"))
    ctx.load("observations", dense_matrix_table(N, N, seed=1), on="sql")
    ctx.load("projection", dense_matrix_table(
        N, N, seed=2, row_name="j", col_name="k", value_name="w"
    ), on="scalapack")
    return ctx


def pipeline(ctx: BigDataContext) -> A.Node:
    cleaned = A.AsDims(
        A.Filter(ctx.table("observations").node, col("v") > 0.6),
        ("i", "j"),
    )
    projected = A.MatMul(cleaned, ctx.table("projection").node)
    return A.Regrid(projected, (("i", 8), ("k", 8)),
                    (A.AggSpec("v", "mean", col("v")),))


print(f"pipeline: filter(sql) -> matmul(scalapack) -> regrid(scidb), "
      f"n={N}\n")

for routing in ("direct", "application"):
    ctx = build_context(routing)
    tree = pipeline(ctx)
    result = ctx.run(ctx.query(tree))
    report = ctx.last_report
    print(f"routing={routing}")
    print(f"  fragments on servers: "
          f"{[f.server for f in ctx.planner.plan(ctx.rewriter.rewrite(tree)).fragments]}")
    print(f"  bytes server->server (direct): {report.metrics.bytes_direct}")
    print(f"  bytes through application:     "
          f"{report.metrics.bytes_through_application}")
    print(f"  network hops: {report.metrics.hop_count}, "
          f"simulated network time: {report.metrics.simulated_network_s * 1e3:.2f} ms")
    print(f"  result: {len(result)} cells\n")

# -- intent preservation: the same multiply, written relationally ---------------

ctx = build_context("direct")
a = Matrix.wrap(ctx.table("observations"), lowering="relational")
b = Matrix.wrap(ctx.table("projection"), lowering="relational")
lowered = (a @ b).node
print("a matmul lowered to join+aggregate is still recognized:")
plan = ctx.planner.plan(ctx.rewriter.rewrite(lowered))
print(f"  optimizer output ops: "
      f"{sorted({n.op_name for n in ctx.rewriter.rewrite(lowered).walk()})}")
print(f"  fragment servers: {[f.server for f in plan.fragments]}")
result = ctx.run(ctx.query(lowered))
dense = np.zeros((N, N))
for i, k, v in result:
    dense[i, k] = v
print(f"  ||A@B||_F computed across servers: {np.linalg.norm(dense):.3f}")

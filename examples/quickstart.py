"""Quickstart: one context, two servers, queries as expression trees.

Run with:  python examples/quickstart.py
"""

from repro import BigDataContext, DType, Schema, Attribute, col
from repro.providers import ArrayProvider, RelationalProvider

# -- 1. a context with two specialized back-end servers ----------------------

ctx = BigDataContext()
ctx.add_provider(RelationalProvider("sql"))       # SQLServer-like
ctx.add_provider(ArrayProvider("scidb"))          # SciDB-like

# -- 2. load data: a plain relation on the relational server -----------------

orders_schema = Schema([
    Attribute("oid", DType.INT64),
    Attribute("customer", DType.STRING),
    Attribute("amount", DType.FLOAT64),
])
ctx.load_rows("orders", orders_schema, [
    (1, "ada", 120.0),
    (2, "bob", 80.0),
    (3, "ada", 300.0),
    (4, "cho", 45.0),
    (5, "bob", 210.0),
], on="sql")

# -- ...and a small 2-d array (note the dimension-tagged attributes) ----------

grid_schema = Schema([
    Attribute("x", DType.INT64, dimension=True),
    Attribute("y", DType.INT64, dimension=True),
    Attribute("t", DType.FLOAT64),
])
ctx.load_rows("grid", grid_schema, [
    (x, y, float(10 * x + y)) for x in range(4) for y in range(4)
], on="scidb")

# -- 3. relational query: built fluently, shipped as ONE expression tree ------

top = (
    ctx.table("orders")
    .where(col("amount") > 50.0)
    .aggregate(["customer"], total=("sum", col("amount")),
               n=("count", None))
    .order_by("total", ascending=False)
    .collect()
)
print("customer totals over 50:")
for customer, total, n in top:
    print(f"  {customer:4s} {total:8.2f}  ({n} orders)")

# -- 4. array query: dimension-aware operators on the array server ------------

smoothed = (
    ctx.table("grid")
    .window({"x": 1, "y": 1}, t=("mean", col("t")))   # 3x3 moving mean
    .slice_dims(x=(1, 2), y=(1, 2))                   # then crop the middle
    .collect()
)
print("\nsmoothed 2x2 center of the grid:")
for x, y, t in smoothed:
    print(f"  ({x},{y}) -> {t:6.2f}")

# -- 5. results are plain client collections (no cursors) ---------------------

print(f"\nresult type: {type(top).__name__}, len={len(top)}, "
      f"first row={top[0]}")
print(f"the query ran as {ctx.last_report.fragments} fragment(s); "
      f"bytes moved between servers: "
      f"{ctx.last_report.metrics.bytes_direct}")

# -- 6. EXPLAIN: the fragment assignment, and each server's physical plan -----
# Every logical node is annotated with the optimizer's cardinality
# estimate and its provenance: "stats" means it was derived from real
# table statistics (dictionary ndv, zone-map min/max), "default" means a
# heuristic constant filled in.  Something like:
#
#   Filter  [rows~4 sel~0.95 stats]
#     Scan(orders)  [rows~5 stats]

big_spenders = (
    ctx.table("orders")
    .where(col("amount") > 50.0)
    .select("customer", "amount")
)
print("\nlogical plan (fragment assignment, est_rows + provenance):")
print(big_spenders.explain())
print("\nphysical plan (what the server will actually run):")
print(big_spenders.explain(physical=True))

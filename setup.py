"""Setup shim.

The project is configured in ``pyproject.toml``; this file exists so that
editable installs work in offline environments whose setuptools predates
PEP 660 (no ``wheel`` package available).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)

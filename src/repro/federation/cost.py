"""Federation-facing adapter over the shared cost layer (:mod:`repro.opt`).

The planner used to carry its own bottom-up row-estimate walk; that
duplicate is gone.  Every number here comes from one
:class:`~repro.opt.estimator.CardinalityEstimator` built over the
federation catalog's :meth:`~repro.federation.catalog.FederationCatalog.table_stats`
— the same statistics the relational lowering pass and the cost-based
rewriter read — so a join the local optimizer thinks is small is also the
join the federation planner prefers to ship.

The module keeps the historical call shapes (``estimate_rows(node,
catalog)`` etc.) so planner/plan/test code reads unchanged; for repeated
estimation over one tree, build an estimator once with
:func:`estimator_for` and use :mod:`repro.opt.cost` directly.
"""

from __future__ import annotations

from ..core import algebra as A
from ..opt.cost import (
    WINDOW_COST_FACTOR,
    estimated_bytes,
    estimated_rows,
    operator_cost as _shared_operator_cost,
    physical_op_cost,
    physical_plan_cost,
    row_width,
)
from ..opt.estimator import (
    DISTINCT_RATIO,
    FILTER_SELECTIVITY,
    GROUP_RATIO,
    JOIN_KEY_SELECTIVITY,
    CardinalityEstimator,
)
from .catalog import FederationCatalog

__all__ = [
    "DISTINCT_RATIO",
    "FILTER_SELECTIVITY",
    "GROUP_RATIO",
    "JOIN_KEY_SELECTIVITY",
    "WINDOW_COST_FACTOR",
    "estimate_bytes",
    "estimate_rows",
    "estimator_for",
    "operator_cost",
    "physical_op_cost",
    "physical_plan_cost",
    "row_width",
]


def estimator_for(catalog: FederationCatalog) -> CardinalityEstimator:
    """A shared estimator reading statistics from the federation catalog."""
    return CardinalityEstimator(catalog.table_stats)


def estimate_rows(node: A.Node, catalog: FederationCatalog) -> int:
    """Rough output cardinality of a subtree."""
    return estimated_rows(node, estimator_for(catalog))


def estimate_bytes(node: A.Node, catalog: FederationCatalog) -> int:
    return estimated_bytes(node, estimator_for(catalog))


def operator_cost(node: A.Node, catalog: FederationCatalog) -> float:
    """Abstract per-operator work estimate (row-visits)."""
    return _shared_operator_cost(node, estimator_for(catalog))

"""Cardinality and byte-size estimation for the federation planner.

Deliberately coarse, textbook heuristics: the planner only needs relative
costs good enough to prefer plans that move fewer bytes between servers.
Estimates flow bottom-up alongside placement in the planner's DP.
"""

from __future__ import annotations

from ..core import algebra as A
from ..core.schema import Schema
from ..core.types import DType
from .catalog import FederationCatalog

FILTER_SELECTIVITY = 0.33
JOIN_KEY_SELECTIVITY = 0.1
DISTINCT_RATIO = 0.5
GROUP_RATIO = 0.1
WINDOW_COST_FACTOR = 3.0


def row_width(schema: Schema) -> int:
    """Estimated bytes per row."""
    width = 0
    for attr in schema:
        if attr.dtype is DType.STRING:
            width += 24
        elif attr.dtype is DType.BOOL:
            width += 1
        else:
            width += 8
    return max(width, 1)


def estimate_rows(node: A.Node, catalog: FederationCatalog) -> int:
    """Rough output cardinality of a subtree."""
    est = _estimate(node, catalog)
    return max(int(est), 0)


def estimate_bytes(node: A.Node, catalog: FederationCatalog) -> int:
    return estimate_rows(node, catalog) * row_width(node.schema)


def _estimate(node: A.Node, catalog: FederationCatalog) -> float:
    if isinstance(node, A.Scan):
        if node.name.startswith("@"):
            return 1000.0  # fragment input; refined by the planner
        try:
            return float(catalog.rows_of(node.name))
        except Exception:
            return 1000.0
    if isinstance(node, A.InlineTable):
        return float(len(node.rows))
    if isinstance(node, A.LoopVar):
        return 1000.0
    if isinstance(node, A.Filter):
        return _estimate(node.child, catalog) * FILTER_SELECTIVITY
    if isinstance(node, A.SliceDims):
        return _estimate(node.child, catalog) * (FILTER_SELECTIVITY ** len(node.bounds))
    if isinstance(node, A.Join):
        left = _estimate(node.left, catalog)
        right = _estimate(node.right, catalog)
        if node.how in ("semi", "anti"):
            return left * 0.5
        matched = left * right * JOIN_KEY_SELECTIVITY / max(min(left, right), 1.0)
        if node.how == "inner":
            return max(matched, 1.0)
        if node.how == "left":
            return max(matched, left)
        return max(matched, left + right)
    if isinstance(node, A.Product):
        return _estimate(node.left, catalog) * _estimate(node.right, catalog)
    if isinstance(node, A.Aggregate):
        child = _estimate(node.child, catalog)
        if not node.group_by:
            return 1.0
        return max(child * GROUP_RATIO, 1.0)
    if isinstance(node, (A.Regrid,)):
        factor = 1.0
        for _, f in node.factors:
            factor *= f
        return max(_estimate(node.child, catalog) / max(factor, 1.0), 1.0)
    if isinstance(node, A.ReduceDims):
        child = _estimate(node.child, catalog)
        if not node.keep:
            return 1.0
        return max(child * GROUP_RATIO, 1.0)
    if isinstance(node, A.Distinct):
        return _estimate(node.child, catalog) * DISTINCT_RATIO
    if isinstance(node, A.Limit):
        return float(min(node.count, _estimate(node.child, catalog)))
    if isinstance(node, (A.Union,)):
        return _estimate(node.left, catalog) + _estimate(node.right, catalog)
    if isinstance(node, (A.Intersect, A.Except)):
        return _estimate(node.left, catalog) * 0.5
    if isinstance(node, A.MatMul):
        left = _estimate(node.left, catalog)
        right = _estimate(node.right, catalog)
        # sparse output heuristic: geometric mean of input sizes
        return max((left * right) ** 0.5, 1.0)
    if isinstance(node, A.CellJoin):
        return min(_estimate(node.left, catalog), _estimate(node.right, catalog))
    if isinstance(node, A.Iterate):
        return _estimate(node.init, catalog)
    children = node.children()
    if len(children) == 1:
        return _estimate(children[0], catalog)
    return sum(_estimate(c, catalog) for c in children)


def physical_op_cost(op) -> float:
    """Abstract work estimate for one lowered physical operator.

    Row estimates come from lowering (catalog statistics threaded through
    the plan's :class:`~repro.exec.physical.base.PhysProps`); operators
    whose inputs have unknown cardinality fall back to the same default
    the logical estimator uses for fragment inputs.
    """
    rows = op.props.est_rows
    if rows is None:
        rows = 1000.0
    return float(rows) * op.cost_weight


def physical_plan_cost(plan) -> float:
    """Total abstract cost of a lowered physical plan (sum over operators)."""
    return sum(physical_op_cost(op) for op in plan.walk())


def operator_cost(node: A.Node, catalog: FederationCatalog) -> float:
    """Abstract per-operator work estimate (row-visits)."""
    rows = _estimate(node, catalog)
    if isinstance(node, A.Sort):
        return rows * 4.0
    if isinstance(node, A.Window):
        sides = 1.0
        for _, radius in node.sizes:
            sides *= (2 * radius + 1)
        return rows * sides
    if isinstance(node, A.Join):
        return _estimate(node.left, catalog) + _estimate(node.right, catalog) + rows
    if isinstance(node, A.MatMul):
        return (
            _estimate(node.left, catalog) * _estimate(node.right, catalog) ** 0.5
        )
    if isinstance(node, A.Iterate):
        inner = sum(operator_cost(n, catalog) for n in node.body.walk())
        return inner * min(node.max_iter, 20)
    return rows

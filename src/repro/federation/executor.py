"""Federated execution: run plan fragments, metering every message.

The executor does what a real coordinator would:

1. ships each fragment's expression tree to its server as serialized JSON
   (the byte count is recorded — this is LINQ property 2 made measurable);
2. moves intermediate results between servers over the configured channel
   (direct server→server, or routed through the application tier);
3. returns the root result to the client, whose size is recorded separately
   (both routing modes pay it, so it never distorts the comparison).

``run_iterate_clientside`` is the deliberately-bad baseline for experiment
E5: it unrolls an ``Iterate`` into one federated query per iteration, with
loop state embedded in each shipped tree and results pulled back to the
client every round — exactly the round-tripping the paper's control
iteration avoids.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core import algebra as A
from ..core import serialize
from ..core.errors import ConvergenceError, ExecutionError
from ..core.visitors import substitute_loop_var
from ..providers.reference import _converged  # shared convergence rule
from ..storage.table import ColumnTable
from .catalog import FederationCatalog
from .channels import (
    ApplicationChannel, Channel, DirectChannel, NetworkModel, TransferMetrics,
)
from .plan import PhysicalPlan, fragment_input_name
from .planner import FederationPlanner

ROUTING_MODES = ("direct", "application")


@dataclass
class ExecutionReport:
    """What one federated execution did."""

    result: ColumnTable
    metrics: TransferMetrics
    result_bytes: int = 0
    wall_s: float = 0.0
    fragments: int = 0
    round_trips: int = 1  # client-visible query/response cycles

    @property
    def client_bytes(self) -> int:
        """Everything that crossed the client/application boundary."""
        return (
            self.metrics.query_bytes
            + self.metrics.bytes_through_application
            + self.result_bytes
        )


class FederatedExecutor:
    """Executes physical plans over the catalog's providers."""

    def __init__(
        self,
        catalog: FederationCatalog,
        *,
        routing: str = "direct",
        network: NetworkModel | None = None,
    ):
        if routing not in ROUTING_MODES:
            raise ExecutionError(
                f"unknown routing {routing!r}; use one of {ROUTING_MODES}"
            )
        self.catalog = catalog
        self.routing = routing
        self.network = network or NetworkModel()

    def _channel(self, metrics: TransferMetrics) -> Channel:
        cls = DirectChannel if self.routing == "direct" else ApplicationChannel
        return cls(metrics, self.network)

    def execute(
        self,
        plan: PhysicalPlan,
        metrics: TransferMetrics | None = None,
    ) -> ExecutionReport:
        metrics = metrics if metrics is not None else TransferMetrics()
        channel = self._channel(metrics)
        started = time.perf_counter()
        results: dict[int, tuple[str, ColumnTable]] = {}
        for fragment in plan.fragments:
            payload = serialize.dumps(fragment.tree)
            metrics.record_query(fragment.server, len(payload.encode()))
            tree = serialize.loads(payload)  # the server decodes the wire form
            inputs: dict[str, ColumnTable] = {}
            for source_index in fragment.inputs:
                source_server, table = results[source_index]
                if source_server != fragment.server:
                    table = channel.send(table, source_server, fragment.server)
                inputs[fragment_input_name(source_index)] = table
            provider = self.catalog.provider(fragment.server)
            results[fragment.index] = (
                fragment.server, provider.execute(tree, inputs)
            )
        __, result = results[plan.root.index]
        return ExecutionReport(
            result=result,
            metrics=metrics,
            result_bytes=result.nbytes,
            wall_s=time.perf_counter() - started,
            fragments=len(plan.fragments),
        )


def run_iterate_clientside(
    iterate: A.Iterate,
    planner: FederationPlanner,
    executor: FederatedExecutor,
    *,
    pin_server: str | None = None,
) -> ExecutionReport:
    """Execute an ``Iterate`` by driving the loop from the client.

    Baseline for experiment E5: each round plans and ships a fresh query
    with the current state inlined, pulls the whole state back, and checks
    convergence at the client.
    """
    metrics = TransferMetrics()
    state_schema = iterate.init.schema
    init_plan = planner.plan(iterate.init, pin_server=pin_server)
    report = executor.execute(init_plan, metrics)
    state = report.result
    result_bytes = report.result_bytes
    round_trips = 1
    wall = report.wall_s
    converged = False

    for _ in range(iterate.max_iter):
        inline = A.InlineTable(
            state_schema,
            tuple(state.iter_rows()),
        )
        bound = substitute_loop_var(iterate.body, iterate.var, inline)
        body_plan = planner.plan(bound, pin_server=pin_server)
        report = executor.execute(body_plan, metrics)
        new_state = report.result
        round_trips += 1
        result_bytes += report.result_bytes
        wall += report.wall_s
        if _states_converged(iterate.stop, state_schema, state, new_state):
            state = new_state
            converged = True
            break
        state = new_state
    if not converged and iterate.stop.value_attr is not None and iterate.strict:
        raise ConvergenceError(
            f"client-side loop did not converge within {iterate.max_iter} "
            f"iterations"
        )
    return ExecutionReport(
        result=state,
        metrics=metrics,
        result_bytes=result_bytes,
        wall_s=wall,
        fragments=0,
        round_trips=round_trips,
    )


def _states_converged(stop, schema, old: ColumnTable, new: ColumnTable) -> bool:
    return _converged(
        stop, schema, list(old.iter_dicts()), list(new.iter_dicts())
    )

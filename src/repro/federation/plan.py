"""Physical plans: algebra trees partitioned into per-server fragments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..core import algebra as A

if TYPE_CHECKING:
    from ..exec.physical.base import PhysPlan


def fragment_input_name(index: int) -> str:
    """Reserved Scan name for the output of fragment ``index``."""
    return f"@frag{index}"


@dataclass
class Fragment:
    """One per-server piece of a federated plan.

    ``tree`` is an ordinary algebra tree whose ``Scan("@fragK")`` leaves
    stand for the outputs of other fragments; ``inputs`` lists those K.
    ``physical`` is the server's lowered plan for ``tree`` (None for
    providers that interpret trees directly, like the reference one).
    """

    index: int
    server: str
    tree: A.Node
    inputs: tuple[int, ...] = ()
    physical: "PhysPlan | None" = None

    @property
    def input_names(self) -> tuple[str, ...]:
        return tuple(fragment_input_name(i) for i in self.inputs)


@dataclass
class PhysicalPlan:
    """Fragments in execution (topological) order; the root is last."""

    fragments: list[Fragment] = field(default_factory=list)

    @property
    def root(self) -> Fragment:
        return self.fragments[-1]

    @property
    def servers_used(self) -> list[str]:
        return sorted({f.server for f in self.fragments})

    def transfers(self) -> list[tuple[int, int]]:
        """(producer, consumer) fragment pairs that cross servers."""
        out = []
        for fragment in self.fragments:
            for source in fragment.inputs:
                out.append((source, fragment.index))
        return out

    def describe(self, *, physical: bool = False, estimator=None) -> str:
        """Human-readable plan summary (used by explain()).

        With an ``estimator`` (a shared
        :class:`~repro.opt.estimator.CardinalityEstimator`), each fragment's
        logical tree is rendered with per-node row estimates, selectivities
        and their provenance.  With ``physical=True``, each fragment is
        followed by the lowered physical plan its server would run, with
        per-operator properties and the plan's abstract cost.
        """
        lines = []
        for fragment in self.fragments:
            ops = " > ".join(
                sorted({n.op_name for n in fragment.tree.walk()} - {"Scan"})
            ) or "Scan"
            feeds = (
                f" <- frags {list(fragment.inputs)}" if fragment.inputs else ""
            )
            lines.append(
                f"fragment {fragment.index} on {fragment.server}: {ops}{feeds}"
            )
            if estimator is not None:
                from ..opt.cost import render_estimates

                for line in render_estimates(fragment.tree, estimator).splitlines():
                    lines.append(f"  {line}")
            if physical:
                if fragment.physical is None:
                    lines.append("  (interpreted; no physical plan)")
                    continue
                from .cost import physical_plan_cost

                cost = physical_plan_cost(fragment.physical)
                lines.append(
                    f"  [{fragment.physical.engine} engine, cost~{cost:.1f}]"
                )
                for line in fragment.physical.render().splitlines():
                    lines.append(f"  {line}")
        return "\n".join(lines)

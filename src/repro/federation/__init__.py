"""Subpackage of repro."""

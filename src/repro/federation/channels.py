"""Transfer channels and metering — the measurable heart of desideratum 4.

The paper demands that multi-server plans pass intermediates *directly
between servers* instead of routing them through the application.  Both
styles are implemented here, and every byte is metered:

* :class:`DirectChannel` — one hop, server to server.
* :class:`ApplicationChannel` — two hops via the application tier (the
  status quo the paper criticizes): the payload crosses the network twice
  and is counted against the application's ingress/egress.

Engines run in-process, so *wall-clock* network time would be zero; instead
a :class:`NetworkModel` (latency + bandwidth) converts the exact byte counts
into simulated seconds, which the interoperation bench (E4) reports
alongside wall time.  DESIGN.md documents this substitution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..storage.table import ColumnTable


@dataclass(frozen=True)
class NetworkModel:
    """Per-hop latency plus bandwidth-proportional transfer time."""

    latency_s: float = 1e-3
    bandwidth_bytes_per_s: float = 1e9

    def hop_time(self, nbytes: int) -> float:
        return self.latency_s + nbytes / self.bandwidth_bytes_per_s


@dataclass
class TransferRecord:
    """One intermediate-result movement."""

    source: str
    destination: str
    via: str  # "direct" or "application"
    nbytes: int
    rows: int
    simulated_s: float


@dataclass
class QueryRecord:
    """One query/fragment shipment (an expression tree sent to a server)."""

    destination: str
    nbytes: int


@dataclass
class TransferMetrics:
    """Accumulated movement statistics for one federated execution."""

    transfers: list[TransferRecord] = field(default_factory=list)
    queries: list[QueryRecord] = field(default_factory=list)

    def record_transfer(self, record: TransferRecord) -> None:
        self.transfers.append(record)

    def record_query(self, destination: str, nbytes: int) -> None:
        self.queries.append(QueryRecord(destination, nbytes))

    # -- aggregates the benches report ------------------------------------------

    @property
    def bytes_direct(self) -> int:
        return sum(t.nbytes for t in self.transfers if t.via == "direct")

    @property
    def bytes_through_application(self) -> int:
        """Bytes that crossed the application tier (ingress + egress)."""
        return sum(2 * t.nbytes for t in self.transfers if t.via == "application")

    @property
    def hop_count(self) -> int:
        return sum(1 if t.via == "direct" else 2 for t in self.transfers)

    @property
    def message_count(self) -> int:
        """Messages sent: query shipments plus data hops."""
        return len(self.queries) + self.hop_count

    @property
    def simulated_network_s(self) -> float:
        return sum(t.simulated_s for t in self.transfers)

    @property
    def query_bytes(self) -> int:
        return sum(q.nbytes for q in self.queries)

    def reset(self) -> None:
        self.transfers.clear()
        self.queries.clear()


class Channel:
    """Moves one intermediate result between servers, recording metrics."""

    via = "abstract"

    def __init__(self, metrics: TransferMetrics, network: NetworkModel | None = None):
        self.metrics = metrics
        self.network = network or NetworkModel()

    def send(self, table: ColumnTable, source: str, destination: str) -> ColumnTable:
        raise NotImplementedError


class DirectChannel(Channel):
    """Server -> server, one hop: the plan shape the paper advocates."""

    via = "direct"

    def send(self, table: ColumnTable, source: str, destination: str) -> ColumnTable:
        nbytes = table.nbytes
        self.metrics.record_transfer(TransferRecord(
            source=source,
            destination=destination,
            via=self.via,
            nbytes=nbytes,
            rows=table.num_rows,
            simulated_s=self.network.hop_time(nbytes),
        ))
        return table


class ApplicationChannel(Channel):
    """Server -> application -> server, two hops: the status quo."""

    via = "application"

    def send(self, table: ColumnTable, source: str, destination: str) -> ColumnTable:
        nbytes = table.nbytes
        simulated = self.network.hop_time(nbytes) * 2  # up then down
        self.metrics.record_transfer(TransferRecord(
            source=source,
            destination=destination,
            via=self.via,
            nbytes=nbytes,
            rows=table.num_rows,
            simulated_s=simulated,
        ))
        return table

"""The federation planner: partition one algebra tree across servers.

A bottom-up dynamic program assigns every operator to a server:

    cost(node, s) = op_cost(node)                    [s must support node]
                  + sum over children of
                      min over s' of cost(child, s')
                                   + transfer_penalty(child)·[s' != s]

Scan leaves are constrained to servers holding the dataset; ``Iterate``
subtrees are *atomic* — a convergence loop runs entirely inside one server
(that is the paper's control-iteration point), with any datasets its body
scans shipped in as fragment inputs when the chosen server lacks them.

Materialization then walks the chosen assignment and cuts the tree wherever
parent and child live on different servers, producing a
:class:`~repro.federation.plan.PhysicalPlan` whose fragments exchange
intermediates over channels (metered by the executor).

When no combination of servers covers the tree, planning fails with the
specific uncovered operators — coverage (desideratum 1) made operational.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import algebra as A
from ..core.errors import PlanningError
from ..opt.cost import estimated_rows, operator_cost
from .catalog import FederationCatalog
from .cost import estimator_for
from .plan import Fragment, PhysicalPlan, fragment_input_name

#: relative weight of moving one row between servers vs visiting it locally
TRANSFER_PENALTY = 5.0


@dataclass
class _Placement:
    """DP state for one (node, server) pair."""

    cost: float
    child_servers: tuple[str, ...]


class FederationPlanner:
    """Plans algebra trees over the registered providers."""

    def __init__(self, catalog: FederationCatalog):
        self.catalog = catalog
        #: shared estimator over the federation's statistics; rebuilt per
        #: plan() call so re-registered datasets never serve stale numbers
        self._estimator = estimator_for(catalog)

    # -- public API -------------------------------------------------------------

    def plan(self, tree: A.Node, *, pin_server: str | None = None) -> PhysicalPlan:
        """Partition ``tree`` into per-server fragments.

        ``pin_server`` forces the whole tree onto one server (used by the
        portability experiment); it raises if that server lacks coverage.
        """
        self._estimator = estimator_for(self.catalog)
        if pin_server is not None:
            provider = self.catalog.provider(pin_server)
            if not provider.accepts(tree):
                raise PlanningError(
                    f"server {pin_server!r} cannot execute operators "
                    f"{provider.unsupported(tree)}"
                )
            self._check_datasets_on(tree, pin_server)
            return self._attach_physical(
                PhysicalPlan([Fragment(0, pin_server, tree)])
            )

        table: dict[int, dict[str, _Placement]] = {}
        self._solve(tree, table)
        root_options = table[id(tree)]
        if not root_options:
            raise PlanningError(self._coverage_error(tree))
        best_server = min(root_options, key=lambda s: (root_options[s].cost, s))
        builder = _PlanBuilder(table, self.catalog)
        builder.materialize(tree, best_server)
        return self._attach_physical(PhysicalPlan(builder.fragments))

    def _attach_physical(self, plan: PhysicalPlan) -> PhysicalPlan:
        """Lower each fragment on its assigned server.

        Providers cache lowered plans, so the fragment executor reuses the
        exact plans attached here; interpreting providers return None.
        """
        for fragment in plan.fragments:
            provider = self.catalog.provider(fragment.server)
            fragment.physical = provider.lower(fragment.tree)
        return plan

    # -- DP ------------------------------------------------------------------------

    def _solve(self, node: A.Node, table: dict[int, dict[str, _Placement]]) -> None:
        if isinstance(node, A.Iterate):
            table[id(node)] = self._solve_atomic(node)
            return
        for child in node.children():
            self._solve(child, table)
        options: dict[str, _Placement] = {}
        children = node.children()
        for provider in self.catalog.providers:
            server = provider.name
            if not self._supports_here(provider, node):
                continue
            total = operator_cost(node, self._estimator) * provider.cost_factor(node)
            child_servers = []
            feasible = True
            for child in children:
                child_options = table[id(child)]
                if not child_options:
                    feasible = False
                    break
                move_cost = estimated_rows(child, self._estimator) * TRANSFER_PENALTY
                best_child, best_cost = None, float("inf")
                for child_server, placement in sorted(child_options.items()):
                    cost = placement.cost + (
                        0.0 if child_server == server else move_cost
                    )
                    if cost < best_cost:
                        best_child, best_cost = child_server, cost
                child_servers.append(best_child)
                total += best_cost
            if feasible:
                options[server] = _Placement(total, tuple(child_servers))
        table[id(node)] = options

    def _supports_here(self, provider, node: A.Node) -> bool:
        if isinstance(node, A.Scan):
            return provider.supports(node) and provider.has_dataset(node.name)
        return provider.supports(node)

    def _solve_atomic(self, node: A.Iterate) -> dict[str, _Placement]:
        """Whole-subtree placement for a convergence loop."""
        options: dict[str, _Placement] = {}
        for provider in self.catalog.providers:
            if not provider.accepts(node):
                continue
            cost = operator_cost(node, self._estimator) * provider.cost_factor(node)
            for scan in node.walk():
                if isinstance(scan, A.Scan) and not scan.name.startswith("@"):
                    if provider.has_dataset(scan.name):
                        continue
                    locations = self.catalog.locations(scan.name)
                    if not locations:
                        cost = None
                        break
                    cost += (
                        estimated_rows(scan, self._estimator) * TRANSFER_PENALTY
                    )
            if cost is not None:
                options[provider.name] = _Placement(cost, ())
        return options

    # -- diagnostics -----------------------------------------------------------------

    def _coverage_error(self, tree: A.Node) -> str:
        uncovered = []
        for node in tree.walk():
            if isinstance(node, A.Scan) and not self.catalog.locations(node.name):
                uncovered.append(f"dataset {node.name!r} (not registered)")
                continue
            if not any(p.supports(node) for p in self.catalog.providers):
                uncovered.append(node.op_name)
        detail = sorted(set(uncovered)) or ["(no single placement feasible)"]
        return (
            f"no combination of servers {self.catalog.provider_names} covers "
            f"the query; uncovered: {detail}"
        )

    def _check_datasets_on(self, tree: A.Node, server: str) -> None:
        provider = self.catalog.provider(server)
        missing = sorted({
            n.name for n in tree.walk()
            if isinstance(n, A.Scan) and not n.name.startswith("@")
            and not provider.has_dataset(n.name)
        })
        if missing:
            raise PlanningError(
                f"server {server!r} lacks datasets {missing}"
            )


class _PlanBuilder:
    """Materializes the DP assignment into fragments."""

    def __init__(self, table: dict[int, dict[str, _Placement]],
                 catalog: FederationCatalog):
        self.table = table
        self.catalog = catalog
        self.fragments: list[Fragment] = []

    def materialize(self, node: A.Node, server: str) -> int:
        """Emit the fragment computing ``node`` on ``server``; returns its index."""
        inputs: list[int] = []
        tree = self._build(node, server, inputs)
        index = len(self.fragments)
        self.fragments.append(Fragment(index, server, tree, tuple(inputs)))
        return index

    def _build(self, node: A.Node, server: str, inputs: list[int]) -> A.Node:
        if isinstance(node, A.Iterate):
            return self._build_atomic(node, server, inputs)
        children = node.children()
        if not children:
            return node
        placement = self.table[id(node)][server]
        new_children = []
        for child, child_server in zip(children, placement.child_servers):
            if child_server == server:
                new_children.append(self._build(child, server, inputs))
            else:
                child_fragment = self.materialize(child, child_server)
                inputs.append(child_fragment)
                new_children.append(
                    A.Scan(fragment_input_name(child_fragment), child.schema)
                )
        return node.with_children(new_children)

    def _build_atomic(self, node: A.Iterate, server: str, inputs: list[int]) -> A.Node:
        """Ship any datasets the loop scans that its server lacks."""
        from ..core.visitors import transform_bottom_up

        provider = self.catalog.provider(server)
        replacements: dict[str, str] = {}

        def rewrite(n: A.Node) -> A.Node:
            if (isinstance(n, A.Scan) and not n.name.startswith("@")
                    and not provider.has_dataset(n.name)):
                if n.name not in replacements:
                    locations = self.catalog.locations(n.name)
                    if not locations:
                        raise PlanningError(
                            f"dataset {n.name!r} is not registered anywhere"
                        )
                    source = locations[0]
                    feeder = len(self.fragments)
                    self.fragments.append(Fragment(
                        feeder, source, A.Scan(n.name, n.source_schema)
                    ))
                    inputs.append(feeder)
                    replacements[n.name] = fragment_input_name(feeder)
                return A.Scan(replacements[n.name], n.source_schema,
                              intent=n.intent)
            return n

        return transform_bottom_up(node, rewrite)

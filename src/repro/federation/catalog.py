"""Federation catalog: which servers exist and which datasets live where."""

from __future__ import annotations

from ..core.errors import PlanningError
from ..core.schema import Schema
from ..providers.base import Provider
from ..storage.table import ColumnTable


class FederationCatalog:
    """Registry of providers and dataset placements."""

    def __init__(self):
        self._providers: dict[str, Provider] = {}

    # -- providers -----------------------------------------------------------

    def add_provider(self, provider: Provider) -> None:
        if provider.name in self._providers:
            raise PlanningError(f"provider {provider.name!r} already registered")
        self._providers[provider.name] = provider

    def provider(self, name: str) -> Provider:
        try:
            return self._providers[name]
        except KeyError:
            raise PlanningError(
                f"no provider named {name!r}; have {sorted(self._providers)}"
            ) from None

    @property
    def providers(self) -> list[Provider]:
        return list(self._providers.values())

    @property
    def provider_names(self) -> list[str]:
        return sorted(self._providers)

    # -- datasets ------------------------------------------------------------

    def register_dataset(
        self, name: str, table: ColumnTable, on: str | list[str]
    ) -> None:
        """Load a dataset onto one or more servers (replication allowed)."""
        servers = [on] if isinstance(on, str) else list(on)
        if not servers:
            raise PlanningError(f"dataset {name!r} needs at least one server")
        for server in servers:
            self.provider(server).register_dataset(name, table)

    def locations(self, dataset: str) -> list[str]:
        """Servers holding a dataset (sorted for determinism)."""
        return sorted(
            name for name, p in self._providers.items() if p.has_dataset(dataset)
        )

    def schema_of(self, dataset: str) -> Schema:
        for provider in self._providers.values():
            if provider.has_dataset(dataset):
                return provider.dataset_schema(dataset)
        raise PlanningError(f"dataset {dataset!r} is not registered anywhere")

    def rows_of(self, dataset: str) -> int:
        for provider in self._providers.values():
            if provider.has_dataset(dataset):
                return provider.dataset(dataset).num_rows
        raise PlanningError(f"dataset {dataset!r} is not registered anywhere")

    def table_stats(self, dataset: str):
        """Shared statistics from the first server holding the dataset.

        Returns :class:`~repro.opt.stats.TableStats` or None for
        unregistered names — this is the federation's
        :data:`~repro.opt.stats.StatsSource`, handed to the shared
        cardinality estimator by :mod:`repro.federation.cost`.
        """
        for provider in self._providers.values():
            if provider.has_dataset(dataset):
                return provider.table_stats(dataset)
        return None

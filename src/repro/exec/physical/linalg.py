"""Physical operators for the blocked linear-algebra engine family.

Values flow between these operators as :class:`BlockedMatrix`; the
coordinate-table names each matrix travels under are resolved *statically*
during lowering (:mod:`repro.linalg.lowering`) — a ``Rename`` is therefore
physically free and never appears in a lowered plan.  The root
:class:`PhysMatrixToTable` converts back to COO form under the original
tree's schema.
"""

from __future__ import annotations

import time

from ...linalg import kernels
from ...linalg.blocked import BlockedMatrix
from ...storage.table import ColumnTable
from .base import ExecContext, PhysOp, PhysProps
from ...core.schema import Schema

__all__ = [
    "PhysBlockedMatMul", "PhysBlockedTranspose", "PhysMatrixLiteral",
    "PhysMatrixSource", "PhysMatrixToTable",
]


class PhysMatrixSource(PhysOp):
    """A named matrix input; accepts a pre-blocked matrix or a COO table."""

    cost_weight = 0.0

    def __init__(
        self, name: str, schema: Schema, props: PhysProps, *, block_size: int
    ):
        super().__init__(schema, props, ())
        self.name = name
        self.block_size = block_size

    def details(self) -> str:
        return self.name

    def run(self, ctx: ExecContext) -> BlockedMatrix:
        value = ctx.resolver(self.name)
        if isinstance(value, BlockedMatrix):
            return value  # pre-blocked by the provider, skip conversion
        return BlockedMatrix.from_table(value, self.block_size)


class PhysMatrixLiteral(PhysOp):
    """An inline COO literal blocked at run time."""

    cost_weight = 0.0

    def __init__(
        self, table_schema: Schema, rows: tuple, schema: Schema,
        props: PhysProps, *, block_size: int,
    ):
        super().__init__(schema, props, ())
        self.table_schema = table_schema
        self.rows = rows
        self.block_size = block_size

    def details(self) -> str:
        return f"{len(self.rows)} rows"

    def run(self, ctx: ExecContext) -> BlockedMatrix:
        table = ColumnTable.from_rows(self.table_schema, self.rows)
        return BlockedMatrix.from_table(table, self.block_size)


class PhysBlockedMatMul(PhysOp):
    cost_weight = 5.0

    def run(self, ctx: ExecContext) -> BlockedMatrix:
        left = self._children[0].run(ctx)
        right = self._children[1].run(ctx)
        started = time.perf_counter()
        out = kernels.matmul(left, right)
        ctx.record("matmul", started)
        return out


class PhysBlockedTranspose(PhysOp):
    def run(self, ctx: ExecContext) -> BlockedMatrix:
        child = self._children[0].run(ctx)
        started = time.perf_counter()
        out = kernels.transpose(child)
        ctx.record("transpose", started)
        return out


class PhysMatrixToTable(PhysOp):
    """Plan root: blocked matrix → COO table under the tree's schema.

    Dense-semantics caveat carried over from the provider: exact-zero
    cells are treated as absent by this server.
    """

    cost_weight = 0.0

    def __init__(
        self, child: PhysOp, names: tuple[str, str, str],
        schema: Schema, props: PhysProps,
    ):
        super().__init__(schema, props, (child,))
        self.names = names

    def details(self) -> str:
        return ",".join(self.names)

    def run(self, ctx: ExecContext) -> ColumnTable:
        result = self._children[0].run(ctx)
        table = result.to_table(*self.names)
        # re-attach the tree's schema (same names; order/tags may differ)
        return ColumnTable(self.schema, table.columns)

"""Physical operators for the tabular (relational) engine family.

Each class here is the *how* behind one or more logical operators: fused
pipelines for Filter/Project/Extend/Rename chains, four join algorithms,
index probes for filters over stored base tables, scatter-based partial
aggregation, and the in-engine convergence loop.  Operators are built by
:mod:`repro.relational.lowering` and run through the shared executor in
:mod:`repro.exec.physical.base`; none of them makes decisions at run
time — algorithm and access-path choices are frozen at lowering.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ...core import algebra as A
from ...core.errors import ConvergenceError, ExecutionError
from ...core.expressions import Expr
from ...core.schema import Schema
from ...core.types import DType
from ...relational import joins
from ...relational.aggregation import factorize, group_aggregate
from ...relational.eval import eval_vector
from ...relational.sorting import sort_indices
from ...storage.column import Column
from ...storage.table import ColumnTable
from ..morsel import run_pipeline_chunks, run_pipeline_morsels
from ..pipeline import FusedPipeline
from .base import ExecContext, PhysOp, PhysProps, PhysScan

__all__ = [
    "PhysAsDims", "PhysCellJoin", "PhysChunkedScan", "PhysCoarsenDims",
    "PhysDistinct", "PhysExtend", "PhysFilter", "PhysFusedPipeline",
    "PhysHashJoin", "PhysIndexProbe", "PhysIterate", "PhysLimit",
    "PhysMatMulJoinAgg", "PhysMergeJoin", "PhysNestedLoopJoin",
    "PhysPartialAggregate", "PhysProduct", "PhysProject",
    "PhysPythonHashJoin", "PhysRename", "PhysRetag", "PhysReverse",
    "PhysSetOp", "PhysShiftDim", "PhysSliceDims", "PhysSort", "PhysUnion",
    "apply_predicate", "coerce_table", "tables_converged",
]


def apply_predicate(
    table: ColumnTable, predicate: Expr, compiled: bool
) -> ColumnTable:
    """Vectorized filter; a null predicate drops the row."""
    pred = eval_vector(predicate, table, compiled=compiled)
    keep = pred.values.astype(bool)
    if pred.mask is not None:
        keep = keep & ~pred.mask
    return table.filter(keep)


def coerce_table(table: ColumnTable, schema: Schema) -> ColumnTable:
    """Adapt a table to an equally-named schema (numeric promotion, retag)."""
    columns = {}
    for attr in schema:
        column = table.column(attr.name)
        if column.dtype is not attr.dtype:
            column = column.cast(attr.dtype)
        columns[attr.name] = column
    return ColumnTable(schema, columns)


# -- fused scans and row-at-a-time fallbacks ---------------------------------------


class PhysChunkedScan(PhysScan):
    """Scan a stored chunked table, skipping zone-map-pruned chunks.

    ``chunk_ids`` was decided at lowering time by evaluating the filter's
    conjunctive comparison specs against the catalog's zone maps (stale
    plans are impossible: the plan cache keys on the catalog version).
    Like :class:`PhysIndexProbe`, the scan reads the catalog entry's table
    directly instead of going through the resolver.  A parent
    :class:`PhysFusedPipeline` recognizes this operator and uses the
    surviving chunks as its morsel units without assembling the pruned
    table first.
    """

    cost_weight = 0.0

    def __init__(
        self,
        name: str,
        schema: Schema,
        props: PhysProps,
        *,
        chunked,  # repro.storage.chunked.ChunkedTable
        chunk_ids: list[int],
    ):
        super().__init__(name, schema, props)
        self.chunked = chunked
        self.chunk_ids = chunk_ids

    def details(self) -> str:
        return (
            f"{self.name} chunks: "
            f"{len(self.chunk_ids)}/{self.chunked.num_chunks}"
        )

    def run(self, ctx: ExecContext) -> ColumnTable:
        ctx.counters.chunks_scanned += len(self.chunk_ids)
        ctx.counters.chunks_pruned += (
            self.chunked.num_chunks - len(self.chunk_ids)
        )
        return self.chunked.take_chunks(self.chunk_ids)


class PhysFusedPipeline(PhysOp):
    """A maximal Filter/Project/Extend/Rename chain as one vectorized pass."""

    def __init__(
        self,
        source: PhysOp,
        pipeline: FusedPipeline,
        steps: tuple[str, ...],
        schema: Schema,
        props: PhysProps,
        *,
        workers: int,
        morsel_size: int,
    ):
        super().__init__(schema, props, (source,))
        self.pipeline = pipeline
        self.steps = steps
        self.workers = workers
        self.morsel_size = morsel_size

    def details(self) -> str:
        return ">".join(self.steps)

    def run(self, ctx: ExecContext) -> ColumnTable:
        child = self._children[0]
        ctx.counters.fused_runs += 1
        if isinstance(child, PhysChunkedScan) and (
            self.workers != 1
            or len(child.chunk_ids) < child.chunked.num_chunks
        ):
            # surviving chunks double as the morsel units: never assemble
            # the pruned table, feed each chunk straight into the pipeline
            ctx.counters.chunks_scanned += len(child.chunk_ids)
            ctx.counters.chunks_pruned += (
                child.chunked.num_chunks - len(child.chunk_ids)
            )
            started = time.perf_counter()
            result = run_pipeline_chunks(
                self.pipeline, child.chunked, child.chunk_ids,
                workers=self.workers,
            )
            ctx.record("pipeline", started)
            return result
        source = child.run(ctx)
        started = time.perf_counter()
        if self.workers != 1:
            result = run_pipeline_morsels(
                self.pipeline, source,
                workers=self.workers, morsel_size=self.morsel_size,
            )
        else:
            result = self.pipeline.run(source)
        ctx.record("pipeline", started)
        return result


class PhysFilter(PhysOp):
    cost_weight = 1.0

    def __init__(
        self, child: PhysOp, predicate: Expr, schema: Schema,
        props: PhysProps, *, compiled: bool,
    ):
        super().__init__(schema, props, (child,))
        self.predicate = predicate
        self.compiled = compiled

    def details(self) -> str:
        return repr(self.predicate)

    def run(self, ctx: ExecContext) -> ColumnTable:
        child = self._children[0].run(ctx)
        return apply_predicate(child, self.predicate, self.compiled)


class PhysProject(PhysOp):
    cost_weight = 0.1  # column selection is metadata work

    def __init__(
        self, child: PhysOp, names: tuple[str, ...], schema: Schema,
        props: PhysProps,
    ):
        super().__init__(schema, props, (child,))
        self.names = names

    def details(self) -> str:
        return ",".join(self.names)

    def run(self, ctx: ExecContext) -> ColumnTable:
        return self._children[0].run(ctx).select(self.names)


class PhysExtend(PhysOp):
    def __init__(
        self, child: PhysOp, names: tuple[str, ...],
        exprs: tuple[Expr, ...], schema: Schema, props: PhysProps,
        *, compiled: bool,
    ):
        super().__init__(schema, props, (child,))
        self.names = names
        self.exprs = exprs
        self.compiled = compiled

    def details(self) -> str:
        return ",".join(
            f"{n}={e!r}" for n, e in zip(self.names, self.exprs)
        )

    def run(self, ctx: ExecContext) -> ColumnTable:
        child = self._children[0].run(ctx)
        out = child
        for name, expr in zip(self.names, self.exprs):
            # exprs see the input table only
            column = eval_vector(expr, child, compiled=self.compiled)
            out = out.with_column(name, column.dtype, column)
        return ColumnTable(self.schema, out.columns)


class PhysRename(PhysOp):
    cost_weight = 0.0

    def __init__(
        self, child: PhysOp, mapping: tuple[tuple[str, str], ...],
        schema: Schema, props: PhysProps,
    ):
        super().__init__(schema, props, (child,))
        self.mapping = mapping

    def details(self) -> str:
        return ",".join(f"{a}->{b}" for a, b in self.mapping)

    def run(self, ctx: ExecContext) -> ColumnTable:
        return self._children[0].run(ctx).rename(dict(self.mapping))


# -- index access path -------------------------------------------------------------


class PhysIndexProbe(PhysOp):
    """Serve a filter over a stored base table from a secondary index.

    The probed conjunct, the index kind and the residual conjuncts were all
    chosen at lowering time from the catalog; run() only executes the
    lookup and applies the residual vectorized over the fetched subset.
    """

    cost_weight = 0.1

    def __init__(
        self,
        entry,  # repro.relational.catalog.TableEntry
        dataset: str,
        column: str,
        op: str,
        value,
        kind: str,  # "hash" | "sorted"
        project_names: tuple[str, ...] | None,
        residual: tuple[Expr, ...],
        schema: Schema,
        props: PhysProps,
        *,
        compiled: bool,
    ):
        super().__init__(schema, props)
        self.entry = entry
        self.dataset = dataset
        self.column = column
        self.op = op
        self.value = value
        self.kind = kind
        self.project_names = project_names
        self.residual = residual
        self.compiled = compiled

    def details(self) -> str:
        text = (
            f"{self.dataset}.{self.column} {self.op} {self.value!r} "
            f"via {self.kind}"
        )
        if self.residual:
            text += f" +{len(self.residual)} residual"
        if self.project_names is not None:
            text += f" -> {','.join(self.project_names)}"
        return text

    def _lookup(self) -> np.ndarray:
        if self.kind == "hash":
            return self.entry.hash_indexes[self.column].lookup(self.value)
        index = self.entry.sorted_indexes[self.column]
        if self.op == "==":
            return index.equality_lookup(self.value)
        if self.op in ("<", "<="):
            return index.range_lookup(
                None, self.value, high_inclusive=(self.op == "<=")
            )
        return index.range_lookup(
            self.value, None, low_inclusive=(self.op == ">=")
        )

    def run(self, ctx: ExecContext) -> ColumnTable:
        rows = self._lookup()
        ctx.counters.index_hits += 1
        subset = self.entry.table.take(rows)
        if self.project_names is not None:
            subset = subset.select(self.project_names)
        for other in self.residual:
            subset = apply_predicate(subset, other, self.compiled)
        return subset


# -- joins --------------------------------------------------------------------------


class _PhysJoinBase(PhysOp):
    """Shared output assembly; subclasses supply the matching algorithm."""

    algorithm = "hash"

    def __init__(
        self, left: PhysOp, right: PhysOp,
        on: tuple[tuple[str, str], ...], how: str,
        schema: Schema, props: PhysProps,
    ):
        super().__init__(schema, props, (left, right))
        self.on = on
        self.how = how

    def details(self) -> str:
        keys = ",".join(f"{l}={r}" for l, r in self.on)
        return f"{self.how} on {keys}"

    def _indices(
        self, left: ColumnTable, right: ColumnTable
    ) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def run(self, ctx: ExecContext) -> ColumnTable:
        left = self._children[0].run(ctx)
        right = self._children[1].run(ctx)
        started = time.perf_counter()
        lidx, ridx = self._indices(left, right)
        if self.how in ("semi", "anti"):
            result = ColumnTable(self.schema, left.take(lidx).columns)
        else:
            rkeys = {r for _, r in self.on}
            right_keep = [n for n in right.schema.names if n not in rkeys]
            result = joins.gather_join_output(
                left, right, right_keep, lidx, ridx, self.schema
            )
        ctx.record("join", started)
        return result

    @property
    def _lkeys(self) -> list[str]:
        return [l for l, _ in self.on]

    @property
    def _rkeys(self) -> list[str]:
        return [r for _, r in self.on]


class PhysHashJoin(_PhysJoinBase):
    """Vectorized hash join over dense int64 key codes."""

    def __init__(self, *args, workers: int = 1, morsel_size: int = 131_072):
        super().__init__(*args)
        self.workers = workers
        self.morsel_size = morsel_size

    def _indices(self, left, right):
        return joins.hash_join(
            left, right, self._lkeys, self._rkeys, self.how,
            workers=self.workers, morsel_size=self.morsel_size,
        )


class PhysMergeJoin(_PhysJoinBase):
    algorithm = "merge"
    cost_weight = 1.5

    def __init__(self, *args, presorted: bool = False):
        super().__init__(*args)
        self.presorted = presorted

    def details(self) -> str:
        text = super().details()
        return f"{text} presorted" if self.presorted else text

    def _indices(self, left, right):
        return joins.merge_join(
            left, right, self._lkeys, self._rkeys, how=self.how,
            presorted=self.presorted,
        )


class PhysNestedLoopJoin(_PhysJoinBase):
    algorithm = "nested"
    cost_weight = 50.0  # quadratic baseline

    def _indices(self, left, right):
        return joins.nested_loop_join(left, right, self._lkeys, self._rkeys)


class PhysPythonHashJoin(_PhysJoinBase):
    algorithm = "python"
    cost_weight = 10.0  # row-at-a-time ablation baseline

    def _indices(self, left, right):
        return joins.python_hash_join(
            left, right, self._lkeys, self._rkeys, self.how
        )


class PhysProduct(PhysOp):
    cost_weight = 5.0

    def run(self, ctx: ExecContext) -> ColumnTable:
        left = self._children[0].run(ctx)
        right = self._children[1].run(ctx)
        lidx = np.repeat(
            np.arange(left.num_rows, dtype=np.int64), right.num_rows
        )
        ridx = np.tile(
            np.arange(right.num_rows, dtype=np.int64), left.num_rows
        )
        columns = {n: left.column(n).take(lidx) for n in left.schema.names}
        columns.update(
            {n: right.column(n).take(ridx) for n in right.schema.names}
        )
        return ColumnTable(self.schema, columns)


# -- aggregation --------------------------------------------------------------------


class PhysPartialAggregate(PhysOp):
    """Scatter-based group aggregation (morsel-parallel partials)."""

    def __init__(
        self, child: PhysOp, group_by: tuple[str, ...],
        aggs: tuple[A.AggSpec, ...], schema: Schema, props: PhysProps,
        *, compiled: bool, workers: int, morsel_size: int,
    ):
        super().__init__(schema, props, (child,))
        self.group_by = group_by
        self.aggs = aggs
        self.compiled = compiled
        self.workers = workers
        self.morsel_size = morsel_size

    def details(self) -> str:
        specs = ",".join(
            f"{s.name}={s.func}({s.arg!r})" if s.arg is not None
            else f"{s.name}={s.func}(*)"
            for s in self.aggs
        )
        by = ",".join(self.group_by) or "()"
        return f"by {by}: {specs}"

    def run(self, ctx: ExecContext) -> ColumnTable:
        child = self._children[0].run(ctx)
        started = time.perf_counter()
        result = group_aggregate(
            child, self.group_by, self.aggs, self.schema,
            compiled=self.compiled,
            workers=self.workers, morsel_size=self.morsel_size,
        )
        ctx.record("aggregate", started)
        return result


# -- ordering, limiting, set operations --------------------------------------------


class PhysSort(PhysOp):
    cost_weight = 4.0

    def __init__(
        self, child: PhysOp, keys: tuple[str, ...],
        ascending: tuple[bool, ...], schema: Schema, props: PhysProps,
    ):
        super().__init__(schema, props, (child,))
        self.keys = keys
        self.ascending = ascending

    def details(self) -> str:
        return ",".join(
            (k if asc else f"-{k}")
            for k, asc in zip(self.keys, self.ascending)
        )

    def run(self, ctx: ExecContext) -> ColumnTable:
        child = self._children[0].run(ctx)
        return child.take(sort_indices(child, self.keys, self.ascending))


class PhysLimit(PhysOp):
    cost_weight = 0.1

    def __init__(
        self, child: PhysOp, count: int, offset: int,
        schema: Schema, props: PhysProps,
    ):
        super().__init__(schema, props, (child,))
        self.count = count
        self.offset = offset

    def details(self) -> str:
        if self.offset:
            return f"{self.count} skip {self.offset}"
        return str(self.count)

    def run(self, ctx: ExecContext) -> ColumnTable:
        child = self._children[0].run(ctx)
        return child.slice(self.offset, self.offset + self.count)


class PhysReverse(PhysOp):
    cost_weight = 0.1

    def run(self, ctx: ExecContext) -> ColumnTable:
        return self._children[0].run(ctx).reverse()


class PhysDistinct(PhysOp):
    cost_weight = 2.0

    def run(self, ctx: ExecContext) -> ColumnTable:
        table = self._children[0].run(ctx)
        gids, _ = factorize(table, table.schema.names)
        if len(gids) == 0:
            return table
        _, first = np.unique(gids, return_index=True)
        return table.take(np.sort(first))


class PhysUnion(PhysOp):
    def run(self, ctx: ExecContext) -> ColumnTable:
        left = self._children[0].run(ctx)
        right = self._children[1].run(ctx)
        return ColumnTable.concat([
            coerce_table(left, self.schema), coerce_table(right, self.schema)
        ])


class PhysSetOp(PhysOp):
    """Intersect/Except via row-set membership (distinct output)."""

    cost_weight = 10.0  # row-at-a-time

    def __init__(
        self, child_left: PhysOp, child_right: PhysOp,
        keep_if_present: bool, schema: Schema, props: PhysProps,
    ):
        super().__init__(schema, props, (child_left, child_right))
        self.keep_if_present = keep_if_present

    def details(self) -> str:
        return "intersect" if self.keep_if_present else "except"

    def run(self, ctx: ExecContext) -> ColumnTable:
        left = coerce_table(self._children[0].run(ctx), self.schema)
        right = coerce_table(self._children[1].run(ctx), self.schema)
        right_keys = set(right.iter_rows())
        seen: set[tuple] = set()
        keep = np.zeros(left.num_rows, dtype=bool)
        for i, row in enumerate(left.iter_rows()):
            if (row in right_keys) is self.keep_if_present and row not in seen:
                seen.add(row)
                keep[i] = True
        return left.filter(keep)


# -- dimension-aware operators (relational readings) -------------------------------


class PhysAsDims(PhysOp):
    """Retag columns as dimensions, checking they form a key."""

    def __init__(
        self, child: PhysOp, dims: tuple[str, ...],
        schema: Schema, props: PhysProps,
    ):
        super().__init__(schema, props, (child,))
        self.dims = dims

    def details(self) -> str:
        return ",".join(self.dims)

    def run(self, ctx: ExecContext) -> ColumnTable:
        child = self._children[0].run(ctx)
        _, groups = factorize(child, self.dims)
        if len(groups) != child.num_rows:
            raise ExecutionError(
                f"AsDims: dimensions {list(self.dims)} do not form a key "
                f"({child.num_rows} rows, {len(groups)} distinct coordinates)"
            )
        return ColumnTable(self.schema, child.columns)


class PhysSliceDims(PhysOp):
    def __init__(
        self, child: PhysOp, bounds: tuple, schema: Schema, props: PhysProps,
    ):
        super().__init__(schema, props, (child,))
        self.bounds = bounds

    def details(self) -> str:
        return ",".join(f"{d}[{lo}:{hi}]" for d, lo, hi in self.bounds)

    def run(self, ctx: ExecContext) -> ColumnTable:
        child = self._children[0].run(ctx)
        keep = np.ones(child.num_rows, dtype=bool)
        for dim, lo, hi in self.bounds:
            values = child.array(dim)
            keep &= (values >= lo) & (values <= hi)
        return child.filter(keep)


class PhysShiftDim(PhysOp):
    cost_weight = 0.1

    def __init__(
        self, child: PhysOp, dim: str, offset: int,
        schema: Schema, props: PhysProps,
    ):
        super().__init__(schema, props, (child,))
        self.dim = dim
        self.offset = offset

    def details(self) -> str:
        return f"{self.dim}{self.offset:+d}"

    def run(self, ctx: ExecContext) -> ColumnTable:
        child = self._children[0].run(ctx)
        columns = dict(child.columns)
        columns[self.dim] = Column(
            DType.INT64, child.array(self.dim) + self.offset
        )
        return ColumnTable(self.schema, columns)


class PhysRetag(PhysOp):
    """Reattach a schema over unchanged columns (TransposeDims in COO)."""

    cost_weight = 0.0

    def run(self, ctx: ExecContext) -> ColumnTable:
        child = self._children[0].run(ctx)
        return ColumnTable(self.schema, child.columns)


class PhysCoarsenDims(PhysOp):
    """Floor-divide dimension coordinates (the map half of Regrid)."""

    cost_weight = 0.1

    def __init__(
        self, child: PhysOp, factors: tuple[tuple[str, int], ...],
        schema: Schema, props: PhysProps,
    ):
        super().__init__(schema, props, (child,))
        self.factors = factors

    def details(self) -> str:
        return ",".join(f"{d}/{f}" for d, f in self.factors)

    def run(self, ctx: ExecContext) -> ColumnTable:
        child = self._children[0].run(ctx)
        columns = dict(child.columns)
        for dim, factor in self.factors:
            columns[dim] = Column(
                DType.INT64, np.floor_divide(child.array(dim), factor)
            )
        return ColumnTable(self.schema, columns)


class PhysCellJoin(PhysOp):
    """Equi-join on shared dimensions, merging value attributes."""

    cost_weight = 2.0

    def __init__(
        self, left: PhysOp, right: PhysOp, dims: tuple[str, ...],
        right_values: tuple[str, ...], schema: Schema, props: PhysProps,
        *, workers: int, morsel_size: int,
    ):
        super().__init__(schema, props, (left, right))
        self.dims = dims
        self.right_values = right_values
        self.workers = workers
        self.morsel_size = morsel_size

    def details(self) -> str:
        return f"on {','.join(self.dims)}"

    def run(self, ctx: ExecContext) -> ColumnTable:
        left = self._children[0].run(ctx)
        right = self._children[1].run(ctx)
        dims = list(self.dims)
        started = time.perf_counter()
        lidx, ridx = joins.hash_join(
            left, right, dims, dims, "inner",
            workers=self.workers, morsel_size=self.morsel_size,
        )
        ctx.record("join", started)
        columns = {}
        for name in left.schema.names:
            columns[name] = left.column(name).take(lidx)
        for name in self.right_values:
            columns[name] = right.column(name).take(ridx)
        return ColumnTable(self.schema, columns)


class PhysMatMulJoinAgg(PhysOp):
    """MatMul in its relational formulation: join on the shared dimension,
    multiply, group by the outer dimensions, sum.  Correct but much slower
    than a native linear-algebra engine — the point of experiment E3."""

    cost_weight = 25.0

    def __init__(
        self, left: PhysOp, right: PhysOp,
        left_schema: Schema, right_schema: Schema,
        schema: Schema, props: PhysProps,
        *, workers: int, morsel_size: int,
    ):
        super().__init__(schema, props, (left, right))
        self.li, self.lk = left_schema.dimension_names
        self.rk, self.rj = right_schema.dimension_names
        self.lval = left_schema.value_names[0]
        self.rval = right_schema.value_names[0]
        self.workers = workers
        self.morsel_size = morsel_size
        out_i, out_j = schema.dimension_names
        self.out_v = schema.value_names[0]
        self.joined_schema = Schema([
            schema[out_i].as_value(), schema[out_j].as_value(),
            schema[self.out_v],
        ])

    def details(self) -> str:
        return f"{self.lk}={self.rk} sum({self.lval}*{self.rval})"

    def run(self, ctx: ExecContext) -> ColumnTable:
        from ...core.expressions import col

        left = self._children[0].run(ctx)
        right = self._children[1].run(ctx)
        started = time.perf_counter()
        lidx, ridx = joins.hash_join(
            left, right, [self.lk], [self.rk], "inner",
            workers=self.workers, morsel_size=self.morsel_size,
        )
        ctx.record("join", started)
        out_i, out_j = self.schema.dimension_names
        out_v = self.out_v

        i_col = left.column(self.li).take(lidx)
        j_col = right.column(self.rj).take(ridx)
        lv = left.column(self.lval).take(lidx)
        rv = right.column(self.rval).take(ridx)
        product_values = lv.values * rv.values
        product_mask = None
        if lv.mask is not None or rv.mask is not None:
            product_mask = np.zeros(len(product_values), dtype=bool)
            if lv.mask is not None:
                product_mask |= lv.mask
            if rv.mask is not None:
                product_mask |= rv.mask
        out_dtype = self.schema[out_v].dtype
        joined = ColumnTable(self.joined_schema, {
            out_i: Column(DType.INT64, i_col.values, i_col.mask),
            out_j: Column(DType.INT64, j_col.values, j_col.mask),
            out_v: Column(out_dtype,
                          product_values.astype(out_dtype.to_numpy()),
                          product_mask),
        })
        started = time.perf_counter()
        summed = group_aggregate(
            joined, (out_i, out_j),
            (A.AggSpec(out_v, "sum", col(out_v)),),
            self.schema,
            workers=self.workers,
            morsel_size=self.morsel_size,
        )
        ctx.record("aggregate", started)
        # drop all-null sums (cells with only null contributions do not exist)
        out_col = summed.column(out_v)
        if out_col.mask is not None:
            summed = summed.filter(~out_col.mask)
        return summed


# -- control iteration --------------------------------------------------------------


def tables_converged(
    stop: A.Convergence,
    schema: Schema,
    old: ColumnTable,
    new: ColumnTable,
) -> bool:
    """Dimension-aligned convergence test between two loop states."""
    if stop.value_attr is None:
        return False
    dims = list(schema.dimension_names)
    if old.num_rows != new.num_rows:
        return False
    old_sorted = old.take(sort_indices(old, dims, [True] * len(dims)))
    new_sorted = new.take(sort_indices(new, dims, [True] * len(dims)))
    for d in dims:
        if not np.array_equal(old_sorted.array(d), new_sorted.array(d)):
            return False
    ov = old_sorted.column(stop.value_attr)
    nv = new_sorted.column(stop.value_attr)
    if ov.mask is not None or nv.mask is not None:
        om = ov.mask if ov.mask is not None else np.zeros(len(ov), dtype=bool)
        nm = nv.mask if nv.mask is not None else np.zeros(len(nv), dtype=bool)
        if not np.array_equal(om, nm):
            return False
        valid = ~om
    else:
        valid = slice(None)
    deltas = np.abs(
        nv.values[valid].astype(np.float64) - ov.values[valid].astype(np.float64)
    )
    if deltas.size == 0:
        return True
    delta = float(deltas.max()) if stop.norm == "linf" else float(deltas.sum())
    return delta <= stop.tolerance


class PhysIterate(PhysOp):
    """In-engine convergence loop over a lowered body (tabular state)."""

    def __init__(
        self, init: PhysOp, body: PhysOp, var: str, stop: A.Convergence,
        max_iter: int, strict: bool, state_schema: Schema,
        schema: Schema, props: PhysProps,
    ):
        super().__init__(schema, props, (init, body))
        self.var = var
        self.stop = stop
        self.max_iter = max_iter
        self.strict = strict
        self.state_schema = state_schema
        self.cost_weight = float(min(max_iter, 20))

    def details(self) -> str:
        stop = (
            f"|{self.stop.value_attr}|_{self.stop.norm}"
            f"<={self.stop.tolerance}"
            if self.stop.value_attr is not None else "fixed"
        )
        return f"{self.var} x{self.max_iter} until {stop}"

    def run(self, ctx: ExecContext) -> ColumnTable:
        state = self._children[0].run(ctx)
        for _ in range(self.max_iter):
            inner = ctx.bind(self.var, state)
            new_state = self._children[1].run(inner)
            new_state = coerce_table(new_state, self.state_schema)
            if tables_converged(self.stop, self.state_schema, state, new_state):
                return new_state
            state = new_state
        if self.stop.value_attr is not None and self.strict:
            raise ConvergenceError(
                f"Iterate did not converge within {self.max_iter} iterations"
            )
        return state


def split_conjuncts(expr: Expr) -> list[Expr]:
    """Flatten an AND tree into its conjuncts (index-probe candidates)."""
    from ...core.expressions import BinOp

    if isinstance(expr, BinOp) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def fused_steps(chain: Sequence[A.Node]) -> tuple[str, ...]:
    """Display labels for a fusible chain (top-first), e.g. ('project','filter')."""
    return tuple(node.op_name.lower() for node in chain)

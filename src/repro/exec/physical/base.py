"""The physical-operator IR shared by every provider's lowering pass.

A logical algebra tree says *what* to compute; a physical plan says *how*:
which access path serves a filter, which join algorithm runs, which chains
fuse into one pass, how many morsel workers split a scan.  Providers turn
rewritten logical trees into :class:`PhysPlan`s with a pure lowering pass
(no data touched), and one shared :class:`PhysicalExecutor` runs them.

Keeping lowering separate from execution buys three things:

* decisions are **inspectable** — ``explain(physical=True)`` renders the
  lowered plan, and golden tests pin it down without executing anything;
* decisions are **cacheable** — engines memoize physical plans keyed on
  the serialized logical tree, the physical options and the catalog
  version, so repeat queries skip both lowering and pipeline construction;
* per-query **stage timings** live in one place — the executor's context —
  instead of being diffed out of ever-growing engine counters.

Every operator carries :class:`PhysProps`: estimated cardinality, output
ordering, dimension metadata and parallelism degree.  The federation cost
model reads these off lowered fragment plans instead of re-guessing from
logical trees.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ...core.errors import ExecutionError
from ...core.schema import Schema
from ...storage.table import ColumnTable

#: Resolves a Scan leaf to its stored value (table, chunked array, matrix).
Resolver = Callable[[str], Any]


# -- physical properties -----------------------------------------------------------


@dataclass(frozen=True)
class PhysProps:
    """Physical properties of one operator's output.

    Row estimates are stamped by lowering from the shared
    :class:`repro.opt.estimator.CardinalityEstimator`; ``est_source``
    carries their provenance ("stats" = grounded in dataset statistics,
    "default" = textbook fallback) and ``selectivity`` the estimated
    keep-fraction of filtering operators, both surfaced by EXPLAIN.
    """

    #: estimated output cardinality (rows / cells); None = unknown
    est_rows: int | None = None
    #: output ordering as (column, ascending) pairs; () = no guarantee
    ordering: tuple[tuple[str, bool], ...] = ()
    #: dimension columns of the output (array/matrix-shaped data)
    dimensions: tuple[str, ...] = ()
    #: worker threads this operator may use; 1 = serial, 0 = per-CPU
    parallelism: int = 1
    #: provenance of est_rows: "stats" or "default"
    est_source: str = "stats"
    #: estimated filter keep-fraction; None for non-filtering operators
    selectivity: float | None = None

    def describe(self) -> str:
        parts = []
        if self.est_rows is not None:
            mark = "?" if self.est_source == "default" else ""
            parts.append(f"rows~{self.est_rows}{mark}")
        if self.selectivity is not None:
            parts.append(f"sel~{self.selectivity:.2f}")
        if self.ordering:
            keys = ",".join(
                (name if asc else f"-{name}") for name, asc in self.ordering
            )
            parts.append(f"order={keys}")
        if self.dimensions:
            parts.append(f"dims={','.join(self.dimensions)}")
        if self.parallelism != 1:
            parts.append(f"par={self.parallelism or 'cpu'}")
        return " ".join(parts)


def props_for(
    schema: Schema,
    est_rows: int | None = None,
    *,
    ordering: tuple[tuple[str, bool], ...] = (),
    parallelism: int = 1,
    est_source: str = "stats",
    selectivity: float | None = None,
) -> PhysProps:
    """Standard props: dimensions always mirror the output schema."""
    return PhysProps(
        est_rows=est_rows,
        ordering=ordering,
        dimensions=tuple(schema.dimension_names),
        parallelism=parallelism,
        est_source=est_source,
        selectivity=selectivity,
    )


# -- execution context -------------------------------------------------------------


@dataclass
class ExecCounters:
    """Cumulative access-path counters, shared across an engine's queries."""

    fused_runs: int = 0
    index_hits: int = 0
    chunks_scanned: int = 0
    chunks_pruned: int = 0


class ExecContext:
    """Per-query execution state threaded through ``PhysOp.run``.

    Owns the per-query stage timings (the executor hands them back in the
    :class:`ExecOutcome`), the scan resolver, and the loop-variable
    environment for ``PhysIterate`` bodies.
    """

    __slots__ = ("resolver", "env", "counters", "stage_seconds")

    def __init__(
        self,
        resolver: Resolver,
        env: dict[str, Any] | None = None,
        counters: ExecCounters | None = None,
        stage_seconds: dict[str, float] | None = None,
    ):
        self.resolver = resolver
        self.env = env if env is not None else {}
        self.counters = counters if counters is not None else ExecCounters()
        self.stage_seconds = stage_seconds if stage_seconds is not None else {}

    def record(self, stage: str, started: float) -> None:
        """Accumulate wall time for one physical stage of this query."""
        self.stage_seconds[stage] = (
            self.stage_seconds.get(stage, 0.0)
            + (time.perf_counter() - started)
        )

    def bind(self, var: str, value: Any) -> "ExecContext":
        """A child context with ``var`` bound (timings/counters shared)."""
        env = dict(self.env)
        env[var] = value
        return ExecContext(self.resolver, env, self.counters, self.stage_seconds)


# -- operators ----------------------------------------------------------------------


class PhysOp:
    """One physical operator: children, output schema, properties, run()."""

    #: abstract per-row work multiplier (consumed by federation.cost)
    cost_weight: float = 1.0

    def __init__(self, schema: Schema, props: PhysProps, children: tuple = ()):
        self.schema = schema
        self.props = props
        self._children: tuple[PhysOp, ...] = tuple(children)

    @property
    def op_name(self) -> str:
        return type(self).__name__

    def children(self) -> tuple["PhysOp", ...]:
        return self._children

    def details(self) -> str:
        """Compact operator parameters for plan rendering; "" = none."""
        return ""

    def run(self, ctx: ExecContext) -> Any:
        raise NotImplementedError

    def walk(self) -> Iterator["PhysOp"]:
        yield self
        for child in self._children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.op_name} {self.props.describe()}>"


# -- generic leaves (shared by every engine's lowering) ----------------------------


class PhysScan(PhysOp):
    """Fetch a stored dataset (or fragment input) through the resolver."""

    cost_weight = 0.0  # no per-row work: hands back stored columns

    def __init__(self, name: str, schema: Schema, props: PhysProps):
        super().__init__(schema, props)
        self.name = name

    def details(self) -> str:
        return self.name

    def run(self, ctx: ExecContext) -> Any:
        return ctx.resolver(self.name)


class PhysInlineTable(PhysOp):
    """Materialize literal rows shipped inside the expression tree."""

    def __init__(self, schema: Schema, rows: tuple, props: PhysProps):
        super().__init__(schema, props)
        self.rows = rows

    def details(self) -> str:
        return f"{len(self.rows)} rows"

    def run(self, ctx: ExecContext) -> ColumnTable:
        return ColumnTable.from_rows(self.schema, self.rows)


class PhysLoopVar(PhysOp):
    """Read the current loop state bound by an enclosing PhysIterate."""

    cost_weight = 0.0

    def __init__(self, name: str, schema: Schema, props: PhysProps):
        super().__init__(schema, props)
        self.name = name

    def details(self) -> str:
        return self.name

    def run(self, ctx: ExecContext) -> Any:
        try:
            return ctx.env[self.name]
        except KeyError:
            raise ExecutionError(f"unbound LoopVar({self.name!r})") from None


# -- plans and the shared executor --------------------------------------------------


@dataclass
class PhysPlan:
    """A lowered physical plan for one provider's engine."""

    root: PhysOp
    #: which engine family the plan targets ("relational", "array", ...)
    engine: str = "relational"

    def walk(self) -> Iterator[PhysOp]:
        return self.root.walk()

    def render(self) -> str:
        """Deterministic, compact plan text (EXPLAIN and golden tests)."""
        lines: list[str] = []

        def visit(op: PhysOp, depth: int) -> None:
            line = "  " * depth + op.op_name
            detail = op.details()
            if detail:
                line += f"({detail})"
            props = op.props.describe()
            if props:
                line += f"  [{props}]"
            lines.append(line)
            for child in op.children():
                visit(child, depth + 1)

        visit(self.root, 0)
        return "\n".join(lines)


@dataclass
class ExecOutcome:
    """One executed plan: the result plus this query's stage timings."""

    value: Any
    stage_seconds: dict[str, float] = field(default_factory=dict)


class PhysicalExecutor:
    """Runs physical plans; engines share one stateless instance."""

    def execute(
        self,
        plan: PhysPlan,
        resolver: Resolver,
        env: dict[str, Any] | None = None,
        counters: ExecCounters | None = None,
    ) -> ExecOutcome:
        ctx = ExecContext(resolver, env, counters)
        value = plan.root.run(ctx)
        return ExecOutcome(value, ctx.stage_seconds)


#: the shared executor instance every engine drives plans through
EXECUTOR = PhysicalExecutor()


def run_plan(
    plan: PhysPlan,
    resolver: Resolver,
    env: dict[str, Any] | None = None,
    counters: ExecCounters | None = None,
) -> ExecOutcome:
    """Execute ``plan`` on the shared :data:`EXECUTOR`."""
    return EXECUTOR.execute(plan, resolver, env=env, counters=counters)

"""The physical-operator IR and the shared plan executor.

Providers lower rewritten logical trees into :class:`PhysPlan`s (see the
per-engine lowering modules: ``repro.relational.lowering``,
``repro.array.lowering``, ``repro.linalg.lowering``,
``repro.graph.lowering``) and run them through :data:`EXECUTOR`.  Operator
families live in submodules: :mod:`repro.exec.physical.relational`
(tabular), :mod:`repro.exec.physical.array` (chunked arrays),
:mod:`repro.exec.physical.linalg` (blocked matrices) and
:mod:`repro.exec.physical.graph` (native graph kernels).
"""

from .base import (
    EXECUTOR,
    ExecContext,
    ExecCounters,
    ExecOutcome,
    PhysicalExecutor,
    PhysInlineTable,
    PhysLoopVar,
    PhysOp,
    PhysPlan,
    PhysProps,
    PhysScan,
    props_for,
    run_plan,
)

__all__ = [
    "EXECUTOR",
    "ExecContext",
    "ExecCounters",
    "ExecOutcome",
    "PhysInlineTable",
    "PhysLoopVar",
    "PhysOp",
    "PhysPlan",
    "PhysProps",
    "PhysScan",
    "PhysicalExecutor",
    "props_for",
    "run_plan",
]

"""Physical operators for the chunked-array (SciDB-style) engine family.

Values flow between these operators as :class:`ChunkedArray`s; tables
entering from scans or inline literals are chunked on first use by
:func:`as_chunked` and converted back at the plan root by
:class:`PhysArrayResult`.  The kernels themselves live in
:mod:`repro.array.ops`; lowering (:mod:`repro.array.lowering`) freezes the
chunk side and worker count into each operator.
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from ...array import ops
from ...array.chunked import ChunkedArray
from ...core import algebra as A
from ...core.errors import ConvergenceError, ExecutionError
from ...core.schema import Schema
from ...storage.table import ColumnTable
from .base import ExecContext, PhysOp, PhysProps

__all__ = [
    "PhysArrayResult", "PhysChunkedAsDims", "PhysChunkedCellJoin",
    "PhysChunkedExtend", "PhysChunkedFilter", "PhysChunkedIterate",
    "PhysChunkedMatMul", "PhysChunkedProject", "PhysChunkedReduceDims",
    "PhysChunkedRegrid", "PhysChunkedRename", "PhysChunkedShift",
    "PhysChunkedSlice", "PhysChunkedTranspose", "PhysChunkedWindow",
    "arrays_converged", "as_chunked",
]


def as_chunked(value: Any, schema: Schema, chunk_side: int) -> ChunkedArray:
    """Coerce a scan/inline result to chunked form (idempotent)."""
    if isinstance(value, ChunkedArray):
        return value
    if not schema.dimensions:
        raise ExecutionError(
            "array engine needs dimensioned input; tag dimensions with AsDims"
        )
    return ChunkedArray.from_table(value, chunk_side)


class _ChunkedOp(PhysOp):
    """Base for unary chunked operators: coerces the child to an array."""

    stage: str | None = None

    def __init__(
        self, child: PhysOp, child_schema: Schema, schema: Schema,
        props: PhysProps, *, chunk_side: int, workers: int = 1,
    ):
        super().__init__(schema, props, (child,))
        self.child_schema = child_schema
        self.chunk_side = chunk_side
        self.workers = workers

    def _child_array(self, ctx: ExecContext) -> ChunkedArray:
        value = self._children[0].run(ctx)
        return as_chunked(value, self.child_schema, self.chunk_side)

    def run(self, ctx: ExecContext) -> ChunkedArray:
        arr = self._child_array(ctx)
        if self.stage is None:
            return self._apply(arr)
        started = time.perf_counter()
        result = self._apply(arr)
        ctx.record(self.stage, started)
        return result

    def _apply(self, arr: ChunkedArray) -> ChunkedArray:
        raise NotImplementedError


class PhysChunkedAsDims(_ChunkedOp):
    """Retag + re-chunk; from_table enforces that dimensions form a key
    (duplicate coordinates raise) and contain no nulls."""

    def run(self, ctx: ExecContext) -> ChunkedArray:
        child = self._children[0].run(ctx)
        table = child.to_table() if isinstance(child, ChunkedArray) else child
        retagged = ColumnTable(self.schema, table.columns)
        return ChunkedArray.from_table(retagged, self.chunk_side)

    def details(self) -> str:
        return ",".join(self.schema.dimension_names)


class PhysChunkedSlice(_ChunkedOp):
    cost_weight = 0.3

    def __init__(self, child, child_schema, schema, props, *, bounds, **kw):
        super().__init__(child, child_schema, schema, props, **kw)
        self.bounds = bounds

    def details(self) -> str:
        return ",".join(f"{d}[{lo}:{hi}]" for d, lo, hi in self.bounds)

    def _apply(self, arr):
        return ops.slice_array(arr, self.bounds)


class PhysChunkedShift(_ChunkedOp):
    cost_weight = 0.3

    def __init__(self, child, child_schema, schema, props, *, dim, offset, **kw):
        super().__init__(child, child_schema, schema, props, **kw)
        self.dim = dim
        self.offset = offset

    def details(self) -> str:
        return f"{self.dim}{self.offset:+d}"

    def _apply(self, arr):
        return ops.shift_array(arr, self.dim, self.offset)


class PhysChunkedTranspose(_ChunkedOp):
    def __init__(self, child, child_schema, schema, props, *, order, **kw):
        super().__init__(child, child_schema, schema, props, **kw)
        self.order = order

    def details(self) -> str:
        return ",".join(self.order)

    def _apply(self, arr):
        return ops.transpose_array(arr, self.order, self.schema)


class PhysChunkedFilter(_ChunkedOp):
    stage = "filter"

    def __init__(self, child, child_schema, schema, props, *, predicate, **kw):
        super().__init__(child, child_schema, schema, props, **kw)
        self.predicate = predicate

    def details(self) -> str:
        return repr(self.predicate)

    def _apply(self, arr):
        return ops.filter_array(
            arr, self.predicate, self.child_schema, workers=self.workers
        )


class PhysChunkedExtend(_ChunkedOp):
    stage = "extend"

    def __init__(
        self, child, child_schema, schema, props, *, names, exprs, **kw
    ):
        super().__init__(child, child_schema, schema, props, **kw)
        self.names = names
        self.exprs = exprs

    def details(self) -> str:
        return ",".join(f"{n}={e!r}" for n, e in zip(self.names, self.exprs))

    def _apply(self, arr):
        return ops.extend_array(
            arr, self.names, self.exprs, self.child_schema, self.schema,
            workers=self.workers,
        )


class PhysChunkedProject(_ChunkedOp):
    cost_weight = 0.1

    def details(self) -> str:
        return ",".join(self.schema.names)

    def _apply(self, arr):
        return ops.project_array(arr, self.schema)


class PhysChunkedRename(_ChunkedOp):
    cost_weight = 0.0

    def __init__(self, child, child_schema, schema, props, *, mapping, **kw):
        super().__init__(child, child_schema, schema, props, **kw)
        self.mapping = mapping

    def details(self) -> str:
        return ",".join(f"{a}->{b}" for a, b in self.mapping)

    def _apply(self, arr):
        return ops.rename_array(arr, dict(self.mapping), self.schema)


class PhysChunkedRegrid(_ChunkedOp):
    stage = "regrid"

    def __init__(
        self, child, child_schema, schema, props, *, factors, aggs, **kw
    ):
        super().__init__(child, child_schema, schema, props, **kw)
        self.factors = factors
        self.aggs = aggs

    def details(self) -> str:
        return ",".join(f"{d}/{f}" for d, f in self.factors)

    def _apply(self, arr):
        return ops.regrid_array(
            arr, self.factors, self.aggs, self.child_schema, self.schema,
            self.chunk_side, workers=self.workers,
        )


class PhysChunkedWindow(_ChunkedOp):
    stage = "window"
    cost_weight = 3.0

    def __init__(self, child, child_schema, schema, props, *, sizes, aggs, **kw):
        super().__init__(child, child_schema, schema, props, **kw)
        self.sizes = sizes
        self.aggs = aggs

    def details(self) -> str:
        return ",".join(f"{d}±{r}" for d, r in self.sizes)

    def _apply(self, arr):
        return ops.window_array(
            arr, self.sizes, self.aggs, self.child_schema, self.schema
        )


class PhysChunkedReduceDims(_ChunkedOp):
    stage = "reduce"

    def __init__(self, child, child_schema, schema, props, *, keep, aggs, **kw):
        super().__init__(child, child_schema, schema, props, **kw)
        self.keep = keep
        self.aggs = aggs

    def details(self) -> str:
        return f"keep {','.join(self.keep) or '()'}"

    def _apply(self, arr):
        return ops.reduce_dims_array(
            arr, self.keep, self.aggs, self.child_schema, self.schema,
            self.chunk_side,
        )


class _ChunkedBinary(PhysOp):
    stage = "join"

    def __init__(
        self, left: PhysOp, right: PhysOp,
        left_schema: Schema, right_schema: Schema,
        schema: Schema, props: PhysProps, *, chunk_side: int,
    ):
        super().__init__(schema, props, (left, right))
        self.left_schema = left_schema
        self.right_schema = right_schema
        self.chunk_side = chunk_side

    def run(self, ctx: ExecContext) -> ChunkedArray:
        left = as_chunked(
            self._children[0].run(ctx), self.left_schema, self.chunk_side
        )
        right = as_chunked(
            self._children[1].run(ctx), self.right_schema, self.chunk_side
        )
        started = time.perf_counter()
        result = self._apply(left, right)
        ctx.record(self.stage, started)
        return result

    def _apply(self, left, right):
        raise NotImplementedError


class PhysChunkedCellJoin(_ChunkedBinary):
    def _apply(self, left, right):
        return ops.cell_join_arrays(left, right, self.schema, self.chunk_side)


class PhysChunkedMatMul(_ChunkedBinary):
    stage = "matmul"
    cost_weight = 5.0

    def _apply(self, left, right):
        return ops.matmul_arrays(left, right, self.schema, self.chunk_side)


# -- control iteration --------------------------------------------------------------


def arrays_converged(
    stop: A.Convergence, old: Any, new: Any
) -> bool:
    """Region-aligned convergence test between two chunked loop states."""
    if stop.value_attr is None:
        return False
    old_arr = old if isinstance(old, ChunkedArray) else None
    new_arr = new if isinstance(new, ChunkedArray) else None
    if old_arr is None or new_arr is None:
        return False
    if old_arr.cell_count != new_arr.cell_count:
        return False
    if old_arr.cell_count == 0:
        return True
    olo, ohi = old_arr.bounding_box()
    nlo, nhi = new_arr.bounding_box()
    lo = tuple(min(a, b) for a, b in zip(olo, nlo))
    hi = tuple(max(a, b) for a, b in zip(ohi, nhi))
    op, ov, om = old_arr.get_region(lo, hi)
    np_, nv, nm = new_arr.get_region(lo, hi)
    if not np.array_equal(op, np_):
        return False
    attr = stop.value_attr
    omask = om[attr] if om[attr] is not None else np.zeros_like(op)
    nmask = nm[attr] if nm[attr] is not None else np.zeros_like(op)
    if not np.array_equal(omask & op, nmask & op):
        return False
    valid = op & ~omask
    deltas = np.abs(
        nv[attr][valid].astype(np.float64) - ov[attr][valid].astype(np.float64)
    )
    if deltas.size == 0:
        return True
    delta = float(deltas.max()) if stop.norm == "linf" else float(deltas.sum())
    return delta <= stop.tolerance


class PhysChunkedIterate(PhysOp):
    """In-engine convergence loop with chunked-array state."""

    def __init__(
        self, init: PhysOp, body: PhysOp, var: str, stop: A.Convergence,
        max_iter: int, strict: bool, state_schema: Schema,
        schema: Schema, props: PhysProps, *, chunk_side: int,
    ):
        super().__init__(schema, props, (init, body))
        self.var = var
        self.stop = stop
        self.max_iter = max_iter
        self.strict = strict
        self.state_schema = state_schema
        self.chunk_side = chunk_side
        self.cost_weight = float(min(max_iter, 20))

    def details(self) -> str:
        stop = (
            f"|{self.stop.value_attr}|_{self.stop.norm}"
            f"<={self.stop.tolerance}"
            if self.stop.value_attr is not None else "fixed"
        )
        return f"{self.var} x{self.max_iter} until {stop}"

    def _coerce(self, value: Any) -> Any:
        if self.state_schema.dimensions:
            return as_chunked(value, self.state_schema, self.chunk_side)
        return value

    def run(self, ctx: ExecContext) -> Any:
        state = self._coerce(self._children[0].run(ctx))
        for _ in range(self.max_iter):
            inner = ctx.bind(self.var, state)
            new_state = self._coerce(self._children[1].run(inner))
            if arrays_converged(self.stop, state, new_state):
                return new_state
            state = new_state
        if self.stop.value_attr is not None and self.strict:
            raise ConvergenceError(
                f"Iterate did not converge within {self.max_iter} iterations"
            )
        return state


class PhysArrayResult(PhysOp):
    """Plan root: convert the final chunked array back to COO table form."""

    cost_weight = 0.0

    def run(self, ctx: ExecContext) -> ColumnTable:
        result = self._children[0].run(ctx)
        if isinstance(result, ChunkedArray):
            return result.to_table()
        return result

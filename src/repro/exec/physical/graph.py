"""Physical operators for the graph-analytics engine family.

The graph provider's only specialized physical operator is
:class:`PhysPageRank`: a PageRank-shaped ``Iterate`` (recognized by
:func:`repro.graph.queries.match_pagerank` at lowering time) running on
CSR adjacency with the vectorized kernel.  One input to the decision —
whether the tree's teleport constant equals ``(1-d)/n`` — depends on the
*data* (the vertex count), so the operator carries a lowered generic plan
as its fallback and re-checks that single condition at run time.
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from ...core.schema import Schema
from ...core.types import DType
from ...graph.algorithms import pagerank as native_pagerank
from ...graph.csr import CSRGraph
from ...storage.column import Column
from ...storage.table import ColumnTable
from .base import ExecContext, PhysOp, PhysProps

__all__ = ["PhysPageRank"]


class PhysPageRank(PhysOp):
    """A recognized PageRank loop on CSR adjacency (native kernel).

    Children are the lowered ``vertices`` and ``edges`` plans; ``fallback``
    is the lowered generic iteration used when the runtime teleport check
    fails.  ``provider`` (when given) has its ``stats_native_hits`` bumped
    on each native execution.
    """

    cost_weight = 0.05  # the whole reason the graph server exists

    def __init__(
        self,
        vertices: PhysOp,
        edges: PhysOp,
        spec: Any,  # repro.graph.queries.PageRankSpec
        fallback: PhysOp,
        schema: Schema,
        props: PhysProps,
        provider: Any = None,
    ):
        super().__init__(schema, props, (vertices, edges))
        self.spec = spec
        self.fallback = fallback
        self.provider = provider

    def details(self) -> str:
        return (
            f"damping={self.spec.damping} tol={self.spec.tolerance} "
            f"x{self.spec.max_iter}"
        )

    def run(self, ctx: ExecContext) -> ColumnTable:
        vertices = self._children[0].run(ctx)
        edges = self._children[1].run(ctx)
        vertex_ids = vertices.array("v").astype(np.int64)
        n = len(vertex_ids)
        if n == 0:
            if self.provider is not None:
                self.provider.stats_native_hits += 1
            return ColumnTable.empty(self.schema)
        # teleport must equal (1 - d) / n for the native kernel to apply —
        # the one part of the match that cannot be checked at lowering time
        if abs(self.spec.teleport - (1.0 - self.spec.damping) / n) > 1e-12:
            return self.fallback.run(ctx)
        if self.provider is not None:
            self.provider.stats_native_hits += 1
        started = time.perf_counter()
        graph = CSRGraph.from_edge_table(edges)
        ranks_compact, _ = native_pagerank(
            graph,
            damping=self.spec.damping,
            tolerance=self.spec.tolerance,
            max_iter=self.spec.max_iter,
        )
        # map compact ids back to the caller's vertex ids; vertices with no
        # edges at all never entered the CSR and hold the teleport rank
        rank_by_id = dict(zip(graph.vertex_ids.tolist(), ranks_compact.tolist()))
        teleport = (1.0 - self.spec.damping) / n
        ranks = np.array(
            [rank_by_id.get(int(v), teleport) for v in vertex_ids]
        )
        result = ColumnTable(self.schema, {
            "v": Column(DType.INT64, vertex_ids.copy()),
            "rank": Column(DType.FLOAT64, ranks),
        })
        ctx.record("pagerank", started)
        return result

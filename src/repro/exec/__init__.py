"""Physical execution layer: compiled expressions, fused pipelines, morsels.

The logical algebra (:mod:`repro.core.algebra`) stays pure structure; this
package is what providers *lower* optimized trees into before running them:

* :mod:`repro.exec.compile` — turns scalar ``Expr`` trees into reusable
  closures over numpy arrays, memoized on the expression's structural key,
  so repeated executions (and every iteration of ``Iterate``) skip AST
  walking and type inference.
* :mod:`repro.exec.pipeline` — collapses maximal Filter/Project/Extend/
  Rename chains into one fused operator that evaluates every predicate and
  derived column in a single vectorized pass per batch, with no
  intermediate ``ColumnTable`` materialization between the steps.
* :mod:`repro.exec.morsel` — splits a fused pipeline over a base table into
  row-range morsels executed on a thread pool (numpy releases the GIL) with
  a deterministic, order-preserving merge.
* :mod:`repro.exec.kernels` — vectorized join & aggregation kernels over
  dense int64 key codes: multi-column/string/nullable key encoding, all
  join kinds via sort+searchsorted with a morsel-parallel probe, and
  partial group aggregates whose parallel merge is bit-identical to serial.
"""

from .compile import (
    CompiledExpr,
    clear_expr_cache,
    compile_expr,
    expr_cache_stats,
    expr_key,
)
from .kernels import (
    encode_group_keys,
    encode_keys,
    grouped_count,
    grouped_min_max,
    grouped_string_min_max,
    grouped_sum_exact,
    grouped_sum_float,
    join_on_codes,
    partition_ranges,
)
from .morsel import morsel_ranges, parallel_map, run_pipeline_morsels
from .pipeline import FusedPipeline, pipeline_key

__all__ = [
    "CompiledExpr",
    "FusedPipeline",
    "clear_expr_cache",
    "compile_expr",
    "encode_group_keys",
    "encode_keys",
    "expr_cache_stats",
    "expr_key",
    "grouped_count",
    "grouped_min_max",
    "grouped_string_min_max",
    "grouped_sum_exact",
    "grouped_sum_float",
    "join_on_codes",
    "morsel_ranges",
    "parallel_map",
    "partition_ranges",
    "pipeline_key",
    "run_pipeline_morsels",
]

"""Physical execution layer: compiled expressions, fused pipelines, morsels.

The logical algebra (:mod:`repro.core.algebra`) stays pure structure; this
package is what providers *lower* optimized trees into before running them:

* :mod:`repro.exec.compile` — turns scalar ``Expr`` trees into reusable
  closures over numpy arrays, memoized on the expression's structural key,
  so repeated executions (and every iteration of ``Iterate``) skip AST
  walking and type inference.
* :mod:`repro.exec.pipeline` — collapses maximal Filter/Project/Extend/
  Rename chains into one fused operator that evaluates every predicate and
  derived column in a single vectorized pass per batch, with no
  intermediate ``ColumnTable`` materialization between the steps.
* :mod:`repro.exec.morsel` — splits a fused pipeline over a base table into
  row-range morsels executed on a thread pool (numpy releases the GIL) with
  a deterministic, order-preserving merge.
"""

from .compile import (
    CompiledExpr,
    clear_expr_cache,
    compile_expr,
    expr_cache_stats,
    expr_key,
)
from .morsel import morsel_ranges, parallel_map, run_pipeline_morsels
from .pipeline import FusedPipeline, pipeline_key

__all__ = [
    "CompiledExpr",
    "FusedPipeline",
    "clear_expr_cache",
    "compile_expr",
    "expr_cache_stats",
    "expr_key",
    "morsel_ranges",
    "parallel_map",
    "pipeline_key",
    "run_pipeline_morsels",
]

"""Fused pipelines: one vectorized pass over maximal fusible operator chains.

The logical engine executes one operator at a time, materializing a full
``ColumnTable`` between every step.  A :class:`FusedPipeline` instead takes
a maximal Filter/Project/Extend/Rename chain (as identified by
:func:`repro.core.rewriter.split_fusible_chain`) and runs it as a single
physical operator over a bare ``{name: Column}`` mapping:

* **no intermediate tables** — steps pass the column dict through; schema
  revalidation happens once, at the final output;
* **liveness pruning** — a backward pass computes which columns each step
  actually needs, so filters compress only live columns and Extend skips
  derived columns nothing downstream reads;
* **lazy filter compression** — a filter that keeps every row leaves the
  (possibly zero-copy) input columns untouched.

Pipelines are pure functions of their input columns, which is what makes
the morsel-parallel driver (:mod:`repro.exec.morsel`) safe: the same
pipeline object runs concurrently over disjoint row ranges.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from ..core import algebra as A
from ..core.errors import ExecutionError
from ..storage.column import Column
from ..storage.table import ColumnTable
from .compile import compile_expr, expr_key

#: A step maps (columns-by-name, row count) -> (columns-by-name, row count).
Step = Callable[[dict[str, Column], int], "tuple[dict[str, Column], int]"]


def pipeline_key(chain: Sequence[A.Node]) -> tuple:
    """Structural identity of a fusible chain (for physical-plan caches).

    Two chains with the same key lower to the same pipeline given the same
    source schema; callers combine this with a schema fingerprint.
    """
    parts: list[tuple] = []
    for node in chain:
        if isinstance(node, A.Filter):
            parts.append(("filter", expr_key(node.predicate)))
        elif isinstance(node, A.Project):
            parts.append(("project", tuple(node.names)))
        elif isinstance(node, A.Extend):
            parts.append((
                "extend",
                tuple(node.names),
                tuple(expr_key(e) for e in node.exprs),
            ))
        elif isinstance(node, A.Rename):
            parts.append(("rename", tuple(node.mapping)))
        else:
            raise ExecutionError(
                f"{node.op_name} is not fusible; cannot key a pipeline on it"
            )
    return tuple(parts)


class FusedPipeline:
    """A compiled physical operator for one fusible chain.

    ``chain`` lists the logical nodes top-first (``chain[0]`` produces the
    output, ``chain[-1]`` reads the source).  ``compiled=False`` falls back
    to the interpreted expression walker inside each step — the fused-but-
    uncompiled corner of the E12 ablation.
    """

    __slots__ = ("chain", "out_schema", "source_live", "steps")

    def __init__(self, chain: Sequence[A.Node], *, compiled: bool = True):
        if not chain:
            raise ExecutionError("cannot fuse an empty chain")
        self.chain = list(chain)
        self.out_schema = self.chain[0].schema

        # Backward liveness: live_after[i] = columns consumed above chain[i].
        live: set[str] = set(self.out_schema.names)
        live_after: list[set[str]] = []
        for node in self.chain:
            live_after.append(set(live))
            live = _live_in(node, live)
        self.source_live = tuple(
            n for n in self.chain[-1].child.schema.names if n in live
        )

        # Steps run bottom-up: steps[0] executes chain[-1].
        self.steps: list[Step] = [
            _build_step(node, live_after[i], compiled)
            for i, node in reversed(list(enumerate(self.chain)))
        ]

    def run_columns(
        self, cols: Mapping[str, Column], n: int
    ) -> tuple[dict[str, Column], int]:
        """Run over bare columns (the morsel path); no table validation."""
        out = dict(cols)
        for step in self.steps:
            out, n = step(out, n)
        return out, n

    def run(self, table: ColumnTable) -> ColumnTable:
        """Run over a source table, producing the chain's output table."""
        cols = {name: table.columns[name] for name in self.source_live}
        out, _ = self.run_columns(cols, table.num_rows)
        return ColumnTable(self.out_schema, out)


# --------------------------------------------------------------------------
# Liveness
# --------------------------------------------------------------------------


def _live_in(node: A.Node, live_after: set[str]) -> set[str]:
    """Columns a step needs from its input, given what survives above it."""
    if isinstance(node, A.Filter):
        return live_after | node.predicate.columns()
    if isinstance(node, A.Project):
        return live_after & set(node.names)
    if isinstance(node, A.Extend):
        live = live_after - set(node.names)
        for name, expr in zip(node.names, node.exprs):
            if name in live_after:
                live |= expr.columns()
        return live
    if isinstance(node, A.Rename):
        inverse = {new: old for old, new in node.mapping}
        return {inverse.get(name, name) for name in live_after}
    raise ExecutionError(f"{node.op_name} is not fusible")


# --------------------------------------------------------------------------
# Step construction
# --------------------------------------------------------------------------


def _build_step(node: A.Node, live_after: set[str], compiled: bool) -> Step:
    # deterministic column order: follow the node's output schema
    out_names = tuple(n for n in node.schema.names if n in live_after)

    if isinstance(node, A.Filter):
        evaluate = _make_evaluator(node.predicate, node.child.schema, compiled)

        def filter_step(cols: dict[str, Column], n: int):
            pred = evaluate(cols, n)
            keep = pred.values.astype(bool, copy=False)
            if pred.mask is not None:
                keep = keep & ~pred.mask  # null predicate drops the row
            kept = int(np.count_nonzero(keep))
            if kept == n:  # fully-selective: keep the input views untouched
                return {name: cols[name] for name in out_names}, n
            return {name: cols[name].filter(keep) for name in out_names}, kept

        return filter_step

    if isinstance(node, A.Project):

        def project_step(cols: dict[str, Column], n: int):
            return {name: cols[name] for name in out_names}, n

        return project_step

    if isinstance(node, A.Extend):
        # derived columns nothing downstream reads are never evaluated
        evaluators = [
            (name, _make_evaluator(expr, node.child.schema, compiled))
            for name, expr in zip(node.names, node.exprs)
            if name in live_after
        ]

        def extend_step(cols: dict[str, Column], n: int):
            derived = {name: ev(cols, n) for name, ev in evaluators}
            out = {}
            for name in out_names:  # exprs see the input columns only
                out[name] = derived[name] if name in derived else cols[name]
            return out, n

        return extend_step

    if isinstance(node, A.Rename):
        forward = dict(node.mapping)

        def rename_step(cols: dict[str, Column], n: int):
            renamed = {forward.get(name, name): c for name, c in cols.items()}
            return {name: renamed[name] for name in out_names}, n

        return rename_step

    raise ExecutionError(f"{node.op_name} is not fusible")


def _make_evaluator(expr, schema, compiled: bool):
    """An (cols, n) -> Column evaluator for one scalar expression."""
    needed = tuple(n for n in schema.names if n in expr.columns())
    if compiled or not needed:
        # constant expressions always use the compiled kernel: the
        # interpreted walker derives the row count from its input table,
        # which a zero-column carrier cannot convey
        compiled_expr = compile_expr(expr, schema)
        return compiled_expr.evaluate_columns

    # interpreted fallback: rebuild a minimal table for the legacy walker
    from ..relational.eval import eval_vector

    sub_schema = schema.project(needed)

    def interpret(cols: Mapping[str, Column], n: int) -> Column:
        table = ColumnTable(sub_schema, {name: cols[name] for name in needed})
        return eval_vector(expr, table, compiled=False)

    return interpret

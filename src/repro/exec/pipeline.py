"""Fused pipelines: one vectorized pass over maximal fusible operator chains.

The logical engine executes one operator at a time, materializing a full
``ColumnTable`` between every step.  A :class:`FusedPipeline` instead takes
a maximal Filter/Project/Extend/Rename chain (as identified by
:func:`repro.core.rewriter.split_fusible_chain`) and runs it as a single
physical operator over a bare ``{name: Column}`` mapping:

* **no intermediate tables** — steps pass pipeline state through; schema
  revalidation happens once, at the final output;
* **liveness pruning** — a backward pass computes which columns each step
  actually needs, so Extend skips derived columns nothing downstream reads;
* **late materialization** — filters narrow a *selection vector* instead of
  gathering every live column.  Source columns are gathered at most once,
  on first use (a predicate input, an Extend input, or the final output),
  so a chain of filters over a wide table compresses one int array per
  step instead of every surviving column.

The selection vector is an int64 row-index array into the source columns
(``None`` = all rows).  ``flatnonzero`` on the first filter and fancy
indexing on later ones compose to exactly the boolean-compression result,
so outputs are bit-identical to the eager path.

Pipelines are pure functions of their input columns, which is what makes
the morsel-parallel driver (:mod:`repro.exec.morsel`) safe: the same
pipeline object runs concurrently over disjoint row ranges; all per-run
state lives in a private :class:`_State`.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from ..core import algebra as A
from ..core.errors import ExecutionError
from ..storage.column import Column
from ..storage.table import ColumnTable
from .compile import compile_expr, expr_key

#: A step mutates the per-run pipeline state in place.
Step = Callable[["_State"], None]


def pipeline_key(chain: Sequence[A.Node]) -> tuple:
    """Structural identity of a fusible chain (for physical-plan caches).

    Two chains with the same key lower to the same pipeline given the same
    source schema; callers combine this with a schema fingerprint.
    """
    parts: list[tuple] = []
    for node in chain:
        if isinstance(node, A.Filter):
            parts.append(("filter", expr_key(node.predicate)))
        elif isinstance(node, A.Project):
            parts.append(("project", tuple(node.names)))
        elif isinstance(node, A.Extend):
            parts.append((
                "extend",
                tuple(node.names),
                tuple(expr_key(e) for e in node.exprs),
            ))
        elif isinstance(node, A.Rename):
            parts.append(("rename", tuple(node.mapping)))
        else:
            raise ExecutionError(
                f"{node.op_name} is not fusible; cannot key a pipeline on it"
            )
    return tuple(parts)


class _State:
    """Per-run pipeline state: full-length source columns plus a selection.

    ``base`` maps current column names to *full-length* input columns;
    ``sel`` is the selection vector into them (``None`` = identity);
    ``derived`` maps names to selection-length columns — Extend outputs and
    gathered base columns are cached here so no column is gathered twice.
    """

    __slots__ = ("base", "derived", "sel", "n")

    def __init__(self, base: dict[str, Column], n: int):
        self.base = base
        self.derived: dict[str, Column] = {}
        self.sel: np.ndarray | None = None
        self.n = n

    def get(self, name: str) -> Column:
        """The selection-length column for ``name``, gathering lazily."""
        col = self.derived.get(name)
        if col is not None:
            return col
        col = self.base[name]
        if self.sel is not None:
            col = col.take(self.sel)
            self.derived[name] = col
        return col


class FusedPipeline:
    """A compiled physical operator for one fusible chain.

    ``chain`` lists the logical nodes top-first (``chain[0]`` produces the
    output, ``chain[-1]`` reads the source).  ``compiled=False`` falls back
    to the interpreted expression walker inside each step — the fused-but-
    uncompiled corner of the E12 ablation.
    """

    __slots__ = ("chain", "out_schema", "source_live", "steps")

    def __init__(self, chain: Sequence[A.Node], *, compiled: bool = True):
        if not chain:
            raise ExecutionError("cannot fuse an empty chain")
        self.chain = list(chain)
        self.out_schema = self.chain[0].schema

        # Backward liveness: live_after[i] = columns consumed above chain[i].
        live: set[str] = set(self.out_schema.names)
        live_after: list[set[str]] = []
        for node in self.chain:
            live_after.append(set(live))
            live = _live_in(node, live)
        self.source_live = tuple(
            n for n in self.chain[-1].child.schema.names if n in live
        )

        # Steps run bottom-up: steps[0] executes chain[-1].
        self.steps: list[Step] = [
            _build_step(node, live_after[i], compiled)
            for i, node in reversed(list(enumerate(self.chain)))
        ]

    def run_columns(
        self, cols: Mapping[str, Column], n: int
    ) -> tuple[dict[str, Column], int]:
        """Run over bare columns (the morsel path); no table validation."""
        state = _State(dict(cols), n)
        for step in self.steps:
            step(state)
        # late materialization: only the output columns are ever gathered
        out = {name: state.get(name) for name in self.out_schema.names}
        return out, state.n

    def run(self, table: ColumnTable) -> ColumnTable:
        """Run over a source table, producing the chain's output table."""
        cols = {name: table.columns[name] for name in self.source_live}
        out, _ = self.run_columns(cols, table.num_rows)
        return ColumnTable(self.out_schema, out)


# --------------------------------------------------------------------------
# Liveness
# --------------------------------------------------------------------------


def _live_in(node: A.Node, live_after: set[str]) -> set[str]:
    """Columns a step needs from its input, given what survives above it."""
    if isinstance(node, A.Filter):
        return live_after | node.predicate.columns()
    if isinstance(node, A.Project):
        return live_after & set(node.names)
    if isinstance(node, A.Extend):
        live = live_after - set(node.names)
        for name, expr in zip(node.names, node.exprs):
            if name in live_after:
                live |= expr.columns()
        return live
    if isinstance(node, A.Rename):
        inverse = {new: old for old, new in node.mapping}
        return {inverse.get(name, name) for name in live_after}
    raise ExecutionError(f"{node.op_name} is not fusible")


# --------------------------------------------------------------------------
# Step construction
# --------------------------------------------------------------------------


def _build_step(node: A.Node, live_after: set[str], compiled: bool) -> Step:
    if isinstance(node, A.Filter):
        needed, evaluate = _make_evaluator(
            node.predicate, node.child.schema, compiled
        )

        def filter_step(state: _State) -> None:
            pred = evaluate({name: state.get(name) for name in needed}, state.n)
            keep = pred.values.astype(bool, copy=False)
            if pred.mask is not None:
                keep = keep & ~pred.mask  # null predicate drops the row
            kept = int(np.count_nonzero(keep))
            if kept == state.n:  # fully-selective: selection unchanged
                return
            # narrow the selection vector; only already-materialized
            # (derived / gathered) columns compress — base columns wait
            if state.sel is None:
                state.sel = np.flatnonzero(keep)
            else:
                state.sel = state.sel[keep]
            if state.derived:
                state.derived = {
                    name: c.filter(keep) for name, c in state.derived.items()
                }
            state.n = kept

        return filter_step

    if isinstance(node, A.Project):
        kept_names = frozenset(node.names)

        def project_step(state: _State) -> None:
            # dropping dead entries keeps later Rename/Extend names unique
            state.base = {
                k: v for k, v in state.base.items() if k in kept_names
            }
            state.derived = {
                k: v for k, v in state.derived.items() if k in kept_names
            }

        return project_step

    if isinstance(node, A.Extend):
        # derived columns nothing downstream reads are never evaluated
        evaluators = [
            (name, *_make_evaluator(expr, node.child.schema, compiled))
            for name, expr in zip(node.names, node.exprs)
            if name in live_after
        ]

        def extend_step(state: _State) -> None:
            new = [  # exprs see the input columns only: evaluate all first
                (name, ev({c: state.get(c) for c in needed}, state.n))
                for name, needed, ev in evaluators
            ]
            for name, col in new:
                state.derived[name] = col
                state.base.pop(name, None)  # redefinition shadows the input

        return extend_step

    if isinstance(node, A.Rename):
        forward = dict(node.mapping)

        def rename_step(state: _State) -> None:
            state.base = {
                forward.get(k, k): v for k, v in state.base.items()
            }
            if state.derived:
                state.derived = {
                    forward.get(k, k): v for k, v in state.derived.items()
                }

        return rename_step

    raise ExecutionError(f"{node.op_name} is not fusible")


def _make_evaluator(expr, schema, compiled: bool):
    """``(needed_names, (cols, n) -> Column)`` for one scalar expression."""
    needed = tuple(n for n in schema.names if n in expr.columns())
    if compiled or not needed:
        # constant expressions always use the compiled kernel: the
        # interpreted walker derives the row count from its input table,
        # which a zero-column carrier cannot convey
        compiled_expr = compile_expr(expr, schema)
        return needed, compiled_expr.evaluate_columns

    # interpreted fallback: rebuild a minimal table for the legacy walker
    from ..relational.eval import eval_vector

    sub_schema = schema.project(needed)

    def interpret(cols: Mapping[str, Column], n: int) -> Column:
        table = ColumnTable(sub_schema, {name: cols[name] for name in needed})
        return eval_vector(expr, table, compiled=False)

    return needed, interpret

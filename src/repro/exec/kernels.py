"""Vectorized join & aggregation kernels.

The relational operators that PR 1 left on Python hot loops — multi-key /
string / nullable joins and the scatter side of GROUP BY — run here as
numpy kernels over *dense int64 key codes*:

* **Key encoding** (:func:`encode_keys`).  Arbitrary multi-column keys
  (ints, floats, bools, strings, with nulls) are factorized into one int64
  code per row, jointly across both join sides so equal keys share a code.
  Numeric columns encode via ``np.unique`` (C sort), strings via a single
  dict-intern pass (one C-dispatched generator, no per-row tuple
  construction), multi-column codes combine positionally with overflow-safe
  re-densification.  Rows whose key contains a null (or float NaN, which
  never equals itself) are flagged invalid and never match.
* **Code joins** (:func:`join_on_codes`).  Every join kind — inner, left,
  full, semi, anti — runs as sort + binary search over the codes, with the
  probe side optionally split into morsels executed on the shared thread
  pool.  Morsel boundaries are a pure function of the probe row count and
  the merge preserves range order, so the gather arrays are bit-identical
  for every worker count (pure integer arithmetic; no float reductions).
* **Partial aggregates** (``grouped_*``).  Group aggregation decomposes
  into per-morsel partials (count / sum / min / max / string-extreme)
  merged in morsel order.  The decomposition depends only on the row
  count, group count and morsel size — never on the worker count — so any
  parallelism yields exactly the serial merge's bits.

These kernels are deliberately storage-layer-only (``Column`` in, numpy
out): :mod:`repro.relational.joins` and :mod:`repro.relational.aggregation`
are thin algebra-aware wrappers over them.
"""

from __future__ import annotations

import functools
from typing import Sequence

import numpy as np

from ..core.types import DType
from ..storage.column import Column
from .morsel import DEFAULT_MORSEL_SIZE, morsel_ranges, parallel_map

#: headroom bound for positional code combination: densify before the
#: product of per-column cardinalities could overflow int64
_CODE_LIMIT = np.iinfo(np.int64).max // 2


# --------------------------------------------------------------------------
# Key encoding
# --------------------------------------------------------------------------


def _string_codes(values: np.ndarray) -> tuple[np.ndarray, int]:
    """Factorize a string column via per-row ``hash()`` plus a sort.

    One C-dispatched ``map(hash, ...)`` pass, an int64 argsort, and a
    cumsum over run boundaries — roughly 2x faster than a dict-intern loop
    and an order of magnitude faster than sorting the strings themselves.
    Correctness does not rest on hashes being collision-free: rows that
    share a hash are verified string-equal against their sorted neighbors
    (equality within a run is transitive), and a genuine 64-bit collision
    between distinct strings falls back to the exact dict-intern pass.
    """
    n = len(values)
    if n == 0:
        return np.empty(0, dtype=np.int64), 0
    hashes = np.fromiter(map(hash, values), dtype=np.int64, count=n)
    order = np.argsort(hashes)
    sorted_hashes = hashes[order]
    new_run = np.empty(n, dtype=bool)
    new_run[0] = True
    np.not_equal(sorted_hashes[1:], sorted_hashes[:-1], out=new_run[1:])
    if not new_run.all():
        neighbors = values[order]
        if not bool(np.all((neighbors[1:] == neighbors[:-1]) | new_run[1:])):
            interned: dict = {}
            codes = np.fromiter(
                (interned.setdefault(v, len(interned)) for v in values),
                dtype=np.int64, count=n,
            )
            return codes, len(interned)
    run_ids = np.cumsum(new_run) - np.int64(1)
    codes = np.empty(n, dtype=np.int64)
    codes[order] = run_ids
    return codes, int(run_ids[-1]) + 1


def _dense_codes(
    values: np.ndarray, dtype: DType, raw_ok: bool
) -> tuple[np.ndarray, int | None]:
    """Factorize one column's values into int64 codes.

    Returns ``(codes, cardinality)``; equal values share a code.  With
    ``raw_ok`` a lone int64 column keeps its raw values (order-preserving
    and already comparable — no unique pass needed when nothing combines).
    """
    if dtype is DType.INT64 and raw_ok:
        return values, None
    if dtype is DType.BOOL:
        return values.astype(np.int64), 2
    if dtype is DType.STRING:
        return _string_codes(values)
    uniq, inverse = np.unique(values, return_inverse=True)
    return inverse.astype(np.int64, copy=False).reshape(-1), len(uniq)


def _dict_key_codes(cols: Sequence[Column]) -> tuple[np.ndarray, int] | None:
    """Joint codes for one key position when every column is dict-encoded.

    Dictionary-encoded strings already carry order-preserving codes, so
    equality joins never need to hash the row values: columns sharing one
    dictionary object (chunk slices of one stored column) use their codes
    directly, and columns with different dictionaries remap through the
    merged sorted dictionary — hashing ``O(|dict|)`` strings instead of
    ``O(rows)``.  Returns None when any column is plain (mixed encodings
    fall back to value hashing).
    """
    dicts = [getattr(c, "dictionary", None) for c in cols]
    if any(d is None for d in dicts):
        return None
    first = dicts[0]
    if all(d is first for d in dicts):
        codes = (
            cols[0].codes if len(cols) == 1  # type: ignore[attr-defined]
            else np.concatenate([c.codes for c in cols])  # type: ignore[attr-defined]
        )
        return codes, len(first)
    merged = np.unique(np.concatenate(dicts))
    remaps = [np.searchsorted(merged, d) for d in dicts]
    codes = np.concatenate([
        remap[c.codes].astype(np.int64, copy=False)  # type: ignore[attr-defined]
        for remap, c in zip(remaps, cols)
    ])
    return codes, len(merged)


def _combine_codes(
    combined: np.ndarray, combined_card: int, codes: np.ndarray, card: int
) -> tuple[np.ndarray, int]:
    """Fold one more column into the positional code: ``c*card + code``."""
    card = max(card, 1)
    if combined_card > _CODE_LIMIT // card:
        uniq, inverse = np.unique(combined, return_inverse=True)
        combined = inverse.astype(np.int64, copy=False).reshape(-1)
        combined_card = max(len(uniq), 1)
    return combined * card + codes, combined_card * card


def _fold_codes(
    combined: np.ndarray | None, combined_card: int, codes: np.ndarray, card: int
) -> tuple[np.ndarray, int]:
    """Fold the next column's codes into the running combination."""
    if combined is None:
        return codes, card
    return _combine_codes(combined, combined_card, codes, card)


def encode_keys(
    parts: Sequence[Sequence[Column]],
) -> tuple[list[np.ndarray], list[np.ndarray], int | None]:
    """Jointly factorize multi-column keys from one or more tables.

    ``parts`` holds one column list per table (same arity and dtypes
    across tables; join callers pass ``[left_keys, right_keys]``).
    Returns ``(codes, valid, card)`` split back per table: rows with equal
    key tuples get equal codes, and ``valid`` is False where the key
    contains a null or a float NaN (keys that must never match anything).
    ``card`` is an exclusive upper bound on the codes when one is known
    (None for a lone raw-int64 key); a small bound lets the join replace
    binary search with a direct per-code lookup table.
    """
    arity = len(parts[0])
    lengths = [len(cols[0]) if cols else 0 for cols in parts]
    offsets = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)
    total = int(offsets[-1])
    valid = np.ones(total, dtype=bool)
    combined: np.ndarray | None = None
    combined_card = 1
    for pos in range(arity):
        cols = [p[pos] for p in parts]
        for c, start in zip(cols, offsets):
            if c.mask is not None:
                valid[start:start + len(c)] &= ~c.mask
        encoded = (
            _dict_key_codes(cols) if cols[0].dtype is DType.STRING else None
        )
        if encoded is not None:
            codes, card = encoded
        else:
            values = (
                cols[0].values if len(cols) == 1
                else np.concatenate([c.values for c in cols])
            )
            if cols[0].dtype is DType.FLOAT64:
                nan = np.isnan(values)
                if nan.any():
                    valid &= ~nan
            codes, card = _dense_codes(
                values, cols[0].dtype, raw_ok=(arity == 1)
            )
        if combined is None:
            combined, combined_card = codes, card if card is not None else 1
        else:
            combined, combined_card = _combine_codes(
                combined, combined_card, codes, card or 1
            )
    assert combined is not None
    card = None if (arity == 1 and parts[0][0].dtype is DType.INT64) else combined_card
    split_codes = [combined[s:e] for s, e in zip(offsets, offsets[1:])]
    split_valid = [valid[s:e] for s, e in zip(offsets, offsets[1:])]
    return split_codes, split_valid, card


def encode_group_keys(columns: Sequence[Column]) -> np.ndarray:
    """Dense codes for GROUP BY keys (one int64 code per row).

    Unlike join encoding, a null is a *key*: all nulls in a column share
    one fresh code (null group keys form their own group).  Float NaN keeps
    its never-equals-itself semantics — every NaN row gets a distinct code,
    matching the Python-dict path this replaces (each NaN was its own
    tuple object, hence its own group).
    """
    combined: np.ndarray | None = None
    combined_card = 1
    for c in columns:
        dictionary = getattr(c, "dictionary", None)
        if dictionary is not None:
            # dict-encoded strings group by code: no hashing of row values
            codes, card = c.codes, max(len(dictionary), 1)  # type: ignore[attr-defined]
            if c.mask is not None:
                codes = codes.copy()  # the stored codes must not mutate
                codes[c.mask] = card
                card += 1
            combined, combined_card = _fold_codes(
                combined, combined_card, codes, card
            )
            continue
        codes, card = _dense_codes(c.values, c.dtype, raw_ok=False)
        card = card or 1
        if c.dtype is DType.FLOAT64:
            nan = np.isnan(c.values)
            if c.mask is not None:
                nan &= ~c.mask
            n_nan = int(nan.sum())
            if n_nan:
                codes[nan] = card + np.arange(n_nan, dtype=np.int64)
                card += n_nan
        if c.mask is not None:
            codes[c.mask] = card
            card += 1
        combined, combined_card = _fold_codes(
            combined, combined_card, codes, card
        )
    assert combined is not None
    return combined


# --------------------------------------------------------------------------
# Joins over codes
# --------------------------------------------------------------------------


def join_on_codes(
    lk: np.ndarray,
    rk: np.ndarray,
    lvalid: np.ndarray,
    rvalid: np.ndarray,
    how: str,
    *,
    card: int | None = None,
    workers: int = 1,
    morsel_size: int = DEFAULT_MORSEL_SIZE,
) -> tuple[np.ndarray, np.ndarray]:
    """Equi-join on encoded keys; returns ``(left_idx, right_idx)`` gathers.

    Build side: valid right rows sorted by code.  Probe side: one lookup
    per left row — a direct starts/counts table when ``card`` bounds the
    codes tightly enough, binary search otherwise — expanded
    morsel-parallel.  Invalid (null/NaN-key) rows never match: they still
    emit for left/full (left side) and full (right side) and count as
    non-matches for anti.  Left/full joins preserve left row order, with
    dangling rows padded in place (so a Limit above a left join sees the
    same prefix the reference interpreter produces).  Output is
    bit-identical for every worker count:
    morsel boundaries depend only on the probe length and the per-range
    results concatenate in range order.
    """
    n_left = len(lk)
    if rvalid.all():
        order = np.argsort(rk, kind="stable")
        sorted_rk = rk[order]
        right_map = order
    else:
        rpos = np.flatnonzero(rvalid)
        order = np.argsort(rk[rpos], kind="stable")
        sorted_rk = rk[rpos][order]
        right_map = rpos[order]
    l_all_valid = bool(lvalid.all())

    dense = card is not None and card <= 4 * (n_left + len(rk)) + 64
    if dense:
        # codes are dense: random binary searches become two gathers
        code_counts = np.bincount(sorted_rk, minlength=card)
        code_starts = np.cumsum(code_counts) - code_counts

    def counts_for(start: int, stop: int) -> tuple[np.ndarray, np.ndarray]:
        seg = lk[start:stop]
        if dense:
            lo = code_starts[seg]
            counts = code_counts[seg]
        else:
            lo = np.searchsorted(sorted_rk, seg, side="left")
            counts = np.searchsorted(sorted_rk, seg, side="right") - lo
        if not l_all_valid:
            counts[~lvalid[start:stop]] = 0  # null keys never match
        return lo, counts

    ranges = morsel_ranges(n_left, morsel_size) if workers != 1 else []
    if not ranges:
        ranges = [(0, n_left)]

    if how in ("semi", "anti"):
        hits = np.concatenate(parallel_map(
            lambda bounds: counts_for(*bounds)[1] > 0, ranges, workers
        ))
        wanted = hits if how == "semi" else ~hits
        return np.flatnonzero(wanted).astype(np.int64), np.empty(0, dtype=np.int64)

    def expand(bounds: tuple[int, int]):
        start, stop = bounds
        lo, counts = counts_for(start, stop)
        if how in ("left", "full"):
            # dangling left rows emit a -1 pad in place, preserving left
            # row order (Limit over a left join depends on it)
            out_counts = np.maximum(counts, 1)
        else:
            out_counts = counts
        total = int(out_counts.sum())
        left_part = np.repeat(np.arange(start, stop, dtype=np.int64), out_counts)
        starts = np.repeat(lo, out_counts)
        group_base = np.repeat(np.cumsum(out_counts) - out_counts, out_counts)
        gathers = starts + (np.arange(total, dtype=np.int64) - group_base)
        if how in ("left", "full"):
            matched = np.repeat(counts > 0, out_counts)
            if len(right_map):
                right_part = np.where(
                    matched, right_map[np.where(matched, gathers, 0)], -1
                )
            else:
                right_part = np.full(total, -1, dtype=np.int64)
        else:
            right_part = right_map[gathers]
        return left_part, right_part

    pieces = parallel_map(expand, ranges, workers)
    left_idx = np.concatenate([p[0] for p in pieces])
    right_idx = np.concatenate([p[1] for p in pieces])
    if how == "full":
        matched = np.zeros(len(rk), dtype=bool)
        matched[right_idx[right_idx >= 0]] = True
        dangling_right = np.flatnonzero(~matched).astype(np.int64)
        left_idx = np.concatenate([
            left_idx, np.full(len(dangling_right), -1, dtype=np.int64)
        ])
        right_idx = np.concatenate([right_idx, dangling_right])
    return left_idx, right_idx


# --------------------------------------------------------------------------
# Partial group aggregates
# --------------------------------------------------------------------------


def partition_ranges(
    n: int, num_groups: int, morsel_size: int = DEFAULT_MORSEL_SIZE
) -> list[tuple[int, int]]:
    """Row ranges for partial aggregation — a pure function of the data.

    Collapses to one range when partials cannot win: a single morsel, or so
    many groups that per-morsel partial arrays would dwarf the input.
    Worker count never enters, so results are scheduling-independent.
    """
    ranges = morsel_ranges(n, morsel_size)
    if len(ranges) <= 1 or num_groups * len(ranges) > 4 * max(n, 1):
        return [(0, n)]
    return ranges


def grouped_count(
    gids: np.ndarray,
    num_groups: int,
    ranges: Sequence[tuple[int, int]],
    workers: int = 1,
) -> np.ndarray:
    """Per-group row counts via per-morsel bincount partials (exact ints)."""
    parts = parallel_map(
        lambda b: np.bincount(gids[b[0]:b[1]], minlength=num_groups),
        ranges, workers,
    )
    return functools.reduce(np.add, parts).astype(np.int64)


def grouped_sum_float(
    gids: np.ndarray,
    values: np.ndarray,
    num_groups: int,
    ranges: Sequence[tuple[int, int]],
    workers: int = 1,
) -> np.ndarray:
    """Float64 per-group sums: bincount-weighted partials, merged in order.

    ``bincount`` accumulates in row order (same order as ``np.add.at``, an
    order of magnitude faster); the left-fold merge over morsel partials is
    fixed by the range order, so any worker count gives the same bits.
    """
    parts = parallel_map(
        lambda b: np.bincount(
            gids[b[0]:b[1]], weights=values[b[0]:b[1]], minlength=num_groups
        ),
        ranges, workers,
    )
    return functools.reduce(np.add, parts)


def grouped_sum_exact(
    gids: np.ndarray,
    values: np.ndarray,
    num_groups: int,
    np_dtype: np.dtype,
    ranges: Sequence[tuple[int, int]],
    workers: int = 1,
) -> np.ndarray:
    """Per-group sums in the accumulator's own dtype (exact for integers)."""

    def one(bounds: tuple[int, int]) -> np.ndarray:
        start, stop = bounds
        acc = np.zeros(num_groups, dtype=np_dtype)
        np.add.at(acc, gids[start:stop], values[start:stop])
        return acc

    return functools.reduce(np.add, parallel_map(one, ranges, workers))


def grouped_min_max(
    gids: np.ndarray,
    values: np.ndarray,
    num_groups: int,
    pick_min: bool,
    sentinel,
    ranges: Sequence[tuple[int, int]],
    workers: int = 1,
) -> np.ndarray:
    """Per-group min/max with a sentinel for empty groups (exact merge)."""
    op = np.minimum if pick_min else np.maximum

    def one(bounds: tuple[int, int]) -> np.ndarray:
        start, stop = bounds
        acc = np.full(num_groups, sentinel, dtype=values.dtype)
        op.at(acc, gids[start:stop], values[start:stop])
        return acc

    parts = parallel_map(one, ranges, workers)
    acc = parts[0]
    for part in parts[1:]:
        op(acc, part, out=acc)
    return acc


def grouped_string_min_max(
    values: np.ndarray,
    gids: np.ndarray,
    num_groups: int,
    pick_min: bool,
    ranges: Sequence[tuple[int, int]],
    workers: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-group lexicographic extreme of string values.

    Replaces the per-row Python compare loop with a per-morsel lexsort
    (sort by group id, tie-break by value; the run boundary rows are the
    extremes) and an elementwise partial merge.  Returns ``(best, present)``
    where ``present`` is False for groups with no value.
    """

    def one(bounds: tuple[int, int]) -> tuple[np.ndarray, np.ndarray]:
        start, stop = bounds
        v, g = values[start:stop], gids[start:stop]
        best = np.full(num_groups, "", dtype=object)
        present = np.zeros(num_groups, dtype=bool)
        if len(v) == 0:
            return best, present
        order = np.lexsort((v, g))
        g_sorted = g[order]
        starts = np.flatnonzero(
            np.concatenate([[True], g_sorted[1:] != g_sorted[:-1]])
        )
        if pick_min:
            pick = order[starts]
        else:
            ends = np.concatenate([starts[1:], [len(order)]]) - 1
            pick = order[ends]
        best[g_sorted[starts]] = v[pick]
        present[g_sorted[starts]] = True
        return best, present

    parts = parallel_map(one, ranges, workers)
    best, present = parts[0]
    for other_best, other_present in parts[1:]:
        better = (
            (other_best < best) if pick_min else (other_best > best)
        )
        take = other_present & (~present | better)
        best = np.where(take, other_best, best)
        present = present | other_present
    return best, present

"""Compiled scalar expressions: reusable closures over numpy arrays.

:func:`compile_expr` turns an :class:`~repro.core.expressions.Expr` AST into
a :class:`CompiledExpr` — a closure pipeline whose per-node dispatch
(isinstance chains, operator selection, dtype decisions) is resolved once at
compile time.  Results are memoized in a process-wide cache keyed on the
expression's *structural* key plus the dtypes of the columns it reads, so
the second execution of the same expression (including every iteration of an
``Iterate`` loop, and every morsel of a parallel scan) costs one dict
lookup.

Null semantics are identical to the interpreted path in
:mod:`repro.relational.eval`; the test suite cross-checks the two
property-style against the row-at-a-time reference interpreter.  String
operations skip masked (null) rows entirely instead of computing values
that the mask then discards.
"""

from __future__ import annotations

import threading
from typing import Callable, Mapping

import numpy as np

from ..core import expressions as E
from ..core.errors import ExecutionError
from ..core.schema import Schema
from ..core.types import DType
from ..storage.column import Column

#: A kernel maps (columns-by-name, row count) to (values, mask-or-None).
Kernel = Callable[[Mapping[str, Column], int], "tuple[np.ndarray, np.ndarray | None]"]


class CompiledExpr:
    """A compiled scalar expression: result dtype plus an evaluation kernel."""

    __slots__ = ("dtype", "kernel")

    def __init__(self, dtype: DType, kernel: Kernel):
        self.dtype = dtype
        self.kernel = kernel

    def evaluate_columns(self, cols: Mapping[str, Column], n: int) -> Column:
        """Evaluate over a bare column mapping (the fused-pipeline path)."""
        values, mask = self.kernel(cols, n)
        target = self.dtype.to_numpy()
        if values.dtype != target:
            values = values.astype(target)
        return Column(self.dtype, values, mask)

    def evaluate(self, table) -> Column:
        """Evaluate against every row of a ColumnTable."""
        return self.evaluate_columns(table.columns, table.num_rows)


# --------------------------------------------------------------------------
# Memoization
# --------------------------------------------------------------------------

_CACHE: dict[tuple, CompiledExpr] = {}
_LOCK = threading.Lock()
_MAX_ENTRIES = 4096
_HITS = 0
_MISSES = 0


def expr_key(expr: E.Expr) -> tuple:
    """Hashable structural identity of an expression tree.

    ``Expr.__eq__`` is overloaded as builder sugar (it constructs a BinOp),
    so expressions cannot be dict keys directly; this explicit key can.
    Literal values go through ``repr`` so ``nan`` keys stay stable.
    """
    if isinstance(expr, E.Lit):
        local: tuple = ("Lit", type(expr.value).__name__, repr(expr.value), expr.dtype)
    else:
        local = (type(expr).__name__,) + expr._key()
    return local + tuple(expr_key(c) for c in expr.children())


def _schema_key(expr: E.Expr, schema: Schema) -> tuple:
    return tuple(sorted((name, schema[name].dtype) for name in expr.columns()))


def compile_expr(expr: E.Expr, schema: Schema) -> CompiledExpr:
    """Compile (or fetch from cache) ``expr`` against ``schema``."""
    global _HITS, _MISSES
    key = (expr_key(expr), _schema_key(expr, schema))
    with _LOCK:
        cached = _CACHE.get(key)
        if cached is not None:
            _HITS += 1
            return cached
        _MISSES += 1
    compiled = CompiledExpr(expr.infer_type(schema), _build(expr, schema))
    with _LOCK:
        if len(_CACHE) >= _MAX_ENTRIES:
            _CACHE.clear()
        _CACHE[key] = compiled
    return compiled


def expr_cache_stats() -> dict[str, int]:
    with _LOCK:
        return {"hits": _HITS, "misses": _MISSES, "entries": len(_CACHE)}


def clear_expr_cache() -> None:
    global _HITS, _MISSES
    with _LOCK:
        _CACHE.clear()
        _HITS = 0
        _MISSES = 0


# --------------------------------------------------------------------------
# Kernel construction (mirrors repro.relational.eval._eval branch by branch)
# --------------------------------------------------------------------------


def _build(expr: E.Expr, schema: Schema) -> Kernel:
    from ..relational import eval as V  # interpreted twin; shares helpers

    if isinstance(expr, E.Col):
        name = expr.name

        def col_kernel(cols, n):
            column = cols[name]
            mask = column.mask
            return column.values, None if mask is None else mask.copy()

        return col_kernel

    if isinstance(expr, E.Lit):
        assert expr.dtype is not None
        np_dtype = expr.dtype.to_numpy()
        if expr.value is None:
            fill = {"int64": 0, "float64": 0.0, "bool": False}.get(
                expr.dtype.value, ""
            )
            return lambda cols, n: (
                np.full(n, fill, dtype=np_dtype),
                np.ones(n, dtype=bool),
            )
        value = expr.value
        return lambda cols, n: (np.full(n, value, dtype=np_dtype), None)

    if isinstance(expr, E.IsNull):
        operand = _build(expr.operand, schema)

        def is_null_kernel(cols, n):
            _, mask = operand(cols, n)
            if mask is None:
                return np.zeros(n, dtype=bool), None
            return mask.copy(), None

        return is_null_kernel

    if isinstance(expr, E.Cast):
        operand = _build(expr.operand, schema)
        src = expr.operand.infer_type(schema)
        to = expr.to

        def cast_kernel(cols, n):
            values, mask = operand(cols, n)
            return V._cast_array(values, src, to, mask), mask

        return cast_kernel

    if isinstance(expr, E.UnaryOp):
        operand = _build(expr.operand, schema)
        if expr.op == "-":
            return lambda cols, n: _negate(operand, cols, n)
        return lambda cols, n: _invert(operand, cols, n)

    if isinstance(expr, E.Func):
        return _build_func(expr, schema)

    if isinstance(expr, E.If):
        cond = _build(expr.cond, schema)
        then = _build(expr.then, schema)
        otherwise = _build(expr.otherwise, schema)

        def if_kernel(cols, n):
            cond_v, cond_m = cond(cols, n)
            then_v, then_m = then(cols, n)
            else_v, else_m = otherwise(cols, n)
            take_then = cond_v.astype(bool)
            if cond_m is not None:
                take_then = take_then & ~cond_m
            then_v, else_v = V._align_pair(then_v, else_v)
            values = np.where(take_then, then_v, else_v)
            mask = V._merge_where(take_then, then_m, else_m, n)
            return values, mask

        return if_kernel

    if isinstance(expr, E.BinOp):
        return _build_binop(expr, schema)

    raise ExecutionError(f"cannot compile expression {type(expr).__name__}")


def _negate(operand: Kernel, cols, n):
    values, mask = operand(cols, n)
    return -values, mask


def _invert(operand: Kernel, cols, n):
    values, mask = operand(cols, n)
    return ~values.astype(bool), mask


def _build_func(expr: E.Func, schema: Schema) -> Kernel:
    from ..relational import eval as V

    operand = _build(expr.args[0], schema)
    name = expr.name
    if name in V._NP_MATH:
        fn = V._NP_MATH[name]
        arg_type = expr.args[0].infer_type(schema)
        to_float = arg_type is DType.INT64 and name != "abs"
        sign = name == "sign"

        def math_kernel(cols, n):
            values, mask = operand(cols, n)
            with np.errstate(all="ignore"):
                out = fn(values.astype(np.float64) if to_float else values)
            if sign:
                out = out.astype(np.float64)
            return out, mask

        return math_kernel

    # string functions: element-wise over object arrays, masked rows skipped
    fn = E.STRING_FUNCS[name]
    out_dtype = np.int64 if name == "length" else object

    def string_kernel(cols, n):
        values, mask = operand(cols, n)
        return V._string_map(fn, values, mask, out_dtype), mask

    return string_kernel


#: comparison ops usable on dictionary codes, mapped to their literal-first
#: flipped form (``lit < col`` becomes ``col > lit``)
_FLIPPED_COMPARE = {
    "==": "==", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<=",
}


def _build_binop(expr: E.BinOp, schema: Schema) -> Kernel:
    from ..relational import eval as V

    left = _build(expr.left, schema)
    right = _build(expr.right, schema)
    op = expr.op

    if op in ("and", "or"):
        both = op == "and"

        def bool_kernel(cols, n):
            lv, lm = left(cols, n)
            rv, rm = right(cols, n)
            lb, rb = lv.astype(bool), rv.astype(bool)
            return (lb & rb) if both else (lb | rb), V._or_masks(lm, rm)

        return bool_kernel

    left_t = expr.left.infer_type(schema)
    right_t = expr.right.infer_type(schema)
    if left_t is DType.STRING and op == "+":

        def concat_kernel(cols, n):
            lv, lm = left(cols, n)
            rv, rm = right(cols, n)
            mask = V._or_masks(lm, rm)
            return V._string_concat(lv, rv, mask), mask

        return concat_kernel

    if left_t is DType.STRING or right_t is DType.STRING:
        col_expr, lit_expr, col_op = None, None, op
        if op in _FLIPPED_COMPARE:
            if isinstance(expr.left, E.Col) and isinstance(expr.right, E.Lit):
                col_expr, lit_expr = expr.left, expr.right
            elif isinstance(expr.right, E.Col) and isinstance(expr.left, E.Lit):
                col_expr, lit_expr = expr.right, expr.left
                col_op = _FLIPPED_COMPARE[op]
        if col_expr is not None and isinstance(lit_expr.value, str):
            # column-vs-literal compares check at run time whether the
            # column arrived dictionary-encoded: if so the comparison runs
            # on int codes (the dictionary is sorted, so code order is
            # string order) instead of decoding and comparing row values
            name, lit_value = col_expr.name, lit_expr.value

            def dict_compare_kernel(cols, n):
                column = cols[name]
                compare = getattr(column, "compare_value", None)
                if compare is not None:
                    values = compare(col_op, lit_value)
                    mask = column.mask
                    if mask is None:
                        return values, None
                    values[mask] = False  # match _string_compare's fill
                    return values, mask.copy()
                lv, lm = left(cols, n)
                rv, rm = right(cols, n)
                mask = V._or_masks(lm, rm)
                return V._string_compare(op, lv, rv, mask), mask

            return dict_compare_kernel

        def str_compare_kernel(cols, n):
            lv, lm = left(cols, n)
            rv, rm = right(cols, n)
            mask = V._or_masks(lm, rm)
            return V._string_compare(op, lv, rv, mask), mask

        return str_compare_kernel

    fn = _NUMERIC_KERNELS(op)

    def numeric_kernel(cols, n):
        lv, lm = left(cols, n)
        rv, rm = right(cols, n)
        mask = V._or_masks(lm, rm)
        lv, rv = V._align_pair(lv, rv)
        with np.errstate(all="ignore"):
            return fn(lv, rv), mask

    return numeric_kernel


def _NUMERIC_KERNELS(op: str):
    from ..relational import eval as V

    table = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": lambda a, b: np.divide(a.astype(np.float64), b.astype(np.float64)),
        "//": V._floor_div,
        "%": V._mod,
        "**": V._power,
        "==": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }
    try:
        return table[op]
    except KeyError:
        raise ExecutionError(f"unknown binary operator {op!r}") from None

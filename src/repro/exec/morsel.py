"""Morsel-parallel execution of fused pipelines.

A fused pipeline is a pure function of its input columns, so a scan can be
split into fixed row ranges ("morsels") executed concurrently on a thread
pool — numpy kernels release the GIL, which is where the parallelism comes
from.  ``ThreadPoolExecutor.map`` yields results in submission order and
morsel boundaries are a pure function of the row count, so the merged
output is bit-identical to a single-threaded run regardless of worker
count or scheduling (pinned by a regression test).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, TypeVar

from ..storage.column import Column
from ..storage.table import ColumnTable
from .pipeline import FusedPipeline

T = TypeVar("T")
R = TypeVar("R")

#: Default rows per morsel: large enough to amortize per-task overhead,
#: small enough that a handful of morsels exist per million-row scan.
DEFAULT_MORSEL_SIZE = 131_072


def morsel_ranges(n: int, size: int = DEFAULT_MORSEL_SIZE) -> list[tuple[int, int]]:
    """Deterministic ``[start, stop)`` row ranges covering ``n`` rows."""
    size = max(1, int(size))
    return [(start, min(start + size, n)) for start in range(0, n, size)]


def resolve_workers(workers: int) -> int:
    """Normalize a worker-count knob: ``0`` (or negative) means one per CPU."""
    if workers <= 0:
        return max(1, os.cpu_count() or 1)
    return workers


def parallel_map(
    fn: Callable[[T], R], items: Iterable[T], workers: int = 1
) -> list[R]:
    """Order-preserving map over a thread pool (serial when it cannot help)."""
    items = list(items)
    workers = resolve_workers(workers)
    if workers == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=min(workers, len(items))) as pool:
        return list(pool.map(fn, items))


def run_pipeline_chunks(
    pipeline: FusedPipeline,
    chunked,  # repro.storage.chunked.ChunkedTable
    chunk_ids: list[int],
    *,
    workers: int = 1,
) -> ColumnTable:
    """Run a fused pipeline over the surviving chunks of a pruned scan.

    The chunks themselves are the morsel units, so zone-map pruning and
    morsel parallelism compose: each surviving chunk is sliced zero-copy
    (only the pipeline's live columns), run through the pipeline, and the
    per-chunk outputs concatenate in chunk-id order.  The chunk list and
    the merge order are pure functions of the stored data and the
    predicate — never of the worker count — so results are bit-identical
    to a serial full scan minus the statically impossible rows.
    """
    if not chunk_ids:
        return ColumnTable(
            pipeline.out_schema,
            {a.name: Column.empty(a.dtype) for a in pipeline.out_schema},
        )

    def run_chunk(chunk_id: int) -> dict[str, Column]:
        cols, n = chunked.chunk_columns(chunk_id, pipeline.source_live)
        out, _ = pipeline.run_columns(cols, n)
        return out

    pieces = parallel_map(run_chunk, chunk_ids, workers)
    if len(pieces) == 1:
        return ColumnTable(pipeline.out_schema, pieces[0])
    merged = {
        name: Column.concat([piece[name] for piece in pieces])
        for name in pipeline.out_schema.names
    }
    return ColumnTable(pipeline.out_schema, merged)


def run_pipeline_morsels(
    pipeline: FusedPipeline,
    table: ColumnTable,
    *,
    workers: int = 1,
    morsel_size: int = DEFAULT_MORSEL_SIZE,
) -> ColumnTable:
    """Run a fused pipeline over ``table`` split into row-range morsels.

    Falls back to a single pass when one worker (or one morsel) would do;
    otherwise slices the live input columns per range (zero-copy views),
    runs the pipeline concurrently, and concatenates morsel outputs in
    range order.
    """
    n = table.num_rows
    workers = resolve_workers(workers)
    ranges = morsel_ranges(n, morsel_size)
    if workers == 1 or len(ranges) <= 1:
        return pipeline.run(table)

    base = {name: table.columns[name] for name in pipeline.source_live}

    def run_range(bounds: tuple[int, int]) -> dict[str, Column]:
        start, stop = bounds
        cols = {name: c.slice(start, stop) for name, c in base.items()}
        out, _ = pipeline.run_columns(cols, stop - start)
        return out

    pieces = parallel_map(run_range, ranges, workers)
    merged = {
        name: Column.concat([piece[name] for piece in pieces])
        for name in pipeline.out_schema.names
    }
    return ColumnTable(pipeline.out_schema, merged)

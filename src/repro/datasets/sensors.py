"""Sensor/climate-style array data: dense grids with hotspots and gaps.

The array workload the paper's SciDB references motivate: a 2-d sensor
field (x, y -> reading) with Gaussian hotspots, optional missing cells
(sensor outages -> truly absent) and null readings (sensor present but
faulted), plus a relational metadata table describing the sensors — the mix
of models a multi-server query needs.
"""

from __future__ import annotations

import numpy as np

from ..core.schema import Attribute, Schema
from ..core.types import DType
from ..storage.table import ColumnTable

GRID_SCHEMA = Schema([
    Attribute("x", DType.INT64, dimension=True),
    Attribute("y", DType.INT64, dimension=True),
    Attribute("reading", DType.FLOAT64),
])

SENSOR_META_SCHEMA = Schema([
    Attribute("sensor_x", DType.INT64),
    Attribute("sensor_y", DType.INT64),
    Attribute("vendor", DType.STRING),
    Attribute("calibrated", DType.BOOL),
])


def sensor_grid(
    width: int,
    height: int,
    seed: int = 0,
    *,
    hotspots: int = 3,
    missing_fraction: float = 0.05,
    null_fraction: float = 0.01,
) -> ColumnTable:
    """A width x height reading grid as a dimensioned table."""
    rng = np.random.default_rng(seed)
    xs, ys = np.meshgrid(np.arange(width), np.arange(height), indexing="ij")
    field = rng.normal(20.0, 1.0, (width, height))
    for _ in range(hotspots):
        cx = rng.uniform(0, width)
        cy = rng.uniform(0, height)
        intensity = rng.uniform(20.0, 60.0)
        spread = rng.uniform(2.0, max(width, height) / 4.0)
        field += intensity * np.exp(
            -((xs - cx) ** 2 + (ys - cy) ** 2) / (2 * spread**2)
        )
    present = rng.random((width, height)) >= missing_fraction
    nulled = rng.random((width, height)) < null_fraction
    rows = []
    for i in range(width):
        for j in range(height):
            if not present[i, j]:
                continue
            value = None if nulled[i, j] else float(np.round(field[i, j], 3))
            rows.append((i, j, value))
    return ColumnTable.from_rows(GRID_SCHEMA, rows)


def sensor_metadata(
    width: int, height: int, seed: int = 3, vendors: tuple[str, ...] = ("acme", "borg", "chronos")
) -> ColumnTable:
    """Per-sensor metadata keyed by grid position (relational side)."""
    rng = np.random.default_rng(seed)
    rows = []
    for i in range(width):
        for j in range(height):
            rows.append((
                i, j,
                vendors[int(rng.integers(0, len(vendors)))],
                bool(rng.random() < 0.8),
            ))
    return ColumnTable.from_rows(SENSOR_META_SCHEMA, rows)

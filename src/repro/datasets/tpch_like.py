"""TPC-H-flavored relational data: customers, orders, lineitems.

Not the real TPC-H generator — a compact, seeded stand-in with the same
shape: skewed order amounts, a few countries and market segments, foreign
keys with a controllable fraction of dangling references (to exercise outer
joins).
"""

from __future__ import annotations

import numpy as np

from ..core.schema import Attribute, Schema
from ..core.types import DType
from ..storage.table import ColumnTable

COUNTRIES = ("us", "uk", "jp", "de", "fr", "br", "in", "cn")
SEGMENTS = ("retail", "auto", "machinery", "household")
STATUSES = ("open", "shipped", "returned")

CUSTOMER_SCHEMA = Schema([
    Attribute("cid", DType.INT64),
    Attribute("name", DType.STRING),
    Attribute("country", DType.STRING),
    Attribute("segment", DType.STRING),
    Attribute("balance", DType.FLOAT64),
])

ORDER_SCHEMA = Schema([
    Attribute("oid", DType.INT64),
    Attribute("cust", DType.INT64),
    Attribute("amount", DType.FLOAT64),
    Attribute("status", DType.STRING),
])

LINEITEM_SCHEMA = Schema([
    Attribute("oid", DType.INT64),
    Attribute("line", DType.INT64),
    Attribute("part", DType.INT64),
    Attribute("quantity", DType.INT64),
    Attribute("price", DType.FLOAT64),
    Attribute("discount", DType.FLOAT64),
])


def customers(count: int, seed: int = 0) -> ColumnTable:
    rng = np.random.default_rng(seed)
    return ColumnTable.from_rows(CUSTOMER_SCHEMA, [
        (
            cid,
            f"customer_{cid:06d}",
            COUNTRIES[int(rng.integers(0, len(COUNTRIES)))],
            SEGMENTS[int(rng.integers(0, len(SEGMENTS)))],
            float(np.round(rng.normal(1000.0, 400.0), 2)),
        )
        for cid in range(1, count + 1)
    ])


def orders(
    count: int,
    num_customers: int,
    seed: int = 1,
    dangling_fraction: float = 0.02,
) -> ColumnTable:
    """Orders with log-normal amounts; a few reference missing customers."""
    rng = np.random.default_rng(seed)
    rows = []
    for oid in range(1, count + 1):
        if rng.random() < dangling_fraction:
            cust = num_customers + int(rng.integers(1, 1000))
        else:
            cust = int(rng.integers(1, num_customers + 1))
        amount = float(np.round(rng.lognormal(4.0, 1.0), 2))
        status = STATUSES[int(rng.integers(0, len(STATUSES)))]
        rows.append((oid, cust, amount, status))
    return ColumnTable.from_rows(ORDER_SCHEMA, rows)


def lineitems(
    num_orders: int,
    seed: int = 2,
    max_lines: int = 5,
    num_parts: int = 500,
) -> ColumnTable:
    rng = np.random.default_rng(seed)
    rows = []
    for oid in range(1, num_orders + 1):
        for line in range(1, int(rng.integers(1, max_lines + 1)) + 1):
            rows.append((
                oid,
                line,
                int(rng.integers(1, num_parts + 1)),
                int(rng.integers(1, 50)),
                float(np.round(rng.uniform(1.0, 500.0), 2)),
                float(np.round(rng.choice([0.0, 0.0, 0.05, 0.1]), 2)),
            ))
    return ColumnTable.from_rows(LINEITEM_SCHEMA, rows)

"""Random graph generators as edge/vertex tables."""

from __future__ import annotations

import numpy as np

from ..core.schema import Attribute, Schema
from ..core.types import DType
from ..storage.table import ColumnTable

EDGE_SCHEMA = Schema([
    Attribute("src", DType.INT64), Attribute("dst", DType.INT64),
])

VERTEX_SCHEMA = Schema([Attribute("v", DType.INT64, dimension=True)])


def vertex_table(num_vertices: int) -> ColumnTable:
    return ColumnTable.from_rows(
        VERTEX_SCHEMA, [(v,) for v in range(num_vertices)]
    )


def random_edges(
    num_vertices: int, num_edges: int, seed: int = 0, *, self_loops: bool = False
) -> ColumnTable:
    """Erdős–Rényi-style directed edges (no duplicates)."""
    rng = np.random.default_rng(seed)
    edges: set[tuple[int, int]] = set()
    limit = num_vertices * (num_vertices - 1)
    target = min(num_edges, limit)
    while len(edges) < target:
        u = int(rng.integers(0, num_vertices))
        v = int(rng.integers(0, num_vertices))
        if u == v and not self_loops:
            continue
        edges.add((u, v))
    return ColumnTable.from_rows(EDGE_SCHEMA, sorted(edges))


def ring_of_cliques(
    num_cliques: int, clique_size: int
) -> ColumnTable:
    """Cliques joined in a ring — known structure for component/rank tests."""
    rows = []
    for c in range(num_cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(clique_size):
                if i != j:
                    rows.append((base + i, base + j))
        nxt = ((c + 1) % num_cliques) * clique_size
        rows.append((base, nxt))
    return ColumnTable.from_rows(EDGE_SCHEMA, sorted(set(rows)))

"""Deterministic synthetic workload generators.

Everything takes an explicit seed, so tests and benchmarks reproduce
exactly.  Four families, matching the workloads the paper's introduction
motivates: business/relational data (TPC-H flavored), sensor/climate array
data, random graphs, and random matrices.
"""

from .graphs import random_edges, ring_of_cliques, vertex_table
from .matrices import dense_matrix_table, matrix_schema, sparse_matrix_table
from .sensors import sensor_grid, sensor_metadata
from .tpch_like import customers, lineitems, orders

__all__ = [
    "customers",
    "dense_matrix_table",
    "lineitems",
    "matrix_schema",
    "orders",
    "random_edges",
    "ring_of_cliques",
    "sensor_grid",
    "sensor_metadata",
    "sparse_matrix_table",
    "vertex_table",
]

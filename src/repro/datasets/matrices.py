"""Random matrix generators as dimensioned tables."""

from __future__ import annotations

import numpy as np

from ..core.schema import Attribute, Schema
from ..core.types import DType
from ..storage.table import ColumnTable


def matrix_schema(row: str = "i", col: str = "j", value: str = "v") -> Schema:
    return Schema([
        Attribute(row, DType.INT64, dimension=True),
        Attribute(col, DType.INT64, dimension=True),
        Attribute(value, DType.FLOAT64),
    ])


def dense_matrix_table(
    rows: int,
    cols: int,
    seed: int = 0,
    *,
    row_name: str = "i",
    col_name: str = "j",
    value_name: str = "v",
    low: float = 0.5,
    high: float = 2.0,
) -> ColumnTable:
    """A fully dense random matrix (positive entries, so no zero-dropping)."""
    rng = np.random.default_rng(seed)
    values = rng.uniform(low, high, (rows, cols))
    schema = matrix_schema(row_name, col_name, value_name)
    ii, jj = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    return ColumnTable.from_arrays(schema, {
        row_name: ii.reshape(-1),
        col_name: jj.reshape(-1),
        value_name: values.reshape(-1),
    })


def sparse_matrix_table(
    rows: int,
    cols: int,
    density: float,
    seed: int = 0,
    *,
    row_name: str = "i",
    col_name: str = "j",
    value_name: str = "v",
) -> ColumnTable:
    """A uniformly sparse random matrix with the given cell density."""
    rng = np.random.default_rng(seed)
    mask = rng.random((rows, cols)) < density
    ii, jj = np.nonzero(mask)
    values = rng.uniform(0.5, 2.0, len(ii))
    schema = matrix_schema(row_name, col_name, value_name)
    return ColumnTable.from_arrays(schema, {
        row_name: ii.astype(np.int64),
        col_name: jj.astype(np.int64),
        value_name: values,
    })

"""Vectorized scalar-expression evaluation over ColumnTables.

This is the columnar counterpart of :func:`repro.core.expressions.eval_row`:
it evaluates an expression for *all* rows of a table at once, returning a
:class:`~repro.storage.column.Column`.  Null semantics are identical to the
reference path (null propagates through every operator; ``IsNull`` is never
null; a null ``If`` condition selects the else branch), which the test suite
cross-checks property-style.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core import expressions as E
from ..core.errors import ExecutionError
from ..core.types import DType
from ..storage.column import Column
from ..storage.table import ColumnTable

_NP_MATH: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "sqrt": np.sqrt,
    "exp": np.exp,
    "log": np.log,
    "log2": np.log2,
    "sin": np.sin,
    "cos": np.cos,
    "tan": np.tan,
    "abs": np.abs,
    "floor": np.floor,
    "ceil": np.ceil,
    "sign": np.sign,
}


def eval_vector(expr: E.Expr, table: ColumnTable, *, compiled: bool = True) -> Column:
    """Evaluate ``expr`` against every row of ``table`` at once.

    By default this goes through the compiled-expression cache
    (:mod:`repro.exec.compile`): the AST is lowered once into a closure
    pipeline and reused on every subsequent call with the same structure
    and input dtypes.  ``compiled=False`` forces the interpreted walk —
    kept for the ablation benches and as a cross-check in tests.
    """
    if compiled:
        from ..exec.compile import compile_expr

        return compile_expr(expr, table.schema).evaluate(table)
    dtype = expr.infer_type(table.schema)
    values, mask = _eval(expr, table)
    target = dtype.to_numpy()
    if values.dtype != target:
        values = values.astype(target)
    return Column(dtype, values, mask)


def _eval(expr: E.Expr, table: ColumnTable) -> tuple[np.ndarray, np.ndarray | None]:
    n = table.num_rows

    if isinstance(expr, E.Col):
        column = table.column(expr.name)
        return column.values, None if column.mask is None else column.mask.copy()

    if isinstance(expr, E.Lit):
        assert expr.dtype is not None
        if expr.value is None:
            fill = {"int64": 0, "float64": 0.0, "bool": False}.get(
                expr.dtype.value, ""
            )
            return (
                np.full(n, fill, dtype=expr.dtype.to_numpy()),
                np.ones(n, dtype=bool),
            )
        return np.full(n, expr.value, dtype=expr.dtype.to_numpy()), None

    if isinstance(expr, E.IsNull):
        _, mask = _eval(expr.operand, table)
        if mask is None:
            return np.zeros(n, dtype=bool), None
        return mask.copy(), None

    if isinstance(expr, E.Cast):
        values, mask = _eval(expr.operand, table)
        return _cast_array(values, expr.operand.infer_type(table.schema), expr.to, mask), mask

    if isinstance(expr, E.UnaryOp):
        values, mask = _eval(expr.operand, table)
        if expr.op == "-":
            return -values, mask
        return ~values.astype(bool), mask

    if isinstance(expr, E.Func):
        values, mask = _eval(expr.args[0], table)
        arg_type = expr.args[0].infer_type(table.schema)
        if expr.name in _NP_MATH:
            with np.errstate(all="ignore"):
                out = _NP_MATH[expr.name](values.astype(np.float64)
                                          if arg_type is DType.INT64 and expr.name != "abs"
                                          else values)
            if expr.name == "sign":
                out = out.astype(np.float64)
            return out, mask
        # string functions run element-wise over object arrays (masked
        # rows are skipped, not computed then discarded)
        fn = E.STRING_FUNCS[expr.name]
        result_dtype = np.int64 if expr.name == "length" else object
        return _string_map(fn, values, mask, result_dtype), mask

    if isinstance(expr, E.If):
        cond_v, cond_m = _eval(expr.cond, table)
        then_v, then_m = _eval(expr.then, table)
        else_v, else_m = _eval(expr.otherwise, table)
        # a null condition selects the else branch
        take_then = cond_v.astype(bool)
        if cond_m is not None:
            take_then = take_then & ~cond_m
        then_v, else_v = _align_pair(then_v, else_v)
        values = np.where(take_then, then_v, else_v)
        mask = _merge_where(take_then, then_m, else_m, n)
        return values, mask

    if isinstance(expr, E.BinOp):
        return _eval_binop(expr, table)

    raise ExecutionError(f"cannot vectorize expression {type(expr).__name__}")


def _eval_binop(expr: E.BinOp, table: ColumnTable) -> tuple[np.ndarray, np.ndarray | None]:
    left_v, left_m = _eval(expr.left, table)
    right_v, right_m = _eval(expr.right, table)
    mask = _or_masks(left_m, right_m)
    op = expr.op

    if op in ("and", "or"):
        lb, rb = left_v.astype(bool), right_v.astype(bool)
        values = (lb & rb) if op == "and" else (lb | rb)
        return values, mask

    left_is_str = left_v.dtype == object
    if left_is_str and op == "+":
        return _string_concat(left_v, right_v, mask), mask
    if left_is_str or right_v.dtype == object:
        return _string_compare(op, left_v, right_v, mask), mask

    left_v, right_v = _align_pair(left_v, right_v)
    with np.errstate(all="ignore"):
        if op == "+":
            values = left_v + right_v
        elif op == "-":
            values = left_v - right_v
        elif op == "*":
            values = left_v * right_v
        elif op == "/":
            values = np.divide(left_v.astype(np.float64), right_v.astype(np.float64))
        elif op == "//":
            values = _floor_div(left_v, right_v)
        elif op == "%":
            values = _mod(left_v, right_v)
        elif op == "**":
            values = _power(left_v, right_v)
        elif op == "==":
            values = left_v == right_v
        elif op == "!=":
            values = left_v != right_v
        elif op == "<":
            values = left_v < right_v
        elif op == "<=":
            values = left_v <= right_v
        elif op == ">":
            values = left_v > right_v
        elif op == ">=":
            values = left_v >= right_v
        else:
            raise ExecutionError(f"unknown binary operator {op!r}")
    return values, mask


def _valid_indices(n: int, mask: np.ndarray | None) -> np.ndarray | range:
    """Row positions that are not null (all of them when there is no mask)."""
    return range(n) if mask is None else np.flatnonzero(~mask)


def _string_map(
    fn: Callable[[str], object],
    values: np.ndarray,
    mask: np.ndarray | None,
    out_dtype,
) -> np.ndarray:
    """Apply a scalar string function element-wise, skipping masked rows."""
    n = len(values)
    if out_dtype is object:
        out = np.full(n, "", dtype=object)
    else:
        out = np.zeros(n, dtype=out_dtype)
    for i in _valid_indices(n, mask):
        out[i] = fn(values[i])
    return out


def _string_concat(
    left: np.ndarray, right: np.ndarray, mask: np.ndarray | None
) -> np.ndarray:
    """Element-wise string concatenation, skipping masked rows."""
    n = len(left)
    out = np.full(n, "", dtype=object)
    for i in _valid_indices(n, mask):
        out[i] = left[i] + right[i]
    return out


def _string_compare(
    op: str, left: np.ndarray, right: np.ndarray, mask: np.ndarray | None
) -> np.ndarray:
    """Element-wise string comparison, skipping masked rows."""
    n = len(left)
    out = np.zeros(n, dtype=bool)
    for i in _valid_indices(n, mask):
        out[i] = _compare(op, left[i], right[i])
    return out


def _compare(op: str, a, b) -> bool:
    if op == "==":
        return a == b
    if op == "!=":
        return a != b
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    return a >= b


def _floor_div(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    if np.issubdtype(left.dtype, np.integer) and np.issubdtype(right.dtype, np.integer):
        if (right == 0).any():
            raise ExecutionError("integer floor division by zero")
    return np.floor_divide(left, right)


def _mod(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    if np.issubdtype(left.dtype, np.integer) and np.issubdtype(right.dtype, np.integer):
        if (right == 0).any():
            raise ExecutionError("integer modulo by zero")
    return np.mod(left, right)


def _power(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    both_int = (
        np.issubdtype(left.dtype, np.integer)
        and np.issubdtype(right.dtype, np.integer)
    )
    if both_int and (right < 0).any():
        return np.power(left.astype(np.float64), right.astype(np.float64))
    return np.power(left, right)


def _align_pair(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Promote a numeric pair to a common dtype (int64 stays int64)."""
    if a.dtype == b.dtype or a.dtype == object or b.dtype == object:
        return a, b
    if a.dtype == np.bool_ or b.dtype == np.bool_:
        return a, b
    common = np.result_type(a.dtype, b.dtype)
    return a.astype(common), b.astype(common)


def _or_masks(a: np.ndarray | None, b: np.ndarray | None) -> np.ndarray | None:
    if a is None:
        return None if b is None else b.copy()
    if b is None:
        return a.copy()
    return a | b


def _merge_where(
    take_then: np.ndarray,
    then_m: np.ndarray | None,
    else_m: np.ndarray | None,
    n: int,
) -> np.ndarray | None:
    if then_m is None and else_m is None:
        return None
    tm = then_m if then_m is not None else np.zeros(n, dtype=bool)
    em = else_m if else_m is not None else np.zeros(n, dtype=bool)
    return np.where(take_then, tm, em)


def _cast_array(
    values: np.ndarray, src: DType, to: DType, mask: np.ndarray | None
) -> np.ndarray:
    if src is to:
        return values
    if to is DType.STRING:
        out = np.empty(len(values), dtype=object)
        for i, v in enumerate(values):
            if mask is not None and mask[i]:
                out[i] = ""
                continue
            if src is DType.FLOAT64:
                out[i] = str(float(v))
            elif src is DType.BOOL:
                out[i] = str(bool(v))
            else:
                out[i] = str(int(v))
        return out
    if src is DType.STRING:
        out_np = np.zeros(len(values), dtype=to.to_numpy())
        for i, v in enumerate(values):
            if mask is not None and mask[i]:
                continue
            try:
                out_np[i] = int(v) if to is DType.INT64 else float(v)
            except ValueError as exc:
                raise ExecutionError(f"cannot cast {v!r} to {to.name}") from exc
        return out_np
    if to is DType.INT64 and src is DType.FLOAT64:
        safe = np.where(np.isfinite(values), values, 0.0)
        return np.trunc(safe).astype(np.int64)
    return values.astype(to.to_numpy())

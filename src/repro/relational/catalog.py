"""The relational server's local catalog: stored tables, statistics, indexes.

Statistics (row count, per-column distinct counts, min/max, null counts)
are computed once at load, in the shared :mod:`repro.opt.stats`
representation, and served to every estimate consumer through
:meth:`RelationalCatalog.table_stats` — the local lowering pass, the
cost-based rewriter and the federation planner all read the same numbers.

Registration also builds the physical storage layout: every stored table
is wrapped in a :class:`~repro.storage.chunked.ChunkedTable` — fixed-size
row chunks with per-column zone maps, low-cardinality string columns
dictionary-encoded — and ``entry.table`` is the *encoded* table, so every
read path (scans, index probes, the provider's resolver) serves the same
representation the chunk-pruning scan uses.  Column statistics exploit
that layout: dictionary metadata gives distinct counts, zone maps give
min/max and null counts without value scans.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import PlanningError, SchemaError
from ..opt.stats import ColumnStats, TableStats
from ..storage.chunked import DEFAULT_CHUNK_ROWS, ChunkedTable
from ..storage.table import ColumnTable
from .indexes import HashIndex, SortedIndex

__all__ = [
    "ColumnStats",
    "RelationalCatalog",
    "TableEntry",
    "TableStats",
]


@dataclass
class TableEntry:
    """One stored table with its statistics and secondary indexes."""

    table: ColumnTable
    stats: dict[str, ColumnStats]
    #: the chunked layout of ``table`` (zone maps, dictionary encoding);
    #: ``table`` is always ``chunked.table``
    chunked: ChunkedTable | None = None
    hash_indexes: dict[str, HashIndex] = field(default_factory=dict)
    sorted_indexes: dict[str, SortedIndex] = field(default_factory=dict)

    @property
    def row_count(self) -> int:
        return self.table.num_rows

    def selectivity_of_equality(self, column: str) -> float:
        """Estimated fraction of rows matching ``column = const``."""
        stats = self.stats.get(column)
        if stats is None or stats.distinct == 0 or self.row_count == 0:
            return 1.0
        return 1.0 / stats.distinct


class RelationalCatalog:
    """All tables stored on one relational server."""

    def __init__(self, chunk_rows: int = DEFAULT_CHUNK_ROWS):
        self._entries: dict[str, TableEntry] = {}
        #: rows per storage chunk for newly registered tables
        self.chunk_rows = chunk_rows
        #: bumped on every registration / drop / index build, so cached
        #: physical plans keyed on it invalidate when access paths change
        self.version = 0

    def register(
        self, name: str, table: ColumnTable, chunk_rows: int | None = None
    ) -> TableEntry:
        chunked = ChunkedTable(table, chunk_rows or self.chunk_rows)
        table = chunked.table  # the dictionary-encoded representation
        entry = TableEntry(
            table=table,
            stats={
                n: ColumnStats.compute(table, n, chunked.zone_maps.get(n))
                for n in table.schema.names
            },
            chunked=chunked,
        )
        self._entries[name] = entry
        self.version += 1
        return entry

    def drop(self, name: str) -> None:
        self._entries.pop(name, None)
        self.version += 1

    def table_stats(self, name: str) -> TableStats | None:
        """The shared-statistics view of one stored table (None = unknown).

        This is the catalog's :data:`~repro.opt.stats.StatsSource`
        implementation: the lowering pass, the cost-based rewriter and the
        federation cost adapter all estimate from what it returns.
        """
        entry = self._entries.get(name)
        if entry is None:
            return None
        return TableStats(row_count=entry.row_count, columns=entry.stats)

    def entry(self, name: str) -> TableEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise PlanningError(
                f"no table {name!r} in catalog; have {sorted(self._entries)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def create_hash_index(self, name: str, column: str) -> HashIndex:
        entry = self.entry(name)
        if column not in entry.table.schema:
            raise SchemaError(
                f"table {name!r} has no column {column!r}"
            )
        index = HashIndex(entry.table.column(column))
        entry.hash_indexes[column] = index
        self.version += 1
        return index

    def create_sorted_index(self, name: str, column: str) -> SortedIndex:
        entry = self.entry(name)
        if column not in entry.table.schema:
            raise SchemaError(
                f"table {name!r} has no column {column!r}"
            )
        index = SortedIndex(entry.table.column(column))
        entry.sorted_indexes[column] = index
        self.version += 1
        return index

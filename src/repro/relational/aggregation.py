"""Vectorized hash aggregation for the relational engine.

Grouping factorizes the key columns into dense group ids, then every
aggregate is computed with numpy scatter operations (``bincount`` /
``minimum.at`` / ``maximum.at``) — no per-group Python loop.

Null semantics match :mod:`repro.core.aggfuncs`: ``count(expr)`` counts
non-nulls, the other functions skip nulls and yield null for groups with no
non-null input.  Null group keys form their own group.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core import algebra as A
from ..core.errors import ExecutionError
from ..core.schema import Schema
from ..core.types import DType
from ..storage.column import Column
from ..storage.table import ColumnTable
from .eval import eval_vector


def factorize(table: ColumnTable, keys: Sequence[str]) -> tuple[np.ndarray, list[tuple]]:
    """Map each row to a dense group id; returns (gids, group key tuples).

    Group ids are assigned in first-appearance order, so output order is
    deterministic.
    """
    n = table.num_rows
    if not keys:
        return np.zeros(n, dtype=np.int64), [()]
    columns = [table.column(k) for k in keys]
    all_int_no_null = all(
        c.dtype is DType.INT64 and c.mask is None for c in columns
    )
    if all_int_no_null and n > 0:
        stacked = np.stack([c.values for c in columns], axis=1)
        _, first_pos, inverse = np.unique(
            stacked, axis=0, return_index=True, return_inverse=True
        )
        # renumber so group ids follow first appearance, not sorted order
        order = np.argsort(first_pos, kind="stable")
        remap = np.empty(len(order), dtype=np.int64)
        remap[order] = np.arange(len(order))
        gids = remap[inverse.reshape(-1)]
        keys_out = [tuple(stacked[first_pos[g]].tolist()) for g in order]
        return gids, keys_out
    # generic path: Python dict over key tuples (handles strings and nulls)
    lists = [c.to_list() for c in columns]
    mapping: dict[tuple, int] = {}
    gids = np.empty(n, dtype=np.int64)
    keys_out: list[tuple] = []
    for i, key in enumerate(zip(*lists)):
        gid = mapping.get(key)
        if gid is None:
            gid = len(mapping)
            mapping[key] = gid
            keys_out.append(key)
        gids[i] = gid
    return gids, keys_out


def compute_aggregates(
    table: ColumnTable,
    gids: np.ndarray,
    num_groups: int,
    aggs: Sequence[A.AggSpec],
    out_schema: Schema,
    compiled: bool = True,
) -> dict[str, Column]:
    """Evaluate each AggSpec over the grouped table, vectorized."""
    out: dict[str, Column] = {}
    for spec in aggs:
        out_dtype = out_schema[spec.name].dtype
        out[spec.name] = _one_aggregate(
            table, gids, num_groups, spec, out_dtype, compiled
        )
    return out


def _one_aggregate(
    table: ColumnTable,
    gids: np.ndarray,
    num_groups: int,
    spec: A.AggSpec,
    out_dtype: DType,
    compiled: bool = True,
) -> Column:
    if spec.func == "count" and spec.arg is None:
        counts = np.bincount(gids, minlength=num_groups).astype(np.int64)
        return Column(DType.INT64, counts)

    arg = eval_vector(spec.arg, table, compiled=compiled)
    valid = np.ones(len(arg), dtype=bool) if arg.mask is None else ~arg.mask
    vgids = gids[valid]

    if spec.func == "count":
        counts = np.bincount(vgids, minlength=num_groups).astype(np.int64)
        return Column(DType.INT64, counts)

    counts = np.bincount(vgids, minlength=num_groups)
    empty = counts == 0
    mask = empty if empty.any() else None

    if arg.dtype is DType.STRING:
        return _string_min_max(arg, valid, vgids, num_groups, spec, mask)

    values = arg.values[valid]
    if spec.func == "sum":
        acc = np.zeros(num_groups, dtype=arg.dtype.to_numpy())
        np.add.at(acc, vgids, values)
        return Column(out_dtype, acc.astype(out_dtype.to_numpy()), mask)
    if spec.func == "mean":
        acc = np.zeros(num_groups, dtype=np.float64)
        np.add.at(acc, vgids, values.astype(np.float64))
        with np.errstate(all="ignore"):
            means = acc / np.maximum(counts, 1)
        return Column(DType.FLOAT64, means, mask)
    if spec.func in ("min", "max"):
        if arg.dtype is DType.FLOAT64:
            sentinel = np.inf if spec.func == "min" else -np.inf
        elif arg.dtype is DType.BOOL:
            return _generic_min_max(arg, valid, vgids, num_groups, spec, out_dtype, mask)
        else:
            sentinel = np.iinfo(np.int64).max if spec.func == "min" else np.iinfo(np.int64).min
        acc = np.full(num_groups, sentinel, dtype=arg.dtype.to_numpy())
        op = np.minimum if spec.func == "min" else np.maximum
        op.at(acc, vgids, values)
        if mask is not None:
            acc = np.where(mask, 0, acc)
        return Column(out_dtype, acc.astype(out_dtype.to_numpy()), mask)
    raise ExecutionError(f"unknown aggregate function {spec.func!r}")


def _string_min_max(
    arg: Column,
    valid: np.ndarray,
    vgids: np.ndarray,
    num_groups: int,
    spec: A.AggSpec,
    mask: np.ndarray | None,
) -> Column:
    if spec.func not in ("min", "max"):
        raise ExecutionError(f"{spec.func}() is not defined for STRING")
    best: list[str | None] = [None] * num_groups
    values = arg.values[valid]
    pick_min = spec.func == "min"
    for gid, value in zip(vgids, values):
        current = best[gid]
        if current is None or (value < current if pick_min else value > current):
            best[gid] = value
    return Column.from_values(DType.STRING, best)


def _generic_min_max(
    arg: Column,
    valid: np.ndarray,
    vgids: np.ndarray,
    num_groups: int,
    spec: A.AggSpec,
    out_dtype: DType,
    mask: np.ndarray | None,
) -> Column:
    best: list = [None] * num_groups
    values = arg.values[valid]
    pick_min = spec.func == "min"
    for gid, value in zip(vgids, values):
        current = best[gid]
        v = bool(value)
        if current is None or (v < current if pick_min else v > current):
            best[gid] = v
    return Column.from_values(out_dtype, best)


def group_aggregate(
    table: ColumnTable,
    group_by: Sequence[str],
    aggs: Sequence[A.AggSpec],
    out_schema: Schema,
    compiled: bool = True,
) -> ColumnTable:
    """Full GROUP BY: factorize keys, aggregate, assemble the output table.

    ``compiled`` selects the compiled-closure path for aggregate argument
    expressions (see :mod:`repro.exec.compile`); the interpreted walker
    remains available for ablations.
    """
    gids, group_keys = factorize(table, group_by)
    if table.num_rows == 0 and group_by:
        group_keys = []
        num_groups = 0
    else:
        num_groups = len(group_keys)
    columns: dict[str, Column] = {}
    for pos, key_name in enumerate(group_by):
        attr = out_schema[key_name]
        columns[key_name] = Column.from_values(
            attr.dtype, (key[pos] for key in group_keys)
        )
    if num_groups == 0 and not group_by:
        num_groups = 1  # global aggregate over empty input yields one row
        gids = np.zeros(0, dtype=np.int64)
    agg_columns = compute_aggregates(
        table, gids, num_groups, aggs, out_schema, compiled
    )
    columns.update(agg_columns)
    return ColumnTable(out_schema, columns)

"""Vectorized hash aggregation for the relational engine.

Grouping factorizes the key columns into dense group ids via the shared
key-encoding kernel (:func:`repro.exec.kernels.encode_group_keys` — no
Python dict over key tuples, whatever the key dtypes), then every aggregate
decomposes into per-morsel partials (:mod:`repro.exec.kernels` ``grouped_*``)
merged in morsel order.  The partial decomposition is a pure function of the
data shape — never of the worker count — so parallel execution is
bit-identical to serial.

Null semantics match :mod:`repro.core.aggfuncs`: ``count(expr)`` counts
non-nulls, the other functions skip nulls and yield null for groups with no
non-null input.  Null group keys form their own group.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core import algebra as A
from ..core.errors import ExecutionError
from ..core.schema import Schema
from ..core.types import DType
from ..exec.kernels import (
    encode_group_keys,
    grouped_count,
    grouped_min_max,
    grouped_string_min_max,
    grouped_sum_exact,
    grouped_sum_float,
    partition_ranges,
)
from ..exec.morsel import DEFAULT_MORSEL_SIZE
from ..storage.column import Column
from ..storage.table import ColumnTable
from .eval import eval_vector


def _as_scalar(v):
    return v.item() if isinstance(v, np.generic) else v


def factorize(table: ColumnTable, keys: Sequence[str]) -> tuple[np.ndarray, list[tuple]]:
    """Map each row to a dense group id; returns (gids, group key tuples).

    Group ids are assigned in first-appearance order, so output order is
    deterministic.
    """
    n = table.num_rows
    if not keys:
        return np.zeros(n, dtype=np.int64), [()]
    columns = [table.column(k) for k in keys]
    codes = encode_group_keys(columns)
    _, first_pos, inverse = np.unique(
        codes, return_index=True, return_inverse=True
    )
    # renumber so group ids follow first appearance, not sorted code order
    order = np.argsort(first_pos, kind="stable")
    remap = np.empty(len(order), dtype=np.int64)
    remap[order] = np.arange(len(order))
    gids = remap[inverse.reshape(-1)]
    firsts = first_pos[order]
    taken = [
        # gather_values decodes only the group-representative rows for
        # dictionary-encoded columns (never the whole column)
        (c.gather_values(firsts), c.mask[firsts] if c.mask is not None else None)
        for c in columns
    ]
    keys_out = [
        tuple(
            None if m is not None and m[j] else _as_scalar(vals[j])
            for vals, m in taken
        )
        for j in range(len(firsts))
    ]
    return gids, keys_out


def compute_aggregates(
    table: ColumnTable,
    gids: np.ndarray,
    num_groups: int,
    aggs: Sequence[A.AggSpec],
    out_schema: Schema,
    compiled: bool = True,
    *,
    workers: int = 1,
    morsel_size: int = DEFAULT_MORSEL_SIZE,
) -> dict[str, Column]:
    """Evaluate each AggSpec over the grouped table, vectorized."""
    out: dict[str, Column] = {}
    for spec in aggs:
        out_dtype = out_schema[spec.name].dtype
        out[spec.name] = _one_aggregate(
            table, gids, num_groups, spec, out_dtype, compiled,
            workers=workers, morsel_size=morsel_size,
        )
    return out


def _one_aggregate(
    table: ColumnTable,
    gids: np.ndarray,
    num_groups: int,
    spec: A.AggSpec,
    out_dtype: DType,
    compiled: bool = True,
    *,
    workers: int = 1,
    morsel_size: int = DEFAULT_MORSEL_SIZE,
) -> Column:
    if spec.func == "count" and spec.arg is None:
        ranges = partition_ranges(len(gids), num_groups, morsel_size)
        return Column(
            DType.INT64, grouped_count(gids, num_groups, ranges, workers)
        )

    arg = eval_vector(spec.arg, table, compiled=compiled)
    valid = np.ones(len(arg), dtype=bool) if arg.mask is None else ~arg.mask
    vgids = gids[valid]
    ranges = partition_ranges(len(vgids), num_groups, morsel_size)

    counts = grouped_count(vgids, num_groups, ranges, workers)
    if spec.func == "count":
        return Column(DType.INT64, counts)

    empty = counts == 0
    mask = empty if empty.any() else None

    if arg.dtype is DType.STRING:
        if spec.func not in ("min", "max"):
            raise ExecutionError(f"{spec.func}() is not defined for STRING")
        best, present = grouped_string_min_max(
            arg.values[valid], vgids, num_groups,
            spec.func == "min", ranges, workers,
        )
        return Column(
            DType.STRING, best, None if present.all() else ~present
        )

    values = arg.values[valid]
    if spec.func == "sum":
        if arg.dtype is DType.FLOAT64:
            acc = grouped_sum_float(vgids, values, num_groups, ranges, workers)
        else:
            acc = grouped_sum_exact(
                vgids, values, num_groups, arg.dtype.to_numpy(),
                ranges, workers,
            )
        return Column(out_dtype, acc.astype(out_dtype.to_numpy()), mask)
    if spec.func == "mean":
        acc = grouped_sum_float(
            vgids, values.astype(np.float64), num_groups, ranges, workers
        )
        with np.errstate(all="ignore"):
            means = acc / np.maximum(counts, 1)
        return Column(DType.FLOAT64, means, mask)
    if spec.func in ("min", "max"):
        pick_min = spec.func == "min"
        if arg.dtype is DType.FLOAT64:
            sentinel = np.inf if pick_min else -np.inf
        else:
            # BOOL rides the int64 path (no sentinel exists inside bool)
            if arg.dtype is DType.BOOL:
                values = values.astype(np.int64)
            sentinel = (
                np.iinfo(np.int64).max if pick_min else np.iinfo(np.int64).min
            )
        acc = grouped_min_max(
            vgids, values, num_groups, pick_min, sentinel, ranges, workers
        )
        if mask is not None:
            acc = np.where(mask, 0, acc)
        return Column(out_dtype, acc.astype(out_dtype.to_numpy()), mask)
    raise ExecutionError(f"unknown aggregate function {spec.func!r}")


def group_aggregate(
    table: ColumnTable,
    group_by: Sequence[str],
    aggs: Sequence[A.AggSpec],
    out_schema: Schema,
    compiled: bool = True,
    *,
    workers: int = 1,
    morsel_size: int = DEFAULT_MORSEL_SIZE,
) -> ColumnTable:
    """Full GROUP BY: factorize keys, aggregate, assemble the output table.

    ``compiled`` selects the compiled-closure path for aggregate argument
    expressions (see :mod:`repro.exec.compile`); ``workers`` fans the
    partial-aggregate passes out over the shared morsel pool
    (bit-identical to serial for every worker count).
    """
    gids, group_keys = factorize(table, group_by)
    if table.num_rows == 0 and group_by:
        group_keys = []
        num_groups = 0
    else:
        num_groups = len(group_keys)
    columns: dict[str, Column] = {}
    for pos, key_name in enumerate(group_by):
        attr = out_schema[key_name]
        columns[key_name] = Column.from_values(
            attr.dtype, (key[pos] for key in group_keys)
        )
    if num_groups == 0 and not group_by:
        num_groups = 1  # global aggregate over empty input yields one row
        gids = np.zeros(0, dtype=np.int64)
    agg_columns = compute_aggregates(
        table, gids, num_groups, aggs, out_schema, compiled,
        workers=workers, morsel_size=morsel_size,
    )
    columns.update(agg_columns)
    return ColumnTable(out_schema, columns)

"""Join algorithms for the relational engine.

Four physical implementations of the algebra's equi-join:

* :func:`hash_join` — the default.  Despite the historical name it is a
  fully vectorized sort+searchsorted join over dense int64 key codes
  (:func:`repro.exec.kernels.encode_keys`): every key shape — multi-column,
  string, float, bool, nullable — and every join kind (inner/left/full/
  semi/anti) runs without a per-row Python loop, and the probe side can be
  morsel-parallel.
* :func:`merge_join` — sort-merge formulation (inner and left joins); wins
  when inputs arrive already sorted on the key (the E10 bench measures the
  trade-off).  Runs over the same key codes.
* :func:`python_hash_join` — the per-row Python hash table the vectorized
  path replaced.  Kept as the E13 ablation baseline and as a semantics
  cross-check in the property tests.
* :func:`nested_loop_join` — the quadratic baseline, kept for the join
  ablation bench and as an obviously-correct cross-check.

All of them return ``(left_indices, right_indices)`` gather arrays, where
``-1`` means "pad with nulls" (outer joins); the caller gathers columns with
:meth:`Column.take`, which understands ``-1``.

Null join keys never match anything, per the algebra's semantics (float NaN
keys behave the same: NaN never equals itself).
"""

from __future__ import annotations

import numpy as np

from ..core.errors import ExecutionError
from ..exec.kernels import encode_keys, join_on_codes
from ..exec.morsel import DEFAULT_MORSEL_SIZE
from ..storage.table import ColumnTable


def _key_rows(table: ColumnTable, keys: list[str]) -> list[tuple | None]:
    """Per-row key tuples; None for rows whose key contains a null.

    Only the Python baselines (:func:`python_hash_join`,
    :func:`nested_loop_join`) still pay for this per-row materialization.
    """
    columns = [table.column(k).to_list() for k in keys]
    out: list[tuple | None] = []
    for row in zip(*columns):
        out.append(None if any(v is None for v in row) else row)
    return out


def _encoded(
    left: ColumnTable,
    right: ColumnTable,
    left_keys: list[str],
    right_keys: list[str],
):
    codes, valid, card = encode_keys([
        [left.column(k) for k in left_keys],
        [right.column(k) for k in right_keys],
    ])
    return codes[0], codes[1], valid[0], valid[1], card


def hash_join(
    left: ColumnTable,
    right: ColumnTable,
    left_keys: list[str],
    right_keys: list[str],
    how: str = "inner",
    *,
    workers: int = 1,
    morsel_size: int = DEFAULT_MORSEL_SIZE,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized equi-join; returns (left_indices, right_indices) gathers.

    Keys of any shape are factorized into dense int64 codes shared across
    both sides, then all join kinds run through one sort+searchsorted
    kernel.  ``workers`` splits the probe into morsels on the shared thread
    pool; the result is bit-identical for every worker count.
    """
    lk, rk, lvalid, rvalid, card = _encoded(left, right, left_keys, right_keys)
    return join_on_codes(
        lk, rk, lvalid, rvalid, how,
        card=card, workers=workers, morsel_size=morsel_size,
    )


def merge_join(
    left: ColumnTable,
    right: ColumnTable,
    left_keys: list[str],
    right_keys: list[str],
    *,
    how: str = "inner",
    presorted: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Sort-merge join (inner or left), emitting matches in key order.

    With ``presorted=True`` the inputs are assumed already sorted on their
    keys, and the probe keeps the input row order (which *is* key order);
    otherwise both sides are ordered by key code first.  Left rows with
    null keys never match but still emit with a ``-1`` right index under
    ``how="left"``.
    """
    if how not in ("inner", "left"):
        raise ExecutionError(f"merge join supports inner/left, not {how!r}")
    lk, rk, lvalid, rvalid, _ = _encoded(left, right, left_keys, right_keys)
    lpos = np.flatnonzero(lvalid)
    rpos = np.flatnonzero(rvalid)
    if not presorted:
        lpos = lpos[np.argsort(lk[lpos], kind="stable")]
    # the build side must be code-sorted for binary search either way
    # (string codes follow hash order, not value order)
    rpos = rpos[np.argsort(rk[rpos], kind="stable")]

    sorted_rk = rk[rpos]
    probe = lk[lpos]
    lo = np.searchsorted(sorted_rk, probe, side="left")
    counts = np.searchsorted(sorted_rk, probe, side="right") - lo
    total = int(counts.sum())
    left_idx = np.repeat(lpos, counts)
    starts = np.repeat(lo, counts)
    group_base = np.repeat(np.cumsum(counts) - counts, counts)
    right_idx = rpos[starts + (np.arange(total, dtype=np.int64) - group_base)]

    if how == "left":
        hit = np.zeros(len(lk), dtype=bool)
        hit[lpos[counts > 0]] = True
        dangling = np.flatnonzero(~hit).astype(np.int64)
        left_idx = np.concatenate([left_idx, dangling])
        right_idx = np.concatenate([
            right_idx, np.full(len(dangling), -1, dtype=np.int64)
        ])
    return left_idx, right_idx


def python_hash_join(
    left: ColumnTable,
    right: ColumnTable,
    left_keys: list[str],
    right_keys: list[str],
    how: str = "inner",
) -> tuple[np.ndarray, np.ndarray]:
    """Row-at-a-time hash join over Python key tuples (ablation baseline)."""
    build = _key_rows(right, right_keys)
    index: dict[tuple, list[int]] = {}
    for pos, key in enumerate(build):
        if key is not None:
            index.setdefault(key, []).append(pos)

    probe = _key_rows(left, left_keys)
    left_idx: list[int] = []
    right_idx: list[int] = []

    if how == "semi":
        for pos, key in enumerate(probe):
            if key is not None and key in index:
                left_idx.append(pos)
        return np.array(left_idx, dtype=np.int64), np.empty(0, dtype=np.int64)

    if how == "anti":
        for pos, key in enumerate(probe):
            if key is None or key not in index:
                left_idx.append(pos)
        return np.array(left_idx, dtype=np.int64), np.empty(0, dtype=np.int64)

    matched_right: np.ndarray | None = None
    if how == "full":
        matched_right = np.zeros(len(build), dtype=bool)

    for pos, key in enumerate(probe):
        matches = index.get(key) if key is not None else None
        if matches:
            for rpos in matches:
                left_idx.append(pos)
                right_idx.append(rpos)
            if matched_right is not None:
                matched_right[matches] = True
        elif how in ("left", "full"):
            left_idx.append(pos)
            right_idx.append(-1)

    if matched_right is not None:
        for rpos in np.flatnonzero(~matched_right):
            left_idx.append(-1)
            right_idx.append(int(rpos))

    return (
        np.array(left_idx, dtype=np.int64),
        np.array(right_idx, dtype=np.int64),
    )


def nested_loop_join(
    left: ColumnTable,
    right: ColumnTable,
    left_keys: list[str],
    right_keys: list[str],
) -> tuple[np.ndarray, np.ndarray]:
    """Quadratic inner join baseline."""
    lrows = _key_rows(left, left_keys)
    rrows = _key_rows(right, right_keys)
    left_idx: list[int] = []
    right_idx: list[int] = []
    for li, lkey in enumerate(lrows):
        if lkey is None:
            continue
        for ri, rkey in enumerate(rrows):
            if lkey == rkey:
                left_idx.append(li)
                right_idx.append(ri)
    return (
        np.array(left_idx, dtype=np.int64),
        np.array(right_idx, dtype=np.int64),
    )


def gather_join_output(
    left: ColumnTable,
    right: ColumnTable,
    right_keep: list[str],
    left_idx: np.ndarray,
    right_idx: np.ndarray,
    out_schema,
) -> ColumnTable:
    """Assemble the join result table from gather arrays."""
    columns = {}
    for name in left.schema.names:
        columns[name] = left.column(name).take(left_idx)
    for name in right_keep:
        columns[name] = right.column(name).take(right_idx)
    # outer joins may untag dimensions (nullable side): align column dtypes
    return ColumnTable(out_schema, {
        n: columns[n] for n in out_schema.names
    })

"""Join algorithms for the relational engine.

Three physical implementations of the algebra's equi-join:

* :func:`hash_join` — build a hash table on the right input, probe with the
  left.  The default; handles every join kind.
* :func:`merge_join` — sort-merge join for inner joins; wins when inputs are
  already sorted on the key (the E10 bench measures exactly this trade-off).
* :func:`nested_loop_join` — the quadratic baseline, kept for the join
  ablation bench and as an obviously-correct cross-check.

All three return ``(left_indices, right_indices)`` gather arrays, where
``-1`` means "pad with nulls" (outer joins); the caller gathers columns with
:meth:`Column.take`, which understands ``-1``.

Null join keys never match anything, per the algebra's semantics.
"""

from __future__ import annotations

import numpy as np

from ..storage.table import ColumnTable


def _key_rows(table: ColumnTable, keys: list[str]) -> list[tuple | None]:
    """Per-row key tuples; None for rows whose key contains a null."""
    columns = [table.column(k).to_list() for k in keys]
    out: list[tuple | None] = []
    for row in zip(*columns):
        out.append(None if any(v is None for v in row) else row)
    return out


def _single_int_key(table: ColumnTable, keys: list[str]) -> np.ndarray | None:
    """The key column's raw int64 values, when the vectorized path applies."""
    if len(keys) != 1:
        return None
    column = table.column(keys[0])
    if column.mask is not None or column.values.dtype != np.int64:
        return None
    return column.values


def _vectorized_equi_join(
    lk: np.ndarray, rk: np.ndarray, how: str
) -> tuple[np.ndarray, np.ndarray]:
    """Single-int-key equi-join via sort + binary search, fully vectorized."""
    order = np.argsort(rk, kind="stable")
    sorted_rk = rk[order]
    lo = np.searchsorted(sorted_rk, lk, side="left")
    hi = np.searchsorted(sorted_rk, lk, side="right")
    counts = hi - lo

    if how == "semi":
        return np.nonzero(counts > 0)[0].astype(np.int64), np.empty(0, dtype=np.int64)
    if how == "anti":
        return np.nonzero(counts == 0)[0].astype(np.int64), np.empty(0, dtype=np.int64)

    total = int(counts.sum())
    left_idx = np.repeat(np.arange(len(lk), dtype=np.int64), counts)
    starts = np.repeat(lo, counts)
    group_base = np.repeat(np.cumsum(counts) - counts, counts)
    right_idx = order[starts + (np.arange(total, dtype=np.int64) - group_base)]

    if how in ("left", "full"):
        dangling_left = np.nonzero(counts == 0)[0].astype(np.int64)
        left_idx = np.concatenate([left_idx, dangling_left])
        right_idx = np.concatenate([
            right_idx, np.full(len(dangling_left), -1, dtype=np.int64)
        ])
    if how == "full":
        matched = np.zeros(len(rk), dtype=bool)
        matched[right_idx[right_idx >= 0]] = True
        dangling_right = np.nonzero(~matched)[0].astype(np.int64)
        left_idx = np.concatenate([
            left_idx, np.full(len(dangling_right), -1, dtype=np.int64)
        ])
        right_idx = np.concatenate([right_idx, dangling_right])
    return left_idx, right_idx


def hash_join(
    left: ColumnTable,
    right: ColumnTable,
    left_keys: list[str],
    right_keys: list[str],
    how: str = "inner",
) -> tuple[np.ndarray, np.ndarray]:
    """Hash join; returns (left_indices, right_indices) gather arrays.

    Single INT64 keys without nulls take a fully vectorized sort+search
    path; everything else uses the generic Python hash table.
    """
    lk = _single_int_key(left, left_keys)
    rk = _single_int_key(right, right_keys)
    if lk is not None and rk is not None:
        return _vectorized_equi_join(lk, rk, how)

    build = _key_rows(right, right_keys)
    index: dict[tuple, list[int]] = {}
    for pos, key in enumerate(build):
        if key is not None:
            index.setdefault(key, []).append(pos)

    probe = _key_rows(left, left_keys)
    left_idx: list[int] = []
    right_idx: list[int] = []

    if how == "semi":
        for pos, key in enumerate(probe):
            if key is not None and key in index:
                left_idx.append(pos)
        return np.array(left_idx, dtype=np.int64), np.empty(0, dtype=np.int64)

    if how == "anti":
        for pos, key in enumerate(probe):
            if key is None or key not in index:
                left_idx.append(pos)
        return np.array(left_idx, dtype=np.int64), np.empty(0, dtype=np.int64)

    matched_right: np.ndarray | None = None
    if how == "full":
        matched_right = np.zeros(len(build), dtype=bool)

    for pos, key in enumerate(probe):
        matches = index.get(key, ()) if key is not None else ()
        if matches:
            for rpos in matches:
                left_idx.append(pos)
                right_idx.append(rpos)
            if matched_right is not None:
                matched_right[list(matches)] = True
        elif how in ("left", "full"):
            left_idx.append(pos)
            right_idx.append(-1)

    if matched_right is not None:
        for rpos in np.nonzero(~matched_right)[0]:
            left_idx.append(-1)
            right_idx.append(int(rpos))

    return (
        np.array(left_idx, dtype=np.int64),
        np.array(right_idx, dtype=np.int64),
    )


def merge_join(
    left: ColumnTable,
    right: ColumnTable,
    left_keys: list[str],
    right_keys: list[str],
    *,
    presorted: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Sort-merge inner join.

    With ``presorted=True`` the inputs are assumed already sorted on their
    keys (nulls anywhere); otherwise both sides are sorted here first.
    """
    lrows = _key_rows(left, left_keys)
    rrows = _key_rows(right, right_keys)
    if presorted:
        lorder = list(range(len(lrows)))
        rorder = list(range(len(rrows)))
    else:
        lorder = sorted(
            (i for i in range(len(lrows)) if lrows[i] is not None),
            key=lambda i: lrows[i],
        )
        rorder = sorted(
            (i for i in range(len(rrows)) if rrows[i] is not None),
            key=lambda i: rrows[i],
        )
    if presorted:
        lorder = [i for i in lorder if lrows[i] is not None]
        rorder = [i for i in rorder if rrows[i] is not None]

    left_idx: list[int] = []
    right_idx: list[int] = []
    li = ri = 0
    while li < len(lorder) and ri < len(rorder):
        lkey = lrows[lorder[li]]
        rkey = rrows[rorder[ri]]
        if lkey < rkey:
            li += 1
        elif lkey > rkey:
            ri += 1
        else:
            # gather the run of equal keys on the right
            r_end = ri
            while r_end < len(rorder) and rrows[rorder[r_end]] == lkey:
                r_end += 1
            l_run = li
            while l_run < len(lorder) and lrows[lorder[l_run]] == lkey:
                for rr in range(ri, r_end):
                    left_idx.append(lorder[l_run])
                    right_idx.append(rorder[rr])
                l_run += 1
            li = l_run
            ri = r_end
    return (
        np.array(left_idx, dtype=np.int64),
        np.array(right_idx, dtype=np.int64),
    )


def nested_loop_join(
    left: ColumnTable,
    right: ColumnTable,
    left_keys: list[str],
    right_keys: list[str],
) -> tuple[np.ndarray, np.ndarray]:
    """Quadratic inner join baseline."""
    lrows = _key_rows(left, left_keys)
    rrows = _key_rows(right, right_keys)
    left_idx: list[int] = []
    right_idx: list[int] = []
    for li, lkey in enumerate(lrows):
        if lkey is None:
            continue
        for ri, rkey in enumerate(rrows):
            if lkey == rkey:
                left_idx.append(li)
                right_idx.append(ri)
    return (
        np.array(left_idx, dtype=np.int64),
        np.array(right_idx, dtype=np.int64),
    )


def gather_join_output(
    left: ColumnTable,
    right: ColumnTable,
    right_keep: list[str],
    left_idx: np.ndarray,
    right_idx: np.ndarray,
    out_schema,
) -> ColumnTable:
    """Assemble the join result table from gather arrays."""
    columns = {}
    for name in left.schema.names:
        columns[name] = left.column(name).take(left_idx)
    for name in right_keep:
        columns[name] = right.column(name).take(right_idx)
    # outer joins may untag dimensions (nullable side): align column dtypes
    return ColumnTable(out_schema, {
        n: columns[n] for n in out_schema.names
    })

"""The relational engine: cached lowering + the shared physical executor.

This is the project's SQLServer stand-in.  Since the physical-plan layer
landed, the engine itself holds no execution logic: it lowers each algebra
tree once (through :mod:`repro.relational.lowering`, where every fusion /
join-algorithm / index-path decision lives), memoizes the resulting
:class:`~repro.exec.physical.base.PhysPlan`, and drives it through the
shared :data:`~repro.exec.physical.base.EXECUTOR`.

The plan cache keys on the serialized tree, the physical options and the
catalog version — so repeat queries (benches, dashboards, every iteration
of a loop) skip lowering and pipeline construction entirely, while index
creation or re-registration transparently invalidates stale plans.

:class:`EngineOptions` exposes the physical knobs the ablation benches
(E8/E10/E12/E13) sweep.  ``explain`` renders the lowered plan with its
physical properties (estimated rows, ordering, parallelism).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import astuple, dataclass
from typing import Callable

from ..core import algebra as A
from ..core import serialize
from ..exec.physical.base import ExecCounters, PhysPlan, run_plan
from ..storage.table import ColumnTable
from .catalog import RelationalCatalog

Resolver = Callable[[str], ColumnTable]


@dataclass
class EngineOptions:
    """Physical execution knobs (swept by the ablation benchmarks)."""

    #: "auto" picks the vectorized code join; "merge" forces sort-merge
    #: (inner/left joins); "nested" forces the quadratic baseline; "python"
    #: forces the row-at-a-time hash table (the E13 ablation baseline).
    join_algorithm: str = "auto"
    #: assume join inputs are already sorted on their keys (merge join only)
    assume_sorted: bool = False
    #: collapse maximal Filter/Project/Extend/Rename chains into one fused
    #: physical operator (no intermediate ColumnTable per step)
    fuse_pipelines: bool = True
    #: evaluate scalar expressions through the compiled-closure cache
    #: (repro.exec.compile); False forces the interpreted AST walk
    compile_expressions: bool = True
    #: worker threads for morsel-parallel fused scans; 1 = serial,
    #: 0 = one worker per CPU
    morsel_workers: int = 1
    #: rows per morsel when splitting a fused scan across workers
    morsel_size: int = 131_072


class RelationalEngine:
    """Plans and executes algebra trees over columnar tables.

    When constructed with a :class:`RelationalCatalog`, filters directly
    over stored base tables lower to index probes where one matches the
    predicate (equality via hash index, ranges via sorted index);
    ``index_hits`` counts how often that access path fired.
    """

    #: cached physical plans per engine (small trees; LRU-evicted)
    PLAN_CACHE_CAP = 128

    def __init__(
        self,
        options: EngineOptions | None = None,
        catalog: RelationalCatalog | None = None,
    ):
        self.options = options or EngineOptions()
        self.catalog = catalog
        #: cumulative access-path counters (observable by tests and benches)
        self.counters = ExecCounters()
        #: cumulative wall seconds per physical stage ("join", "aggregate")
        self.op_seconds: dict[str, float] = {}
        #: stage timings of the most recent query only (no diffing needed)
        self.last_stage_seconds: dict[str, float] = {}
        #: compiled fused pipelines, shared across cached plans
        self._pipelines: dict[tuple, object] = {}
        self._plans: OrderedDict[tuple, PhysPlan] = OrderedDict()
        self.plan_hits = 0
        self.plan_misses = 0

    # counters kept as attributes-with-setters for back-compat with callers
    # that read/reset engine.fused_runs / engine.index_hits directly
    @property
    def fused_runs(self) -> int:
        return self.counters.fused_runs

    @fused_runs.setter
    def fused_runs(self, value: int) -> None:
        self.counters.fused_runs = value

    @property
    def index_hits(self) -> int:
        return self.counters.index_hits

    @index_hits.setter
    def index_hits(self, value: int) -> None:
        self.counters.index_hits = value

    # -- lowering ----------------------------------------------------------------

    def plan_for(self, node: A.Node) -> PhysPlan:
        """The (cached) physical plan for ``node`` under current options."""
        key = (
            serialize.dumps(node),
            astuple(self.options),
            self.catalog.version if self.catalog is not None else 0,
        )
        plan = self._plans.get(key)
        if plan is not None:
            self._plans.move_to_end(key)
            self.plan_hits += 1
            return plan
        self.plan_misses += 1
        from .lowering import lower_relational

        plan = lower_relational(
            node, self.options, self.catalog, self._pipelines
        )
        self._plans[key] = plan
        while len(self._plans) > self.PLAN_CACHE_CAP:
            self._plans.popitem(last=False)
        return plan

    def explain(self, node: A.Node) -> str:
        """Render the lowered physical plan with its properties."""
        return self.plan_for(node).render()

    # -- execution ---------------------------------------------------------------

    def run(
        self,
        node: A.Node,
        resolver: Resolver,
        env: dict[str, ColumnTable] | None = None,
    ) -> ColumnTable:
        """Execute ``node``; ``env`` binds LoopVar names inside Iterate."""
        plan = self.plan_for(node)
        outcome = run_plan(plan, resolver, env=env, counters=self.counters)
        self.last_stage_seconds = outcome.stage_seconds
        for stage, seconds in outcome.stage_seconds.items():
            self.op_seconds[stage] = self.op_seconds.get(stage, 0.0) + seconds
        return outcome.value

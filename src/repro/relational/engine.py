"""The relational engine: vectorized execution of the algebra's tabular core.

This is the project's SQLServer stand-in.  It executes expression trees over
columnar tables with vectorized filters, hash/merge joins, scatter-based
aggregation and stable multi-key sorts.  Dimension-aware operators with a
natural relational reading (slice = filter, regrid/reduce = group-by,
cell-join = equi-join, matmul = join + group-by) are supported too — which
is precisely what makes the intent-preservation experiment (E3) possible:
this engine *can* run a MatMul, just slowly, via its join-aggregate
formulation.

The engine is deliberately provider-agnostic: it takes a resolver for scan
leaves and returns ColumnTables.  :class:`EngineOptions` exposes the
physical knobs the ablation benches (E8/E10) sweep.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core import algebra as A
from ..core.errors import ConvergenceError, ExecutionError
from ..core.rewriter import split_fusible_chain
from ..core.schema import Schema
from ..core.types import DType
from ..core.expressions import BinOp, Col, Expr, Lit
from ..exec.morsel import run_pipeline_morsels
from ..exec.pipeline import FusedPipeline, pipeline_key
from ..storage.column import Column
from ..storage.table import ColumnTable
from . import joins
from .aggregation import factorize, group_aggregate
from .catalog import RelationalCatalog
from .eval import eval_vector
from .sorting import sort_indices

Resolver = Callable[[str], ColumnTable]


@dataclass
class EngineOptions:
    """Physical execution knobs (swept by the ablation benchmarks)."""

    #: "auto" picks the vectorized code join; "merge" forces sort-merge
    #: (inner/left joins); "nested" forces the quadratic baseline; "python"
    #: forces the row-at-a-time hash table (the E13 ablation baseline).
    join_algorithm: str = "auto"
    #: assume join inputs are already sorted on their keys (merge join only)
    assume_sorted: bool = False
    #: collapse maximal Filter/Project/Extend/Rename chains into one fused
    #: physical operator (no intermediate ColumnTable per step)
    fuse_pipelines: bool = True
    #: evaluate scalar expressions through the compiled-closure cache
    #: (repro.exec.compile); False forces the interpreted AST walk
    compile_expressions: bool = True
    #: worker threads for morsel-parallel fused scans; 1 = serial,
    #: 0 = one worker per CPU
    morsel_workers: int = 1
    #: rows per morsel when splitting a fused scan across workers
    morsel_size: int = 131_072


class RelationalEngine:
    """Executes algebra trees over columnar tables.

    When constructed with a :class:`RelationalCatalog`, filters directly
    over stored base tables use secondary indexes where one matches the
    predicate (equality via hash index, ranges via sorted index);
    ``index_hits`` counts how often that access path fired.
    """

    def __init__(
        self,
        options: EngineOptions | None = None,
        catalog: RelationalCatalog | None = None,
    ):
        self.options = options or EngineOptions()
        self.catalog = catalog
        self.index_hits = 0
        #: fused-pipeline executions (observable by tests and benches)
        self.fused_runs = 0
        #: cumulative wall seconds per physical stage ("join", "aggregate")
        self.op_seconds: dict[str, float] = {}
        self._pipelines: dict[tuple, FusedPipeline] = {}

    def _record(self, stage: str, started: float) -> None:
        self.op_seconds[stage] = (
            self.op_seconds.get(stage, 0.0) + (time.perf_counter() - started)
        )

    def run(
        self,
        node: A.Node,
        resolver: Resolver,
        env: dict[str, ColumnTable] | None = None,
    ) -> ColumnTable:
        """Execute ``node``; ``env`` binds LoopVar names inside Iterate."""
        return self._exec(node, resolver, env or {})

    # -- dispatcher --------------------------------------------------------------

    def _exec(self, node: A.Node, resolver: Resolver, env: dict) -> ColumnTable:
        if self.options.fuse_pipelines and isinstance(
            node, (A.Filter, A.Project, A.Extend, A.Rename)
        ):
            fused = self._exec_fused(node, resolver, env)
            if fused is not None:
                return fused
        if isinstance(node, A.Scan):
            return resolver(node.name)
        if isinstance(node, A.InlineTable):
            return ColumnTable.from_rows(node.table_schema, node.rows)
        if isinstance(node, A.LoopVar):
            try:
                return env[node.name]
            except KeyError:
                raise ExecutionError(f"unbound LoopVar({node.name!r})") from None
        if isinstance(node, A.Filter):
            return self._filter(node, resolver, env)
        if isinstance(node, A.Project):
            return self._exec(node.child, resolver, env).select(node.names)
        if isinstance(node, A.Extend):
            return self._extend(node, resolver, env)
        if isinstance(node, A.Rename):
            child = self._exec(node.child, resolver, env)
            return child.rename(dict(node.mapping))
        if isinstance(node, A.Join):
            return self._join(node, resolver, env)
        if isinstance(node, A.Product):
            return self._product(node, resolver, env)
        if isinstance(node, A.Aggregate):
            return self._aggregate(node, resolver, env)
        if isinstance(node, A.Sort):
            child = self._exec(node.child, resolver, env)
            return child.take(sort_indices(child, node.keys, node.ascending))
        if isinstance(node, A.Limit):
            child = self._exec(node.child, resolver, env)
            return child.slice(node.offset, node.offset + node.count)
        if isinstance(node, A.Reverse):
            return self._exec(node.child, resolver, env).reverse()
        if isinstance(node, A.Distinct):
            return self._distinct(self._exec(node.child, resolver, env))
        if isinstance(node, A.Union):
            return self._union(node, resolver, env)
        if isinstance(node, (A.Intersect, A.Except)):
            return self._set_op(node, resolver, env)
        if isinstance(node, A.AsDims):
            return self._as_dims(node, resolver, env)
        if isinstance(node, A.SliceDims):
            return self._slice_dims(node, resolver, env)
        if isinstance(node, A.ShiftDim):
            return self._shift_dim(node, resolver, env)
        if isinstance(node, A.Regrid):
            return self._regrid(node, resolver, env)
        if isinstance(node, A.ReduceDims):
            return self._reduce_dims(node, resolver, env)
        if isinstance(node, A.TransposeDims):
            child = self._exec(node.child, resolver, env)
            return ColumnTable(node.schema, child.columns)
        if isinstance(node, A.CellJoin):
            return self._cell_join(node, resolver, env)
        if isinstance(node, A.MatMul):
            return self._matmul_as_join_aggregate(node, resolver, env)
        if isinstance(node, A.Iterate):
            return self._iterate(node, resolver, env)
        raise ExecutionError(f"relational engine: unsupported operator {node.op_name}")

    # -- fused physical pipelines -----------------------------------------------------

    def _exec_fused(
        self, node: A.Node, resolver: Resolver, env: dict
    ) -> ColumnTable | None:
        """Lower a maximal fusible chain into one physical pass, or decline.

        Returns ``None`` when the chain is too short to win anything (a
        single fusible operator), handing the node back to the one-at-a-
        time dispatcher.
        """
        chain, source = split_fusible_chain(node)
        if len(chain) < 2:
            return None

        # Preserve the secondary-index access path: when the chain bottoms
        # out in a Filter over a stored Scan (possibly through the
        # optimizer's Project veneer), let the index serve those nodes and
        # fuse only what remains above the fetched subset.
        source_table: ColumnTable | None = None
        trimmed = chain
        if isinstance(chain[-1], A.Filter):
            source_table = self._index_filter(chain[-1])
            if source_table is not None:
                trimmed = chain[:-1]
        elif isinstance(chain[-2], A.Filter) and isinstance(chain[-1], A.Project):
            source_table = self._index_filter(chain[-2])
            if source_table is not None:
                trimmed = chain[:-2]
        if not trimmed:
            return source_table

        pipeline = self._pipeline_for(trimmed)
        if source_table is None:
            source_table = self._exec(source, resolver, env)
        self.fused_runs += 1
        workers = self.options.morsel_workers
        if workers != 1:
            return run_pipeline_morsels(
                pipeline, source_table,
                workers=workers, morsel_size=self.options.morsel_size,
            )
        return pipeline.run(source_table)

    def _pipeline_for(self, chain: list[A.Node]) -> FusedPipeline:
        source_schema = chain[-1].child.schema
        key = (
            pipeline_key(chain),
            tuple((a.name, a.dtype, a.dimension) for a in source_schema),
            self.options.compile_expressions,
        )
        pipeline = self._pipelines.get(key)
        if pipeline is None:
            pipeline = FusedPipeline(
                chain, compiled=self.options.compile_expressions
            )
            self._pipelines[key] = pipeline
        return pipeline

    def _narrowed_source(
        self, child: A.Node, needed: set[str], resolver: Resolver, env: dict
    ) -> ColumnTable:
        """Execute a pipeline-breaker's input, fused down to ``needed`` columns.

        When the input is a fusible chain and the breaker only consumes a
        subset of its columns, a synthetic Project on top lets the fused
        pipeline's liveness analysis skip the dead columns — the chain feeds
        the join/aggregate in one morsel pass without materializing the
        full-width intermediate.  Declines (falls back to plain execution)
        when nothing would be pruned; ``needed`` must be non-empty because a
        zero-column table loses its row count.
        """
        if (
            self.options.fuse_pipelines
            and needed
            and isinstance(child, (A.Filter, A.Project, A.Extend, A.Rename))
            and needed < set(child.schema.names)
        ):
            names = tuple(n for n in child.schema.names if n in needed)
            fused = self._exec_fused(A.Project(child, names), resolver, env)
            if fused is not None:
                return fused
        return self._exec(child, resolver, env)

    # -- relational operators ---------------------------------------------------------

    def _filter(self, node: A.Filter, resolver: Resolver, env: dict) -> ColumnTable:
        via_index = self._index_filter(node)
        if via_index is not None:
            return via_index
        child = self._exec(node.child, resolver, env)
        return self._apply_predicate(child, node.predicate)

    def _apply_predicate(self, child: ColumnTable, predicate: Expr) -> ColumnTable:
        pred = eval_vector(
            predicate, child, compiled=self.options.compile_expressions
        )
        keep = pred.values.astype(bool)
        if pred.mask is not None:
            keep = keep & ~pred.mask  # null predicate drops the row
        return child.filter(keep)

    # -- index-aware access path -----------------------------------------------------

    def _index_filter(self, node: A.Filter) -> ColumnTable | None:
        """Serve a filter over a stored base table from a secondary index.

        Splits the predicate into conjuncts, serves the first indexable one
        with a probe/range lookup, and applies the rest vectorized over the
        (usually much smaller) fetched subset.
        """
        if self.catalog is None:
            return None
        child = node.child
        project: A.Project | None = None
        if isinstance(child, A.Project):  # optimizer-inserted pruning veneer
            project = child
            child = child.child
        if not isinstance(child, A.Scan):
            return None
        name = child.name
        if name.startswith("@") or name not in self.catalog:
            return None  # fragment inputs are never served from the catalog
        entry = self.catalog.entry(name)
        conjuncts = _split_conjuncts(node.predicate)
        for pos, conjunct in enumerate(conjuncts):
            rows = self._probe(entry, conjunct)
            if rows is None:
                continue
            self.index_hits += 1
            subset = entry.table.take(rows)
            if project is not None:
                subset = subset.select(project.names)
            rest = conjuncts[:pos] + conjuncts[pos + 1:]
            for other in rest:
                subset = self._apply_predicate(subset, other)
            return subset
        return None

    def _probe(self, entry, conjunct: Expr) -> "np.ndarray | None":
        if not isinstance(conjunct, BinOp):
            return None
        left, right = conjunct.left, conjunct.right
        if isinstance(left, Lit) and isinstance(right, Col):
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
                       "==": "=="}.get(conjunct.op)
            if flipped is None:
                return None
            left, right = right, left
            op = flipped
        elif isinstance(left, Col) and isinstance(right, Lit):
            op = conjunct.op
        else:
            return None
        column, value = left.name, right.value
        if value is None:
            return None
        if op == "==":
            hash_index = entry.hash_indexes.get(column)
            if hash_index is not None:
                return hash_index.lookup(value)
            sorted_index = entry.sorted_indexes.get(column)
            if sorted_index is not None:
                return sorted_index.equality_lookup(value)
            return None
        if op in ("<", "<=", ">", ">="):
            sorted_index = entry.sorted_indexes.get(column)
            if sorted_index is None:
                return None
            if op in ("<", "<="):
                return sorted_index.range_lookup(
                    None, value, high_inclusive=(op == "<=")
                )
            return sorted_index.range_lookup(
                value, None, low_inclusive=(op == ">=")
            )
        return None

    def _extend(self, node: A.Extend, resolver: Resolver, env: dict) -> ColumnTable:
        child = self._exec(node.child, resolver, env)
        out = child
        for name, expr in zip(node.names, node.exprs):
            # exprs see the input table only
            column = eval_vector(
                expr, child, compiled=self.options.compile_expressions
            )
            out = out.with_column(name, column.dtype, column)
        return ColumnTable(node.schema, out.columns)

    def _aggregate(self, node: A.Aggregate, resolver: Resolver, env: dict) -> ColumnTable:
        needed = set(node.group_by)
        for spec in node.aggs:
            if spec.arg is not None:
                needed |= spec.arg.columns()
        child = self._narrowed_source(node.child, needed, resolver, env)
        started = time.perf_counter()
        result = group_aggregate(
            child, node.group_by, node.aggs, node.schema,
            compiled=self.options.compile_expressions,
            workers=self.options.morsel_workers,
            morsel_size=self.options.morsel_size,
        )
        self._record("aggregate", started)
        return result

    def _join(self, node: A.Join, resolver: Resolver, env: dict) -> ColumnTable:
        left = self._exec(node.left, resolver, env)
        lkeys = [l for l, _ in node.on]
        rkeys = [r for _, r in node.on]
        if node.how in ("semi", "anti"):
            # only the right keys matter: fuse the build side down to them
            right = self._narrowed_source(
                node.right, set(rkeys), resolver, env
            )
        else:
            right = self._exec(node.right, resolver, env)

        started = time.perf_counter()
        algorithm = self.options.join_algorithm
        if algorithm == "merge" and node.how in ("inner", "left"):
            lidx, ridx = joins.merge_join(
                left, right, lkeys, rkeys, how=node.how,
                presorted=self.options.assume_sorted,
            )
        elif algorithm == "nested" and node.how == "inner":
            lidx, ridx = joins.nested_loop_join(left, right, lkeys, rkeys)
        elif algorithm == "python":
            lidx, ridx = joins.python_hash_join(
                left, right, lkeys, rkeys, node.how
            )
        else:
            lidx, ridx = joins.hash_join(
                left, right, lkeys, rkeys, node.how,
                workers=self.options.morsel_workers,
                morsel_size=self.options.morsel_size,
            )

        if node.how in ("semi", "anti"):
            result = ColumnTable(node.schema, left.take(lidx).columns)
        else:
            right_keep = [n for n in right.schema.names if n not in set(rkeys)]
            result = joins.gather_join_output(
                left, right, right_keep, lidx, ridx, node.schema
            )
        self._record("join", started)
        return result

    def _product(self, node: A.Product, resolver: Resolver, env: dict) -> ColumnTable:
        left = self._exec(node.left, resolver, env)
        right = self._exec(node.right, resolver, env)
        lidx = np.repeat(np.arange(left.num_rows, dtype=np.int64), right.num_rows)
        ridx = np.tile(np.arange(right.num_rows, dtype=np.int64), left.num_rows)
        columns = {n: left.column(n).take(lidx) for n in left.schema.names}
        columns.update({n: right.column(n).take(ridx) for n in right.schema.names})
        return ColumnTable(node.schema, columns)

    def _distinct(self, table: ColumnTable) -> ColumnTable:
        gids, _ = factorize(table, table.schema.names)
        if len(gids) == 0:
            return table
        _, first = np.unique(gids, return_index=True)
        return table.take(np.sort(first))

    def _union(self, node: A.Union, resolver: Resolver, env: dict) -> ColumnTable:
        left = self._exec(node.left, resolver, env)
        right = self._exec(node.right, resolver, env)
        out_schema = node.schema
        return ColumnTable.concat([
            _coerce(left, out_schema), _coerce(right, out_schema)
        ])

    def _set_op(self, node: A.Intersect | A.Except, resolver: Resolver, env: dict) -> ColumnTable:
        left = _coerce(self._exec(node.left, resolver, env), node.schema)
        right = _coerce(self._exec(node.right, resolver, env), node.schema)
        right_keys = set(right.iter_rows())
        keep_if_present = isinstance(node, A.Intersect)
        seen: set[tuple] = set()
        keep = np.zeros(left.num_rows, dtype=bool)
        for i, row in enumerate(left.iter_rows()):
            if (row in right_keys) is keep_if_present and row not in seen:
                seen.add(row)
                keep[i] = True
        return left.filter(keep)

    # -- dimension-aware operators ---------------------------------------------------------

    def _as_dims(self, node: A.AsDims, resolver: Resolver, env: dict) -> ColumnTable:
        child = self._exec(node.child, resolver, env)
        gids, groups = factorize(child, node.dims)
        if len(groups) != child.num_rows:
            raise ExecutionError(
                f"AsDims: dimensions {list(node.dims)} do not form a key "
                f"({child.num_rows} rows, {len(groups)} distinct coordinates)"
            )
        return ColumnTable(node.schema, child.columns)

    def _slice_dims(self, node: A.SliceDims, resolver: Resolver, env: dict) -> ColumnTable:
        child = self._exec(node.child, resolver, env)
        keep = np.ones(child.num_rows, dtype=bool)
        for dim, lo, hi in node.bounds:
            values = child.array(dim)
            keep &= (values >= lo) & (values <= hi)
        return child.filter(keep)

    def _shift_dim(self, node: A.ShiftDim, resolver: Resolver, env: dict) -> ColumnTable:
        child = self._exec(node.child, resolver, env)
        columns = dict(child.columns)
        columns[node.dim] = Column(
            DType.INT64, child.array(node.dim) + node.offset
        )
        return ColumnTable(node.schema, columns)

    def _regrid(self, node: A.Regrid, resolver: Resolver, env: dict) -> ColumnTable:
        child = self._exec(node.child, resolver, env)
        factors = dict(node.factors)
        columns = dict(child.columns)
        for dim, factor in factors.items():
            columns[dim] = Column(
                DType.INT64, np.floor_divide(child.array(dim), factor)
            )
        coarse = ColumnTable(child.schema, columns)
        dims = child.schema.dimension_names
        started = time.perf_counter()
        result = group_aggregate(
            coarse, dims, node.aggs, node.schema,
            compiled=self.options.compile_expressions,
            workers=self.options.morsel_workers,
            morsel_size=self.options.morsel_size,
        )
        self._record("aggregate", started)
        return result

    def _reduce_dims(self, node: A.ReduceDims, resolver: Resolver, env: dict) -> ColumnTable:
        child = self._exec(node.child, resolver, env)
        keep = [d for d in child.schema.dimension_names if d in set(node.keep)]
        started = time.perf_counter()
        result = group_aggregate(
            child, keep, node.aggs, node.schema,
            compiled=self.options.compile_expressions,
            workers=self.options.morsel_workers,
            morsel_size=self.options.morsel_size,
        )
        self._record("aggregate", started)
        return result

    def _cell_join(self, node: A.CellJoin, resolver: Resolver, env: dict) -> ColumnTable:
        left = self._exec(node.left, resolver, env)
        right = self._exec(node.right, resolver, env)
        dims = list(node.schema.dimension_names)
        started = time.perf_counter()
        lidx, ridx = joins.hash_join(
            left, right, dims, dims, "inner",
            workers=self.options.morsel_workers,
            morsel_size=self.options.morsel_size,
        )
        self._record("join", started)
        columns = {}
        for name in left.schema.names:
            columns[name] = left.column(name).take(lidx)
        for name in node.right.schema.value_names:
            columns[name] = right.column(name).take(ridx)
        return ColumnTable(node.schema, columns)

    def _matmul_as_join_aggregate(
        self, node: A.MatMul, resolver: Resolver, env: dict
    ) -> ColumnTable:
        """The relational formulation: join on the shared dimension, multiply,
        group by the outer dimensions, sum.  Correct but much slower than a
        native linear-algebra engine — the point of experiment E3."""
        from ..core.expressions import col

        left = self._exec(node.left, resolver, env)
        right = self._exec(node.right, resolver, env)
        li, lk = node.left.schema.dimension_names
        rk, rj = node.right.schema.dimension_names
        lval = node.left.schema.value_names[0]
        rval = node.right.schema.value_names[0]

        started = time.perf_counter()
        lidx, ridx = joins.hash_join(
            left, right, [lk], [rk], "inner",
            workers=self.options.morsel_workers,
            morsel_size=self.options.morsel_size,
        )
        self._record("join", started)
        out_schema = node.schema
        out_i, out_j = out_schema.dimension_names
        out_v = out_schema.value_names[0]

        i_col = left.column(li).take(lidx)
        j_col = right.column(rj).take(ridx)
        lv = left.column(lval).take(lidx)
        rv = right.column(rval).take(ridx)
        product_values = lv.values * rv.values
        product_mask = None
        if lv.mask is not None or rv.mask is not None:
            product_mask = np.zeros(len(product_values), dtype=bool)
            if lv.mask is not None:
                product_mask |= lv.mask
            if rv.mask is not None:
                product_mask |= rv.mask
        joined_schema = Schema([
            out_schema[out_i].as_value(), out_schema[out_j].as_value(),
            out_schema[out_v],
        ])
        joined = ColumnTable(joined_schema, {
            out_i: Column(DType.INT64, i_col.values, i_col.mask),
            out_j: Column(DType.INT64, j_col.values, j_col.mask),
            out_v: Column(out_schema[out_v].dtype,
                          product_values.astype(out_schema[out_v].dtype.to_numpy()),
                          product_mask),
        })
        started = time.perf_counter()
        summed = group_aggregate(
            joined, (out_i, out_j),
            (A.AggSpec(out_v, "sum", col(out_v)),),
            node.schema,
            workers=self.options.morsel_workers,
            morsel_size=self.options.morsel_size,
        )
        self._record("aggregate", started)
        # drop all-null sums (cells with only null contributions do not exist)
        out_col = summed.column(out_v)
        if out_col.mask is not None:
            summed = summed.filter(~out_col.mask)
        return summed

    # -- control iteration --------------------------------------------------------------------

    def _iterate(self, node: A.Iterate, resolver: Resolver, env: dict) -> ColumnTable:
        state = self._exec(node.init, resolver, env)
        state_schema = node.init.schema
        for _ in range(node.max_iter):
            inner_env = dict(env)
            inner_env[node.var] = state
            new_state = self._exec(node.body, resolver, inner_env)
            new_state = _coerce(new_state, state_schema)
            if self._converged(node.stop, state_schema, state, new_state):
                return new_state
            state = new_state
        if node.stop.value_attr is not None and node.strict:
            raise ConvergenceError(
                f"Iterate did not converge within {node.max_iter} iterations"
            )
        return state

    def _converged(
        self,
        stop: A.Convergence,
        schema: Schema,
        old: ColumnTable,
        new: ColumnTable,
    ) -> bool:
        if stop.value_attr is None:
            return False
        dims = list(schema.dimension_names)
        if old.num_rows != new.num_rows:
            return False
        old_sorted = old.take(sort_indices(old, dims, [True] * len(dims)))
        new_sorted = new.take(sort_indices(new, dims, [True] * len(dims)))
        for d in dims:
            if not np.array_equal(old_sorted.array(d), new_sorted.array(d)):
                return False
        ov = old_sorted.column(stop.value_attr)
        nv = new_sorted.column(stop.value_attr)
        if ov.mask is not None or nv.mask is not None:
            om = ov.mask if ov.mask is not None else np.zeros(len(ov), dtype=bool)
            nm = nv.mask if nv.mask is not None else np.zeros(len(nv), dtype=bool)
            if not np.array_equal(om, nm):
                return False
            valid = ~om
        else:
            valid = slice(None)
        deltas = np.abs(
            nv.values[valid].astype(np.float64) - ov.values[valid].astype(np.float64)
        )
        if deltas.size == 0:
            return True
        delta = float(deltas.max()) if stop.norm == "linf" else float(deltas.sum())
        return delta <= stop.tolerance


def _split_conjuncts(expr: Expr) -> list[Expr]:
    if isinstance(expr, BinOp) and expr.op == "and":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _coerce(table: ColumnTable, schema: Schema) -> ColumnTable:
    """Adapt a table to an equally-named schema (numeric promotion, retag)."""
    columns = {}
    for attr in schema:
        column = table.column(attr.name)
        if column.dtype is not attr.dtype:
            column = column.cast(attr.dtype)
        columns[attr.name] = column
    return ColumnTable(schema, columns)

"""Secondary indexes for the relational engine.

Two classic structures over a stored column:

* :class:`HashIndex` — value -> row positions; O(1) equality probes.
* :class:`SortedIndex` — an argsort order with binary-search range lookups.

Indexes return *row position arrays*, which the engine turns into results
with :meth:`ColumnTable.take` — so they compose with every downstream
operator.  Null rows are never indexed (predicates never match null).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.types import DType
from ..storage.column import Column


class HashIndex:
    """Equality index: value -> sorted array of row positions."""

    def __init__(self, column: Column):
        self.dtype = column.dtype
        buckets: dict[Any, list[int]] = {}
        for pos, value in enumerate(column.to_list()):
            if value is None:
                continue
            buckets.setdefault(value, []).append(pos)
        self._buckets = {
            value: np.array(rows, dtype=np.int64)
            for value, rows in buckets.items()
        }

    def lookup(self, value: Any) -> np.ndarray:
        """Row positions whose column equals ``value`` (empty if none)."""
        if value is None:
            return np.empty(0, dtype=np.int64)
        hit = self._buckets.get(value)
        return hit if hit is not None else np.empty(0, dtype=np.int64)

    def lookup_many(self, values) -> np.ndarray:
        parts = [self.lookup(v) for v in values]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(parts))

    @property
    def distinct_values(self) -> int:
        return len(self._buckets)


class SortedIndex:
    """Order index: binary-searchable view of a column."""

    def __init__(self, column: Column):
        self.dtype = column.dtype
        values = column.to_list()
        non_null = [(v, pos) for pos, v in enumerate(values) if v is not None]
        non_null.sort(key=lambda item: item[0])
        self._keys = [v for v, _ in non_null]
        self._positions = np.array(
            [pos for _, pos in non_null], dtype=np.int64
        )
        if self.dtype in (DType.INT64, DType.FLOAT64):
            self._np_keys = np.array(self._keys, dtype=np.float64)
        else:
            self._np_keys = None

    def range_lookup(
        self,
        low: Any = None,
        high: Any = None,
        *,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> np.ndarray:
        """Row positions with column value in the given (optional) bounds."""
        import bisect

        start = 0
        stop = len(self._keys)
        if low is not None:
            if low_inclusive:
                start = bisect.bisect_left(self._keys, low)
            else:
                start = bisect.bisect_right(self._keys, low)
        if high is not None:
            if high_inclusive:
                stop = bisect.bisect_right(self._keys, high)
            else:
                stop = bisect.bisect_left(self._keys, high)
        if start >= stop:
            return np.empty(0, dtype=np.int64)
        return np.sort(self._positions[start:stop])

    def equality_lookup(self, value: Any) -> np.ndarray:
        return self.range_lookup(value, value)

    @property
    def min(self) -> Any:
        return self._keys[0] if self._keys else None

    @property
    def max(self) -> Any:
        return self._keys[-1] if self._keys else None

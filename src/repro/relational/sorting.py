"""Stable multi-key sorting with the algebra's null ordering.

The algebra defines nulls as the smallest value of every type: ascending
sorts place them first, descending sorts place them last.  Numeric keys use
a vectorized ``lexsort`` path; string keys fall back to Python's stable sort.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.types import DType
from ..storage.table import ColumnTable


def sort_indices(
    table: ColumnTable,
    keys: Sequence[str],
    ascending: Sequence[bool],
) -> np.ndarray:
    """Row order after a stable multi-key sort (least-significant key last)."""
    n = table.num_rows
    order = np.arange(n, dtype=np.int64)
    # apply keys right-to-left; each pass is stable, so earlier keys dominate
    for key, asc in reversed(list(zip(keys, ascending))):
        column = table.column(key)
        if column.dtype is DType.STRING:
            values = column.to_list()
            sub = sorted(
                range(len(order)),
                key=lambda i: _null_key(values[order[i]]),
                reverse=not asc,
            )
            order = order[np.array(sub, dtype=np.int64)]
            continue
        vals = column.values[order]
        if column.dtype is DType.BOOL:
            vals = vals.astype(np.int64)
        is_null = (
            np.zeros(len(order), dtype=bool)
            if column.mask is None else column.mask[order]
        )
        if asc:
            # primary: non-null flag (nulls first); secondary: value
            sub = np.lexsort((vals, is_null.astype(np.int8) ^ 1))
        else:
            if np.issubdtype(vals.dtype, np.floating):
                negated = -vals
            else:
                negated = -vals.astype(np.int64)
            # primary: null flag (nulls last); secondary: negated value
            sub = np.lexsort((negated, is_null.astype(np.int8)))
        order = order[sub]
    return order


def _null_key(value) -> tuple:
    if value is None:
        return (0, "")
    return (1, value)

"""Subpackage of repro."""

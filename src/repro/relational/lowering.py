"""Logical→physical lowering for the relational engine.

This is where every physical decision the relational engine makes lives —
as pure, inspectable rules over the rewritten logical tree:

* **pipeline fusion** — maximal Filter/Project/Extend/Rename chains lower
  to one :class:`PhysFusedPipeline` (morsel-parallel when configured);
* **index access paths** — a filter over a stored base table whose first
  indexable conjunct matches a hash/sorted index lowers to a
  :class:`PhysIndexProbe`, residual conjuncts applied over the subset;
* **join algorithm selection** — ``EngineOptions.join_algorithm`` picks
  hash / merge / nested-loop / python-hash at lowering time, and the
  default "auto" mode additionally switches to a no-sort merge join when
  both inputs are already ordered on the join keys;
* **input narrowing** — pipeline breakers (joins, aggregates) push a
  synthetic projection into fusible inputs so dead columns never
  materialize.

Nothing here touches data: lowering a tree is side-effect free and
deterministic, which is what makes physical plans cacheable and the
golden-plan tests meaningful.  Every cardinality estimate stamped into
:class:`~repro.exec.physical.base.PhysProps` comes from the shared
:class:`repro.opt.estimator.CardinalityEstimator` over the catalog's
statistics — the same estimates the cost-based rewriter and the
federation planner use — along with its provenance ("stats" vs
"default") and filter selectivities.  Parallelism is estimate-gated: a
morsel-parallel operator whose statistics prove the input fits one
morsel runs serial instead of paying thread overhead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core import algebra as A
from ..core.errors import ExecutionError
from ..core.expressions import BinOp, Col, Lit
from ..core.rewriter import split_fusible_chain
from ..exec.physical import relational as P
from ..exec.physical.base import (
    PhysInlineTable, PhysLoopVar, PhysOp, PhysPlan, PhysProps, PhysScan,
    props_for,
)
from ..exec.pipeline import FusedPipeline, pipeline_key
from ..opt.estimator import STATS, CardinalityEstimator, Estimate
from .catalog import RelationalCatalog

if TYPE_CHECKING:  # avoid a cycle: engine imports this module
    from .engine import EngineOptions

_FUSIBLE = (A.Filter, A.Project, A.Extend, A.Rename)


def lower_relational(
    node: A.Node,
    options: EngineOptions,
    catalog: RelationalCatalog | None = None,
    pipeline_cache: dict | None = None,
) -> PhysPlan:
    """Lower a rewritten logical tree to a relational physical plan.

    ``pipeline_cache`` (keyed like the old engine-internal cache) lets an
    engine share compiled :class:`FusedPipeline` objects across plans.
    """
    lowering = _Lowering(options, catalog, pipeline_cache)
    return PhysPlan(lowering.lower(node), engine="relational")


class _Lowering:
    def __init__(
        self,
        options: EngineOptions,
        catalog: RelationalCatalog | None,
        pipeline_cache: dict | None,
    ):
        self.options = options
        self.catalog = catalog
        self.pipelines = pipeline_cache if pipeline_cache is not None else {}
        self.estimator = CardinalityEstimator(
            catalog.table_stats if catalog is not None else None
        )

    # -- shared estimates --------------------------------------------------------

    def _est(self, node: A.Node) -> Estimate:
        return self.estimator.estimate(node)

    def _props(
        self,
        node: A.Node,
        *,
        ordering: tuple[tuple[str, bool], ...] = (),
        parallelism: int = 1,
        selectivity: float | None = None,
    ) -> PhysProps:
        est = self._est(node)
        sel = est.selectivity if selectivity is None else selectivity
        return props_for(
            node.schema, int(est.rows),
            ordering=ordering, parallelism=parallelism,
            est_source=est.source, selectivity=sel,
        )

    def _workers(self, node: A.Node) -> int:
        """Morsel workers for one operator, gated on the shared estimate:
        when statistics prove the input fits a single morsel, parallel
        execution cannot split the work and only pays thread overhead."""
        workers = self.options.morsel_workers
        if workers == 1:
            return 1
        est = self._est(node)
        if est.source == STATS and est.rows <= self.options.morsel_size:
            return 1
        return workers

    # -- dispatcher --------------------------------------------------------------

    def lower(self, node: A.Node) -> PhysOp:
        if self.options.fuse_pipelines and isinstance(node, _FUSIBLE):
            fused = self._lower_fused(node)
            if fused is not None:
                return fused
        if isinstance(node, A.Scan):
            return self._lower_scan(node)
        if isinstance(node, A.InlineTable):
            return PhysInlineTable(
                node.table_schema, node.rows, self._props(node),
            )
        if isinstance(node, A.LoopVar):
            return PhysLoopVar(node.name, node.schema, self._props(node))
        if isinstance(node, A.Filter):
            return self._lower_filter(node)
        if isinstance(node, A.Project):
            child = self.lower(node.child)
            return P.PhysProject(
                child, node.names, node.schema,
                self._props(node, ordering=child.props.ordering),
            )
        if isinstance(node, A.Extend):
            child = self.lower(node.child)
            return P.PhysExtend(
                child, node.names, node.exprs, node.schema,
                self._props(node),
                compiled=self.options.compile_expressions,
            )
        if isinstance(node, A.Rename):
            child = self.lower(node.child)
            return P.PhysRename(
                child, node.mapping, node.schema, self._props(node),
            )
        if isinstance(node, A.Join):
            return self._lower_join(node)
        if isinstance(node, A.Product):
            left, right = self.lower(node.left), self.lower(node.right)
            return P.PhysProduct(node.schema, self._props(node), (left, right))
        if isinstance(node, A.Aggregate):
            return self._lower_aggregate(node)
        if isinstance(node, A.Sort):
            child = self.lower(node.child)
            ordering = tuple(zip(node.keys, node.ascending))
            return P.PhysSort(
                child, node.keys, node.ascending, node.schema,
                self._props(node, ordering=ordering),
            )
        if isinstance(node, A.Limit):
            child = self.lower(node.child)
            return P.PhysLimit(
                child, node.count, node.offset, node.schema,
                self._props(node, ordering=child.props.ordering),
            )
        if isinstance(node, A.Reverse):
            child = self.lower(node.child)
            return P.PhysReverse(node.schema, self._props(node), (child,))
        if isinstance(node, A.Distinct):
            child = self.lower(node.child)
            return P.PhysDistinct(node.schema, self._props(node), (child,))
        if isinstance(node, A.Union):
            left, right = self.lower(node.left), self.lower(node.right)
            return P.PhysUnion(node.schema, self._props(node), (left, right))
        if isinstance(node, (A.Intersect, A.Except)):
            left, right = self.lower(node.left), self.lower(node.right)
            return P.PhysSetOp(
                left, right, isinstance(node, A.Intersect), node.schema,
                self._props(node),
            )
        if isinstance(node, A.AsDims):
            child = self.lower(node.child)
            return P.PhysAsDims(
                child, node.dims, node.schema, self._props(node),
            )
        if isinstance(node, A.SliceDims):
            child = self.lower(node.child)
            return P.PhysSliceDims(
                child, node.bounds, node.schema, self._props(node),
            )
        if isinstance(node, A.ShiftDim):
            child = self.lower(node.child)
            return P.PhysShiftDim(
                child, node.dim, node.offset, node.schema, self._props(node),
            )
        if isinstance(node, A.Regrid):
            return self._lower_regrid(node)
        if isinstance(node, A.ReduceDims):
            child = self.lower(node.child)
            # static: which dims survive, in the child's dimension order
            keep = tuple(
                d for d in node.child.schema.dimension_names
                if d in set(node.keep)
            )
            return self._aggregate_op(child, keep, node.aggs, node)
        if isinstance(node, A.TransposeDims):
            child = self.lower(node.child)
            return P.PhysRetag(node.schema, self._props(node), (child,))
        if isinstance(node, A.CellJoin):
            left, right = self.lower(node.left), self.lower(node.right)
            workers = self._workers(node)
            return P.PhysCellJoin(
                left, right, tuple(node.schema.dimension_names),
                tuple(node.right.schema.value_names),
                node.schema,
                self._props(node, parallelism=workers),
                workers=workers,
                morsel_size=self.options.morsel_size,
            )
        if isinstance(node, A.MatMul):
            left, right = self.lower(node.left), self.lower(node.right)
            workers = self._workers(node)
            return P.PhysMatMulJoinAgg(
                left, right, node.left.schema, node.right.schema, node.schema,
                self._props(node, parallelism=workers),
                workers=workers,
                morsel_size=self.options.morsel_size,
            )
        if isinstance(node, A.Iterate):
            init = self.lower(node.init)
            body = self.lower(node.body)
            return P.PhysIterate(
                init, body, node.var, node.stop, node.max_iter, node.strict,
                node.init.schema, node.schema, self._props(node),
            )
        raise ExecutionError(
            f"relational engine: unsupported operator {node.op_name}"
        )

    # -- leaves ------------------------------------------------------------------

    def _lower_scan(self, node: A.Scan) -> PhysOp:
        return PhysScan(node.name, node.schema, self._props(node))

    def _lower_pruned_scan(
        self, scan: A.Scan, specs: list[tuple[str, str, object]]
    ) -> PhysOp | None:
        """A chunk-pruned scan of a stored table, or None when pruning
        cannot apply (fragment input, unknown table, a single chunk, or no
        comparison specs to evaluate against the zone maps)."""
        if (
            not specs
            or self.catalog is None
            or scan.name.startswith("@")
            or scan.name not in self.catalog
        ):
            return None
        entry = self.catalog.entry(scan.name)
        chunked = entry.chunked
        if chunked is None or chunked.num_chunks <= 1:
            return None
        chunk_ids = chunked.pruned_chunks(specs)
        # zone maps give an exact surviving-chunk row count: tighter than
        # (and consistent with) the estimator's table-level statistics
        est = sum(chunked.chunk_length(cid) for cid in chunk_ids)
        return P.PhysChunkedScan(
            scan.name, scan.schema,
            props_for(scan.schema, est, est_source=STATS),
            chunked=chunked, chunk_ids=chunk_ids,
        )

    # -- fused pipelines ---------------------------------------------------------

    def _lower_fused(self, node: A.Node) -> PhysOp | None:
        """Lower a maximal fusible chain into one physical pass, or decline.

        Returns ``None`` when the chain is too short to win anything (a
        single fusible operator), handing the node back to the one-at-a-
        time rules.
        """
        chain, source = split_fusible_chain(node)
        if len(chain) < 2:
            return None

        # Preserve the secondary-index access path: when the chain bottoms
        # out in a Filter over a stored Scan (possibly through the
        # optimizer's Project veneer), let the index serve those nodes and
        # fuse only what remains above the fetched subset.
        source_op: PhysOp | None = None
        trimmed = chain
        if isinstance(chain[-1], A.Filter):
            source_op = self._lower_index_filter(chain[-1])
            if source_op is not None:
                trimmed = chain[:-1]
        elif isinstance(chain[-2], A.Filter) and isinstance(chain[-1], A.Project):
            source_op = self._lower_index_filter(chain[-2])
            if source_op is not None:
                trimmed = chain[:-2]
        if not trimmed:
            return source_op

        if source_op is None and isinstance(source, A.Scan):
            source_op = self._lower_pruned_scan(
                source, _prunable_specs(trimmed)
            )
        if source_op is None:
            source_op = self.lower(source)
        workers = self._workers(node)
        est = self._est(node)
        rows = int(est.rows)
        if source_op.props.est_rows is not None:
            # the chain only drops rows: chunk pruning may already bound the
            # source below what table-level statistics predict
            rows = min(rows, source_op.props.est_rows)
        return P.PhysFusedPipeline(
            source_op, self._pipeline_for(trimmed), P.fused_steps(trimmed),
            node.schema,
            props_for(
                node.schema, rows,
                parallelism=workers, est_source=est.source,
                selectivity=self._chain_selectivity(trimmed),
            ),
            workers=workers, morsel_size=self.options.morsel_size,
        )

    def _chain_selectivity(self, chain: list[A.Node]) -> float | None:
        """Combined keep-fraction of a fused chain's filters, if any."""
        selectivity: float | None = None
        for step in chain:
            step_sel = self._est(step).selectivity
            if step_sel is not None:
                selectivity = (
                    step_sel if selectivity is None else selectivity * step_sel
                )
        return selectivity

    def _pipeline_for(self, chain: list[A.Node]) -> FusedPipeline:
        source_schema = chain[-1].child.schema
        key = (
            pipeline_key(chain),
            tuple((a.name, a.dtype, a.dimension) for a in source_schema),
            self.options.compile_expressions,
        )
        pipeline = self.pipelines.get(key)
        if pipeline is None:
            pipeline = FusedPipeline(
                chain, compiled=self.options.compile_expressions
            )
            self.pipelines[key] = pipeline
        return pipeline

    def _lower_narrowed(self, child: A.Node, needed: set[str]) -> PhysOp:
        """Lower a pipeline-breaker's input, fused down to ``needed`` columns.

        A synthetic Project on top of a fusible chain lets the fused
        pipeline's liveness analysis skip dead columns — the chain feeds
        the join/aggregate in one pass without materializing the full-width
        intermediate.  Declines when nothing would be pruned.
        """
        if (
            self.options.fuse_pipelines
            and needed
            and isinstance(child, _FUSIBLE)
            and needed < set(child.schema.names)
        ):
            names = tuple(n for n in child.schema.names if n in needed)
            fused = self._lower_fused(A.Project(child, names))
            if fused is not None:
                return fused
        return self.lower(child)

    # -- filters and the index access path ---------------------------------------

    def _lower_filter(self, node: A.Filter) -> PhysOp:
        probe = self._lower_index_filter(node)
        if probe is not None:
            return probe
        child = None
        if isinstance(node.child, A.Scan):
            child = self._lower_pruned_scan(
                node.child, _prunable_specs([node])
            )
        if child is None:
            child = self.lower(node.child)
        est = self._est(node)
        rows = int(est.rows)
        if child.props.est_rows is not None:
            rows = min(rows, child.props.est_rows)
        return P.PhysFilter(
            child, node.predicate, node.schema,
            props_for(node.schema, rows,
                      ordering=child.props.ordering,
                      est_source=est.source, selectivity=est.selectivity),
            compiled=self.options.compile_expressions,
        )

    def _lower_index_filter(self, node: A.Filter) -> PhysOp | None:
        """Lower a filter over a stored base table to an index probe.

        Splits the predicate into conjuncts, serves the first indexable one
        with a probe/range lookup, and leaves the rest as residual
        predicates over the (usually much smaller) fetched subset.  Every
        input to this decision — index existence, comparison shape, literal
        non-nullness — is static, so it belongs in lowering; the row
        estimate is the shared estimator's for the whole filter.
        """
        if self.catalog is None:
            return None
        child = node.child
        project: A.Project | None = None
        if isinstance(child, A.Project):  # optimizer-inserted pruning veneer
            project = child
            child = child.child
        if not isinstance(child, A.Scan):
            return None
        name = child.name
        if name.startswith("@") or name not in self.catalog:
            return None  # fragment inputs are never served from the catalog
        entry = self.catalog.entry(name)
        conjuncts = P.split_conjuncts(node.predicate)
        for pos, conjunct in enumerate(conjuncts):
            spec = _probe_spec(entry, conjunct)
            if spec is None:
                continue
            column, op, value, kind = spec
            residual = tuple(conjuncts[:pos] + conjuncts[pos + 1:])
            est = self._est(node)
            out_schema = node.schema if project is None else project.schema
            return P.PhysIndexProbe(
                entry, name, column, op, value, kind,
                None if project is None else project.names,
                residual, out_schema,
                props_for(out_schema, int(est.rows),
                          est_source=est.source,
                          selectivity=est.selectivity),
                compiled=self.options.compile_expressions,
            )
        return None

    # -- breakers ----------------------------------------------------------------

    def _lower_join(self, node: A.Join) -> PhysOp:
        left = self.lower(node.left)
        rkeys = [r for _, r in node.on]
        if node.how in ("semi", "anti"):
            # only the right keys matter: fuse the build side down to them
            right = self._lower_narrowed(node.right, set(rkeys))
        else:
            right = self.lower(node.right)

        algorithm = self.options.join_algorithm
        if algorithm == "merge" and node.how in ("inner", "left"):
            return P.PhysMergeJoin(
                left, right, node.on, node.how, node.schema,
                self._props(node),
                presorted=self.options.assume_sorted,
            )
        if algorithm == "nested" and node.how == "inner":
            return P.PhysNestedLoopJoin(
                left, right, node.on, node.how, node.schema,
                self._props(node),
            )
        if algorithm == "python":
            return P.PhysPythonHashJoin(
                left, right, node.on, node.how, node.schema,
                self._props(node),
            )
        if (
            algorithm == "auto"
            and node.how in ("inner", "left")
            and _ordered_on(left, [l for l, _ in node.on])
            and _ordered_on(right, rkeys)
        ):
            # both inputs already sorted on the keys: merge without sorting
            return P.PhysMergeJoin(
                left, right, node.on, node.how, node.schema,
                self._props(node),
                presorted=True,
            )
        workers = self._workers(node)
        return P.PhysHashJoin(
            left, right, node.on, node.how, node.schema,
            self._props(node, parallelism=workers),
            workers=workers, morsel_size=self.options.morsel_size,
        )

    def _lower_aggregate(self, node: A.Aggregate) -> PhysOp:
        needed = set(node.group_by)
        for spec in node.aggs:
            if spec.arg is not None:
                needed |= spec.arg.columns()
        child = self._lower_narrowed(node.child, needed)
        return self._aggregate_op(child, node.group_by, node.aggs, node)

    def _aggregate_op(self, child, group_by, aggs, node: A.Node) -> PhysOp:
        workers = self._workers(node)
        return P.PhysPartialAggregate(
            child, tuple(group_by), tuple(aggs), node.schema,
            self._props(node, parallelism=workers),
            compiled=self.options.compile_expressions,
            workers=workers, morsel_size=self.options.morsel_size,
        )

    def _lower_regrid(self, node: A.Regrid) -> PhysOp:
        child = self.lower(node.child)
        coarse = P.PhysCoarsenDims(
            child, tuple(node.factors), node.child.schema,
            self._props(node.child),
        )
        dims = tuple(node.child.schema.dimension_names)
        return self._aggregate_op(coarse, dims, node.aggs, node)


def _ordered_on(op: PhysOp, keys: list[str]) -> bool:
    """Whether ``op``'s output is sorted ascending on ``keys`` (as prefix)."""
    if not keys or len(op.props.ordering) < len(keys):
        return False
    return all(
        have == (want, True)
        for have, want in zip(op.props.ordering, keys)
    )


_PRUNABLE_OPS = ("==", "!=", "<", "<=", ">", ">=")

_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}


def _comparison_spec(conjunct) -> tuple[str, str, object] | None:
    """(column, op, literal) when a conjunct is a Col-vs-Lit comparison."""
    if not isinstance(conjunct, BinOp) or conjunct.op not in _PRUNABLE_OPS:
        return None
    left, right = conjunct.left, conjunct.right
    if isinstance(left, Lit) and isinstance(right, Col):
        left, right = right, left
        op = _FLIPPED[conjunct.op]
    elif isinstance(left, Col) and isinstance(right, Lit):
        op = conjunct.op
    else:
        return None
    if right.value is None:
        return None
    return left.name, op, right.value


def _prunable_specs(chain) -> list[tuple[str, str, object]]:
    """Comparison specs from a fusible chain, mapped to source columns.

    Walks the chain bottom-up, tracking which current names still alias a
    source column unchanged: Rename remaps, Extend invalidates the names
    it (re)defines, Project narrows.  Every Col-op-Lit conjunct of every
    Filter over a still-aliased column becomes a spec the zone maps can
    evaluate — filters above the bottom prune just as safely, because a
    chunk whose values cannot satisfy a conjunct cannot contribute any
    output row of the conjunctive chain.
    """
    name_map = {n: n for n in chain[-1].child.schema.names}
    specs: list[tuple[str, str, object]] = []
    for node in reversed(list(chain)):
        if isinstance(node, A.Filter):
            for conjunct in P.split_conjuncts(node.predicate):
                spec = _comparison_spec(conjunct)
                if spec is not None and spec[0] in name_map:
                    specs.append((name_map[spec[0]], spec[1], spec[2]))
        elif isinstance(node, A.Rename):
            forward = dict(node.mapping)
            name_map = {
                forward.get(cur, cur): src for cur, src in name_map.items()
            }
        elif isinstance(node, A.Extend):
            for name in node.names:
                name_map.pop(name, None)
        elif isinstance(node, A.Project):
            kept = set(node.names)
            name_map = {
                cur: src for cur, src in name_map.items() if cur in kept
            }
    return specs


def _probe_spec(entry, conjunct) -> tuple[str, str, object, str] | None:
    """(column, op, value, index-kind) when a conjunct can probe an index."""
    if not isinstance(conjunct, BinOp):
        return None
    left, right = conjunct.left, conjunct.right
    if isinstance(left, Lit) and isinstance(right, Col):
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
                   "==": "=="}.get(conjunct.op)
        if flipped is None:
            return None
        left, right = right, left
        op = flipped
    elif isinstance(left, Col) and isinstance(right, Lit):
        op = conjunct.op
    else:
        return None
    column, value = left.name, right.value
    if value is None:
        return None
    if op == "==":
        if column in entry.hash_indexes:
            return column, op, value, "hash"
        if column in entry.sorted_indexes:
            return column, op, value, "sorted"
        return None
    if op in ("<", "<=", ">", ">="):
        if column in entry.sorted_indexes:
            return column, op, value, "sorted"
        return None
    return None

"""Chunked storage: fixed-size row chunks with per-column zone maps.

A :class:`ChunkedTable` wraps a stored :class:`ColumnTable` without copying
it: chunks are ``[start, stop)`` row ranges, and each chunk carries one
:class:`ZoneMap` per column (min/max over non-null values, null count, a
NaN flag for floats).  Low-cardinality string columns are dictionary-
encoded once at wrap time (:class:`~repro.storage.dictionary.DictColumn`),
which makes their zone maps O(1) per chunk — code min/max decode through
the sorted dictionary.

Zone maps answer one static question — *can any row of this chunk satisfy
``column <op> literal``?* — which is what lets the relational lowering
skip chunks before the fused pipeline ever touches them.  ``may_match`` is
deliberately conservative: any comparison it cannot decide (mixed types,
unknown operator) answers True, so pruning can only ever drop chunks whose
rows are statically impossible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from ..core.types import DType
from .column import Column
from .dictionary import DictColumn
from .table import ColumnTable

#: Default rows per storage chunk.  Matches the morsel-size order of
#: magnitude so surviving chunks double as morsel units.
DEFAULT_CHUNK_ROWS = 65_536

#: (column, comparison op, literal) — the unit of chunk pruning.
PruneSpec = "tuple[str, str, Any]"


@dataclass(frozen=True)
class ZoneMap:
    """Summary of one column within one chunk.

    ``min``/``max`` cover non-null (and, for floats, non-NaN) values and
    are ``None`` when the chunk has none.  ``has_nan`` records float NaNs,
    which satisfy ``!=`` against every literal despite falling outside the
    min/max range.
    """

    min: Any
    max: Any
    null_count: int
    has_nan: bool = False

    def may_match(self, op: str, value: Any) -> bool:
        """Whether any row of the chunk *could* satisfy ``col <op> value``.

        Null rows never satisfy a comparison (a null predicate drops the
        row), so an all-null chunk only survives ``!=`` when it holds NaNs.
        Undecidable comparisons conservatively answer True.
        """
        lo, hi = self.min, self.max
        if lo is None:
            return self.has_nan and op == "!="
        try:
            if op == "==":
                return bool(lo <= value) and bool(value <= hi)
            if op == "!=":
                return self.has_nan or not (lo == value and hi == value)
            if op == "<":
                return bool(lo < value)
            if op == "<=":
                return bool(lo <= value)
            if op == ">":
                return bool(hi > value)
            if op == ">=":
                return bool(hi >= value)
        except TypeError:
            return True
        return True


def _zone_map(column: Column, start: int, stop: int) -> ZoneMap:
    """Compute one chunk's zone map for one column."""
    mask = column.mask
    chunk_mask = None if mask is None else mask[start:stop]
    null_count = 0 if chunk_mask is None else int(chunk_mask.sum())
    n = stop - start
    if null_count == n:
        return ZoneMap(None, None, null_count)

    if isinstance(column, DictColumn):
        codes = column.codes[start:stop]
        if chunk_mask is not None and null_count:
            codes = codes[~chunk_mask]
        lo, hi = column.code_bounds(int(codes.min()), int(codes.max()))
        return ZoneMap(lo, hi, null_count)

    values = column.values[start:stop]
    if chunk_mask is not None and null_count:
        values = values[~chunk_mask]
    if column.dtype is DType.FLOAT64:
        nan = np.isnan(values)
        has_nan = bool(nan.any())
        if has_nan:
            values = values[~nan]
            if len(values) == 0:
                return ZoneMap(None, None, null_count, has_nan=True)
        return ZoneMap(
            values.min().item(), values.max().item(), null_count,
            has_nan=has_nan,
        )
    lo, hi = values.min(), values.max()
    if column.dtype is DType.STRING:
        return ZoneMap(lo, hi, null_count)
    return ZoneMap(lo.item(), hi.item(), null_count)


def encode_table(table: ColumnTable) -> ColumnTable:
    """Dictionary-encode the low-cardinality string columns of a table."""
    replaced = None
    for name, column in table.columns.items():
        if column.dtype is not DType.STRING or isinstance(column, DictColumn):
            continue
        encoded = DictColumn.encode(column)
        if encoded is not None:
            if replaced is None:
                replaced = dict(table.columns)
            replaced[name] = encoded
    if replaced is None:
        return table
    return ColumnTable(table.schema, replaced)


class ChunkedTable:
    """A stored table split into row chunks with per-column zone maps."""

    __slots__ = ("table", "chunk_rows", "ranges", "zone_maps")

    def __init__(
        self,
        table: ColumnTable,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        *,
        encode_strings: bool = True,
    ):
        if encode_strings:
            table = encode_table(table)
        self.table = table
        self.chunk_rows = max(1, int(chunk_rows))
        n = table.num_rows
        self.ranges: list[tuple[int, int]] = [
            (start, min(start + self.chunk_rows, n))
            for start in range(0, n, self.chunk_rows)
        ] or [(0, 0)]
        self.zone_maps: dict[str, list[ZoneMap]] = {
            name: [_zone_map(column, s, e) for s, e in self.ranges]
            for name, column in table.columns.items()
        }

    @property
    def num_chunks(self) -> int:
        return len(self.ranges)

    def chunk_length(self, chunk_id: int) -> int:
        start, stop = self.ranges[chunk_id]
        return stop - start

    def chunk_columns(
        self, chunk_id: int, names: Sequence[str]
    ) -> tuple[dict[str, Column], int]:
        """Zero-copy column slices of one chunk (the morsel unit)."""
        start, stop = self.ranges[chunk_id]
        cols = {
            name: self.table.columns[name].slice(start, stop) for name in names
        }
        return cols, stop - start

    def pruned_chunks(self, specs: Sequence[tuple[str, str, Any]]) -> list[int]:
        """Chunk ids whose zone maps admit every conjunct in ``specs``."""
        survivors = []
        for chunk_id in range(self.num_chunks):
            for column, op, value in specs:
                maps = self.zone_maps.get(column)
                if maps is not None and not maps[chunk_id].may_match(op, value):
                    break
            else:
                survivors.append(chunk_id)
        return survivors

    def take_chunks(self, chunk_ids: Sequence[int]) -> ColumnTable:
        """Assemble the table restricted to ``chunk_ids`` (in id order)."""
        if len(chunk_ids) == self.num_chunks:
            return self.table
        if not chunk_ids:
            return self.table.slice(0, 0)
        pieces = [self.table.slice(*self.ranges[cid]) for cid in chunk_ids]
        return pieces[0] if len(pieces) == 1 else ColumnTable.concat(pieces)

    @property
    def nbytes(self) -> int:
        return self.table.nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChunkedTable(rows={self.table.num_rows}, "
            f"chunks={self.num_chunks}x{self.chunk_rows})"
        )

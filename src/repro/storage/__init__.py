"""Subpackage of repro."""

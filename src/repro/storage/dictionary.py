"""Dictionary-encoded string columns.

A :class:`DictColumn` stores a low-cardinality string column as a *sorted*
array of distinct non-null strings (the dictionary) plus one int64 code per
row.  Because the dictionary is sorted, code order equals lexicographic
order, so comparisons against a literal run as integer comparisons on the
codes (:meth:`DictColumn.compare_value`) and the join/group-by kernels can
factorize by code instead of hashing raw strings.

``DictColumn`` is a drop-in :class:`~repro.storage.column.Column`: the
``values`` object array materializes lazily (and is cached) for any caller
that still needs raw strings, while the bulk operations the execution
engine uses — ``take``/``filter``/``slice``/``reverse``/``concat`` —
operate on the codes and stay encoded end to end.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import TypeMismatchError
from ..core.types import DType
from .column import Column

#: never dictionary-encode beyond this many distinct values
MAX_DICT_SIZE = 1 << 16


class DictColumn(Column):
    """A string column stored as sorted-dictionary codes."""

    __slots__ = ("codes", "dictionary", "_materialized")

    def __init__(
        self,
        dictionary: np.ndarray,
        codes: np.ndarray,
        mask: np.ndarray | None = None,
        *,
        null_count: int | None = None,
    ):
        # no super().__init__: `values` is a lazy property here, shadowing
        # the base slot, so the base constructor's assignment would fail
        self.dtype = DType.STRING
        self.dictionary = dictionary
        self.codes = codes
        self._materialized = None
        if mask is not None and len(mask) != len(codes):
            raise TypeMismatchError(
                f"mask length {len(mask)} != codes length {len(codes)}"
            )
        if null_count == 0:
            mask = None
        self._mask = mask
        self._null_count = 0 if mask is None else null_count

    @classmethod
    def encode(cls, column: Column, max_size: int = MAX_DICT_SIZE) -> "DictColumn | None":
        """Encode a string column, or None when encoding cannot pay off.

        Declines for non-string/empty/all-null columns and when the column
        is high-cardinality (more distinct values than ``max_size`` or than
        a quarter of the rows — at that density code-level sharing saves
        little and the dictionary itself becomes the cost).
        """
        if isinstance(column, DictColumn):
            return column
        if column.dtype is not DType.STRING or len(column) == 0:
            return None
        mask = column.mask
        non_null = column.values if mask is None else column.values[~mask]
        if len(non_null) == 0:
            return None
        dictionary, inverse = np.unique(non_null, return_inverse=True)
        if len(dictionary) > min(max_size, max(16, len(column) // 4)):
            return None
        inverse = inverse.astype(np.int64, copy=False).reshape(-1)
        if mask is None:
            codes = inverse
            out_mask = None
        else:
            codes = np.zeros(len(column), dtype=np.int64)
            codes[~mask] = inverse
            out_mask = mask.copy()
        return cls(dictionary, codes, out_mask, null_count=column.null_count)

    # -- protocol ----------------------------------------------------------------

    @property
    def values(self) -> np.ndarray:  # type: ignore[override]
        """Decoded object array; materialized on first access and cached."""
        materialized = self._materialized
        if materialized is None:
            materialized = self.dictionary[self.codes]
            mask = self._mask
            if mask is not None:
                materialized[mask] = ""  # the shared null placeholder
            self._materialized = materialized
        return materialized

    def __len__(self) -> int:
        return len(self.codes)

    def __getitem__(self, index: int):
        if self._mask is not None and self._mask[index]:
            return None
        return self.dictionary[self.codes[index]]

    @property
    def nbytes(self) -> int:
        """Matches the plain-column estimate so transfer metering is
        representation-independent (the wire format ships raw strings)."""
        lengths = np.fromiter(
            (len(s) for s in self.dictionary), dtype=np.int64,
            count=len(self.dictionary),
        )
        mask = self.mask
        codes = self.codes if mask is None else self.codes[~mask]
        base = int(lengths[codes].sum()) + 8 * len(self.codes)
        if mask is not None:
            base += int(mask.nbytes)
        return base

    # -- bulk operations ---------------------------------------------------------

    def gather_values(self, indices: np.ndarray) -> np.ndarray:
        return self.dictionary[self.codes[indices]]

    def take(self, indices: np.ndarray) -> Column:
        indices = np.asarray(indices)
        missing = indices < 0
        if missing.any():
            if len(self.codes) == 0:
                return Column.full(DType.STRING, None, len(indices))
            safe = np.where(missing, 0, indices)
            codes = self.codes[safe]
            codes[missing] = 0
            mask = missing.copy()
            if self._mask is not None:
                mask |= self._mask[safe]
            return DictColumn(self.dictionary, codes, mask)
        codes = self.codes[indices]
        mask = None if self._mask is None else self._mask[indices]
        return DictColumn(self.dictionary, codes, mask)

    def filter(self, keep: np.ndarray) -> Column:
        codes = self.codes[keep]
        mask = None if self._mask is None else self._mask[keep]
        return DictColumn(self.dictionary, codes, mask)

    def slice(self, start: int, stop: int) -> Column:
        codes = self.codes[start:stop]
        mask = None if self._mask is None else self._mask[start:stop]
        return DictColumn(self.dictionary, codes, mask)

    def reverse(self) -> Column:
        codes = self.codes[::-1]
        mask = None if self._mask is None else self._mask[::-1]
        return DictColumn(self.dictionary, codes, mask)

    # -- code-level comparison -----------------------------------------------------

    def compare_value(self, op: str, value: str) -> np.ndarray:
        """Vectorized ``column <op> value`` over codes (mask NOT applied).

        The sorted dictionary turns every comparison into one binary search
        plus an integer comparison over the codes; rows under the mask get
        arbitrary results and must be discarded by the caller.
        """
        d = self.dictionary
        codes = self.codes
        if op in ("==", "!="):
            pos = int(np.searchsorted(d, value))
            hit = pos < len(d) and d[pos] == value
            if op == "==":
                return (codes == pos) if hit else np.zeros(len(codes), dtype=bool)
            return (codes != pos) if hit else np.ones(len(codes), dtype=bool)
        if op == "<":
            return codes < int(np.searchsorted(d, value, side="left"))
        if op == "<=":
            return codes < int(np.searchsorted(d, value, side="right"))
        if op == ">":
            return codes >= int(np.searchsorted(d, value, side="right"))
        if op == ">=":
            return codes >= int(np.searchsorted(d, value, side="left"))
        raise TypeMismatchError(f"cannot compare dictionary column with {op!r}")

    def code_bounds(self, lo: int, hi: int) -> tuple[str, str]:
        """Decoded (min, max) for a code range — zone maps in O(1)."""
        return self.dictionary[lo], self.dictionary[hi]

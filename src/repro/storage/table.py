"""ColumnTable: the in-memory table every engine produces and consumes.

A :class:`ColumnTable` is a schema plus one :class:`Column` per attribute.
It is the *physical* counterpart of the logical dimensioned-table model:
engines exchange ColumnTables, the client wraps them in a Collection, and
the federation layer meters their ``nbytes`` when they cross servers.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..core.errors import SchemaError
from ..core.schema import Schema
from ..core.types import DType
from .column import Column


class ColumnTable:
    """An immutable-by-convention columnar table."""

    __slots__ = ("schema", "columns")

    def __init__(self, schema: Schema, columns: Mapping[str, Column]):
        self.schema = schema
        self.columns = dict(columns)
        if set(self.columns) != set(schema.names):
            raise SchemaError(
                f"columns {sorted(self.columns)} do not match schema "
                f"{list(schema.names)}"
            )
        lengths = {len(c) for c in self.columns.values()}
        if len(lengths) > 1:
            raise SchemaError(f"ragged columns: lengths {sorted(lengths)}")
        for attr in schema:
            col = self.columns[attr.name]
            if col.dtype is not attr.dtype:
                raise SchemaError(
                    f"column {attr.name!r} has dtype {col.dtype.name}, "
                    f"schema says {attr.dtype.name}"
                )
            if attr.dimension and col.null_count:
                raise SchemaError(f"dimension {attr.name!r} contains nulls")

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Sequence[Any]]) -> "ColumnTable":
        rows = list(rows)
        columns = {}
        for pos, attr in enumerate(schema):
            columns[attr.name] = Column.from_values(
                attr.dtype, (row[pos] for row in rows)
            )
        return cls(schema, columns)

    @classmethod
    def from_dicts(cls, schema: Schema, rows: Iterable[Mapping[str, Any]]) -> "ColumnTable":
        rows = list(rows)
        columns = {
            attr.name: Column.from_values(attr.dtype, (r[attr.name] for r in rows))
            for attr in schema
        }
        return cls(schema, columns)

    @classmethod
    def empty(cls, schema: Schema) -> "ColumnTable":
        return cls(schema, {a.name: Column.empty(a.dtype) for a in schema})

    @classmethod
    def from_arrays(cls, schema: Schema, arrays: Mapping[str, np.ndarray]) -> "ColumnTable":
        """Zero-copy wrap of numpy arrays (no nulls)."""
        columns = {}
        for attr in schema:
            arr = np.asarray(arrays[attr.name])
            if arr.dtype != attr.dtype.to_numpy():
                arr = arr.astype(attr.dtype.to_numpy())
            columns[attr.name] = Column(attr.dtype, arr)
        return cls(schema, columns)

    # -- protocol -----------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    def __len__(self) -> int:
        return self.num_rows

    def column(self, name: str) -> Column:
        try:
            return self.columns[name]
        except KeyError:
            raise SchemaError(
                f"no column {name!r}; have {list(self.schema.names)}"
            ) from None

    def array(self, name: str) -> np.ndarray:
        """Raw numpy values of a column (caller must know it has no nulls)."""
        return self.column(name).values

    def row(self, index: int) -> tuple:
        return tuple(self.columns[n][index] for n in self.schema.names)

    def iter_rows(self) -> Iterator[tuple]:
        lists = [self.columns[n].to_list() for n in self.schema.names]
        return zip(*lists) if lists else iter(())

    def iter_dicts(self) -> Iterator[dict[str, Any]]:
        names = self.schema.names
        for row in self.iter_rows():
            yield dict(zip(names, row))

    def to_rows(self) -> list[tuple]:
        return list(self.iter_rows())

    @property
    def nbytes(self) -> int:
        """Approximate payload size; the unit metered by transfer channels."""
        return sum(c.nbytes for c in self.columns.values())

    # -- bulk operations ---------------------------------------------------------------

    def take(self, indices: np.ndarray) -> "ColumnTable":
        return ColumnTable(
            self.schema, {n: c.take(indices) for n, c in self.columns.items()}
        )

    def filter(self, keep: np.ndarray) -> "ColumnTable":
        return ColumnTable(
            self.schema, {n: c.filter(keep) for n, c in self.columns.items()}
        )

    def slice(self, start: int, stop: int) -> "ColumnTable":
        return ColumnTable(
            self.schema, {n: c.slice(start, stop) for n, c in self.columns.items()}
        )

    def reverse(self) -> "ColumnTable":
        return ColumnTable(
            self.schema, {n: c.reverse() for n, c in self.columns.items()}
        )

    def select(self, names: Sequence[str]) -> "ColumnTable":
        schema = self.schema.project(names)
        return ColumnTable(schema, {n: self.columns[n] for n in names})

    def rename(self, mapping: Mapping[str, str]) -> "ColumnTable":
        schema = self.schema.rename(mapping)
        columns = {mapping.get(n, n): c for n, c in self.columns.items()}
        return ColumnTable(schema, columns)

    def with_schema(self, schema: Schema) -> "ColumnTable":
        """Re-attach a schema with identical names/types (e.g. retagged dims)."""
        return ColumnTable(schema, self.columns)

    def with_column(self, name: str, dtype: DType, column: Column) -> "ColumnTable":
        from ..core.schema import Attribute

        schema = self.schema.extend(Attribute(name, dtype))
        columns = dict(self.columns)
        columns[name] = column
        return ColumnTable(schema, columns)

    @staticmethod
    def concat(tables: Sequence["ColumnTable"]) -> "ColumnTable":
        if not tables:
            raise SchemaError("cannot concat zero tables")
        schema = tables[0].schema
        columns = {
            n: Column.concat([t.columns[n] for t in tables])
            for n in schema.names
        }
        return ColumnTable(schema, columns)

    # -- comparison helpers (used heavily by tests) ----------------------------------------

    def sort_key(self) -> list[tuple]:
        """Canonical row ordering for order-insensitive comparison."""
        def key(row: tuple) -> tuple:
            return tuple(
                (value is None, _comparable(value)) for value in row
            )
        return sorted(self.iter_rows(), key=key)

    def same_rows(self, other: "ColumnTable", float_tol: float = 0.0) -> bool:
        """Multiset equality of rows (schema names/types must match)."""
        if self.schema.names != other.schema.names:
            return False
        if self.num_rows != other.num_rows:
            return False
        mine, theirs = self.sort_key(), other.sort_key()
        if float_tol == 0.0:
            return mine == theirs
        for a, b in zip(mine, theirs):
            for x, y in zip(a, b):
                if x is None or y is None:
                    if x is not y:
                        return False
                elif isinstance(x, float) or isinstance(y, float):
                    if abs(float(x) - float(y)) > float_tol:
                        return False
                elif x != y:
                    return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ColumnTable({self.schema!r}, rows={self.num_rows})"


def _comparable(value: Any) -> Any:
    if value is None:
        return 0
    if isinstance(value, bool):
        return int(value)
    return value

"""Typed columns: a numpy value array plus an optional validity mask.

The columnar engines (relational, array) and every provider result use this
representation.  Convention: ``mask[i] == True`` means row ``i`` is NULL.
``mask is None`` means the column contains no nulls, which keeps the common
case allocation-free.

Masked slots still hold a placeholder in ``values`` (0 / 0.0 / "" / False);
all operations must consult the mask, never the placeholder.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from ..core.errors import TypeMismatchError
from ..core.types import DType

_FILL = {
    DType.INT64: 0,
    DType.FLOAT64: 0.0,
    DType.BOOL: False,
    DType.STRING: "",
}


class Column:
    """One typed column of a table.

    Construction is O(1): the all-False-mask normalization (an O(n) scan
    that used to run on every kernel-produced column) is deferred to the
    first ``mask`` / ``null_count`` access and cached.  Callers that already
    know the null count (e.g. a kernel that built the mask) pass it via
    ``null_count`` and skip the scan entirely.
    """

    __slots__ = ("dtype", "values", "_mask", "_null_count")

    def __init__(
        self,
        dtype: DType,
        values: np.ndarray,
        mask: np.ndarray | None = None,
        *,
        null_count: int | None = None,
    ):
        self.dtype = dtype
        self.values = values
        if mask is not None and len(mask) != len(values):
            raise TypeMismatchError(
                f"mask length {len(mask)} != values length {len(values)}"
            )
        if null_count == 0:
            mask = None
        self._mask = mask
        self._null_count = 0 if mask is None else null_count

    @property
    def mask(self) -> np.ndarray | None:
        """Validity mask, normalized lazily: all-False masks become None."""
        mask = self._mask
        if mask is not None and self._null_count is None:
            count = int(mask.sum())
            self._null_count = count
            if count == 0:
                self._mask = mask = None
        return mask

    @property
    def null_count(self) -> int:
        count = self._null_count
        if count is None:
            count = int(self._mask.sum())
            self._null_count = count
            if count == 0:
                self._mask = None
        return count

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_values(cls, dtype: DType, items: Iterable[Any]) -> "Column":
        """Build from Python values; ``None`` entries become nulls."""
        items = list(items)
        has_null = any(v is None for v in items)
        fill = _FILL[dtype]
        np_dtype = dtype.to_numpy()
        if has_null:
            mask = np.fromiter((v is None for v in items), dtype=bool, count=len(items))
            cleaned = [fill if v is None else v for v in items]
        else:
            mask = None
            cleaned = items
        try:
            values = np.array(cleaned, dtype=np_dtype)
        except (ValueError, TypeError) as exc:
            raise TypeMismatchError(
                f"cannot build {dtype.name} column from values: {exc}"
            ) from exc
        if values.ndim != 1:
            values = values.reshape(-1)
        return cls(dtype, values, mask)

    @classmethod
    def empty(cls, dtype: DType) -> "Column":
        return cls(dtype, np.empty(0, dtype=dtype.to_numpy()), None)

    @classmethod
    def full(cls, dtype: DType, value: Any, count: int) -> "Column":
        """A constant column; ``value=None`` gives an all-null column."""
        if value is None:
            values = np.full(count, _FILL[dtype], dtype=dtype.to_numpy())
            mask = np.ones(count, dtype=bool) if count else None
            return cls(dtype, values, mask, null_count=count)
        return cls(dtype, np.full(count, value, dtype=dtype.to_numpy()), None)

    # -- protocol ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.to_list())

    def __getitem__(self, index: int) -> Any:
        if self.mask is not None and self.mask[index]:
            return None
        return self._to_python(self.values[index])

    def _to_python(self, value: Any) -> Any:
        if self.dtype is DType.STRING:
            return value
        return value.item() if hasattr(value, "item") else value

    def to_list(self) -> list[Any]:
        """Python values with ``None`` for nulls."""
        if self.dtype is DType.STRING:
            raw = list(self.values)
        else:
            raw = self.values.tolist()
        if self.mask is None:
            return raw
        return [None if m else v for v, m in zip(raw, self.mask)]

    @property
    def nbytes(self) -> int:
        """Approximate in-memory size; used by transfer metering."""
        if self.dtype is DType.STRING:
            base = sum(len(s) for s in self.values) + 8 * len(self.values)
        else:
            base = int(self.values.nbytes)
        if self.mask is not None:
            base += int(self.mask.nbytes)
        return base

    # -- bulk operations -------------------------------------------------------------

    def gather_values(self, indices: np.ndarray) -> np.ndarray:
        """Raw values at ``indices`` (no mask handling; caller owns nulls).

        Dictionary-encoded subclasses override this to decode only the
        gathered rows instead of materializing the whole column.
        """
        return self.values[indices]

    def take(self, indices: np.ndarray) -> "Column":
        """Gather rows by index; ``-1`` indices produce nulls (join padding)."""
        indices = np.asarray(indices)
        missing = indices < 0
        if missing.any():
            if len(self.values) == 0:
                # gathering only nulls from an empty column (outer join
                # against an empty side)
                return Column.full(self.dtype, None, len(indices))
            safe = np.where(missing, 0, indices)
            values = self.values[safe]
            if self.dtype is DType.STRING:
                values = values.copy()
                values[missing] = ""
            mask = missing.copy()
            if self.mask is not None:
                mask |= self.mask[safe]
            return Column(self.dtype, values, mask)
        values = self.values[indices]
        mask = None if self.mask is None else self.mask[indices]
        return Column(self.dtype, values, mask)

    def filter(self, keep: np.ndarray) -> "Column":
        values = self.values[keep]
        mask = None if self.mask is None else self.mask[keep]
        return Column(self.dtype, values, mask)

    def slice(self, start: int, stop: int) -> "Column":
        values = self.values[start:stop]
        mask = None if self.mask is None else self.mask[start:stop]
        return Column(self.dtype, values, mask)

    def reverse(self) -> "Column":
        values = self.values[::-1]
        mask = None if self.mask is None else self.mask[::-1]
        return Column(self.dtype, values, mask)

    def cast(self, to: DType) -> "Column":
        if to is self.dtype:
            return self
        if self.dtype is DType.STRING or to is DType.STRING:
            return Column.from_values(to, [
                None if v is None else _cast_scalar(v, to) for v in self.to_list()
            ])
        values = self.values.astype(to.to_numpy())
        return Column(to, values, None if self.mask is None else self.mask.copy())

    @staticmethod
    def concat(columns: Sequence["Column"]) -> "Column":
        if not columns:
            raise TypeMismatchError("cannot concat zero columns")
        dtype = columns[0].dtype
        if any(c.dtype is not dtype for c in columns):
            raise TypeMismatchError("cannot concat columns of differing types")
        if any(c.mask is not None for c in columns):
            mask = np.concatenate([
                c.mask if c.mask is not None else np.zeros(len(c), dtype=bool)
                for c in columns
            ])
        else:
            mask = None
        # pieces sliced from one dictionary-encoded column (the chunk-scan
        # merge path) concatenate by code, staying encoded
        dictionary = getattr(columns[0], "dictionary", None)
        if dictionary is not None and all(
            getattr(c, "dictionary", None) is dictionary for c in columns
        ):
            from .dictionary import DictColumn

            codes = np.concatenate([c.codes for c in columns])  # type: ignore[attr-defined]
            return DictColumn(dictionary, codes, mask)
        values = np.concatenate([c.values for c in columns])
        return Column(dtype, values, mask)

    def equals(self, other: "Column") -> bool:
        """Exact equality including null positions (floats compared exactly)."""
        if self.dtype is not other.dtype or len(self) != len(other):
            return False
        return self.to_list() == other.to_list()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        preview = self.to_list()[:6]
        more = "..." if len(self) > 6 else ""
        return f"Column<{self.dtype.name}>({preview}{more})"


def _cast_scalar(value: Any, to: DType) -> Any:
    if to is DType.INT64:
        return int(value)
    if to is DType.FLOAT64:
        return float(value)
    if to is DType.BOOL:
        return bool(value)
    return str(value)

"""Client-side query results.

LINQ property 3: "the result of a query is a collection in the client
environment — not the awkwardness of cursors."  A :class:`Collection` is a
fully materialized, iterable, indexable result carrying its schema and the
execution report (transfer metrics, fragment count) of the query that
produced it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from ..storage.table import ColumnTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..federation.executor import ExecutionReport


class Collection:
    """A materialized query result in the client environment."""

    def __init__(self, table: ColumnTable, report: "ExecutionReport | None" = None):
        self._table = table
        self.report = report

    # -- collection protocol ----------------------------------------------------

    def __len__(self) -> int:
        return self._table.num_rows

    def __iter__(self) -> Iterator[tuple]:
        return self._table.iter_rows()

    def __getitem__(self, index: int) -> tuple:
        if not -len(self) <= index < len(self):
            raise IndexError(f"row {index} out of range ({len(self)} rows)")
        if index < 0:
            index += len(self)
        return self._table.row(index)

    def __bool__(self) -> bool:
        return len(self) > 0

    # -- accessors ---------------------------------------------------------------

    @property
    def schema(self):
        return self._table.schema

    @property
    def table(self) -> ColumnTable:
        return self._table

    def rows(self) -> list[tuple]:
        return self._table.to_rows()

    def dicts(self) -> list[dict[str, Any]]:
        return list(self._table.iter_dicts())

    def column(self, name: str) -> list[Any]:
        return self._table.column(name).to_list()

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result."""
        if len(self) != 1 or len(self.schema) != 1:
            raise ValueError(
                f"scalar() needs exactly one row and one column, got "
                f"{len(self)} rows x {len(self.schema)} columns"
            )
        return self._table.row(0)[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        preview = self.rows()[:5]
        more = f" ... ({len(self)} rows)" if len(self) > 5 else ""
        return f"Collection({list(self.schema.names)}: {preview}{more})"

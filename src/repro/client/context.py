"""BigDataContext: the client session tying the whole framework together.

One context holds the federation catalog (which servers exist, which
datasets live where), the logical rewriter, the planner and the executor.
Client code builds queries fluently and collects results; the context plans
them across servers, ships expression trees, and returns collections —
the paper's two framework goals (portability, multi-server applications) as
a single API.

Typical setup::

    ctx = BigDataContext()
    ctx.add_provider(RelationalProvider("sql"))
    ctx.add_provider(ArrayProvider("scidb"))
    ctx.add_provider(LinalgProvider("scalapack"))
    ctx.load("orders", orders_table, on="sql")
    ctx.table("orders").where(col("amount") > 10).collect()
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Iterable, Sequence

from ..core import algebra as A
from ..core import serialize
from ..core.errors import PlanningError
from ..core.rewriter import RewriteOptions, Rewriter
from ..core.schema import Schema
from ..federation.catalog import FederationCatalog
from ..federation.channels import NetworkModel
from ..federation.executor import (
    ExecutionReport, FederatedExecutor, run_iterate_clientside,
)
from ..federation.planner import FederationPlanner
from ..providers.base import Provider
from ..storage.table import ColumnTable
from .collection import Collection
from .query import Query


class BigDataContext:
    """A client session over a federation of back-end servers."""

    def __init__(
        self,
        *,
        routing: str = "direct",
        rewrite: RewriteOptions | None = None,
        network: NetworkModel | None = None,
    ):
        self.catalog = FederationCatalog()
        # the rewriter's cost-based passes read the same federation-wide
        # statistics the planner and each server's lowering pass use
        self.rewriter = Rewriter(rewrite, stats_source=self.catalog.table_stats)
        self.planner = FederationPlanner(self.catalog)
        self.executor = FederatedExecutor(
            self.catalog, routing=routing, network=network
        )
        #: report of the most recent execution (metrics, fragments, ...)
        self.last_report: ExecutionReport | None = None
        # plan cache: serialized logical tree -> physical plan.  Repeat
        # queries (dashboards, loops re-issuing the same shape) skip the
        # rewrite and planning passes entirely.  Invalidated whenever the
        # federation changes (new provider, new dataset).
        self._plan_cache: OrderedDict[tuple[str, str | None], Any] = OrderedDict()
        self._plan_cache_cap = 256
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0

    # -- setup ------------------------------------------------------------------

    def add_provider(self, provider: Provider) -> "BigDataContext":
        self.catalog.add_provider(provider)
        self.invalidate_plan_cache()
        return self

    def load(
        self, name: str, table: ColumnTable, *, on: str | list[str]
    ) -> "BigDataContext":
        """Register a dataset on one or more servers."""
        self.catalog.register_dataset(name, table, on)
        self.invalidate_plan_cache()
        return self

    def load_rows(
        self,
        name: str,
        schema: Schema,
        rows: Iterable[Sequence[Any]],
        *,
        on: str | list[str],
    ) -> "BigDataContext":
        return self.load(name, ColumnTable.from_rows(schema, rows), on=on)

    # -- query building ------------------------------------------------------------

    def table(self, name: str) -> Query:
        """Start a query from a registered dataset."""
        locations = self.catalog.locations(name)
        if not locations:
            raise PlanningError(f"dataset {name!r} is not registered anywhere")
        return Query(A.Scan(name, self.catalog.schema_of(name)), self)

    def inline(self, schema: Schema, rows: Iterable[Sequence[Any]]) -> Query:
        """A query over literal rows shipped inside the expression tree."""
        return Query(
            A.InlineTable(schema, tuple(tuple(r) for r in rows)), self
        )

    def query(self, node: A.Node) -> Query:
        """Wrap a hand-built algebra tree (e.g. from a frontend)."""
        return Query(node, self)

    def sql(self, statement: str) -> Query:
        """Parse a SQL SELECT against the catalog's schemas."""
        from ..frontends.sql import parse_sql

        return Query(parse_sql(statement, self.catalog.schema_of), self)

    def pipeline(self, text: str) -> Query:
        """Parse a dataflow pipeline (``load ... | filter ... | ...``)."""
        from ..frontends.dataflow import parse_pipeline

        return Query(parse_pipeline(text, self.catalog.schema_of), self)

    # -- execution -------------------------------------------------------------------

    def run(
        self, query: Query | A.Node, *, pin_server: str | None = None
    ) -> Collection:
        tree = query.node if isinstance(query, Query) else query
        plan = self._plan_for(tree, pin_server)
        report = self.executor.execute(plan)
        self.last_report = report
        return Collection(report.result, report)

    def _plan_for(self, tree: A.Node, pin_server: str | None):
        """Rewrite + plan ``tree``, memoized on its serialized form.

        Physical plans are immutable (the executor builds fresh input
        bindings per run), so re-executing a cached plan is safe; the cache
        key includes ``pin_server`` because pinning changes fragment
        assignment.
        """
        key = (serialize.dumps(tree), pin_server)
        cached = self._plan_cache.get(key)
        if cached is not None:
            self._plan_cache.move_to_end(key)
            self.plan_cache_hits += 1
            return cached
        self.plan_cache_misses += 1
        tree.schema  # validate before optimizing
        optimized = self.rewriter.rewrite(tree)
        plan = self.planner.plan(optimized, pin_server=pin_server)
        self._plan_cache[key] = plan
        while len(self._plan_cache) > self._plan_cache_cap:
            self._plan_cache.popitem(last=False)
        return plan

    def invalidate_plan_cache(self) -> None:
        """Drop all cached physical plans (topology or data layout changed)."""
        self._plan_cache.clear()

    def run_clientside_loop(
        self, query: Query | A.Node, *, pin_server: str | None = None
    ) -> Collection:
        """Execute an ``Iterate`` with a client-driven loop (E5 baseline)."""
        tree = query.node if isinstance(query, Query) else query
        if not isinstance(tree, A.Iterate):
            raise PlanningError("run_clientside_loop needs an Iterate at the root")
        report = run_iterate_clientside(
            tree, self.planner, self.executor, pin_server=pin_server
        )
        self.last_report = report
        return Collection(report.result, report)

    def explain(self, query: Query | A.Node, *, physical: bool = False) -> str:
        """The optimized tree and its fragment assignment, as text.

        With ``physical=True``, each fragment also shows the physical plan
        its server lowered the fragment tree to — operators, per-operator
        properties (estimated rows, ordering, parallelism) and abstract
        cost.
        """
        tree = query.node if isinstance(query, Query) else query
        from ..federation.cost import estimator_for

        return self._plan_for(tree, None).describe(
            physical=physical, estimator=estimator_for(self.catalog)
        )

    # -- introspection ----------------------------------------------------------------

    @property
    def providers(self) -> list[Provider]:
        return self.catalog.providers

    def coverage_matrix(self) -> dict[str, dict[str, bool]]:
        """operator -> provider -> supported (class-level capabilities)."""
        out: dict[str, dict[str, bool]] = {}
        for op in A.ALL_OPERATORS:
            out[op.__name__] = {
                p.name: op.__name__ in p.capabilities
                for p in self.catalog.providers
            }
        return out

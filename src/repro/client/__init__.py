"""Subpackage of repro."""

"""The fluent client query builder — the LINQ-like surface language.

A :class:`Query` wraps an algebra tree and a bound context; every method
builds a larger tree lazily, and ``collect()`` ships the whole expression
tree for federated execution.  Examples::

    high_value = (ctx.table("orders")
                    .where(col("amount") > 100.0)
                    .join(ctx.table("customers"), on=[("cust", "cid")])
                    .aggregate(["country"], total=("sum", col("amount")))
                    .order_by("total", ascending=False)
                    .collect())

    smoothed = (ctx.table("sensor")
                  .window({"x": 1, "y": 1}, v=("mean", col("v")))
                  .collect())
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from ..core import algebra as A
from ..core.errors import AlgebraError
from ..core.expressions import Expr

if TYPE_CHECKING:  # pragma: no cover
    from .collection import Collection
    from .context import BigDataContext

AggArg = tuple[str, Expr | None]


def _agg_specs(kwargs: Mapping[str, AggArg]) -> tuple[A.AggSpec, ...]:
    if not kwargs:
        raise AlgebraError(
            "supply at least one aggregate as name=(func, expr), e.g. "
            "total=('sum', col('amount')) or n=('count', None)"
        )
    return tuple(
        A.AggSpec(name, func, arg) for name, (func, arg) in kwargs.items()
    )


class Query:
    """A lazily-built algebra tree bound to a context."""

    def __init__(self, node: A.Node, context: "BigDataContext | None" = None):
        self.node = node
        self._context = context

    def _wrap(self, node: A.Node) -> "Query":
        return Query(node, self._context)

    # -- schema introspection -----------------------------------------------------

    @property
    def schema(self):
        return self.node.schema

    # -- relational verbs -----------------------------------------------------------

    def where(self, predicate: Expr) -> "Query":
        return self._wrap(A.Filter(self.node, predicate))

    def select(self, *names: str) -> "Query":
        return self._wrap(A.Project(self.node, names))

    def derive(self, **exprs: Expr) -> "Query":
        """Append computed columns: ``q.derive(taxed=col("amount") * 1.1)``."""
        return self._wrap(A.Extend(
            self.node, tuple(exprs), tuple(exprs.values())
        ))

    def rename(self, **mapping: str) -> "Query":
        """``q.rename(old="new")``."""
        return self._wrap(A.Rename(
            self.node, tuple((old, new) for old, new in mapping.items())
        ))

    def join(
        self,
        other: "Query | A.Node",
        on: Sequence[tuple[str, str] | str],
        how: str = "inner",
    ) -> "Query":
        """Equi-join; ``on`` entries are (left, right) pairs or shared names."""
        pairs = tuple(
            (k, k) if isinstance(k, str) else (k[0], k[1]) for k in on
        )
        return self._wrap(A.Join(self.node, _node_of(other), pairs, how))

    def product(self, other: "Query | A.Node") -> "Query":
        return self._wrap(A.Product(self.node, _node_of(other)))

    def aggregate(
        self, group_by: Sequence[str] = (), **aggs: AggArg
    ) -> "Query":
        """Group and aggregate: ``q.aggregate(["cust"], n=("count", None))``."""
        return self._wrap(A.Aggregate(
            self.node, tuple(group_by), _agg_specs(aggs)
        ))

    def order_by(self, *keys: str, ascending: bool | Sequence[bool] = True) -> "Query":
        if isinstance(ascending, bool):
            flags = tuple(ascending for _ in keys)
        else:
            flags = tuple(ascending)
        return self._wrap(A.Sort(self.node, keys, flags))

    def limit(self, count: int, offset: int = 0) -> "Query":
        return self._wrap(A.Limit(self.node, count, offset))

    def reverse(self) -> "Query":
        return self._wrap(A.Reverse(self.node))

    def distinct(self) -> "Query":
        return self._wrap(A.Distinct(self.node))

    def union(self, other: "Query | A.Node") -> "Query":
        return self._wrap(A.Union(self.node, _node_of(other)))

    def intersect(self, other: "Query | A.Node") -> "Query":
        return self._wrap(A.Intersect(self.node, _node_of(other)))

    def except_(self, other: "Query | A.Node") -> "Query":
        return self._wrap(A.Except(self.node, _node_of(other)))

    # -- dimension-aware verbs ----------------------------------------------------------

    def as_dims(self, *dims: str) -> "Query":
        return self._wrap(A.AsDims(self.node, dims))

    def slice_dims(self, **bounds: tuple[int, int]) -> "Query":
        """``q.slice_dims(x=(0, 99), y=(10, 20))`` — inclusive ranges."""
        return self._wrap(A.SliceDims(
            self.node, tuple((d, lo, hi) for d, (lo, hi) in bounds.items())
        ))

    def shift(self, dim: str, offset: int) -> "Query":
        return self._wrap(A.ShiftDim(self.node, dim, offset))

    def regrid(self, factors: Mapping[str, int], **aggs: AggArg) -> "Query":
        return self._wrap(A.Regrid(
            self.node, tuple(factors.items()), _agg_specs(aggs)
        ))

    def window(self, radii: Mapping[str, int], **aggs: AggArg) -> "Query":
        return self._wrap(A.Window(
            self.node, tuple(radii.items()), _agg_specs(aggs)
        ))

    def reduce_dims(self, keep: Sequence[str] = (), **aggs: AggArg) -> "Query":
        return self._wrap(A.ReduceDims(
            self.node, tuple(keep), _agg_specs(aggs)
        ))

    def transpose(self, *order: str) -> "Query":
        return self._wrap(A.TransposeDims(self.node, order))

    def matmul(self, other: "Query | A.Node") -> "Query":
        from ..core.intents import INTENT_MATMUL

        return self._wrap(
            A.MatMul(self.node, _node_of(other), intent=INTENT_MATMUL)
        )

    def cell_join(self, other: "Query | A.Node") -> "Query":
        return self._wrap(A.CellJoin(self.node, _node_of(other)))

    # -- control iteration ----------------------------------------------------------------

    def iterate(
        self,
        body: Callable[["Query"], "Query"],
        *,
        until: tuple[str, float] | None = None,
        max_iter: int = 100,
        norm: str = "linf",
        strict: bool = False,
        var: str = "state",
    ) -> "Query":
        """Fixpoint loop: ``body`` maps the loop state to the next state.

        ``until=("rank", 1e-6)`` stops when the L∞ (or L1) change of that
        attribute drops below the tolerance; omitted, the loop runs exactly
        ``max_iter`` times.
        """
        state = Query(A.LoopVar(var, self.node.schema), self._context)
        body_query = body(state)
        stop = (
            A.Convergence(until[0], until[1], norm)
            if until is not None else A.Convergence()
        )
        return self._wrap(A.Iterate(
            self.node, body_query.node, var=var, stop=stop,
            max_iter=max_iter, strict=strict,
        ))

    # -- intent & execution --------------------------------------------------------------

    def with_intent(self, intent: str) -> "Query":
        return self._wrap(self.node.with_intent(intent))

    def collect(self, *, on: str | None = None) -> "Collection":
        """Execute the whole tree (optionally pinned to one server)."""
        if self._context is None:
            raise AlgebraError(
                "query is not bound to a context; use BigDataContext.table()"
            )
        return self._context.run(self, pin_server=on)

    def to_list(self) -> list[tuple]:
        return self.collect().rows()

    def explain(self, *, physical: bool = False) -> str:
        """The federated plan; ``physical=True`` adds each server's lowered
        physical plan with per-operator properties."""
        if self._context is None:
            raise AlgebraError("query is not bound to a context")
        return self._context.explain(self, physical=physical)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Query({self.node!r})"


def _node_of(other: "Query | A.Node") -> A.Node:
    return other.node if isinstance(other, Query) else other

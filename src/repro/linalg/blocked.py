"""Blocked (tiled) dense matrices — the ScaLAPACK stand-in's storage.

A :class:`BlockedMatrix` partitions an ``n x m`` float64 matrix into square
tiles of side ``block_size`` (edge tiles clip).  All kernels in
:mod:`repro.linalg.kernels` operate tile-by-tile, the way a distributed
dense linear algebra library schedules work per block — which is what makes
the blocked-vs-naive benchmarks meaningful on a single machine.

Conversions to and from the framework's dimensioned tables use (row, col)
dimension attributes and a single float value attribute; absent cells are
zero (dense semantics).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..core.errors import ExecutionError, SchemaError
from ..core.schema import Attribute, Schema
from ..core.types import DType
from ..storage.column import Column
from ..storage.table import ColumnTable

DEFAULT_BLOCK = 64


class BlockedMatrix:
    """A dense float64 matrix stored as a grid of tiles."""

    def __init__(self, shape: tuple[int, int], block_size: int = DEFAULT_BLOCK):
        if shape[0] < 0 or shape[1] < 0:
            raise ExecutionError(f"bad matrix shape {shape}")
        if block_size < 1:
            raise ExecutionError("block size must be >= 1")
        self.shape = (int(shape[0]), int(shape[1]))
        self.block_size = int(block_size)
        self.blocks: dict[tuple[int, int], np.ndarray] = {}

    # -- geometry ---------------------------------------------------------------

    @property
    def grid(self) -> tuple[int, int]:
        b = self.block_size
        return (-(-self.shape[0] // b), -(-self.shape[1] // b))

    def block_shape(self, bi: int, bj: int) -> tuple[int, int]:
        b = self.block_size
        rows = min(b, self.shape[0] - bi * b)
        cols = min(b, self.shape[1] - bj * b)
        return rows, cols

    def block(self, bi: int, bj: int) -> np.ndarray:
        """The tile at grid position (bi, bj); zeros if never written."""
        tile = self.blocks.get((bi, bj))
        if tile is None:
            return np.zeros(self.block_shape(bi, bj))
        return tile

    def set_block(self, bi: int, bj: int, tile: np.ndarray) -> None:
        expected = self.block_shape(bi, bj)
        if tile.shape != expected:
            raise ExecutionError(
                f"tile ({bi},{bj}) must have shape {expected}, got {tile.shape}"
            )
        self.blocks[(bi, bj)] = tile

    def iter_blocks(self) -> Iterator[tuple[int, int, np.ndarray]]:
        rows, cols = self.grid
        for bi in range(rows):
            for bj in range(cols):
                yield bi, bj, self.block(bi, bj)

    # -- conversions -------------------------------------------------------------

    @classmethod
    def from_dense(cls, dense: np.ndarray, block_size: int = DEFAULT_BLOCK) -> "BlockedMatrix":
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ExecutionError(f"need a 2-d array, got ndim={dense.ndim}")
        out = cls(dense.shape, block_size)
        b = block_size
        rows, cols = out.grid
        for bi in range(rows):
            for bj in range(cols):
                tile = dense[bi * b:(bi + 1) * b, bj * b:(bj + 1) * b]
                if tile.any():
                    out.blocks[(bi, bj)] = np.ascontiguousarray(tile)
        return out

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape)
        b = self.block_size
        for (bi, bj), tile in self.blocks.items():
            dense[bi * b:bi * b + tile.shape[0], bj * b:bj * b + tile.shape[1]] = tile
        return dense

    @classmethod
    def from_table(
        cls, table: ColumnTable, block_size: int = DEFAULT_BLOCK
    ) -> "BlockedMatrix":
        """Build from a dimensioned (row, col, value) table.

        Coordinates must be non-negative (dense matrices are 0-based);
        missing cells are zero; null values are rejected — dense linear
        algebra has no null story.
        """
        schema = table.schema
        dims = schema.dimension_names
        values = schema.value_names
        if len(dims) != 2 or len(values) != 1:
            raise SchemaError(
                f"matrix table needs 2 dimensions and 1 value attribute, got "
                f"dims={list(dims)}, values={list(values)}"
            )
        value_col = table.column(values[0])
        if value_col.null_count:
            raise ExecutionError("matrix values may not be null")
        if table.num_rows == 0:
            return cls((0, 0), block_size)
        rows = table.array(dims[0])
        cols = table.array(dims[1])
        if rows.min() < 0 or cols.min() < 0:
            raise ExecutionError(
                "matrix coordinates must be non-negative; shift dimensions first"
            )
        shape = (int(rows.max()) + 1, int(cols.max()) + 1)
        dense = np.zeros(shape)
        dense[rows, cols] = value_col.values.astype(np.float64)
        return cls.from_dense(dense, block_size)

    def to_table(
        self,
        row_name: str = "i",
        col_name: str = "j",
        value_name: str = "v",
        *,
        keep_zeros: bool = False,
    ) -> ColumnTable:
        """Emit as a dimensioned table; zero cells are dropped by default."""
        schema = Schema([
            Attribute(row_name, DType.INT64, dimension=True),
            Attribute(col_name, DType.INT64, dimension=True),
            Attribute(value_name, DType.FLOAT64),
        ])
        dense = self.to_dense()
        if keep_zeros:
            rows, cols = np.indices(self.shape)
            rows, cols = rows.reshape(-1), cols.reshape(-1)
            vals = dense.reshape(-1)
        else:
            rows, cols = np.nonzero(dense)
            vals = dense[rows, cols]
        return ColumnTable(schema, {
            row_name: Column(DType.INT64, rows.astype(np.int64)),
            col_name: Column(DType.INT64, cols.astype(np.int64)),
            value_name: Column(DType.FLOAT64, vals.astype(np.float64)),
        })

    def copy(self) -> "BlockedMatrix":
        out = BlockedMatrix(self.shape, self.block_size)
        out.blocks = {k: v.copy() for k, v in self.blocks.items()}
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BlockedMatrix(shape={self.shape}, block={self.block_size}, "
            f"tiles={len(self.blocks)}/{self.grid[0] * self.grid[1]})"
        )

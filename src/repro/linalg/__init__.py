"""Subpackage of repro."""

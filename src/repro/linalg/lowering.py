"""Logical→physical lowering for the blocked linear-algebra provider.

The linalg server executes only ``MatMul`` chains, transposes and renames
over 2-d matrices.  Lowering threads the (row, col, value) names each
matrix travels under *statically*: a ``Rename`` only remaps names (so it
lowers to nothing), and a ``TransposeDims`` whose order already matches
the child is the identity.  Any other operator is a translation error —
raised here, before execution, exactly as the provider used to raise it.
"""

from __future__ import annotations

from ..core import algebra as A
from ..core.errors import TranslationError
from ..exec.physical.base import PhysOp, PhysPlan, PhysProps, props_for
from ..exec.physical.linalg import (
    PhysBlockedMatMul, PhysBlockedTranspose, PhysMatrixLiteral,
    PhysMatrixSource, PhysMatrixToTable,
)
from ..opt.estimator import CardinalityEstimator

Names = tuple[str, str, str]


def lower_linalg(tree: A.Node, block_size: int, stats_source=None) -> PhysPlan:
    """Lower a matrix-algebra tree to a blocked physical plan."""
    estimator = CardinalityEstimator(stats_source)
    op, names = _lower(tree, block_size, estimator)
    root = PhysMatrixToTable(
        op, names, tree.schema, _props(tree, estimator)
    )
    return PhysPlan(root, engine="linalg")


def _props(node: A.Node, estimator: CardinalityEstimator) -> PhysProps:
    """Props with the shared estimate (non-zero cells in COO form)."""
    est = estimator.estimate(node)
    return props_for(
        node.schema, max(int(est.rows), 0), est_source=est.source
    )


def _lower(
    node: A.Node, block_size: int, estimator: CardinalityEstimator
) -> tuple[PhysOp, Names]:
    if isinstance(node, A.Scan):
        schema = node.schema
        names = (*schema.dimension_names, schema.value_names[0])
        op = PhysMatrixSource(
            node.name, schema, _props(node, estimator), block_size=block_size
        )
        return op, names
    if isinstance(node, A.InlineTable):
        schema = node.schema
        names = (*schema.dimension_names, schema.value_names[0])
        op = PhysMatrixLiteral(
            node.table_schema, node.rows, schema,
            _props(node, estimator), block_size=block_size,
        )
        return op, names
    if isinstance(node, A.MatMul):
        left, lnames = _lower(node.left, block_size, estimator)
        right, rnames = _lower(node.right, block_size, estimator)
        op = PhysBlockedMatMul(
            node.schema, _props(node, estimator), (left, right)
        )
        return op, (lnames[0], rnames[1], lnames[2])
    if isinstance(node, A.TransposeDims):
        child, names = _lower(node.child, block_size, estimator)
        if node.order == node.child.schema.dimension_names:
            return child, names  # identity order: physically nothing to do
        op = PhysBlockedTranspose(
            node.schema, _props(node, estimator), (child,)
        )
        return op, (names[1], names[0], names[2])
    if isinstance(node, A.Rename):
        child, names = _lower(node.child, block_size, estimator)
        mapping = dict(node.mapping)
        return child, tuple(mapping.get(n, n) for n in names)
    raise TranslationError(
        f"linalg provider cannot execute {node.op_name}"
    )

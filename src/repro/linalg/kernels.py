"""Blocked dense linear-algebra kernels (the ScaLAPACK-like service).

Every kernel schedules work tile-by-tile over :class:`BlockedMatrix`
operands: matmul accumulates ``C[i,j] += A[i,k] @ B[k,j]``, LU is a
right-looking blocked factorization with partial pivoting, and the solvers
forward/back-substitute panel by panel.  ``power_iteration`` builds the
dominant-eigenpair loop the paper's "control iteration" discussion motivates.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import ConvergenceError, ExecutionError
from .blocked import BlockedMatrix


def matmul(a: BlockedMatrix, b: BlockedMatrix) -> BlockedMatrix:
    """Blocked C = A @ B; skips all-zero tiles (sparse-friendly)."""
    if a.shape[1] != b.shape[0]:
        raise ExecutionError(
            f"matmul shape mismatch: {a.shape} @ {b.shape}"
        )
    if a.block_size != b.block_size:
        b = BlockedMatrix.from_dense(b.to_dense(), a.block_size)
    out = BlockedMatrix((a.shape[0], b.shape[1]), a.block_size)
    for (bi, bk), a_tile in a.blocks.items():
        for bj in range(b.grid[1]):
            b_tile = b.blocks.get((bk, bj))
            if b_tile is None:
                continue
            acc = out.blocks.get((bi, bj))
            product = a_tile @ b_tile
            if acc is None:
                out.blocks[(bi, bj)] = product
            else:
                acc += product
    return out


def transpose(a: BlockedMatrix) -> BlockedMatrix:
    out = BlockedMatrix((a.shape[1], a.shape[0]), a.block_size)
    for (bi, bj), tile in a.blocks.items():
        out.blocks[(bj, bi)] = np.ascontiguousarray(tile.T)
    return out


def add(a: BlockedMatrix, b: BlockedMatrix, beta: float = 1.0) -> BlockedMatrix:
    """A + beta * B, tile-wise."""
    if a.shape != b.shape:
        raise ExecutionError(f"add shape mismatch: {a.shape} vs {b.shape}")
    if a.block_size != b.block_size:
        b = BlockedMatrix.from_dense(b.to_dense(), a.block_size)
    out = BlockedMatrix(a.shape, a.block_size)
    keys = set(a.blocks) | set(b.blocks)
    for key in keys:
        out.blocks[key] = a.block(*key) + beta * b.block(*key)
    return out


def scale(a: BlockedMatrix, alpha: float) -> BlockedMatrix:
    out = BlockedMatrix(a.shape, a.block_size)
    for key, tile in a.blocks.items():
        out.blocks[key] = tile * alpha
    return out


def frobenius_norm(a: BlockedMatrix) -> float:
    total = 0.0
    for tile in a.blocks.values():
        total += float((tile * tile).sum())
    return float(np.sqrt(total))


def inf_norm(a: BlockedMatrix) -> float:
    """Maximum absolute row sum."""
    row_sums = np.zeros(a.shape[0])
    b = a.block_size
    for (bi, _), tile in a.blocks.items():
        row_sums[bi * b:bi * b + tile.shape[0]] += np.abs(tile).sum(axis=1)
    return float(row_sums.max()) if len(row_sums) else 0.0


def lu_factor(a: BlockedMatrix) -> tuple[BlockedMatrix, BlockedMatrix, np.ndarray]:
    """Blocked LU with partial pivoting: P A = L U.

    Returns (L, U, perm) where ``perm`` maps output row -> input row.
    Right-looking algorithm: factor a diagonal panel, update the trailing
    submatrix panel-by-panel.
    """
    n, m = a.shape
    if n != m:
        raise ExecutionError(f"LU needs a square matrix, got {a.shape}")
    lu = a.to_dense().copy()
    perm = np.arange(n)
    b = a.block_size
    for k0 in range(0, n, b):
        k1 = min(k0 + b, n)
        # factor panel lu[k0:, k0:k1] with partial pivoting
        for k in range(k0, k1):
            pivot = k + int(np.argmax(np.abs(lu[k:, k])))
            if abs(lu[pivot, k]) < 1e-300:
                raise ExecutionError("matrix is singular to working precision")
            if pivot != k:
                lu[[k, pivot]] = lu[[pivot, k]]
                perm[[k, pivot]] = perm[[pivot, k]]
            lu[k + 1:, k] /= lu[k, k]
            if k + 1 < k1:
                lu[k + 1:, k + 1:k1] -= np.outer(lu[k + 1:, k], lu[k, k + 1:k1])
        if k1 < n:
            # triangular solve for the U panel, then trailing update
            lower = np.tril(lu[k0:k1, k0:k1], -1) + np.eye(k1 - k0)
            lu[k0:k1, k1:] = np.linalg.solve(lower, lu[k0:k1, k1:])
            lu[k1:, k1:] -= lu[k1:, k0:k1] @ lu[k0:k1, k1:]
    lower_dense = np.tril(lu, -1) + np.eye(n)
    upper_dense = np.triu(lu)
    return (
        BlockedMatrix.from_dense(lower_dense, a.block_size),
        BlockedMatrix.from_dense(upper_dense, a.block_size),
        perm,
    )


def solve_triangular(a: BlockedMatrix, rhs: np.ndarray, *, lower: bool) -> np.ndarray:
    """Panel-wise forward/back substitution for a triangular matrix."""
    n = a.shape[0]
    x = np.array(rhs, dtype=np.float64).copy()
    if x.ndim == 1:
        x = x.reshape(-1, 1)
    b = a.block_size
    dense = a.to_dense()
    panels = range(0, n, b) if lower else range(((n - 1) // b) * b, -1, -b)
    for p0 in panels:
        p1 = min(p0 + b, n)
        block = dense[p0:p1, p0:p1]
        if lower:
            x[p0:p1] = np.linalg.solve(block, x[p0:p1])
            if p1 < n:
                x[p1:] -= dense[p1:, p0:p1] @ x[p0:p1]
        else:
            x[p0:p1] = np.linalg.solve(block, x[p0:p1])
            if p0 > 0:
                x[:p0] -= dense[:p0, p0:p1] @ x[p0:p1]
    return x if np.asarray(rhs).ndim > 1 else x.reshape(-1)


def solve(a: BlockedMatrix, rhs: np.ndarray) -> np.ndarray:
    """Solve A x = rhs via blocked LU."""
    lower, upper, perm = lu_factor(a)
    permuted = np.asarray(rhs, dtype=np.float64)[perm]
    y = solve_triangular(lower, permuted, lower=True)
    return solve_triangular(upper, y, lower=False)


def matvec(a: BlockedMatrix, x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    if a.shape[1] != len(x):
        raise ExecutionError(f"matvec shape mismatch: {a.shape} @ ({len(x)},)")
    out = np.zeros(a.shape[0])
    b = a.block_size
    for (bi, bj), tile in a.blocks.items():
        out[bi * b:bi * b + tile.shape[0]] += tile @ x[bj * b:bj * b + tile.shape[1]]
    return out


def power_iteration(
    a: BlockedMatrix,
    *,
    tolerance: float = 1e-9,
    max_iter: int = 1000,
    seed: int = 0,
) -> tuple[float, np.ndarray, int]:
    """Dominant eigenpair by repeated matvec — control iteration in miniature.

    Returns (eigenvalue, unit eigenvector, iterations used).
    """
    n = a.shape[0]
    if n != a.shape[1]:
        raise ExecutionError(f"power iteration needs a square matrix, got {a.shape}")
    rng = np.random.default_rng(seed)
    x = rng.normal(size=n)
    x /= np.linalg.norm(x)
    eigenvalue = 0.0
    for iteration in range(1, max_iter + 1):
        y = matvec(a, x)
        norm = np.linalg.norm(y)
        if norm == 0.0:
            return 0.0, x, iteration
        y /= norm
        new_eigenvalue = float(y @ matvec(a, y))
        if abs(new_eigenvalue - eigenvalue) <= tolerance:
            return new_eigenvalue, y, iteration
        eigenvalue, x = new_eigenvalue, y
    raise ConvergenceError(
        f"power iteration did not converge in {max_iter} iterations"
    )

"""Abstract operator and plan costing on top of the estimator.

Costs are unit-free "row visits": good enough for relative comparisons
(which join order, which server placement), not wall-clock predictions.
The logical-side functions take a :class:`~repro.opt.estimator.CardinalityEstimator`
so every row count they use carries the shared provenance; the
physical-side functions read the estimates lowering stamped into
``PhysProps``.
"""

from __future__ import annotations

from ..core import algebra as A
from ..core.schema import Schema
from ..core.types import DType
from .estimator import DEFAULT_ROWS, CardinalityEstimator

#: Windows re-visit each cell once per covered neighbour.
WINDOW_COST_FACTOR = 3.0


def row_width(schema: Schema) -> int:
    """Estimated bytes per row."""
    width = 0
    for attr in schema:
        if attr.dtype is DType.STRING:
            width += 24
        elif attr.dtype is DType.BOOL:
            width += 1
        else:
            width += 8
    return max(width, 1)


def estimated_rows(node: A.Node, estimator: CardinalityEstimator) -> int:
    """Rough output cardinality of a subtree (non-negative integer)."""
    return max(int(estimator.rows(node)), 0)


def estimated_bytes(node: A.Node, estimator: CardinalityEstimator) -> int:
    return estimated_rows(node, estimator) * row_width(node.schema)


def operator_cost(node: A.Node, estimator: CardinalityEstimator) -> float:
    """Abstract per-operator work estimate (row-visits)."""
    rows = estimator.rows(node)
    if isinstance(node, A.Sort):
        return rows * 4.0
    if isinstance(node, A.Window):
        sides = 1.0
        for _, radius in node.sizes:
            sides *= (2 * radius + 1)
        return rows * sides
    if isinstance(node, A.Join):
        return estimator.rows(node.left) + estimator.rows(node.right) + rows
    if isinstance(node, A.MatMul):
        return estimator.rows(node.left) * estimator.rows(node.right) ** 0.5
    if isinstance(node, A.Iterate):
        inner = sum(operator_cost(n, estimator) for n in node.body.walk())
        return inner * min(node.max_iter, 20)
    return rows


def plan_cost(node: A.Node, estimator: CardinalityEstimator) -> float:
    """Total abstract cost of a logical tree (sum over its operators)."""
    return sum(operator_cost(n, estimator) for n in node.walk())


def physical_op_cost(op) -> float:
    """Abstract work estimate for one lowered physical operator.

    Row estimates come from lowering (catalog statistics threaded through
    the plan's :class:`~repro.exec.physical.base.PhysProps`); operators
    whose inputs have unknown cardinality fall back to the same default
    the logical estimator uses for fragment inputs.
    """
    rows = op.props.est_rows
    if rows is None:
        rows = DEFAULT_ROWS
    return float(rows) * op.cost_weight


def physical_plan_cost(plan) -> float:
    """Total abstract cost of a lowered physical plan (sum over operators)."""
    return sum(physical_op_cost(op) for op in plan.walk())


def render_estimates(node: A.Node, estimator: CardinalityEstimator) -> str:
    """An indented logical tree with per-node estimates and provenance.

    Each line reads ``Op  [rows~N sel~0.33 stats]`` — ``stats`` means the
    number is grounded in dataset statistics, ``default`` that a textbook
    fallback filled the gap.  EXPLAIN prints this above the fragment
    assignment so mis-estimates are visible before looking at any
    physical plan.
    """
    lines: list[str] = []

    def visit(n: A.Node, depth: int) -> None:
        est = estimator.estimate(n)
        label = n.op_name
        if isinstance(n, A.Scan):
            label += f"({n.name})"
        parts = [f"rows~{max(int(est.rows), 0)}"]
        if est.selectivity is not None:
            parts.append(f"sel~{est.selectivity:.2f}")
        parts.append(est.source)
        lines.append("  " * depth + label + "  [" + " ".join(parts) + "]")
        for child in n.children():
            visit(child, depth + 1)

    visit(node, 0)
    return "\n".join(lines)

"""repro.opt — the single statistics-and-cost layer.

Every cardinality, selectivity and cost estimate in the framework comes
from this package:

* :mod:`repro.opt.stats` — table/column statistics (row counts, distinct
  counts via dictionary encoding, min/max via zone maps, null counts)
  and how to derive them from stored datasets;
* :mod:`repro.opt.estimator` — the one cardinality/selectivity derivation
  pass over logical algebra trees, with per-estimate provenance
  ("stats" when grounded in real dataset statistics, "default" when a
  textbook fallback filled the gap);
* :mod:`repro.opt.cost` — abstract operator/plan costing on top of the
  estimator (row widths, per-operator work, physical-plan cost);
* :mod:`repro.opt.rewrite` — cost-based logical rewrites (join
  reordering, conjunct ordering, eager-aggregation pushdown) driven by
  the estimator and invoked from :class:`repro.core.rewriter.Rewriter`.

Consumers — the relational lowering pass, the federation planner and
cost adapter, and the client rewriter — hold no estimation logic of
their own; they construct a :class:`~repro.opt.estimator.CardinalityEstimator`
over a stats source and read estimates off it.
"""

from .estimator import CardinalityEstimator, Estimate
from .stats import ColumnStats, StatsSource, TableStats

__all__ = [
    "CardinalityEstimator",
    "ColumnStats",
    "Estimate",
    "StatsSource",
    "TableStats",
]

"""Cost-based logical rewrites, driven by the shared estimator.

Three passes, each invoked by :class:`repro.core.rewriter.Rewriter` after
the rule-based fixpoint (and each individually switchable through
``RewriteOptions`` for ablation):

* :func:`reorder_joins` — flattens left-deep chains of inner equi-joins
  and greedily re-orders them by estimated intermediate size;
* :func:`order_conjuncts` — sorts the conjuncts of every filter predicate
  by estimated selectivity, cheapest-to-pass first;
* :func:`push_aggregates` — eager aggregation: partially aggregates one
  join input below the join when the estimated group count is much
  smaller than the input.

All three are *estimate-gated*: a rewrite is applied only when the
estimator says it strictly helps, and join reordering / aggregate
pushdown additionally require stats-grounded estimates, so with no
statistics source every pass leaves the tree untouched.  Intent-tagged
nodes (desideratum 3) are never restructured.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from ..core import algebra as A
from ..core.errors import AlgebraError, SchemaError
from ..core.expressions import BinOp, Col, Expr
from .estimator import CardinalityEstimator, split_conjuncts

#: Eager aggregation must shrink its input at least this much to pay for
#: the extra operator.
PUSHDOWN_BENEFIT = 0.5

_PUSHABLE_FUNCS = frozenset({"sum", "min", "max", "count"})


def _map_children(
    node: A.Node, fn: Callable[[A.Node], A.Node]
) -> A.Node:
    children = node.children()
    if not children:
        return node
    rewritten = tuple(fn(c) for c in children)
    if all(a is b for a, b in zip(rewritten, children)):
        return node
    return node.with_children(rewritten)


def conjoin(parts: list[Expr]) -> Expr:
    out = parts[0]
    for part in parts[1:]:
        out = BinOp("and", out, part)
    return out


# --------------------------------------------------------------------------
# Join reordering
# --------------------------------------------------------------------------


def reorder_joins(node: A.Node, estimator: CardinalityEstimator) -> A.Node:
    """Greedily reorder left-deep inner-join chains by intermediate size.

    The base relation stays fixed (it anchors the output row order for
    left-major execution); the remaining relations are joined smallest
    estimated intermediate first, subject to their key columns being
    available.  The rewrite is applied only when the estimated total of
    intermediate sizes strictly drops, and the original column order is
    restored with a projection.
    """
    node = _map_children(node, lambda c: reorder_joins(c, estimator))
    flat = _flatten_inner_chain(node)
    if flat is None:
        return node
    base, steps, joins = flat
    if len(steps) < 2:
        return node
    original_total = sum(estimator.rows(j) for j in joins)
    try:
        reordered, new_total = _greedy_order(base, steps, estimator)
    except (AlgebraError, SchemaError):
        return node
    if reordered is None or new_total >= original_total:
        return node
    try:
        if reordered.schema.names != node.schema.names:
            reordered = A.Project(reordered, node.schema.names)
        if reordered.schema != node.schema:
            return node
    except (AlgebraError, SchemaError):
        return node
    return reordered


def _flatten_inner_chain(node: A.Node):
    """``(base, [(right, on), ...], [join nodes])`` of a reorderable chain.

    Only untagged inner joins participate; the first tagged or non-inner
    join terminates the chain (its subtree becomes the base).
    """
    if not (
        isinstance(node, A.Join)
        and node.how == "inner"
        and node.intent is None
    ):
        return None
    steps: list[tuple[A.Node, tuple[tuple[str, str], ...]]] = []
    joins: list[A.Join] = []
    cur: A.Node = node
    while True:
        if (
            isinstance(cur, A.Join)
            and cur.how == "inner"
            and cur.intent is None
        ):
            steps.append((cur.right, cur.on))
            joins.append(cur)
            cur = cur.left
        elif (
            isinstance(cur, A.Project)
            and cur.intent is None
            and isinstance(cur.child, A.Join)
            and cur.child.how == "inner"
            and cur.child.intent is None
        ):
            # pruning wrappers between joins are pure column subsets:
            # absorb them so the chain stays flattenable; the outer
            # re-projection (and the re-pruning pass after the cost
            # rewrites) restores the narrow schemas
            cur = cur.child
        else:
            break
    steps.reverse()
    return cur, steps, joins


def _greedy_order(base, steps, estimator):
    placed: A.Node = base
    available = list(steps)
    chosen: list[tuple[A.Node, tuple[tuple[str, str], ...]]] = []
    total = 0.0
    while available:
        best = None
        names = set(placed.schema.names)
        for step in available:
            right, on = step
            if not all(lkey in names for lkey, _ in on):
                continue
            candidate = A.Join(placed, right, on=on, how="inner")
            rows = estimator.rows(candidate)
            if best is None or rows < best[0]:
                best = (rows, candidate, step)
        if best is None:
            return None, 0.0  # no joinable relation; keep the original
        rows, candidate, step = best
        placed = candidate
        total += rows
        chosen.append(step)
        available.remove(step)
    if all(a is b for a, b in zip(chosen, steps)):
        return None, 0.0  # same order; nothing to do
    return placed, total


# --------------------------------------------------------------------------
# Conjunct ordering
# --------------------------------------------------------------------------


def order_conjuncts(node: A.Node, estimator: CardinalityEstimator) -> A.Node:
    """Sort each filter's conjuncts ascending by estimated selectivity.

    Cheapest-to-pass conjuncts run first, so later ones see fewer rows.
    The sort is stable and estimates tie without statistics, so the pass
    is a no-op on default estimates.
    """
    node = _map_children(node, lambda c: order_conjuncts(c, estimator))
    if not isinstance(node, A.Filter):
        return node
    parts = split_conjuncts(node.predicate)
    if len(parts) < 2:
        return node
    child = estimator.estimate(node.child)
    ranked = sorted(
        parts, key=lambda p: estimator.predicate_selectivity(p, child)[0]
    )
    if all(a is b for a, b in zip(ranked, parts)):
        return node
    return replace(node, predicate=conjoin(ranked))


# --------------------------------------------------------------------------
# Eager aggregation (group-by pushdown through joins)
# --------------------------------------------------------------------------


def push_aggregates(node: A.Node, estimator: CardinalityEstimator) -> A.Node:
    """Partially aggregate one join input below the join when it pays.

    Applies to ``Aggregate(Join(inner))`` where every aggregate argument
    reads a single join side and every function is decomposable
    (sum/min/max/count).  The pushed-down aggregate groups by that side's
    share of the final group keys plus its join keys, which preserves
    join matching and final grouping exactly; ``count`` partials are
    summed at the top.  Gated on a stats-grounded estimate that the
    partial output is at most :data:`PUSHDOWN_BENEFIT` of the input.
    """
    node = _map_children(node, lambda c: push_aggregates(c, estimator))
    if not (
        isinstance(node, A.Aggregate)
        and node.intent is None
        and isinstance(node.child, A.Join)
        and node.child.how == "inner"
        and node.child.intent is None
    ):
        return node
    if any(spec.func not in _PUSHABLE_FUNCS for spec in node.aggs):
        return node
    join = node.child
    for side_name in ("left", "right"):
        rewritten = _try_push_side(node, join, side_name, estimator)
        if rewritten is not None:
            return rewritten
    return node


def _try_push_side(
    agg: A.Aggregate,
    join: A.Join,
    side_name: str,
    estimator: CardinalityEstimator,
) -> A.Node | None:
    side = getattr(join, side_name)
    try:
        side_columns = set(side.schema.names)
    except (AlgebraError, SchemaError):
        return None
    for spec in agg.aggs:
        if spec.arg is not None and not spec.arg.columns() <= side_columns:
            return None
    if side_name == "left":
        side_keys = [lkey for lkey, _ in join.on]
    else:
        side_keys = [rkey for _, rkey in join.on]
    partial_keys = tuple(
        dict.fromkeys(
            [k for k in agg.group_by if k in side_columns] + side_keys
        )
    )
    partial_aggs = []
    final_aggs = []
    for spec in agg.aggs:
        partial_aggs.append(A.AggSpec(spec.name, spec.func, spec.arg))
        final_func = "sum" if spec.func == "count" else spec.func
        final_aggs.append(A.AggSpec(spec.name, final_func, Col(spec.name)))
    try:
        partial = A.Aggregate(side, group_by=partial_keys,
                              aggs=tuple(partial_aggs))
        partial_est = estimator.estimate(partial)
        side_rows = estimator.rows(side)
        if not partial_est.is_stats:
            return None
        if partial_est.rows > PUSHDOWN_BENEFIT * side_rows:
            return None
        new_join = replace(join, **{side_name: partial})
        rewritten = A.Aggregate(
            new_join, group_by=agg.group_by, aggs=tuple(final_aggs)
        )
        if rewritten.schema != agg.schema:
            return None
    except (AlgebraError, SchemaError):
        return None
    return rewritten

"""Table and column statistics: the ground truth under every estimate.

:class:`ColumnStats` summarizes one stored column (distinct count, null
count, min/max).  Computation exploits the physical storage layout where
it can:

* **dictionary-encoded strings** — the sorted dictionary gives distinct
  count and min/max as O(1) metadata reads;
* **chunk zone maps** — per-chunk min/max/null summaries fold into
  table-level min/max and null counts without touching the values;
* plain numpy columns fall back to one vectorized pass.

:class:`TableStats` bundles the per-column stats with the row count; a
*stats source* is any ``name -> TableStats | None`` callable — the
relational catalog serves exact precomputed stats, generic providers
compute (and cache) stats from their stored tables, and the federation
catalog asks whichever provider holds the dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence

import numpy as np

from ..core.types import DType
from ..storage.dictionary import DictColumn
from ..storage.table import ColumnTable


@dataclass(frozen=True)
class ColumnStats:
    """Summary statistics of one stored column."""

    distinct: int
    null_count: int
    min: Any
    max: Any

    @classmethod
    def compute(
        cls,
        table: ColumnTable,
        name: str,
        zone_maps: Sequence[Any] | None = None,
    ) -> "ColumnStats":
        """Stats for ``table.column(name)``.

        ``zone_maps`` (per-chunk summaries from
        :class:`~repro.storage.chunked.ChunkedTable`) supply min/max and
        null counts without a value scan; distinct counts still need the
        values unless the column is dictionary-encoded.
        """
        column = table.column(name)
        if isinstance(column, DictColumn) and len(column.dictionary):
            # sorted dictionary: distinct/min/max are O(1) metadata reads
            return cls(
                distinct=len(column.dictionary),
                null_count=column.null_count,
                min=column.dictionary[0],
                max=column.dictionary[-1],
            )
        if zone_maps:
            distinct = _distinct_count(column)
            mins = [z.min for z in zone_maps if z.min is not None]
            maxes = [z.max for z in zone_maps if z.max is not None]
            return cls(
                distinct=distinct,
                null_count=sum(z.null_count for z in zone_maps),
                min=min(mins) if mins else None,
                max=max(maxes) if maxes else None,
            )
        values = [v for v in column.to_list() if v is not None]
        if not values:
            return cls(distinct=0, null_count=column.null_count,
                       min=None, max=None)
        if column.dtype in (DType.INT64, DType.FLOAT64) and column.mask is None:
            arr = column.values
            return cls(
                distinct=int(len(np.unique(arr))),
                null_count=0,
                min=arr.min().item(),
                max=arr.max().item(),
            )
        return cls(
            distinct=len(set(values)),
            null_count=column.null_count,
            min=min(values),
            max=max(values),
        )


def _distinct_count(column) -> int:
    """Distinct non-null values of one column (vectorized where possible)."""
    if column.dtype in (DType.INT64, DType.FLOAT64) and column.mask is None:
        return int(len(np.unique(column.values)))
    return len({v for v in column.to_list() if v is not None})


@dataclass(frozen=True)
class TableStats:
    """Row count plus per-column statistics of one stored dataset."""

    row_count: int
    columns: Mapping[str, ColumnStats] = field(default_factory=dict)

    @classmethod
    def of(cls, table: ColumnTable) -> "TableStats":
        """Compute stats for a plain stored table (any provider)."""
        return cls(
            row_count=table.num_rows,
            columns={
                n: ColumnStats.compute(table, n) for n in table.schema.names
            },
        )

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name)

    def ndv(self, name: str) -> int | None:
        """Distinct count of one column, or None when unknown/empty."""
        stats = self.columns.get(name)
        if stats is None or stats.distinct <= 0:
            return None
        return stats.distinct

    def null_fraction(self, name: str) -> float:
        stats = self.columns.get(name)
        if stats is None or self.row_count == 0:
            return 0.0
        return stats.null_count / self.row_count


#: Resolves a dataset name to its statistics; None = unknown dataset.
StatsSource = Callable[[str], Optional[TableStats]]

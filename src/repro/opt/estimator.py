"""The one cardinality/selectivity derivation pass over logical trees.

:class:`CardinalityEstimator` annotates algebra nodes with an
:class:`Estimate` — expected output rows, propagated per-column
statistics, and a *provenance* tag:

* ``"stats"`` — the number is grounded in real dataset statistics
  (row counts, dictionary cardinalities, zone-map min/max);
* ``"default"`` — a textbook fallback filled the gap (unknown dataset,
  opaque predicate, fragment input).

The estimation rules are the classical ones:

* filters — equality selectivity ``1/ndv`` (0 when the literal falls
  outside the column's [min, max]), range selectivity by min/max
  interpolation, ``AND`` multiplies, ``OR`` adds with overlap correction;
* joins — the containment assumption: ``|L ⋈ R| = |L|·|R| / Π max(ndv)``
  over the key pairs;
* group-by / distinct — output bounded by the product of key ndvs.

Every selectivity is capped at :data:`MAX_SELECTIVITY` so a filter always
estimates strictly fewer rows than its input, and every consumer — the
relational lowering pass, the federation planner, the cost-based rewriter —
reads estimates from this class and nowhere else.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from ..core import algebra as A
from ..core.expressions import BinOp, Col, Expr, IsNull, Lit, UnaryOp, eval_row
from .stats import ColumnStats, StatsSource, TableStats

#: Fallbacks, used whenever real statistics are unavailable.
DEFAULT_ROWS = 1000.0
FILTER_SELECTIVITY = 0.33
JOIN_KEY_SELECTIVITY = 0.1
DISTINCT_RATIO = 0.5
GROUP_RATIO = 0.1

#: No filter is ever estimated to keep everything: capping selectivity keeps
#: estimates strictly decreasing through predicates, which downstream
#: consumers (index-probe choice, conjunct ordering) rely on for tiebreaks.
MAX_SELECTIVITY = 0.95

STATS = "stats"
DEFAULT = "default"

_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}
_COMPARISONS = frozenset(_FLIPPED)


@dataclass(frozen=True)
class Estimate:
    """Estimated properties of one logical node's output."""

    rows: float
    source: str = DEFAULT
    columns: Mapping[str, ColumnStats] = field(default_factory=dict)
    selectivity: float | None = None

    @property
    def is_stats(self) -> bool:
        return self.source == STATS

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name)

    def ndv(self, name: str) -> int | None:
        stats = self.columns.get(name)
        if stats is None or stats.distinct <= 0:
            return None
        # a column cannot hold more distinct values than there are rows
        return max(1, min(stats.distinct, int(self.rows) or 1))


def split_conjuncts(pred: Expr) -> list[Expr]:
    """Flatten a predicate over top-level ``and`` into its conjuncts."""
    if isinstance(pred, BinOp) and pred.op == "and":
        return split_conjuncts(pred.left) + split_conjuncts(pred.right)
    return [pred]


class CardinalityEstimator:
    """Derives :class:`Estimate` annotations for logical algebra nodes.

    ``stats_source`` maps dataset names to :class:`~repro.opt.stats.TableStats`
    (or None for unknown datasets); with no source every estimate is a
    textbook default.  Estimates are memoized per node object, so walking a
    tree repeatedly (as the cost-based rewriter does) stays linear.
    """

    def __init__(self, stats_source: StatsSource | None = None):
        self.stats_source = stats_source
        self._memo: dict[A.Node, Estimate] = {}

    # -- public API ---------------------------------------------------------

    def estimate(self, node: A.Node) -> Estimate:
        found = self._memo.get(node)
        if found is None:
            found = self._derive(node)
            self._memo[node] = found
        return found

    def rows(self, node: A.Node) -> float:
        return self.estimate(node).rows

    def table_stats(self, name: str) -> TableStats | None:
        if self.stats_source is None:
            return None
        try:
            return self.stats_source(name)
        except Exception:
            return None

    def predicate_selectivity(
        self, pred: Expr, child: Estimate
    ) -> tuple[float, str]:
        """Selectivity of ``pred`` against rows described by ``child``.

        Returns ``(selectivity, source)`` with selectivity in [0, 1]
        (uncapped — callers cap at :data:`MAX_SELECTIVITY` when turning it
        into a row estimate).
        """
        return self._selectivity(pred, child)

    # -- derivation ---------------------------------------------------------

    def _derive(self, node: A.Node) -> Estimate:
        method = getattr(self, f"_est_{type(node).__name__.lower()}", None)
        if method is not None:
            return method(node)
        children = node.children()
        if len(children) == 1:
            child = self.estimate(children[0])
            return Estimate(child.rows, child.source, child.columns)
        ests = [self.estimate(c) for c in children]
        return Estimate(
            sum(e.rows for e in ests),
            STATS if ests and all(e.is_stats for e in ests) else DEFAULT,
        )

    # leaves

    def _est_scan(self, node: A.Scan) -> Estimate:
        if node.name.startswith("@"):
            return Estimate(DEFAULT_ROWS)  # fragment input, refined later
        stats = self.table_stats(node.name)
        if stats is None:
            return Estimate(DEFAULT_ROWS)
        return Estimate(float(stats.row_count), STATS, dict(stats.columns))

    def _est_inlinetable(self, node: A.InlineTable) -> Estimate:
        return Estimate(float(len(node.rows)), STATS)

    def _est_loopvar(self, node: A.LoopVar) -> Estimate:
        return Estimate(DEFAULT_ROWS)

    # row-preserving shapes

    def _est_project(self, node: A.Project) -> Estimate:
        child = self.estimate(node.child)
        keep = set(node.names)
        cols = {n: s for n, s in child.columns.items() if n in keep}
        return Estimate(child.rows, child.source, cols)

    def _est_rename(self, node: A.Rename) -> Estimate:
        child = self.estimate(node.child)
        mapping = dict(node.mapping)
        cols = {mapping.get(n, n): s for n, s in child.columns.items()}
        return Estimate(child.rows, child.source, cols)

    def _est_extend(self, node: A.Extend) -> Estimate:
        child = self.estimate(node.child)
        return Estimate(child.rows, child.source, child.columns)

    def _est_sort(self, node: A.Sort) -> Estimate:
        return self.estimate(node.child)

    def _est_reverse(self, node: A.Reverse) -> Estimate:
        return self.estimate(node.child)

    def _est_asdims(self, node: A.AsDims) -> Estimate:
        return self.estimate(node.child)

    def _est_transposedims(self, node: A.TransposeDims) -> Estimate:
        return self.estimate(node.child)

    def _est_window(self, node: A.Window) -> Estimate:
        # one output row per input cell
        child = self.estimate(node.child)
        return Estimate(child.rows, child.source)

    # filters

    def _est_filter(self, node: A.Filter) -> Estimate:
        child = self.estimate(node.child)
        sel, sel_source = self._selectivity(node.predicate, child)
        sel = min(sel, MAX_SELECTIVITY)
        rows = child.rows * sel
        source = STATS if (child.is_stats and sel_source == STATS) else DEFAULT
        cols = self._narrow(node.predicate, child.columns, rows)
        return Estimate(rows, source, cols, selectivity=sel)

    def _est_slicedims(self, node: A.SliceDims) -> Estimate:
        child = self.estimate(node.child)
        sel = 1.0
        grounded = child.is_stats
        for dim, lo, hi in node.bounds:
            stats = child.columns.get(dim)
            if (
                stats is not None
                and isinstance(stats.min, (int, float))
                and isinstance(stats.max, (int, float))
                and stats.max >= stats.min
            ):
                span = float(stats.max - stats.min + 1)
                kept = float(min(hi, stats.max) - max(lo, stats.min) + 1)
                sel *= min(max(kept / span, 0.0), 1.0)
            else:
                sel *= FILTER_SELECTIVITY
                grounded = False
        sel = min(sel, MAX_SELECTIVITY)
        return Estimate(
            child.rows * sel,
            STATS if grounded else DEFAULT,
            child.columns,
            selectivity=sel,
        )

    def _est_limit(self, node: A.Limit) -> Estimate:
        child = self.estimate(node.child)
        rows = float(min(node.count, max(child.rows - node.offset, 0.0)))
        return Estimate(rows, child.source, child.columns)

    # joins

    def _est_join(self, node: A.Join) -> Estimate:
        left = self.estimate(node.left)
        right = self.estimate(node.right)
        matched, grounded = self._matched_rows(node.on, left, right)
        right_keys = {r for _, r in node.on}
        cols = self._join_columns(node.on, left, right)
        source = STATS if (grounded and left.is_stats and right.is_stats) else DEFAULT
        if node.how == "semi":
            rows = left.rows * self._semi_fraction(node.on, left, right)
            return Estimate(min(rows, left.rows), source, dict(left.columns))
        if node.how == "anti":
            semi = left.rows * self._semi_fraction(node.on, left, right)
            return Estimate(
                max(left.rows - semi, 0.0), source, dict(left.columns)
            )
        if node.how == "inner":
            return Estimate(max(matched, 1.0), source, cols)
        if node.how == "left":
            return Estimate(max(matched, left.rows), source, cols)
        # full outer: every unmatched row on either side survives
        _ = right_keys
        return Estimate(max(matched, left.rows + right.rows), source, cols)

    def _matched_rows(
        self,
        on: tuple[tuple[str, str], ...],
        left: Estimate,
        right: Estimate,
    ) -> tuple[float, bool]:
        """Containment-assumption match count, and whether ndvs grounded it."""
        product = left.rows * right.rows
        divisor = 1.0
        grounded = True
        for lkey, rkey in on:
            l_ndv, r_ndv = left.ndv(lkey), right.ndv(rkey)
            if l_ndv is None or r_ndv is None:
                grounded = False
                continue
            divisor *= float(max(l_ndv, r_ndv))
        if grounded:
            return product / max(divisor, 1.0), True
        # textbook fallback, matching the old federation heuristic
        matched = (
            product * JOIN_KEY_SELECTIVITY / max(min(left.rows, right.rows), 1.0)
        )
        return matched, False

    def _semi_fraction(
        self,
        on: tuple[tuple[str, str], ...],
        left: Estimate,
        right: Estimate,
    ) -> float:
        """Fraction of left rows with at least one right match."""
        fraction = 1.0
        for lkey, rkey in on:
            l_ndv, r_ndv = left.ndv(lkey), right.ndv(rkey)
            if l_ndv is None or r_ndv is None:
                return 0.5
            fraction *= min(1.0, r_ndv / max(l_ndv, 1))
        return fraction

    def _join_columns(
        self,
        on: tuple[tuple[str, str], ...],
        left: Estimate,
        right: Estimate,
    ) -> dict[str, ColumnStats]:
        """Output columns: left attrs, then right attrs minus right keys."""
        right_keys = {r for _, r in on}
        cols = dict(left.columns)
        for lkey, rkey in on:
            l_stats, r_stats = left.columns.get(lkey), right.columns.get(rkey)
            if l_stats is not None and r_stats is not None:
                # containment: surviving key values come from the smaller side
                cols[lkey] = replace(
                    l_stats, distinct=min(l_stats.distinct, r_stats.distinct)
                )
        for name, stats in right.columns.items():
            if name not in right_keys and name not in cols:
                cols[name] = stats
        return cols

    def _est_product(self, node: A.Product) -> Estimate:
        left = self.estimate(node.left)
        right = self.estimate(node.right)
        cols = dict(left.columns)
        cols.update(right.columns)
        source = STATS if (left.is_stats and right.is_stats) else DEFAULT
        return Estimate(left.rows * right.rows, source, cols)

    def _est_celljoin(self, node: A.CellJoin) -> Estimate:
        left = self.estimate(node.left)
        right = self.estimate(node.right)
        source = STATS if (left.is_stats and right.is_stats) else DEFAULT
        return Estimate(min(left.rows, right.rows), source)

    def _est_matmul(self, node: A.MatMul) -> Estimate:
        left = self.estimate(node.left)
        right = self.estimate(node.right)
        # sparse output heuristic: geometric mean of input sizes
        return Estimate(max((left.rows * right.rows) ** 0.5, 1.0))

    # grouping shapes

    def _grouped(self, child: Estimate, keys: tuple[str, ...]) -> Estimate:
        if not keys:
            return Estimate(1.0, child.source)
        groups = 1.0
        grounded = True
        for key in keys:
            ndv = child.ndv(key)
            if ndv is None:
                grounded = False
                break
            groups *= float(ndv)
        if grounded:
            rows = min(child.rows, groups)
            source = child.source
        else:
            rows = max(child.rows * GROUP_RATIO, 1.0)
            source = DEFAULT
        cols = {n: s for n, s in child.columns.items() if n in set(keys)}
        return Estimate(rows, source, cols)

    def _est_aggregate(self, node: A.Aggregate) -> Estimate:
        return self._grouped(self.estimate(node.child), node.group_by)

    def _est_reducedims(self, node: A.ReduceDims) -> Estimate:
        return self._grouped(self.estimate(node.child), node.keep)

    def _est_regrid(self, node: A.Regrid) -> Estimate:
        child = self.estimate(node.child)
        factor = 1.0
        for _, f in node.factors:
            factor *= f
        return Estimate(
            max(child.rows / max(factor, 1.0), 1.0), child.source
        )

    def _est_distinct(self, node: A.Distinct) -> Estimate:
        child = self.estimate(node.child)
        bound = 1.0
        names = node.schema.names
        for name in names:
            ndv = child.ndv(name)
            if ndv is None:
                rows = child.rows * DISTINCT_RATIO
                return Estimate(rows, DEFAULT, child.columns)
            bound *= float(ndv)
        return Estimate(min(child.rows, bound), child.source, child.columns)

    # set operations

    def _est_union(self, node: A.Union) -> Estimate:
        left = self.estimate(node.left)
        right = self.estimate(node.right)
        cols: dict[str, ColumnStats] = {}
        for name in set(left.columns) & set(right.columns):
            a, b = left.columns[name], right.columns[name]
            cols[name] = ColumnStats(
                distinct=a.distinct + b.distinct,
                null_count=a.null_count + b.null_count,
                min=_merge(min, a.min, b.min),
                max=_merge(max, a.max, b.max),
            )
        source = STATS if (left.is_stats and right.is_stats) else DEFAULT
        return Estimate(left.rows + right.rows, source, cols)

    def _est_intersect(self, node: A.Intersect) -> Estimate:
        return Estimate(self.rows(node.left) * 0.5)

    def _est_except(self, node: A.Except) -> Estimate:
        return Estimate(self.rows(node.left) * 0.5)

    def _est_iterate(self, node: A.Iterate) -> Estimate:
        init = self.estimate(node.init)
        return Estimate(init.rows, init.source)

    # -- predicate selectivity ----------------------------------------------

    def _selectivity(self, pred: Expr, child: Estimate) -> tuple[float, str]:
        if isinstance(pred, BinOp):
            if pred.op == "and":
                sel, source = 1.0, STATS
                for part in split_conjuncts(pred):
                    s, src = self._selectivity(part, child)
                    sel *= s
                    if src != STATS:
                        source = DEFAULT
                return sel, source
            if pred.op == "or":
                s1, src1 = self._selectivity(pred.left, child)
                s2, src2 = self._selectivity(pred.right, child)
                sel = min(s1 + s2 - s1 * s2, 1.0)
                return sel, STATS if src1 == src2 == STATS else DEFAULT
            if pred.op in _COMPARISONS:
                return self._comparison_selectivity(pred, child)
        if isinstance(pred, UnaryOp) and pred.op == "not":
            sel, source = self._selectivity(pred.operand, child)
            return max(1.0 - sel, 0.0), source
        if isinstance(pred, IsNull) and isinstance(pred.operand, Col):
            stats = child.columns.get(pred.operand.name)
            if stats is not None:
                fraction = stats.null_count / max(child.rows, 1.0)
                return min(fraction, 1.0), STATS
        if isinstance(pred, Lit):
            if pred.value is True:
                return 1.0, STATS
            return 0.0, STATS
        return FILTER_SELECTIVITY, DEFAULT

    def _comparison_selectivity(
        self, pred: BinOp, child: Estimate
    ) -> tuple[float, str]:
        op, column, literal = _normalize_comparison(pred)
        if column is None:
            if (
                pred.op in ("==", "!=")
                and isinstance(pred.left, Col)
                and isinstance(pred.right, Col)
            ):
                a = child.ndv(pred.left.name)
                b = child.ndv(pred.right.name)
                if a is not None and b is not None:
                    eq = 1.0 / max(a, b)
                    return (eq, STATS) if pred.op == "==" else (1.0 - eq, STATS)
            return FILTER_SELECTIVITY, DEFAULT
        if literal is None:
            # comparing with a null literal is never True (null semantics)
            return 0.0, STATS
        stats = child.columns.get(column)
        if stats is None:
            return FILTER_SELECTIVITY, DEFAULT
        ndv = child.ndv(column)
        if op in ("==", "!="):
            if ndv is None:
                return FILTER_SELECTIVITY, DEFAULT
            eq = 1.0 / ndv
            if _outside_range(literal, stats):
                eq = 0.0
            return (eq, STATS) if op == "==" else (1.0 - eq, STATS)
        # range comparison on [min, max]
        lo, hi = stats.min, stats.max
        if lo is None or hi is None:
            return FILTER_SELECTIVITY, DEFAULT
        try:
            if lo == hi:
                row = {column: lo}
                keep = eval_row(BinOp(op, Col(column), Lit(literal)), row)
                return (1.0 if keep is True else 0.0), STATS
            if not (
                isinstance(lo, (int, float))
                and isinstance(hi, (int, float))
                and isinstance(literal, (int, float))
            ):
                # comparable but not interpolatable (e.g. strings):
                # only the boundary cases are decidable
                if op in (">", ">=") and literal < lo:
                    return 1.0, STATS
                if op in ("<", "<=") and literal > hi:
                    return 1.0, STATS
                if op in (">", ">=") and literal > hi:
                    return 0.0, STATS
                if op in ("<", "<=") and literal < lo:
                    return 0.0, STATS
                return FILTER_SELECTIVITY, DEFAULT
            span = float(hi) - float(lo)
            if op in (">", ">="):
                fraction = (float(hi) - float(literal)) / span
            else:
                fraction = (float(literal) - float(lo)) / span
            return min(max(fraction, 0.0), 1.0), STATS
        except TypeError:
            return FILTER_SELECTIVITY, DEFAULT

    def _narrow(
        self,
        pred: Expr,
        columns: Mapping[str, ColumnStats],
        rows: float,
    ) -> dict[str, ColumnStats]:
        """Column stats after filtering: equality pins a column to one value."""
        cols = dict(columns)
        for part in split_conjuncts(pred):
            if not (isinstance(part, BinOp) and part.op == "=="):
                continue
            _, column, literal = _normalize_comparison(part)
            if column is not None and column in cols:
                cols[column] = replace(
                    cols[column], distinct=1, min=literal, max=literal
                )
        return cols


def _normalize_comparison(pred: BinOp):
    """As ``(op, column_name, literal)`` with the column on the left,
    or ``(op, None, None)`` when the shape doesn't match col-vs-lit."""
    if isinstance(pred.left, Col) and isinstance(pred.right, Lit):
        return pred.op, pred.left.name, pred.right.value
    if isinstance(pred.left, Lit) and isinstance(pred.right, Col):
        return _FLIPPED[pred.op], pred.right.name, pred.left.value
    return pred.op, None, None


def _outside_range(literal, stats: ColumnStats) -> bool:
    try:
        if stats.min is not None and literal < stats.min:
            return True
        if stats.max is not None and literal > stats.max:
            return True
    except TypeError:
        return False
    return False


def _merge(fn, a, b):
    if a is None:
        return b
    if b is None:
        return a
    try:
        return fn(a, b)
    except TypeError:
        return None

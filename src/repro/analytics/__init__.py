"""Analytics workloads expressed in the Big Data algebra.

The paper names *data mining* (alongside graph analytics) as the workload
class that needs control iteration, and "SciDB and ScaLAPACK" as the
canonical multi-server pairing.  This package provides both: k-means
clustering as an algebra fixpoint loop, and least-squares regression whose
normal-equation products route to the linear-algebra server.
"""

from .kmeans import (
    POINT_SCHEMA, assignments_query, kmeans_fit, kmeans_numpy, kmeans_query,
)
from .regression import (
    design_matrix_tables, fit_linear_regression, normal_equation_trees,
)

__all__ = [
    "POINT_SCHEMA",
    "assignments_query",
    "design_matrix_tables",
    "fit_linear_regression",
    "kmeans_fit",
    "kmeans_numpy",
    "kmeans_query",
    "normal_equation_trees",
]

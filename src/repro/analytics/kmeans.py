"""K-means clustering as algebra control iteration.

One Lloyd iteration, written entirely in the algebra:

1. cross points with the current centroids (``Product``);
2. compute squared distances (``Extend``);
3. find each point's minimum distance (``Aggregate`` by point);
4. join back and keep the matching centroid (equality on the minimum —
   the algebra's way to express argmin);
5. average the assigned points per centroid (``Aggregate`` by cluster).

Wrapped in ``Iterate`` with an L∞ stop on centroid movement, the whole loop
runs inside whichever server accepts it — the paper's "data mining needs
control iteration" example made concrete.

Ties (a point equidistant to two centroids) are broken by keeping the
lowest cluster id, so results are deterministic.
"""

from __future__ import annotations

import numpy as np

from ..core import algebra as A
from ..core.errors import AlgebraError
from ..core.expressions import col, lit
from ..core.schema import Attribute, Schema
from ..core.types import DType
from ..storage.table import ColumnTable

POINT_SCHEMA = Schema([
    Attribute("pid", DType.INT64, dimension=True),
    Attribute("x", DType.FLOAT64),
    Attribute("y", DType.FLOAT64),
])

CENTROID_SCHEMA = Schema([
    Attribute("c", DType.INT64, dimension=True),
    Attribute("cx", DType.FLOAT64),
    Attribute("cy", DType.FLOAT64),
])


def _distance_step(points: A.Node, centroids: A.Node) -> A.Node:
    """Assign every point to its nearest centroid (ties -> lowest id)."""
    paired = A.Product(points, centroids)
    with_dist = A.Extend(
        paired, ("dist",),
        ((col("x") - col("cx")) ** 2 + (col("y") - col("cy")) ** 2,),
    )
    best = A.Aggregate(
        with_dist, ("pid",), (A.AggSpec("best_dist", "min", col("dist")),)
    )
    best = A.Rename(best, (("pid", "bpid"),))
    matched = A.Join(with_dist, best, (("pid", "bpid"),))
    nearest = A.Filter(matched, col("dist") == col("best_dist"))
    # deterministic tie-break: keep the lowest matching cluster id
    return A.Aggregate(
        nearest, ("pid", "x", "y"), (A.AggSpec("c", "min", col("c")),)
    )


def kmeans_query(
    points: A.Node,
    initial_centroids: A.Node,
    *,
    tolerance: float = 1e-6,
    max_iter: int = 50,
) -> A.Iterate:
    """The full Lloyd loop as one algebra tree (state = the centroids)."""
    if tuple(points.schema.names) != POINT_SCHEMA.names:
        raise AlgebraError(
            f"points must have schema {list(POINT_SCHEMA.names)}, got "
            f"{list(points.schema.names)}"
        )
    if tuple(initial_centroids.schema.names) != CENTROID_SCHEMA.names:
        raise AlgebraError(
            f"centroids must have schema {list(CENTROID_SCHEMA.names)}, got "
            f"{list(initial_centroids.schema.names)}"
        )
    state = A.LoopVar("centroids", CENTROID_SCHEMA)
    assigned = _distance_step(points, state)
    new_centroids = A.Aggregate(
        assigned, ("c",),
        (A.AggSpec("cx", "mean", col("x")), A.AggSpec("cy", "mean", col("y"))),
    )
    body = A.AsDims(new_centroids, ("c",))
    return A.Iterate(
        initial_centroids, body, var="centroids",
        stop=A.Convergence("cx", tolerance, "linf"),
        max_iter=max_iter,
        intent="kmeans",
    )


def assignments_query(points: A.Node, centroids: A.Node) -> A.Node:
    """Final point -> cluster assignment, given fitted centroids."""
    return A.Project(_distance_step(points, centroids), ("pid", "c"))


def initial_centroids_table(points: ColumnTable, k: int, seed: int = 0) -> ColumnTable:
    """Farthest-point seeding (deterministic k-means++ flavour).

    The first centroid is a seeded random point; each subsequent one is the
    point farthest from its nearest already-chosen centroid.  Spread-out
    seeds keep Lloyd iteration out of the blob-splitting local optima that
    uniform random seeding falls into.
    """
    if points.num_rows < k:
        raise AlgebraError(f"need at least {k} points, have {points.num_rows}")
    rng = np.random.default_rng(seed)
    coords = np.stack([points.array("x"), points.array("y")], axis=1)
    chosen = [int(rng.integers(0, len(coords)))]
    min_dist = ((coords - coords[chosen[0]]) ** 2).sum(axis=1)
    while len(chosen) < k:
        nxt = int(np.argmax(min_dist))
        chosen.append(nxt)
        min_dist = np.minimum(
            min_dist, ((coords - coords[nxt]) ** 2).sum(axis=1)
        )
    return ColumnTable.from_rows(CENTROID_SCHEMA, [
        (i, float(coords[p, 0]), float(coords[p, 1]))
        for i, p in enumerate(chosen)
    ])


def kmeans_fit(ctx, points_name: str, k: int, *,
               seed: int = 0, tolerance: float = 1e-6, max_iter: int = 50):
    """Convenience driver: initialize, iterate in-server, return both the
    centroid Collection and the assignment Collection."""
    points_query = ctx.table(points_name)
    points_table = None
    for provider in ctx.providers:
        if provider.has_dataset(points_name):
            points_table = provider.dataset(points_name)
            break
    init = initial_centroids_table(points_table, k, seed)
    loop = kmeans_query(
        points_query.node,
        A.InlineTable(CENTROID_SCHEMA, tuple(init.iter_rows())),
        tolerance=tolerance, max_iter=max_iter,
    )
    centroids = ctx.run(ctx.query(loop))
    assign_tree = assignments_query(
        points_query.node,
        A.InlineTable(CENTROID_SCHEMA, tuple(centroids.table.iter_rows())),
    )
    assignments = ctx.run(ctx.query(assign_tree))
    return centroids, assignments


def kmeans_numpy(
    xs: np.ndarray, ys: np.ndarray, init: np.ndarray, *,
    tolerance: float = 1e-6, max_iter: int = 50,
) -> tuple[np.ndarray, np.ndarray]:
    """Reference Lloyd iteration in numpy (the test oracle).

    ``init`` is (k, 2).  Matches the algebra formulation exactly, including
    the lowest-id tie-break and "empty clusters disappear" semantics.
    Returns (centroids, assignment).
    """
    points = np.stack([xs, ys], axis=1)
    centroids = init.astype(np.float64).copy()
    ids = np.arange(len(centroids))
    for _ in range(max_iter):
        dists = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        assignment = ids[np.argmin(dists, axis=1)]
        new_ids = []
        new_centroids = []
        for cid in ids:
            members = assignment == cid
            if members.any():
                new_ids.append(cid)
                new_centroids.append(points[members].mean(axis=0))
        new_arr = np.array(new_centroids)
        # the algebra loop's stop rule watches the x coordinate (one
        # convergence attribute); mirror that exactly
        if (len(new_ids) == len(ids)
                and np.abs(new_arr[:, 0] - centroids[:, 0]).max() <= tolerance):
            centroids, ids = new_arr, np.array(new_ids)
            break
        centroids, ids = new_arr, np.array(new_ids)
    dists = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
    assignment = ids[np.argmin(dists, axis=1)]
    return centroids, assignment

"""Least-squares regression across servers.

The paper's motivating multi-server example is "SciDB and ScaLAPACK": data
lives in a data server, the heavy linear algebra runs in a compute server.
This module fits ordinary least squares that way:

* the Gram matrix ``X^T X`` and moment vector ``X^T y`` are algebra trees
  (``TransposeDims`` + intent-tagged ``MatMul``) that the planner routes to
  the linear-algebra server;
* the tiny d x d normal-equation solve then runs on the blocked LU kernels.

Matrices are dimensioned tables: X is ``(i, j, v)`` (row, feature, value)
and y is ``(i, j, v)`` with a single column ``j = 0``.
"""

from __future__ import annotations

import numpy as np

from ..core import algebra as A
from ..core.errors import ExecutionError
from ..core.intents import INTENT_MATMUL
from ..linalg import kernels
from ..linalg.blocked import BlockedMatrix
from ..storage.table import ColumnTable


def _matmul(left: A.Node, right: A.Node) -> A.Node:
    return A.MatMul(left, right, intent=INTENT_MATMUL)


def normal_equation_trees(x: A.Node, y: A.Node) -> tuple[A.Node, A.Node]:
    """Algebra trees for (X^T X, X^T y).

    ``X^T`` must not share its *outer* dimension name with the right-hand
    side (MatMul contracts exactly one shared dimension), so the transposed
    copy renames its column dimension before transposing:
    ``X^T: (jT, i)``, ``X: (i, j)`` — contraction over ``i``.
    """
    row_dim, col_dim = x.schema.dimension_names
    out_dim = f"{col_dim}T"
    renamed = A.Rename(x, ((col_dim, out_dim),))
    xt = A.TransposeDims(renamed, (out_dim, row_dim), intent="transpose")
    return _matmul(xt, x), _matmul(xt, y)


def _to_dense(table: ColumnTable, shape: tuple[int, int]) -> np.ndarray:
    dense = np.zeros(shape)
    d0, d1 = table.schema.dimension_names
    value = table.schema.value_names[0]
    rows = table.array(d0)
    cols = table.array(d1)
    vals = table.column(value)
    if vals.null_count:
        raise ExecutionError("regression inputs may not contain nulls")
    dense[rows, cols] = vals.values.astype(np.float64)
    return dense


def fit_linear_regression(
    ctx,
    x_name: str,
    y_name: str,
    *,
    block_size: int = 32,
) -> np.ndarray:
    """Fit OLS coefficients for registered matrix datasets X and y.

    The Gram/moment products execute through the federation (landing on the
    linear-algebra server when one is registered); the final d x d solve
    uses the blocked LU kernels locally, the way a driver program would.
    Returns the coefficient vector (d,).
    """
    x = ctx.table(x_name).node
    y = ctx.table(y_name).node
    d = _feature_count(ctx, x_name)
    gram_tree, moment_tree = normal_equation_trees(x, y)
    gram = ctx.run(ctx.query(gram_tree)).table
    moment = ctx.run(ctx.query(moment_tree)).table
    gram_dense = _to_dense(gram, (d, d))
    moment_dense = _to_dense(moment, (d, 1)).reshape(-1)
    blocked = BlockedMatrix.from_dense(gram_dense, block_size)
    return kernels.solve(blocked, moment_dense)


def _feature_count(ctx, x_name: str) -> int:
    for provider in ctx.providers:
        if provider.has_dataset(x_name):
            table = provider.dataset(x_name)
            col_dim = table.schema.dimension_names[1]
            return int(table.array(col_dim).max()) + 1
    raise ExecutionError(f"dataset {x_name!r} is not registered anywhere")


def design_matrix_tables(
    features: np.ndarray,
    targets: np.ndarray,
    *,
    intercept: bool = True,
) -> tuple[ColumnTable, ColumnTable]:
    """Build (X, y) dimensioned tables from numpy data.

    ``features`` is (n, d); with ``intercept`` a leading all-ones column is
    prepended.  ``targets`` is (n,).
    """
    from ..datasets.matrices import matrix_schema

    features = np.asarray(features, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if features.ndim != 2 or targets.ndim != 1:
        raise ExecutionError("features must be (n, d) and targets (n,)")
    if len(features) != len(targets):
        raise ExecutionError("features and targets disagree on n")
    if intercept:
        features = np.hstack([np.ones((len(features), 1)), features])
    n, d = features.shape
    ii, jj = np.meshgrid(np.arange(n), np.arange(d), indexing="ij")
    x = ColumnTable.from_arrays(matrix_schema(), {
        "i": ii.reshape(-1), "j": jj.reshape(-1),
        "v": features.reshape(-1),
    })
    y = ColumnTable.from_arrays(matrix_schema(), {
        "i": np.arange(n, dtype=np.int64),
        "j": np.zeros(n, dtype=np.int64),
        "v": targets,
    })
    return x, y

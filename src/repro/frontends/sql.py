"""A SQL frontend over the Big Data algebra.

The paper notes that with an algebra at the core, "client languages are
free to provide syntactic sugar to provide a more declarative specification
of queries".  This module is that sugar: a hand-written lexer and
recursive-descent parser for a useful SQL subset, translated directly to
algebra trees — no engine sees a byte of SQL.

Supported::

    SELECT [DISTINCT] item [, item ...]
    FROM table [JOIN table ON a = b [AND c = d ...]
               | LEFT JOIN ... | FULL JOIN ...]*
    [WHERE expr]
    [GROUP BY col [, col ...]]
    [HAVING expr]
    [ORDER BY col [ASC|DESC] [, ...]]
    [LIMIT n [OFFSET m]]

Items are ``*``, expressions with ``AS`` aliases, or aggregate calls
(``COUNT(*)``, ``COUNT/SUM/MIN/MAX/AVG(expr)``).  Expressions cover
arithmetic, comparisons, ``AND/OR/NOT``, ``IS [NOT] NULL``,
``CASE WHEN ... THEN ... ELSE ... END``, string/math functions, and typed
literals.  Names are unqualified; rename collisions before joining.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

from ..core import algebra as A
from ..core import expressions as E
from ..core.errors import ParseError, SchemaError
from ..core.schema import Schema

SchemaResolver = Callable[[str], Schema]

# --------------------------------------------------------------------------
# Lexer
# --------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<float>\d+\.\d*(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)
  | (?P<int>\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><>|<=|>=|!=|=|<|>|\+|-|\*|/|%|\(|\)|,|\.|\||:)
    """,
    re.VERBOSE,
)

KEYWORDS = {
    "select", "distinct", "from", "where", "group", "by", "having", "order",
    "limit", "offset", "join", "inner", "left", "full", "on", "and", "or",
    "not", "as", "asc", "desc", "is", "null", "case", "when", "then", "else",
    "end", "true", "false", "count", "sum", "min", "max", "avg",
}

AGG_NAMES = {"count", "sum", "min", "max", "avg"}


@dataclass(frozen=True)
class Token:
    kind: str  # "int" | "float" | "string" | "name" | "keyword" | "op" | "eof"
    text: str
    position: int


def tokenize(sql: str) -> list[Token]:
    tokens: list[Token] = []
    position = 0
    while position < len(sql):
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            raise ParseError(f"unexpected character {sql[position]!r}", position)
        kind = match.lastgroup
        text = match.group()
        if kind != "ws":
            if kind == "name" and text.lower() in KEYWORDS:
                tokens.append(Token("keyword", text.lower(), position))
            else:
                tokens.append(Token(kind, text, position))
        position = match.end()
    tokens.append(Token("eof", "", len(sql)))
    return tokens


# --------------------------------------------------------------------------
# Parser (to an untyped syntax tree)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    expr: "SqlExpr | None"  # None = "*"
    alias: str | None
    agg: str | None  # aggregate function name, lowercase
    agg_arg: "SqlExpr | None"  # None for COUNT(*)


@dataclass(frozen=True)
class JoinClause:
    table: str
    how: str
    on: tuple[tuple[str, str], ...]


@dataclass(frozen=True)
class OrderItem:
    column: str
    ascending: bool


@dataclass(frozen=True)
class SelectStatement:
    items: tuple[SelectItem, ...]
    distinct: bool
    table: str
    joins: tuple[JoinClause, ...]
    where: "SqlExpr | None"
    group_by: tuple[str, ...]
    having: "SqlExpr | None"
    order_by: tuple[OrderItem, ...]
    limit: int | None
    offset: int


# SQL expression syntax nodes (resolved to algebra Exprs during translation)
@dataclass(frozen=True)
class SqlExpr:
    pass


@dataclass(frozen=True)
class SqlName(SqlExpr):
    name: str


@dataclass(frozen=True)
class SqlLiteral(SqlExpr):
    value: object


@dataclass(frozen=True)
class SqlBinOp(SqlExpr):
    op: str
    left: SqlExpr
    right: SqlExpr


@dataclass(frozen=True)
class SqlUnary(SqlExpr):
    op: str
    operand: SqlExpr


@dataclass(frozen=True)
class SqlIsNull(SqlExpr):
    operand: SqlExpr
    negated: bool


@dataclass(frozen=True)
class SqlCase(SqlExpr):
    condition: SqlExpr
    then: SqlExpr
    otherwise: SqlExpr


@dataclass(frozen=True)
class SqlCall(SqlExpr):
    name: str
    arg: SqlExpr


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.index = 0

    # -- token helpers --------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        self.index += 1
        return token

    def check(self, kind: str, text: str | None = None) -> bool:
        token = self.current
        if token.kind != kind:
            return False
        return text is None or token.text == text

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.accept(kind, text)
        if token is None:
            want = text or kind
            raise ParseError(
                f"expected {want!r}, found {self.current.text or 'end of input'!r}",
                self.current.position,
            )
        return token

    # -- grammar -----------------------------------------------------------------

    def parse_statement(self) -> SelectStatement:
        self.expect("keyword", "select")
        distinct = self.accept("keyword", "distinct") is not None
        items = [self.parse_select_item()]
        while self.accept("op", ","):
            items.append(self.parse_select_item())
        self.expect("keyword", "from")
        table = self.expect("name").text
        joins = []
        while True:
            join = self.parse_join()
            if join is None:
                break
            joins.append(join)
        where = None
        if self.accept("keyword", "where"):
            where = self.parse_expr()
        group_by: tuple[str, ...] = ()
        if self.accept("keyword", "group"):
            self.expect("keyword", "by")
            keys = [self.expect("name").text]
            while self.accept("op", ","):
                keys.append(self.expect("name").text)
            group_by = tuple(keys)
        having = None
        if self.accept("keyword", "having"):
            having = self.parse_expr()
        order_by: list[OrderItem] = []
        if self.accept("keyword", "order"):
            self.expect("keyword", "by")
            order_by.append(self.parse_order_item())
            while self.accept("op", ","):
                order_by.append(self.parse_order_item())
        limit = None
        offset = 0
        if self.accept("keyword", "limit"):
            limit = int(self.expect("int").text)
            if self.accept("keyword", "offset"):
                offset = int(self.expect("int").text)
        self.expect("eof")
        return SelectStatement(
            items=tuple(items),
            distinct=distinct,
            table=table,
            joins=tuple(joins),
            where=where,
            group_by=group_by,
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
        )

    def parse_join(self) -> JoinClause | None:
        how = "inner"
        if self.accept("keyword", "join"):
            pass
        elif self.check("keyword", "inner"):
            self.advance()
            self.expect("keyword", "join")
        elif self.check("keyword", "left"):
            self.advance()
            self.expect("keyword", "join")
            how = "left"
        elif self.check("keyword", "full"):
            self.advance()
            self.expect("keyword", "join")
            how = "full"
        else:
            return None
        table = self.expect("name").text
        self.expect("keyword", "on")
        pairs = [self.parse_join_pair()]
        while self.accept("keyword", "and"):
            pairs.append(self.parse_join_pair())
        return JoinClause(table, how, tuple(pairs))

    def parse_join_pair(self) -> tuple[str, str]:
        left = self.expect("name").text
        self.expect("op", "=")
        right = self.expect("name").text
        return left, right

    def parse_order_item(self) -> OrderItem:
        name = self.expect("name").text
        ascending = True
        if self.accept("keyword", "desc"):
            ascending = False
        else:
            self.accept("keyword", "asc")
        return OrderItem(name, ascending)

    def parse_select_item(self) -> SelectItem:
        if self.accept("op", "*"):
            return SelectItem(expr=None, alias=None, agg=None, agg_arg=None)
        if self.current.kind == "keyword" and self.current.text in AGG_NAMES:
            func = self.advance().text
            self.expect("op", "(")
            if func == "count" and self.accept("op", "*"):
                arg = None
            else:
                arg = self.parse_expr()
            self.expect("op", ")")
            alias = self.parse_alias() or func
            return SelectItem(expr=None, alias=alias, agg=func, agg_arg=arg)
        expr = self.parse_expr()
        alias = self.parse_alias()
        if alias is None:
            if isinstance(expr, SqlName):
                alias = expr.name
            else:
                raise ParseError(
                    "computed select items need an AS alias",
                    self.current.position,
                )
        return SelectItem(expr=expr, alias=alias, agg=None, agg_arg=None)

    def parse_alias(self) -> str | None:
        if self.accept("keyword", "as"):
            return self.expect("name").text
        return None

    # expression precedence: OR < AND < NOT < comparison < add < mul < unary
    def parse_expr(self) -> SqlExpr:
        return self.parse_or()

    def parse_or(self) -> SqlExpr:
        left = self.parse_and()
        while self.accept("keyword", "or"):
            left = SqlBinOp("or", left, self.parse_and())
        return left

    def parse_and(self) -> SqlExpr:
        left = self.parse_not()
        while self.accept("keyword", "and"):
            left = SqlBinOp("and", left, self.parse_not())
        return left

    def parse_not(self) -> SqlExpr:
        if self.accept("keyword", "not"):
            return SqlUnary("not", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> SqlExpr:
        left = self.parse_additive()
        if self.accept("keyword", "is"):
            negated = self.accept("keyword", "not") is not None
            self.expect("keyword", "null")
            return SqlIsNull(left, negated)
        for op_text, algebra_op in (
            ("<=", "<="), (">=", ">="), ("<>", "!="), ("!=", "!="),
            ("=", "=="), ("<", "<"), (">", ">"),
        ):
            if self.check("op", op_text):
                self.advance()
                return SqlBinOp(algebra_op, left, self.parse_additive())
        return left

    def parse_additive(self) -> SqlExpr:
        left = self.parse_multiplicative()
        while True:
            if self.accept("op", "+"):
                left = SqlBinOp("+", left, self.parse_multiplicative())
            elif self.accept("op", "-"):
                left = SqlBinOp("-", left, self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self) -> SqlExpr:
        left = self.parse_unary()
        while True:
            if self.accept("op", "*"):
                left = SqlBinOp("*", left, self.parse_unary())
            elif self.accept("op", "/"):
                left = SqlBinOp("/", left, self.parse_unary())
            elif self.accept("op", "%"):
                left = SqlBinOp("%", left, self.parse_unary())
            else:
                return left

    def parse_unary(self) -> SqlExpr:
        if self.accept("op", "-"):
            return SqlUnary("-", self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> SqlExpr:
        token = self.current
        if token.kind == "int":
            self.advance()
            return SqlLiteral(int(token.text))
        if token.kind == "float":
            self.advance()
            return SqlLiteral(float(token.text))
        if token.kind == "string":
            self.advance()
            return SqlLiteral(token.text[1:-1].replace("''", "'"))
        if token.kind == "keyword" and token.text in ("true", "false"):
            self.advance()
            return SqlLiteral(token.text == "true")
        if token.kind == "keyword" and token.text == "case":
            return self.parse_case()
        if token.kind == "name":
            self.advance()
            if self.accept("op", "("):
                arg = self.parse_expr()
                self.expect("op", ")")
                return SqlCall(token.text.lower(), arg)
            return SqlName(token.text)
        if self.accept("op", "("):
            inner = self.parse_expr()
            self.expect("op", ")")
            return inner
        raise ParseError(
            f"unexpected token {token.text or 'end of input'!r}", token.position
        )

    def parse_case(self) -> SqlExpr:
        self.expect("keyword", "case")
        self.expect("keyword", "when")
        condition = self.parse_expr()
        self.expect("keyword", "then")
        then = self.parse_expr()
        self.expect("keyword", "else")
        otherwise = self.parse_expr()
        self.expect("keyword", "end")
        return SqlCase(condition, then, otherwise)


# --------------------------------------------------------------------------
# Translation to algebra
# --------------------------------------------------------------------------


def _to_expr(node: SqlExpr) -> E.Expr:
    if isinstance(node, SqlName):
        return E.Col(node.name)
    if isinstance(node, SqlLiteral):
        return E.Lit(node.value)
    if isinstance(node, SqlBinOp):
        return E.BinOp(node.op, _to_expr(node.left), _to_expr(node.right))
    if isinstance(node, SqlUnary):
        return E.UnaryOp(node.op, _to_expr(node.operand))
    if isinstance(node, SqlIsNull):
        test = E.IsNull(_to_expr(node.operand))
        return E.UnaryOp("not", test) if node.negated else test
    if isinstance(node, SqlCase):
        return E.If(
            _to_expr(node.condition), _to_expr(node.then),
            _to_expr(node.otherwise),
        )
    if isinstance(node, SqlCall):
        return E.Func(node.name, (_to_expr(node.arg),))
    raise ParseError(f"cannot translate {type(node).__name__}")


def parse_sql(sql: str, resolve: SchemaResolver) -> A.Node:
    """Parse a SELECT statement and translate it to an algebra tree.

    ``resolve`` maps table names to schemas (e.g.
    ``ctx.catalog.schema_of``).  Raises :class:`ParseError` on syntax errors
    and :class:`SchemaError` on semantic ones.
    """
    statement = _Parser(tokenize(sql)).parse_statement()

    node: A.Node = A.Scan(statement.table, resolve(statement.table))
    for join in statement.joins:
        right = A.Scan(join.table, resolve(join.table))
        # ON pairs may be written either way around; orient by schema
        oriented = []
        left_schema = node.schema
        right_schema = right.schema
        for a, b in join.on:
            if a in left_schema and b in right_schema:
                oriented.append((a, b))
            elif b in left_schema and a in right_schema:
                oriented.append((b, a))
            else:
                raise SchemaError(
                    f"join condition {a} = {b} does not reference both sides"
                )
        node = A.Join(node, right, tuple(oriented), join.how)

    if statement.where is not None:
        node = A.Filter(node, _to_expr(statement.where))

    agg_items = [item for item in statement.items if item.agg is not None]
    plain_items = [
        item for item in statement.items
        if item.agg is None and item.expr is not None
    ]
    star = any(item.expr is None and item.agg is None for item in statement.items)

    if agg_items or statement.group_by:
        if star:
            raise SchemaError("SELECT * cannot be combined with GROUP BY/aggregates")
        for item in plain_items:
            if not isinstance(item.expr, SqlName) or (
                item.expr.name not in statement.group_by
            ):
                raise SchemaError(
                    f"select item {item.alias!r} must be a GROUP BY key or an "
                    f"aggregate"
                )
        specs = tuple(
            A.AggSpec(
                item.alias or item.agg,
                "mean" if item.agg == "avg" else item.agg,
                None if item.agg_arg is None else _to_expr(item.agg_arg),
            )
            for item in agg_items
        )
        node = A.Aggregate(node, statement.group_by, specs)
        if statement.having is not None:
            node = A.Filter(node, _to_expr(statement.having))
        wanted = [
            item.alias or (item.expr.name if isinstance(item.expr, SqlName) else "")
            for item in statement.items
        ]
        if tuple(wanted) != node.schema.names:
            node = A.Project(node, tuple(wanted))
    else:
        if statement.having is not None:
            raise SchemaError("HAVING requires GROUP BY or aggregates")
        if not star:
            computed = [
                item for item in statement.items
                if not isinstance(item.expr, SqlName)
                or item.alias != item.expr.name
            ]
            if computed:
                node = A.Extend(
                    node,
                    tuple(item.alias for item in computed),
                    tuple(_to_expr(item.expr) for item in computed),
                )
            node = A.Project(node, tuple(item.alias for item in statement.items))

    if statement.distinct:
        node = A.Distinct(node)
    if statement.order_by:
        node = A.Sort(
            node,
            tuple(o.column for o in statement.order_by),
            tuple(o.ascending for o in statement.order_by),
        )
    if statement.limit is not None:
        node = A.Limit(node, statement.limit, statement.offset)
    node.schema  # validate eagerly so errors surface at parse time
    return node

"""A matrix-expression frontend: linear algebra with operator overloading.

The paper's intent-preservation example made concrete: ``A @ B`` on
:class:`Matrix` handles builds algebra trees *tagged with their intent*, so
however the expression is lowered, a linear-algebra server can still claim
the multiply.  ``lowering="relational"`` deliberately emits the
join-aggregate formulation instead of a native ``MatMul`` node — the form a
naive lowering would produce — which the optimizer's recognizer must see
through (experiment E3 measures both paths).

Example::

    A = Matrix.wrap(ctx.table("a"))
    B = Matrix.wrap(ctx.table("b"))
    C = (A @ B).T            # intent-tagged algebra underneath
    result = C.collect()
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core import algebra as A
from ..core.errors import SchemaError
from ..core.expressions import col
from ..core.intents import INTENT_MATMUL, matmul_as_join_aggregate

if TYPE_CHECKING:  # pragma: no cover
    from ..client.query import Query

LOWERINGS = ("native", "relational")


class Matrix:
    """A 2-d dimensioned table with matrix operators."""

    def __init__(self, node: A.Node, context=None, lowering: str = "native"):
        if lowering not in LOWERINGS:
            raise SchemaError(f"unknown lowering {lowering!r}; use {LOWERINGS}")
        dims = node.schema.dimension_names
        values = node.schema.value_names
        if len(dims) != 2 or len(values) != 1:
            raise SchemaError(
                f"a Matrix needs 2 dimensions and 1 value attribute, got "
                f"dims={list(dims)}, values={list(values)}"
            )
        self.node = node
        self._context = context
        self.lowering = lowering

    @classmethod
    def wrap(cls, query: "Query", lowering: str = "native") -> "Matrix":
        return cls(query.node, query._context, lowering)

    # -- shape ---------------------------------------------------------------------

    @property
    def dims(self) -> tuple[str, str]:
        d = self.node.schema.dimension_names
        return d[0], d[1]

    @property
    def value(self) -> str:
        return self.node.schema.value_names[0]

    def _like(self, node: A.Node) -> "Matrix":
        return Matrix(node, self._context, self.lowering)

    # -- operators --------------------------------------------------------------------

    def __matmul__(self, other: "Matrix") -> "Matrix":
        if not isinstance(other, Matrix):
            return NotImplemented
        if self.lowering == "relational" or other.lowering == "relational":
            node = matmul_as_join_aggregate(self.node, other.node)
        else:
            node = A.MatMul(self.node, other.node, intent=INTENT_MATMUL)
        return self._like(node)

    @property
    def T(self) -> "Matrix":
        d0, d1 = self.dims
        return self._like(
            A.TransposeDims(self.node, (d1, d0), intent="transpose")
        )

    def _elementwise(self, other: "Matrix", op: str, out_name: str) -> "Matrix":
        left, right = self.node, other.node
        if set(left.schema.value_names) & set(right.schema.value_names):
            rv = right.schema.value_names[0]
            right = A.Rename(right, ((rv, f"__rhs_{rv}"),))
        joined = A.CellJoin(left, right)
        lv = left.schema.value_names[0]
        rv = right.schema.value_names[0]
        expr = {
            "+": col(lv) + col(rv),
            "-": col(lv) - col(rv),
            "*": col(lv) * col(rv),
        }[op]
        extended = A.Extend(joined, (out_name,), (expr,))
        dims = joined.schema.dimension_names
        return self._like(A.Project(extended, (*dims, out_name)))

    def __add__(self, other: "Matrix") -> "Matrix":
        return self._elementwise(other, "+", "__sum")

    def __sub__(self, other: "Matrix") -> "Matrix":
        return self._elementwise(other, "-", "__diff")

    def __mul__(self, other) -> "Matrix":
        if isinstance(other, Matrix):  # Hadamard product
            return self._elementwise(other, "*", "__prod")
        return self.scale(float(other))

    def __rmul__(self, other) -> "Matrix":
        return self.scale(float(other))

    def scale(self, alpha: float) -> "Matrix":
        value = self.value
        dims = self.dims
        scaled = A.Extend(self.node, ("__scaled",), (col(value) * alpha,))
        return self._like(A.Project(scaled, (*dims, "__scaled")))

    def named(self, value_name: str) -> "Matrix":
        """Rename the value attribute (handy before elementwise combines)."""
        return self._like(
            A.Rename(self.node, ((self.value, value_name),))
        )

    # -- execution ---------------------------------------------------------------------

    def query(self) -> "Query":
        from ..client.query import Query

        return Query(self.node, self._context)

    def collect(self, *, on: str | None = None):
        return self.query().collect(on=on)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        d0, d1 = self.dims
        return f"Matrix[{d0} x {d1} -> {self.value}] lowering={self.lowering}"

"""Subpackage of repro."""

"""A Pig-style dataflow frontend: pipelines of stages over the algebra.

Where SQL is declarative-block-shaped, many Big Data users write *pipelines*
— a load followed by a sequence of transformations.  This frontend parses
that style and lowers it onto the same algebra as every other client
language (the paper's portability point: frontends are interchangeable
sugar).

Syntax — stages separated by ``|`` (newlines are whitespace)::

    load orders
    | filter amount > 10.0 and status = 'open'
    | derive taxed = amount * 1.1
    | join customers on cust = cid how left
    | group country: total = sum(taxed), n = count(*)
    | sort total desc
    | keep country, total
    | limit 5

Stages: ``load`` (first stage only), ``filter``, ``derive``, ``keep``,
``drop``, ``rename old -> new``, ``join <table> on a = b [and ...]
[how inner|left|full|semi|anti]``, ``group keys...: aggs...``, ``sort key
[asc|desc], ...``, ``limit n [offset m]``, ``distinct``, ``reverse``.

Scalar expressions reuse the SQL expression grammar (same precedence,
functions, CASE, IS NULL).
"""

from __future__ import annotations

from ..core import algebra as A
from ..core.errors import ParseError
from .sql import SchemaResolver, _Parser, _to_expr, tokenize

AGG_FUNCS = {"count", "sum", "min", "max", "avg"}


class _StageParser(_Parser):
    """Extends the SQL token machinery with pipeline-stage parsing."""

    def at_stage_end(self) -> bool:
        return self.check("op", "|") or self.check("eof")

    def expect_stage_end(self) -> None:
        if not self.at_stage_end():
            raise ParseError(
                f"unexpected {self.current.text!r} before end of stage",
                self.current.position,
            )

    def parse_name(self) -> str:
        # stage keywords collide with SQL keywords (e.g. "count"); accept both
        if self.current.kind in ("name", "keyword"):
            return self.advance().text
        raise ParseError(
            f"expected a name, found {self.current.text!r}",
            self.current.position,
        )


def parse_pipeline(text: str, resolve: SchemaResolver) -> A.Node:
    """Parse a dataflow pipeline and lower it to an algebra tree."""
    parser = _StageParser(tokenize(text))
    node = _parse_load(parser, resolve)
    while parser.accept("op", "|"):
        node = _parse_stage(parser, node, resolve)
    parser.expect("eof")
    node.schema  # validate eagerly
    return node


def _parse_load(parser: _StageParser, resolve: SchemaResolver) -> A.Node:
    word = parser.parse_name()
    if word != "load":
        raise ParseError(f"pipelines start with 'load', found {word!r}")
    table = parser.parse_name()
    parser.expect_stage_end()
    return A.Scan(table, resolve(table))


def _parse_stage(parser: _StageParser, node: A.Node,
                 resolve: SchemaResolver) -> A.Node:
    stage = parser.parse_name()
    if stage == "filter":
        predicate = parser.parse_expr()
        parser.expect_stage_end()
        return A.Filter(node, _to_expr(predicate))
    if stage == "derive":
        names, exprs = [], []
        while True:
            name = parser.parse_name()
            parser.expect("op", "=")
            expr = parser.parse_expr()
            names.append(name)
            exprs.append(_to_expr(expr))
            if not parser.accept("op", ","):
                break
        parser.expect_stage_end()
        return A.Extend(node, tuple(names), tuple(exprs))
    if stage == "keep":
        names = _name_list(parser)
        return A.Project(node, tuple(names))
    if stage == "drop":
        names = _name_list(parser)
        remaining = tuple(n for n in node.schema.names if n not in set(names))
        if not remaining:
            raise ParseError("drop would remove every column")
        return A.Project(node, remaining)
    if stage == "rename":
        mapping = []
        while True:
            old = parser.parse_name()
            parser.expect("op", "-")
            parser.expect("op", ">")
            new = parser.parse_name()
            mapping.append((old, new))
            if not parser.accept("op", ","):
                break
        parser.expect_stage_end()
        return A.Rename(node, tuple(mapping))
    if stage == "join":
        return _parse_join(parser, node, resolve)
    if stage == "group":
        return _parse_group(parser, node)
    if stage == "sort":
        keys, flags = [], []
        while True:
            keys.append(parser.parse_name())
            if parser.accept("keyword", "desc"):
                flags.append(False)
            else:
                parser.accept("keyword", "asc")
                flags.append(True)
            if not parser.accept("op", ","):
                break
        parser.expect_stage_end()
        return A.Sort(node, tuple(keys), tuple(flags))
    if stage == "limit":
        count = int(parser.expect("int").text)
        offset = 0
        if parser.check("name", "offset") or parser.check("keyword", "offset"):
            parser.advance()
            offset = int(parser.expect("int").text)
        parser.expect_stage_end()
        return A.Limit(node, count, offset)
    if stage == "distinct":
        parser.expect_stage_end()
        return A.Distinct(node)
    if stage == "reverse":
        parser.expect_stage_end()
        return A.Reverse(node)
    raise ParseError(f"unknown stage {stage!r}")


def _name_list(parser: _StageParser) -> list[str]:
    names = [parser.parse_name()]
    while parser.accept("op", ","):
        names.append(parser.parse_name())
    parser.expect_stage_end()
    return names


def _parse_join(parser: _StageParser, node: A.Node,
                resolve: SchemaResolver) -> A.Node:
    table = parser.parse_name()
    right = A.Scan(table, resolve(table))
    parser.expect("keyword", "on")
    pairs = []
    while True:
        a = parser.parse_name()
        parser.expect("op", "=")
        b = parser.parse_name()
        pairs.append((a, b))
        if not parser.accept("keyword", "and"):
            break
    how = "inner"
    if parser.check("name", "how") or parser.check("keyword", "how"):
        parser.advance()
        how = parser.parse_name()
    parser.expect_stage_end()
    # orient each pair by schema membership, like the SQL frontend
    oriented = []
    left_schema = node.schema
    right_schema = right.schema
    for a, b in pairs:
        if a in left_schema and b in right_schema:
            oriented.append((a, b))
        elif b in left_schema and a in right_schema:
            oriented.append((b, a))
        else:
            raise ParseError(f"join condition {a} = {b} matches neither side")
    return A.Join(node, right, tuple(oriented), how)


def _parse_group(parser: _StageParser, node: A.Node) -> A.Node:
    keys = []
    while not parser.check("op", ":"):
        keys.append(parser.parse_name())
        parser.accept("op", ",")
    parser.expect("op", ":")
    specs = []
    while True:
        name = parser.parse_name()
        parser.expect("op", "=")
        func = parser.parse_name()
        if func not in AGG_FUNCS:
            raise ParseError(
                f"unknown aggregate {func!r}; use one of {sorted(AGG_FUNCS)}"
            )
        parser.expect("op", "(")
        if func == "count" and parser.accept("op", "*"):
            arg = None
        else:
            arg = _to_expr(parser.parse_expr())
        parser.expect("op", ")")
        specs.append(A.AggSpec(name, "mean" if func == "avg" else func, arg))
        if not parser.accept("op", ","):
            break
    parser.expect_stage_end()
    return A.Aggregate(node, tuple(keys), tuple(specs))

"""Logical→physical lowering for the chunked-array engine.

The array engine's physical decisions — chunk side, chunk-parallel worker
count, and the COO↔chunked conversion points — are frozen into the plan
here.  Structural validation that needs no data (a Project dropping
dimensions, operators with no array reading) also happens at lowering, so
invalid trees fail before any chunk is touched.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core import algebra as A
from ..core.errors import ExecutionError
from ..exec.physical import array as P
from ..exec.physical.base import (
    PhysInlineTable, PhysLoopVar, PhysOp, PhysPlan, PhysProps, PhysScan,
    props_for,
)
from ..opt.estimator import CardinalityEstimator

if TYPE_CHECKING:  # avoid a cycle: engine imports this module
    from .engine import ArrayEngineOptions


def lower_array(
    node: A.Node, options: "ArrayEngineOptions", stats_source=None
) -> PhysPlan:
    """Lower a logical tree to a chunked-array physical plan."""
    lowering = _Lowering(options, stats_source)
    root = P.PhysArrayResult(
        node.schema, lowering._props(node), (lowering.lower(node),)
    )
    return PhysPlan(root, engine="array")


class _Lowering:
    def __init__(self, options: "ArrayEngineOptions", stats_source=None):
        self.options = options
        self.estimator = CardinalityEstimator(stats_source)

    def _props(self, node: A.Node, *, parallelism: int = 1) -> PhysProps:
        """Props with the shared estimate (cells ≈ rows in COO form)."""
        est = self.estimator.estimate(node)
        return props_for(
            node.schema, max(int(est.rows), 0), parallelism=parallelism,
            est_source=est.source, selectivity=est.selectivity,
        )

    def _common(self, node: A.Node) -> dict:
        return {
            "chunk_side": self.options.chunk_side,
            "workers": self.options.workers,
        }

    def lower(self, node: A.Node) -> PhysOp:
        chunk = self.options.chunk_side
        workers = self.options.workers
        par = workers if workers != 1 else 1
        if isinstance(node, A.Scan):
            return PhysScan(node.name, node.schema, self._props(node))
        if isinstance(node, A.InlineTable):
            return PhysInlineTable(
                node.table_schema, node.rows,
                self._props(node),
            )
        if isinstance(node, A.LoopVar):
            return PhysLoopVar(node.name, node.schema, self._props(node))
        if isinstance(node, A.AsDims):
            return P.PhysChunkedAsDims(
                self.lower(node.child), node.child.schema, node.schema,
                self._props(node), chunk_side=chunk,
            )
        if isinstance(node, A.SliceDims):
            return P.PhysChunkedSlice(
                self.lower(node.child), node.child.schema, node.schema,
                self._props(node), bounds=node.bounds, chunk_side=chunk,
            )
        if isinstance(node, A.ShiftDim):
            return P.PhysChunkedShift(
                self.lower(node.child), node.child.schema, node.schema,
                self._props(node), dim=node.dim, offset=node.offset,
                chunk_side=chunk,
            )
        if isinstance(node, A.TransposeDims):
            return P.PhysChunkedTranspose(
                self.lower(node.child), node.child.schema, node.schema,
                self._props(node), order=node.order, chunk_side=chunk,
            )
        if isinstance(node, A.Filter):
            return P.PhysChunkedFilter(
                self.lower(node.child), node.child.schema, node.schema,
                self._props(node, parallelism=par),
                predicate=node.predicate, chunk_side=chunk, workers=workers,
            )
        if isinstance(node, A.Extend):
            return P.PhysChunkedExtend(
                self.lower(node.child), node.child.schema, node.schema,
                self._props(node, parallelism=par),
                names=node.names, exprs=node.exprs,
                chunk_side=chunk, workers=workers,
            )
        if isinstance(node, A.Project):
            missing = [
                d for d in node.child.schema.dimension_names
                if d not in node.names
            ]
            if missing:
                raise ExecutionError(
                    f"array engine Project must keep all dimensions; "
                    f"missing {missing} (use ReduceDims to drop them)"
                )
            return P.PhysChunkedProject(
                self.lower(node.child), node.child.schema, node.schema,
                self._props(node), chunk_side=chunk,
            )
        if isinstance(node, A.Rename):
            return P.PhysChunkedRename(
                self.lower(node.child), node.child.schema, node.schema,
                self._props(node), mapping=node.mapping, chunk_side=chunk,
            )
        if isinstance(node, A.Regrid):
            return P.PhysChunkedRegrid(
                self.lower(node.child), node.child.schema, node.schema,
                self._props(node, parallelism=par),
                factors=node.factors, aggs=node.aggs,
                chunk_side=chunk, workers=workers,
            )
        if isinstance(node, A.Window):
            return P.PhysChunkedWindow(
                self.lower(node.child), node.child.schema, node.schema,
                self._props(node), sizes=node.sizes, aggs=node.aggs,
                chunk_side=chunk,
            )
        if isinstance(node, A.ReduceDims):
            return P.PhysChunkedReduceDims(
                self.lower(node.child), node.child.schema, node.schema,
                self._props(node), keep=node.keep, aggs=node.aggs,
                chunk_side=chunk,
            )
        if isinstance(node, A.CellJoin):
            return P.PhysChunkedCellJoin(
                self.lower(node.left), self.lower(node.right),
                node.left.schema, node.right.schema, node.schema,
                self._props(node), chunk_side=chunk,
            )
        if isinstance(node, A.MatMul):
            return P.PhysChunkedMatMul(
                self.lower(node.left), self.lower(node.right),
                node.left.schema, node.right.schema, node.schema,
                self._props(node), chunk_side=chunk,
            )
        if isinstance(node, A.Iterate):
            return P.PhysChunkedIterate(
                self.lower(node.init), self.lower(node.body),
                node.var, node.stop, node.max_iter, node.strict,
                node.init.schema, node.schema, self._props(node),
                chunk_side=chunk,
            )
        raise ExecutionError(
            f"array engine: unsupported operator {node.op_name}"
        )

"""Subpackage of repro."""

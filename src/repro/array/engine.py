"""The array engine: cached lowering + the shared physical executor.

The SciDB stand-in.  Logical trees lower once (through
:mod:`repro.array.lowering`, which freezes chunk side, worker count and
COO↔chunked conversion points into the plan) and the memoized physical
plan runs through the shared executor.  Tables enter as COO (a
dimensioned ColumnTable), are converted to :class:`ChunkedArray` on first
use, flow between operators in chunked form, and convert back at the
plan root.

The engine cannot execute relational operators that have no array reading
(joins on arbitrary keys, sorts, set operations) — those gaps are the
whole point of the coverage experiment (E1) and of federation (E4).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Union

from ..core import algebra as A
from ..core import serialize
from ..exec.physical.base import PhysPlan, run_plan
from ..storage.table import ColumnTable
from .chunked import DEFAULT_CHUNK, ChunkedArray

Value = Union[ChunkedArray, ColumnTable]
#: Scan resolver; may return a pre-chunked array to skip conversion.
Resolver = Callable[[str], Value]


@dataclass
class ArrayEngineOptions:
    """Physical knobs; ``chunk_side`` is swept by the chunking bench (E9)."""

    chunk_side: int = DEFAULT_CHUNK
    #: worker threads for chunk-wise apply/filter/regrid maps; 1 = serial,
    #: 0 = one worker per CPU
    workers: int = 1


class ArrayEngine:
    """Plans and executes dimension-aware algebra trees over chunked arrays."""

    PLAN_CACHE_CAP = 128

    def __init__(self, options: ArrayEngineOptions | None = None,
                 stats_source=None):
        self.options = options or ArrayEngineOptions()
        #: maps dataset names to :class:`~repro.opt.stats.TableStats`; set
        #: by the owning provider so lowered plans carry real cell counts
        self.stats_source = stats_source
        #: bumped by the owner whenever dataset statistics change, so
        #: cached plans with stale estimates stamped into them invalidate
        self.stats_version = 0
        #: stage timings of the most recent query only
        self.last_stage_seconds: dict[str, float] = {}
        self._plans: OrderedDict[tuple, PhysPlan] = OrderedDict()

    @property
    def chunk_side(self) -> int:
        return self.options.chunk_side

    @property
    def workers(self) -> int:
        return self.options.workers

    def plan_for(self, node: A.Node) -> PhysPlan:
        """The (cached) physical plan for ``node`` under current options."""
        key = (
            serialize.dumps(node), self.chunk_side, self.workers,
            self.stats_version,
        )
        plan = self._plans.get(key)
        if plan is not None:
            self._plans.move_to_end(key)
            return plan
        from .lowering import lower_array

        plan = lower_array(node, self.options, self.stats_source)
        self._plans[key] = plan
        while len(self._plans) > self.PLAN_CACHE_CAP:
            self._plans.popitem(last=False)
        return plan

    def explain(self, node: A.Node) -> str:
        """Render the lowered physical plan with its properties."""
        return self.plan_for(node).render()

    def run(
        self,
        node: A.Node,
        resolver: Resolver,
        env: dict[str, Value] | None = None,
    ) -> ColumnTable:
        plan = self.plan_for(node)
        outcome = run_plan(plan, resolver, env=env)
        self.last_stage_seconds = outcome.stage_seconds
        return outcome.value

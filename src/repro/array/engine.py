"""The array engine: SciDB-style execution over chunked n-d arrays.

Executes the dimension-aware slice of the algebra (plus cell-wise filter,
extend, project and control iteration) with chunked storage.  Tables enter
as COO (a dimensioned ColumnTable), are converted to :class:`ChunkedArray`
once, flow between operators in chunked form, and are converted back at the
root.

The engine cannot execute relational operators that have no array reading
(joins on arbitrary keys, sorts, set operations) — those gaps are the whole
point of the coverage experiment (E1) and of federation (E4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Union

from ..core import algebra as A
from ..core.errors import ConvergenceError, ExecutionError
from ..core.schema import Schema
from ..storage.table import ColumnTable
from .chunked import DEFAULT_CHUNK, ChunkedArray
from . import ops

Value = Union[ChunkedArray, ColumnTable]
#: Scan resolver; may return a pre-chunked array to skip conversion.
Resolver = Callable[[str], Value]


@dataclass
class ArrayEngineOptions:
    """Physical knobs; ``chunk_side`` is swept by the chunking bench (E9)."""

    chunk_side: int = DEFAULT_CHUNK
    #: worker threads for chunk-wise apply/filter/regrid maps; 1 = serial,
    #: 0 = one worker per CPU
    workers: int = 1


class ArrayEngine:
    """Executes dimension-aware algebra trees over chunked arrays."""

    def __init__(self, options: ArrayEngineOptions | None = None):
        self.options = options or ArrayEngineOptions()

    @property
    def chunk_side(self) -> int:
        return self.options.chunk_side

    @property
    def workers(self) -> int:
        return self.options.workers

    def run(
        self,
        node: A.Node,
        resolver: Resolver,
        env: dict[str, Value] | None = None,
    ) -> ColumnTable:
        result = self._exec(node, resolver, env or {})
        if isinstance(result, ChunkedArray):
            return result.to_table()
        return result

    # -- representation helpers ---------------------------------------------------

    def _as_array(self, value: Value, schema: Schema) -> ChunkedArray:
        if isinstance(value, ChunkedArray):
            return value
        if not schema.dimensions:
            raise ExecutionError(
                "array engine needs dimensioned input; tag dimensions with AsDims"
            )
        return ChunkedArray.from_table(value, self.chunk_side)

    # -- dispatcher ------------------------------------------------------------------

    def _exec(self, node: A.Node, resolver: Resolver, env: dict) -> Value:
        if isinstance(node, A.Scan):
            return resolver(node.name)
        if isinstance(node, A.InlineTable):
            return ColumnTable.from_rows(node.table_schema, node.rows)
        if isinstance(node, A.LoopVar):
            try:
                return env[node.name]
            except KeyError:
                raise ExecutionError(f"unbound LoopVar({node.name!r})") from None

        if isinstance(node, A.AsDims):
            child = self._exec(node.child, resolver, env)
            table = child.to_table() if isinstance(child, ChunkedArray) else child
            retagged = ColumnTable(node.schema, table.columns)
            # from_table enforces that dimensions form a key (duplicate
            # coordinates raise) and contain no nulls
            return ChunkedArray.from_table(retagged, self.chunk_side)

        if isinstance(node, A.SliceDims):
            arr = self._child_array(node.child, resolver, env)
            return ops.slice_array(arr, node.bounds)
        if isinstance(node, A.ShiftDim):
            arr = self._child_array(node.child, resolver, env)
            return ops.shift_array(arr, node.dim, node.offset)
        if isinstance(node, A.TransposeDims):
            arr = self._child_array(node.child, resolver, env)
            return ops.transpose_array(arr, node.order, node.schema)
        if isinstance(node, A.Filter):
            arr = self._child_array(node.child, resolver, env)
            return ops.filter_array(
                arr, node.predicate, node.child.schema, workers=self.workers
            )
        if isinstance(node, A.Extend):
            arr = self._child_array(node.child, resolver, env)
            return ops.extend_array(
                arr, node.names, node.exprs, node.child.schema, node.schema,
                workers=self.workers,
            )
        if isinstance(node, A.Project):
            missing = [
                d for d in node.child.schema.dimension_names
                if d not in node.names
            ]
            if missing:
                raise ExecutionError(
                    f"array engine Project must keep all dimensions; "
                    f"missing {missing} (use ReduceDims to drop them)"
                )
            arr = self._child_array(node.child, resolver, env)
            return ops.project_array(arr, node.schema)
        if isinstance(node, A.Rename):
            arr = self._child_array(node.child, resolver, env)
            return ops.rename_array(arr, dict(node.mapping), node.schema)
        if isinstance(node, A.Regrid):
            arr = self._child_array(node.child, resolver, env)
            return ops.regrid_array(
                arr, node.factors, node.aggs, node.child.schema, node.schema,
                self.chunk_side, workers=self.workers,
            )
        if isinstance(node, A.Window):
            arr = self._child_array(node.child, resolver, env)
            return ops.window_array(
                arr, node.sizes, node.aggs, node.child.schema, node.schema
            )
        if isinstance(node, A.ReduceDims):
            arr = self._child_array(node.child, resolver, env)
            return ops.reduce_dims_array(
                arr, node.keep, node.aggs, node.child.schema, node.schema,
                self.chunk_side,
            )
        if isinstance(node, A.CellJoin):
            left = self._child_array(node.left, resolver, env)
            right = self._child_array(node.right, resolver, env)
            return ops.cell_join_arrays(left, right, node.schema, self.chunk_side)
        if isinstance(node, A.MatMul):
            left = self._child_array(node.left, resolver, env)
            right = self._child_array(node.right, resolver, env)
            return ops.matmul_arrays(left, right, node.schema, self.chunk_side)
        if isinstance(node, A.Iterate):
            return self._iterate(node, resolver, env)
        raise ExecutionError(f"array engine: unsupported operator {node.op_name}")

    def _child_array(self, child: A.Node, resolver: Resolver, env: dict) -> ChunkedArray:
        value = self._exec(child, resolver, env)
        return self._as_array(value, child.schema)

    # -- control iteration ----------------------------------------------------------------

    def _iterate(self, node: A.Iterate, resolver: Resolver, env: dict) -> Value:
        state_schema = node.init.schema
        state = self._exec(node.init, resolver, env)
        if state_schema.dimensions:
            state = self._as_array(state, state_schema)
        for _ in range(node.max_iter):
            inner_env = dict(env)
            inner_env[node.var] = state
            new_state = self._exec(node.body, resolver, inner_env)
            if state_schema.dimensions:
                new_state = self._as_array(new_state, state_schema)
            if self._converged(node.stop, state_schema, state, new_state):
                return new_state
            state = new_state
        if node.stop.value_attr is not None and node.strict:
            raise ConvergenceError(
                f"Iterate did not converge within {node.max_iter} iterations"
            )
        return state

    def _converged(
        self,
        stop: A.Convergence,
        schema: Schema,
        old: Value,
        new: Value,
    ) -> bool:
        if stop.value_attr is None:
            return False
        import numpy as np

        old_arr = old if isinstance(old, ChunkedArray) else None
        new_arr = new if isinstance(new, ChunkedArray) else None
        if old_arr is None or new_arr is None:
            return False
        if old_arr.cell_count != new_arr.cell_count:
            return False
        if old_arr.cell_count == 0:
            return True
        olo, ohi = old_arr.bounding_box()
        nlo, nhi = new_arr.bounding_box()
        lo = tuple(min(a, b) for a, b in zip(olo, nlo))
        hi = tuple(max(a, b) for a, b in zip(ohi, nhi))
        op, ov, om = old_arr.get_region(lo, hi)
        np_, nv, nm = new_arr.get_region(lo, hi)
        if not np.array_equal(op, np_):
            return False
        attr = stop.value_attr
        omask = om[attr] if om[attr] is not None else np.zeros_like(op)
        nmask = nm[attr] if nm[attr] is not None else np.zeros_like(op)
        if not np.array_equal(omask & op, nmask & op):
            return False
        valid = op & ~omask
        deltas = np.abs(
            nv[attr][valid].astype(np.float64) - ov[attr][valid].astype(np.float64)
        )
        if deltas.size == 0:
            return True
        delta = float(deltas.max()) if stop.norm == "linf" else float(deltas.sum())
        return delta <= stop.tolerance

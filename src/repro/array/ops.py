"""Array-engine implementations of the dimension-aware operators.

Operations follow SciDB-style execution: slice and filter work chunk-local,
shift is a pure metadata update, regrid and reduce scatter into dense
accumulators over the (much smaller) output box, and window gathers each
output chunk's input *halo* from neighbouring chunks before aggregating —
the overlap-processing strategy whose chunk-size trade-off bench E9 sweeps.
"""

from __future__ import annotations

import itertools
from typing import Mapping, Sequence

import numpy as np

from ..core import algebra as A
from ..core.schema import Schema
from ..core.types import DType
from ..relational.eval import eval_vector
from ..storage.column import Column
from ..storage.table import ColumnTable
from .chunked import Chunk, ChunkedArray


# --------------------------------------------------------------------------
# Chunk-local helpers
# --------------------------------------------------------------------------


def chunk_cells(
    arr: ChunkedArray, cc: tuple[int, ...], chunk: Chunk, schema: Schema
) -> tuple[ColumnTable, tuple[np.ndarray, ...]]:
    """Present cells of one chunk as a COO table, plus their global coords."""
    where = np.nonzero(chunk.present)
    coords = []
    columns: dict[str, Column] = {}
    for axis, dim in enumerate(arr.dims):
        base = arr.origin[axis] + cc[axis] * arr.chunk_shape[axis]
        global_coords = where[axis].astype(np.int64) + base
        coords.append(global_coords)
        columns[dim] = Column(DType.INT64, global_coords)
    for attr in arr.attrs:
        mask = chunk.masks[attr.name]
        columns[attr.name] = Column(
            attr.dtype,
            np.ascontiguousarray(chunk.values[attr.name][where]),
            None if mask is None else mask[where].copy(),
        )
    return ColumnTable(schema, columns), tuple(coords)


# --------------------------------------------------------------------------
# Structural operations
# --------------------------------------------------------------------------


def slice_array(
    arr: ChunkedArray, bounds: Sequence[tuple[str, int, int]]
) -> ChunkedArray:
    """Chunk-local slice: drop chunks outside the box, mask partial chunks."""
    limit = {dim: (lo, hi) for dim, lo, hi in bounds}
    out = ChunkedArray(arr.schema, arr.origin, arr.shape, arr.chunk_shape)
    for cc, chunk in arr.iter_chunks():
        chunk_lo = [
            arr.origin[axis] + cc[axis] * arr.chunk_shape[axis]
            for axis in range(arr.ndim)
        ]
        keep_slices = []
        skip = False
        partial = False
        for axis, dim in enumerate(arr.dims):
            if dim not in limit:
                keep_slices.append(slice(None))
                continue
            lo, hi = limit[dim]
            block_len = chunk.present.shape[axis]
            local_lo = max(0, lo - chunk_lo[axis])
            local_hi = min(block_len - 1, hi - chunk_lo[axis])
            if local_lo > local_hi:
                skip = True
                break
            if local_lo > 0 or local_hi < block_len - 1:
                partial = True
            keep_slices.append(slice(local_lo, local_hi + 1))
        if skip:
            continue
        if not partial:
            out.chunks[cc] = chunk
            continue
        present = np.zeros_like(chunk.present)
        region = tuple(keep_slices)
        present[region] = chunk.present[region]
        if not present.any():
            continue
        out.chunks[cc] = Chunk(
            present=present,
            values=dict(chunk.values),
            masks=dict(chunk.masks),
        )
    return out


def shift_array(arr: ChunkedArray, dim: str, offset: int) -> ChunkedArray:
    """O(1) metadata-only shift along one dimension."""
    axis = arr.dims.index(dim)
    origin = list(arr.origin)
    origin[axis] += offset
    return ChunkedArray(
        arr.schema, tuple(origin), arr.shape, arr.chunk_shape, arr.chunks
    )


def transpose_array(arr: ChunkedArray, order: Sequence[str], schema: Schema) -> ChunkedArray:
    perm = tuple(arr.dims.index(d) for d in order)
    out = ChunkedArray(
        schema,
        tuple(arr.origin[p] for p in perm),
        tuple(arr.shape[p] for p in perm),
        tuple(arr.chunk_shape[p] for p in perm),
    )
    for cc, chunk in arr.iter_chunks():
        new_cc = tuple(cc[p] for p in perm)
        out.chunks[new_cc] = Chunk(
            present=np.ascontiguousarray(chunk.present.transpose(perm)),
            values={
                n: np.ascontiguousarray(v.transpose(perm))
                for n, v in chunk.values.items()
            },
            masks={
                n: None if m is None else np.ascontiguousarray(m.transpose(perm))
                for n, m in chunk.masks.items()
            },
        )
    return out


def filter_array(
    arr: ChunkedArray, predicate, child_schema: Schema, workers: int = 1
) -> ChunkedArray:
    """Clear presence bits where the predicate is not exactly True.

    Chunks are independent, so the map runs on a thread pool when
    ``workers`` allows; results merge in sorted chunk order either way.
    """
    def one_chunk(cc: tuple[int, ...], chunk: Chunk) -> Chunk | None:
        cells, _ = chunk_cells(arr, cc, chunk, child_schema)
        if cells.num_rows == 0:
            return None
        verdict = eval_vector(predicate, cells)
        keep = verdict.values.astype(bool)
        if verdict.mask is not None:
            keep &= ~verdict.mask
        if not keep.any():
            return None
        where = np.nonzero(chunk.present)
        present = np.zeros_like(chunk.present)
        kept = tuple(w[keep] for w in where)
        present[kept] = True
        return Chunk(
            present=present, values=dict(chunk.values), masks=dict(chunk.masks)
        )

    out = ChunkedArray(arr.schema, arr.origin, arr.shape, arr.chunk_shape)
    for cc, chunk in arr.map_chunks(one_chunk, workers):
        if chunk is not None:
            out.chunks[cc] = chunk
    return out


def extend_array(
    arr: ChunkedArray,
    names: Sequence[str],
    exprs: Sequence,
    child_schema: Schema,
    out_schema: Schema,
    workers: int = 1,
) -> ChunkedArray:
    """Compute new value attributes cell-wise (SciDB ``apply``).

    Purely chunk-local, so the map parallelizes across ``workers`` threads.
    """
    def one_chunk(cc: tuple[int, ...], chunk: Chunk) -> Chunk:
        cells, _ = chunk_cells(arr, cc, chunk, child_schema)
        where = np.nonzero(chunk.present)
        values = dict(chunk.values)
        masks = dict(chunk.masks)
        for name, expr in zip(names, exprs):
            column = eval_vector(expr, cells)
            attr = out_schema[name]
            if attr.dtype is DType.STRING:
                block = np.full(chunk.present.shape, "", dtype=object)
            else:
                block = np.zeros(chunk.present.shape, dtype=attr.dtype.to_numpy())
            block[where] = column.values
            values[name] = block
            if column.mask is not None and column.mask.any():
                mask_block = np.zeros(chunk.present.shape, dtype=bool)
                mask_block[where] = column.mask
                masks[name] = mask_block
            else:
                masks[name] = None
        return Chunk(present=chunk.present, values=values, masks=masks)

    out = ChunkedArray(out_schema, arr.origin, arr.shape, arr.chunk_shape)
    for cc, chunk in arr.map_chunks(one_chunk, workers):
        out.chunks[cc] = chunk
    return out


def project_array(arr: ChunkedArray, out_schema: Schema) -> ChunkedArray:
    """Keep a subset of value attributes (all dimensions retained)."""
    keep = set(out_schema.value_names)
    out = ChunkedArray(out_schema, arr.origin, arr.shape, arr.chunk_shape)
    for cc, chunk in arr.iter_chunks():
        out.chunks[cc] = Chunk(
            present=chunk.present,
            values={n: v for n, v in chunk.values.items() if n in keep},
            masks={n: m for n, m in chunk.masks.items() if n in keep},
        )
    return out


def rename_array(arr: ChunkedArray, mapping: Mapping[str, str], out_schema: Schema) -> ChunkedArray:
    out = ChunkedArray(out_schema, arr.origin, arr.shape, arr.chunk_shape)
    for cc, chunk in arr.iter_chunks():
        out.chunks[cc] = Chunk(
            present=chunk.present,
            values={mapping.get(n, n): v for n, v in chunk.values.items()},
            masks={mapping.get(n, n): m for n, m in chunk.masks.items()},
        )
    return out


# --------------------------------------------------------------------------
# Dense aggregation machinery (regrid / reduce)
# --------------------------------------------------------------------------


class DenseAggregator:
    """Scatter-based aggregation into a dense output box."""

    def __init__(self, out_shape: tuple[int, ...], aggs: Sequence[A.AggSpec],
                 out_schema: Schema):
        self.out_shape = out_shape
        self.aggs = tuple(aggs)
        self.out_schema = out_schema
        size = int(np.prod(out_shape)) if out_shape else 1
        self.rows = np.zeros(size, dtype=np.int64)
        self.state: dict[str, dict[str, np.ndarray]] = {}
        for spec in self.aggs:
            if spec.func == "count":
                self.state[spec.name] = {"count": np.zeros(size, dtype=np.int64)}
            elif spec.func in ("sum", "mean"):
                self.state[spec.name] = {
                    "sum": np.zeros(size, dtype=np.float64),
                    "count": np.zeros(size, dtype=np.int64),
                }
            else:  # min / max
                sentinel = np.inf if spec.func == "min" else -np.inf
                self.state[spec.name] = {
                    "best": np.full(size, sentinel, dtype=np.float64),
                    "count": np.zeros(size, dtype=np.int64),
                }

    def update(self, flat_idx: np.ndarray, cells: ColumnTable) -> None:
        np.add.at(self.rows, flat_idx, 1)
        for spec in self.aggs:
            state = self.state[spec.name]
            if spec.arg is None:
                np.add.at(state["count"], flat_idx, 1)
                continue
            column = eval_vector(spec.arg, cells)
            valid = (
                np.ones(len(column), dtype=bool)
                if column.mask is None else ~column.mask
            )
            idx = flat_idx[valid]
            vals = column.values[valid].astype(np.float64)
            if spec.func == "count":
                np.add.at(state["count"], idx, 1)
            elif spec.func in ("sum", "mean"):
                np.add.at(state["sum"], idx, vals)
                np.add.at(state["count"], idx, 1)
            elif spec.func == "min":
                np.minimum.at(state["best"], idx, vals)
                np.add.at(state["count"], idx, 1)
            else:
                np.maximum.at(state["best"], idx, vals)
                np.add.at(state["count"], idx, 1)

    def finalize(self) -> tuple[np.ndarray, dict[str, np.ndarray], dict[str, np.ndarray | None]]:
        present = (self.rows > 0).reshape(self.out_shape)
        values: dict[str, np.ndarray] = {}
        masks: dict[str, np.ndarray | None] = {}
        for spec in self.aggs:
            state = self.state[spec.name]
            out_dtype = self.out_schema[spec.name].dtype
            if spec.func == "count":
                values[spec.name] = state["count"].reshape(self.out_shape)
                masks[spec.name] = None
                continue
            count = state["count"]
            empty = (count == 0) & (self.rows > 0)
            if spec.func in ("sum", "mean"):
                raw = state["sum"].copy()
                if spec.func == "mean":
                    with np.errstate(all="ignore"):
                        raw = raw / np.maximum(count, 1)
            else:
                raw = np.where(count > 0, state["best"], 0.0)
            values[spec.name] = raw.astype(out_dtype.to_numpy()).reshape(self.out_shape)
            masks[spec.name] = empty.reshape(self.out_shape) if empty.any() else None
        return present, values, masks


def _floor_div(values: np.ndarray, factor: int) -> np.ndarray:
    return np.floor_divide(values, factor)


def regrid_array(
    arr: ChunkedArray,
    factors: Sequence[tuple[str, int]],
    aggs: Sequence[A.AggSpec],
    child_schema: Schema,
    out_schema: Schema,
    chunk_shape: int | Sequence[int],
    workers: int = 1,
) -> ChunkedArray:
    """Coarsen dimensions by integer factors, aggregating within bins.

    Per-chunk extraction (cell gather + bin index computation) parallelizes
    across ``workers``; accumulation stays serial because the aggregator's
    scatter-adds (``np.add.at``) are not thread-safe.
    """
    if arr.cell_count == 0:
        return ChunkedArray.from_table(ColumnTable.empty(out_schema), chunk_shape)
    factor_by_dim = dict(factors)
    lo, hi = arr.bounding_box()
    out_lo = tuple(
        _floor_div(np.array([l]), factor_by_dim.get(d, 1))[0]
        for l, d in zip(lo, arr.dims)
    )
    out_hi = tuple(
        _floor_div(np.array([h]), factor_by_dim.get(d, 1))[0]
        for h, d in zip(hi, arr.dims)
    )
    out_shape = tuple(int(h - l + 1) for l, h in zip(out_lo, out_hi))

    def extract(cc: tuple[int, ...], chunk) -> tuple[np.ndarray, ColumnTable] | None:
        cells, coords = chunk_cells(arr, cc, chunk, child_schema)
        if cells.num_rows == 0:
            return None
        out_coords = tuple(
            _floor_div(coords[axis], factor_by_dim.get(d, 1)) - out_lo[axis]
            for axis, d in enumerate(arr.dims)
        )
        return np.ravel_multi_index(out_coords, out_shape), cells

    agg = DenseAggregator(out_shape, aggs, out_schema)
    for _, extracted in arr.map_chunks(extract, workers):
        if extracted is not None:
            agg.update(*extracted)
    present, values, masks = agg.finalize()
    return ChunkedArray.from_dense_region(
        out_schema, out_lo, present, values, masks, chunk_shape
    )


def reduce_dims_array(
    arr: ChunkedArray,
    keep: Sequence[str],
    aggs: Sequence[A.AggSpec],
    child_schema: Schema,
    out_schema: Schema,
    chunk_shape: int | Sequence[int],
) -> ChunkedArray | ColumnTable:
    """Aggregate away dimensions; returns a plain table when none remain."""
    keep_set = set(keep)
    keep_axes = [axis for axis, d in enumerate(arr.dims) if d in keep_set]
    if arr.cell_count == 0:
        if keep_axes:
            return ChunkedArray.from_table(ColumnTable.empty(out_schema), chunk_shape)
        return ColumnTable.empty(out_schema)
    lo, hi = arr.bounding_box()
    if not keep_axes:
        out_shape: tuple[int, ...] = ()
        out_lo: tuple[int, ...] = ()
    else:
        out_lo = tuple(lo[a] for a in keep_axes)
        out_shape = tuple(hi[a] - lo[a] + 1 for a in keep_axes)
    agg = DenseAggregator(out_shape if out_shape else (1,), aggs, out_schema)
    for cc, chunk in arr.iter_chunks():
        cells, coords = chunk_cells(arr, cc, chunk, child_schema)
        if cells.num_rows == 0:
            continue
        if keep_axes:
            rel = tuple(coords[a] - out_lo[i] for i, a in enumerate(keep_axes))
            flat = np.ravel_multi_index(rel, out_shape)
        else:
            flat = np.zeros(cells.num_rows, dtype=np.int64)
        agg.update(flat, cells)
    present, values, masks = agg.finalize()
    if keep_axes:
        return ChunkedArray.from_dense_region(
            out_schema, out_lo, present, values, masks, chunk_shape
        )
    columns = {}
    for spec in aggs:
        attr = out_schema[spec.name]
        mask = masks[spec.name]
        columns[spec.name] = Column(
            attr.dtype, values[spec.name].reshape(1),
            None if mask is None else mask.reshape(1),
        )
    return ColumnTable(out_schema, columns)


# --------------------------------------------------------------------------
# Window (halo-based overlap processing)
# --------------------------------------------------------------------------


def window_array(
    arr: ChunkedArray,
    sizes: Sequence[tuple[str, int]],
    aggs: Sequence[A.AggSpec],
    child_schema: Schema,
    out_schema: Schema,
) -> ChunkedArray:
    """Centered moving-window aggregate.

    For each populated chunk, gather the chunk's box expanded by the window
    radius (the *halo*) from neighbouring chunks, then slide the window by
    iterating offset combinations — vectorized over the whole block per
    offset.  Cells that are absent contribute nothing; output cells exist
    exactly where input cells exist.
    """
    radius_by_dim = dict(sizes)
    radii = tuple(radius_by_dim.get(d, 0) for d in arr.dims)
    out = ChunkedArray(out_schema, arr.origin, arr.shape, arr.chunk_shape)

    for cc, chunk in arr.iter_chunks():
        if not chunk.present.any():
            continue
        chunk_lo = tuple(
            arr.origin[axis] + cc[axis] * arr.chunk_shape[axis]
            for axis in range(arr.ndim)
        )
        block_shape = chunk.present.shape
        halo_lo = tuple(cl - r for cl, r in zip(chunk_lo, radii))
        halo_hi = tuple(
            cl + bs - 1 + r for cl, bs, r in zip(chunk_lo, block_shape, radii)
        )
        present, values, masks = arr.get_region(halo_lo, halo_hi)
        arg_blocks = _window_arg_blocks(
            arr, aggs, child_schema, halo_lo, present, values, masks
        )

        core = tuple(
            slice(r, r + bs) for r, bs in zip(radii, block_shape)
        )
        sums = {spec.name: np.zeros(block_shape, dtype=np.float64) for spec in aggs}
        counts = {spec.name: np.zeros(block_shape, dtype=np.int64) for spec in aggs}
        mins = {
            spec.name: np.full(block_shape, np.inf)
            for spec in aggs if spec.func == "min"
        }
        maxs = {
            spec.name: np.full(block_shape, -np.inf)
            for spec in aggs if spec.func == "max"
        }

        for offsets in itertools.product(*(range(-r, r + 1) for r in radii)):
            shifted = tuple(
                slice(c.start + o, c.stop + o) for c, o in zip(core, offsets)
            )
            p = present[shifted]
            for spec in aggs:
                if spec.arg is None:
                    counts[spec.name] += p
                    continue
                vals, valid = arg_blocks[spec.name]
                v = vals[shifted]
                ok = valid[shifted] & p
                counts[spec.name] += ok
                if spec.func in ("sum", "mean"):
                    sums[spec.name] += np.where(ok, v, 0.0)
                elif spec.func == "min":
                    mins[spec.name] = np.where(
                        ok, np.minimum(mins[spec.name], v), mins[spec.name]
                    )
                elif spec.func == "max":
                    maxs[spec.name] = np.where(
                        ok, np.maximum(maxs[spec.name], v), maxs[spec.name]
                    )

        out_values: dict[str, np.ndarray] = {}
        out_masks: dict[str, np.ndarray | None] = {}
        for spec in aggs:
            out_dtype = out_schema[spec.name].dtype
            cnt = counts[spec.name]
            if spec.func == "count":
                block = cnt.astype(np.int64)
                mask = None
            elif spec.func == "sum":
                block = sums[spec.name]
                mask = cnt == 0
            elif spec.func == "mean":
                with np.errstate(all="ignore"):
                    block = sums[spec.name] / np.maximum(cnt, 1)
                mask = cnt == 0
            elif spec.func == "min":
                block = np.where(cnt > 0, mins[spec.name], 0.0)
                mask = cnt == 0
            else:
                block = np.where(cnt > 0, maxs[spec.name], 0.0)
                mask = cnt == 0
            if mask is not None:
                mask = mask & chunk.present
                if not mask.any():
                    mask = None
            out_values[spec.name] = block.astype(out_dtype.to_numpy())
            out_masks[spec.name] = mask
        out.chunks[cc] = Chunk(
            present=chunk.present.copy(), values=out_values, masks=out_masks
        )
    return out


def _window_arg_blocks(
    arr: ChunkedArray,
    aggs: Sequence[A.AggSpec],
    child_schema: Schema,
    halo_lo: tuple[int, ...],
    present: np.ndarray,
    values: Mapping[str, np.ndarray],
    masks: Mapping[str, np.ndarray | None],
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Evaluate each agg argument over the dense halo region.

    Returns ``name -> (float values, validity)`` blocks aligned with
    ``present``.
    """
    out: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    flat_cache: ColumnTable | None = None
    region_shape = present.shape

    for spec in aggs:
        if spec.arg is None:
            continue
        if flat_cache is None:
            flat_cache = _flatten_region(
                arr, child_schema, halo_lo, present, values, masks
            )
        column = eval_vector(spec.arg, flat_cache)
        vals = column.values.astype(np.float64).reshape(region_shape)
        valid = (
            np.ones(region_shape, dtype=bool)
            if column.mask is None
            else ~column.mask.reshape(region_shape)
        )
        out[spec.name] = (vals, valid)
    return out


def _flatten_region(
    arr: ChunkedArray,
    child_schema: Schema,
    halo_lo: tuple[int, ...],
    present: np.ndarray,
    values: Mapping[str, np.ndarray],
    masks: Mapping[str, np.ndarray | None],
) -> ColumnTable:
    """Whole dense region (present or not) as a flat ColumnTable."""
    grids = np.meshgrid(
        *(
            np.arange(halo_lo[axis], halo_lo[axis] + present.shape[axis], dtype=np.int64)
            for axis in range(arr.ndim)
        ),
        indexing="ij",
    )
    columns: dict[str, Column] = {}
    for axis, dim in enumerate(arr.dims):
        columns[dim] = Column(DType.INT64, grids[axis].reshape(-1))
    for attr in arr.attrs:
        mask = masks[attr.name]
        columns[attr.name] = Column(
            attr.dtype,
            values[attr.name].reshape(-1),
            None if mask is None else mask.reshape(-1).copy(),
        )
    return ColumnTable(child_schema, columns)


# --------------------------------------------------------------------------
# Cell join and matmul
# --------------------------------------------------------------------------


def cell_join_arrays(
    left: ChunkedArray,
    right: ChunkedArray,
    out_schema: Schema,
    chunk_shape: int | Sequence[int],
) -> ChunkedArray:
    """Join two arrays on their (identical) dimension sets."""
    if left.cell_count == 0 or right.cell_count == 0:
        return ChunkedArray.from_table(ColumnTable.empty(out_schema), chunk_shape)
    # right may list dimensions in a different order; align to left
    if right.dims != left.dims:
        by_name = {a.name: a for a in right.schema}
        reordered = Schema(
            [by_name[d] for d in left.dims]
            + [a for a in right.schema if not a.dimension]
        )
        right = transpose_array(right, left.dims, reordered)
    llo, lhi = left.bounding_box()
    rlo, rhi = right.bounding_box()
    lo = tuple(max(a, b) for a, b in zip(llo, rlo))
    hi = tuple(min(a, b) for a, b in zip(lhi, rhi))
    if any(l > h for l, h in zip(lo, hi)):
        return ChunkedArray.from_table(ColumnTable.empty(out_schema), chunk_shape)
    lpresent, lvalues, lmasks = left.get_region(lo, hi)
    rpresent, rvalues, rmasks = right.get_region(lo, hi)
    present = lpresent & rpresent
    values = {**lvalues, **rvalues}
    masks = {**lmasks, **rmasks}
    return ChunkedArray.from_dense_region(
        out_schema, lo, present, values, masks, chunk_shape
    )


def matmul_arrays(
    left: ChunkedArray,
    right: ChunkedArray,
    out_schema: Schema,
    chunk_shape: int | Sequence[int],
) -> ChunkedArray:
    """Dense matrix multiply over the overlapping contraction range.

    Absent or null cells contribute zero; an output cell is present when at
    least one contributing pair of cells exists (matching the sparse
    sum-product semantics of the reference interpreter).
    """
    if left.cell_count == 0 or right.cell_count == 0:
        return ChunkedArray.from_table(ColumnTable.empty(out_schema), chunk_shape)
    llo, lhi = left.bounding_box()
    rlo, rhi = right.bounding_box()
    # contraction range: left's 2nd dim ∩ right's 1st dim
    k_lo = max(llo[1], rlo[0])
    k_hi = min(lhi[1], rhi[0])
    if k_lo > k_hi:
        return ChunkedArray.from_table(ColumnTable.empty(out_schema), chunk_shape)

    lval = left.schema.value_names[0]
    rval = right.schema.value_names[0]
    lp, lv, lm = left.get_region((llo[0], k_lo), (lhi[0], k_hi))
    rp, rv, rm = right.get_region((k_lo, rlo[1]), (k_hi, rhi[1]))

    a_ok = lp if lm[lval] is None else (lp & ~lm[lval])
    b_ok = rp if rm[rval] is None else (rp & ~rm[rval])
    a = np.where(a_ok, lv[lval].astype(np.float64), 0.0)
    b = np.where(b_ok, rv[rval].astype(np.float64), 0.0)

    product = a @ b
    contributions = a_ok.astype(np.int64) @ b_ok.astype(np.int64)
    present = contributions > 0

    out_value = out_schema.value_names[0]
    out_dtype = out_schema[out_value].dtype
    return ChunkedArray.from_dense_region(
        out_schema,
        (llo[0], rlo[1]),
        present,
        {out_value: product.astype(out_dtype.to_numpy())},
        {out_value: None},
        chunk_shape,
    )

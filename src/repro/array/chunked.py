"""Chunked n-dimensional arrays: the array engine's native storage.

This is the SciDB stand-in's physical layer.  A :class:`ChunkedArray` covers
an axis-aligned bounding box of integer coordinates, split into regular
chunks.  Each :class:`Chunk` stores a dense ``present`` bitmap (array cells
may be *empty*, distinct from null) plus one dense value block per attribute
(with an optional null mask).

Logical contents are exactly a dimensioned table: one row per present cell.
``from_table``/``to_table`` convert to and from the COO representation the
rest of the framework uses, and ``get_region`` extracts any dense box —
including cells outside the bounding box, which are simply absent — which is
what the halo-based window operator builds on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

import numpy as np

from ..core.errors import ExecutionError, SchemaError
from ..core.schema import Schema
from ..core.types import DType
from ..storage.column import Column
from ..storage.table import ColumnTable

DEFAULT_CHUNK = 32


@dataclass
class Chunk:
    """One dense block: presence bitmap + per-attribute values (and masks)."""

    present: np.ndarray  # bool, shape == chunk block shape
    values: dict[str, np.ndarray]
    masks: dict[str, np.ndarray | None]

    def cell_count(self) -> int:
        return int(self.present.sum())


class ChunkedArray:
    """A regular-chunked, possibly sparse, n-dimensional array."""

    def __init__(
        self,
        schema: Schema,
        origin: tuple[int, ...],
        shape: tuple[int, ...],
        chunk_shape: tuple[int, ...],
        chunks: dict[tuple[int, ...], Chunk] | None = None,
    ):
        dims = schema.dimension_names
        if not dims:
            raise SchemaError("ChunkedArray needs at least one dimension")
        if not (len(origin) == len(shape) == len(chunk_shape) == len(dims)):
            raise SchemaError("origin/shape/chunk_shape must match dimension count")
        if any(c < 1 for c in chunk_shape):
            raise SchemaError("chunk sides must be >= 1")
        self.schema = schema
        self.dims = dims
        self.attrs = tuple(schema.values)
        self.origin = tuple(int(o) for o in origin)
        self.shape = tuple(int(s) for s in shape)
        self.chunk_shape = tuple(int(c) for c in chunk_shape)
        self.chunks = chunks if chunks is not None else {}

    # -- basic accessors --------------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.dims)

    @property
    def cell_count(self) -> int:
        return sum(c.cell_count() for c in self.chunks.values())

    def chunk_grid(self) -> tuple[int, ...]:
        return tuple(
            -(-s // c) if s else 0 for s, c in zip(self.shape, self.chunk_shape)
        )

    def iter_chunks(self) -> Iterator[tuple[tuple[int, ...], Chunk]]:
        return iter(self.chunks.items())

    def map_chunks(self, fn, workers: int = 1) -> list[tuple[tuple[int, ...], object]]:
        """Apply ``fn(chunk_coord, chunk)`` to every chunk, optionally on a
        thread pool, returning ``[(chunk_coord, result), ...]``.

        Chunks are visited in sorted coordinate order and results are
        returned in that same order regardless of worker count, so callers
        that rebuild an array from the results are deterministic.
        """
        from ..exec.morsel import parallel_map

        items = sorted(self.chunks.items())
        results = parallel_map(lambda item: fn(item[0], item[1]), items, workers)
        return [(cc, result) for (cc, _), result in zip(items, results)]

    def block_shape(self, chunk_coord: tuple[int, ...]) -> tuple[int, ...]:
        """Dense shape of the chunk at ``chunk_coord`` (edge chunks clip)."""
        out = []
        for axis, cc in enumerate(chunk_coord):
            start = cc * self.chunk_shape[axis]
            stop = min(start + self.chunk_shape[axis], self.shape[axis])
            out.append(stop - start)
        return tuple(out)

    # -- construction -------------------------------------------------------------

    @classmethod
    def from_table(
        cls,
        table: ColumnTable,
        chunk_shape: int | Sequence[int] = DEFAULT_CHUNK,
    ) -> "ChunkedArray":
        """Build from COO rows (a dimensioned ColumnTable)."""
        schema = table.schema
        dims = schema.dimension_names
        if not dims:
            raise SchemaError("from_table needs a schema with dimensions")
        if isinstance(chunk_shape, int):
            chunk_shape = (chunk_shape,) * len(dims)
        chunk_shape = tuple(int(c) for c in chunk_shape)

        n = table.num_rows
        if n == 0:
            return cls(schema, (0,) * len(dims), (0,) * len(dims), chunk_shape)

        coords = np.stack([table.array(d) for d in dims], axis=1)
        origin = tuple(int(v) for v in coords.min(axis=0))
        upper = coords.max(axis=0)
        shape = tuple(int(u - o + 1) for u, o in zip(upper, origin))

        rel = coords - np.array(origin, dtype=np.int64)
        chunk_coords = rel // np.array(chunk_shape, dtype=np.int64)
        offsets = rel - chunk_coords * np.array(chunk_shape, dtype=np.int64)

        out = cls(schema, origin, shape, chunk_shape)
        # group rows by chunk
        order = np.lexsort(chunk_coords.T[::-1])
        sorted_cc = chunk_coords[order]
        boundaries = np.nonzero(
            np.any(np.diff(sorted_cc, axis=0) != 0, axis=1)
        )[0] + 1
        groups = np.split(order, boundaries)
        attr_columns = {a.name: table.column(a.name) for a in out.attrs}
        for group in groups:
            if len(group) == 0:
                continue
            cc = tuple(int(v) for v in chunk_coords[group[0]])
            block = out._empty_chunk(cc)
            flat = np.ravel_multi_index(
                tuple(offsets[group].T), block.present.shape
            )
            if len(np.unique(flat)) != len(flat):
                raise ExecutionError(
                    "duplicate cell coordinates while building chunked array"
                )
            block.present.reshape(-1)[flat] = True
            for attr in out.attrs:
                column = attr_columns[attr.name]
                block.values[attr.name].reshape(-1)[flat] = column.values[group]
                if column.mask is not None:
                    mask = block.masks[attr.name]
                    if mask is None:
                        mask = np.zeros(block.present.shape, dtype=bool)
                        block.masks[attr.name] = mask
                    mask.reshape(-1)[flat] = column.mask[group]
            out.chunks[cc] = block
        return out

    def _empty_chunk(self, chunk_coord: tuple[int, ...]) -> Chunk:
        shape = self.block_shape(chunk_coord)
        return Chunk(
            present=np.zeros(shape, dtype=bool),
            values={
                a.name: np.zeros(shape, dtype=a.dtype.to_numpy())
                if a.dtype is not DType.STRING
                else np.full(shape, "", dtype=object)
                for a in self.attrs
            },
            masks={a.name: None for a in self.attrs},
        )

    @classmethod
    def from_dense_region(
        cls,
        schema: Schema,
        origin: tuple[int, ...],
        present: np.ndarray,
        values: Mapping[str, np.ndarray],
        masks: Mapping[str, np.ndarray | None],
        chunk_shape: int | Sequence[int] = DEFAULT_CHUNK,
    ) -> "ChunkedArray":
        """Build from a dense box (used by regrid/window/matmul outputs)."""
        dims = schema.dimension_names
        if isinstance(chunk_shape, int):
            chunk_shape = (chunk_shape,) * len(dims)
        chunk_shape = tuple(int(c) for c in chunk_shape)
        shape = present.shape
        out = cls(schema, origin, shape, chunk_shape)
        if not present.any():
            out.shape = (0,) * len(dims)
            out.origin = (0,) * len(dims)
            return out
        grid = out.chunk_grid()
        for cc in itertools.product(*(range(g) for g in grid)):
            slices = tuple(
                slice(c * s, min((c + 1) * s, shape[axis]))
                for axis, (c, s) in enumerate(zip(cc, chunk_shape))
            )
            block_present = present[slices]
            if not block_present.any():
                continue
            chunk = Chunk(
                present=block_present.copy(),
                values={
                    name: np.ascontiguousarray(arr[slices])
                    for name, arr in values.items()
                },
                masks={
                    name: None if m is None or not m[slices].any()
                    else m[slices].copy()
                    for name, m in masks.items()
                },
            )
            out.chunks[cc] = chunk
        return out

    # -- extraction ----------------------------------------------------------------

    def get_region(
        self, lo: tuple[int, ...], hi: tuple[int, ...]
    ) -> tuple[np.ndarray, dict[str, np.ndarray], dict[str, np.ndarray | None]]:
        """Dense copy of the inclusive box [lo, hi] in global coordinates.

        Cells outside the array's bounding box (or simply empty) come back
        with ``present == False``.
        """
        size = tuple(h - l + 1 for l, h in zip(lo, hi))
        if any(s <= 0 for s in size):
            raise ExecutionError(f"empty region request: lo={lo}, hi={hi}")
        present = np.zeros(size, dtype=bool)
        values = {
            a.name: np.zeros(size, dtype=a.dtype.to_numpy())
            if a.dtype is not DType.STRING
            else np.full(size, "", dtype=object)
            for a in self.attrs
        }
        masks: dict[str, np.ndarray | None] = {a.name: None for a in self.attrs}

        for cc, chunk in self.chunks.items():
            chunk_lo = tuple(
                self.origin[axis] + cc[axis] * self.chunk_shape[axis]
                for axis in range(self.ndim)
            )
            chunk_hi = tuple(
                chunk_lo[axis] + chunk.present.shape[axis] - 1
                for axis in range(self.ndim)
            )
            # intersection of [lo, hi] with this chunk
            inter_lo = tuple(max(l, cl) for l, cl in zip(lo, chunk_lo))
            inter_hi = tuple(min(h, ch) for h, ch in zip(hi, chunk_hi))
            if any(il > ih for il, ih in zip(inter_lo, inter_hi)):
                continue
            src = tuple(
                slice(il - cl, ih - cl + 1)
                for il, ih, cl in zip(inter_lo, inter_hi, chunk_lo)
            )
            dst = tuple(
                slice(il - l, ih - l + 1)
                for il, ih, l in zip(inter_lo, inter_hi, lo)
            )
            present[dst] = chunk.present[src]
            for name in values:
                values[name][dst] = chunk.values[name][src]
                chunk_mask = chunk.masks[name]
                if chunk_mask is not None and chunk_mask[src].any():
                    if masks[name] is None:
                        masks[name] = np.zeros(size, dtype=bool)
                    masks[name][dst] = chunk_mask[src]
        return present, values, masks

    def bounding_box(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """(lo, hi) inclusive global bounds; undefined for empty arrays."""
        if self.cell_count == 0:
            raise ExecutionError("empty array has no bounding box")
        hi = tuple(o + s - 1 for o, s in zip(self.origin, self.shape))
        return self.origin, hi

    # -- conversion --------------------------------------------------------------------

    def to_table(self) -> ColumnTable:
        """COO representation: one row per present cell."""
        dims = self.dims
        coord_lists: list[list[np.ndarray]] = [[] for _ in dims]
        value_parts: dict[str, list[Column]] = {a.name: [] for a in self.attrs}
        total = 0
        for cc, chunk in sorted(self.chunks.items()):
            where = np.nonzero(chunk.present)
            count = len(where[0])
            if count == 0:
                continue
            total += count
            for axis in range(self.ndim):
                base = self.origin[axis] + cc[axis] * self.chunk_shape[axis]
                coord_lists[axis].append(where[axis].astype(np.int64) + base)
            for attr in self.attrs:
                vals = chunk.values[attr.name][where]
                mask = chunk.masks[attr.name]
                value_parts[attr.name].append(
                    Column(attr.dtype, np.ascontiguousarray(vals),
                           None if mask is None else mask[where].copy())
                )
        columns: dict[str, Column] = {}
        for axis, dim in enumerate(dims):
            if coord_lists[axis]:
                arr = np.concatenate(coord_lists[axis])
            else:
                arr = np.empty(0, dtype=np.int64)
            columns[dim] = Column(DType.INT64, arr)
        for attr in self.attrs:
            parts = value_parts[attr.name]
            columns[attr.name] = (
                Column.concat(parts) if parts else Column.empty(attr.dtype)
            )
        return ColumnTable(self.schema, columns)

    def with_schema(self, schema: Schema) -> "ChunkedArray":
        """Re-attach an equally-shaped schema (renames, retags)."""
        return ChunkedArray(
            schema, self.origin, self.shape, self.chunk_shape, self.chunks
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChunkedArray(dims={self.dims}, origin={self.origin}, "
            f"shape={self.shape}, chunk={self.chunk_shape}, "
            f"chunks={len(self.chunks)}, cells={self.cell_count})"
        )

"""Subpackage of repro."""

"""Schema inference and validation for algebra trees.

``infer_schema(node)`` computes the output schema of any operator, raising
:class:`~repro.core.errors.SchemaError` (or a subclass) when the tree is
ill-typed.  This is the single source of truth for operator typing rules —
engines and the reference interpreter all consult ``node.schema``, which
delegates here.
"""

from __future__ import annotations

from . import algebra as A
from .errors import SchemaError, TypeMismatchError
from .schema import Attribute, Schema
from .types import DType, comparable, promote


def infer_schema(node: A.Node) -> Schema:
    """Compute and validate the output schema of ``node``."""
    handler = _HANDLERS.get(type(node))
    if handler is None:
        raise SchemaError(f"no schema rule for operator {node.op_name}")
    return handler(node)


# -- leaves -----------------------------------------------------------------


def _scan(node: A.Scan) -> Schema:
    return node.source_schema


def _inline(node: A.InlineTable) -> Schema:
    schema = node.table_schema
    for row in node.rows:
        for attr, value in zip(schema, row):
            if not attr.dtype.validate(value):
                raise TypeMismatchError(
                    f"inline value {value!r} is not a {attr.dtype.name} "
                    f"(attribute {attr.name!r})"
                )
            if attr.dimension and value is None:
                raise SchemaError(
                    f"dimension {attr.name!r} may not contain nulls"
                )
    return schema


def _loop_var(node: A.LoopVar) -> Schema:
    return node.var_schema


# -- relational ---------------------------------------------------------------


def _filter(node: A.Filter) -> Schema:
    child = node.child.schema
    pred_type = node.predicate.infer_type(child)
    if pred_type is not DType.BOOL:
        raise TypeMismatchError(
            f"filter predicate must be BOOL, got {pred_type.name}"
        )
    return child


def _project(node: A.Project) -> Schema:
    return node.child.schema.project(node.names)


def _extend(node: A.Extend) -> Schema:
    schema = node.child.schema
    out = schema
    for name, expr in zip(node.names, node.exprs):
        if name in out:
            raise SchemaError(f"Extend would shadow existing attribute {name!r}")
        dtype = expr.infer_type(schema)  # exprs see the *input* schema only
        out = out.extend(Attribute(name, dtype))
    return out


def _rename(node: A.Rename) -> Schema:
    return node.child.schema.rename(dict(node.mapping))


def _join(node: A.Join) -> Schema:
    left = node.left.schema
    right = node.right.schema
    right_keys = []
    for lkey, rkey in node.on:
        left.require([lkey])
        right.require([rkey])
        lt, rt = left[lkey].dtype, right[rkey].dtype
        if not comparable(lt, rt):
            raise TypeMismatchError(
                f"join keys {lkey!r} ({lt.name}) and {rkey!r} ({rt.name}) "
                f"are not comparable"
            )
        right_keys.append(rkey)
    if node.how in ("semi", "anti"):
        return left
    rest = right.drop(right_keys)
    clash = set(left.names) & set(rest.names)
    if clash:
        raise SchemaError(
            f"join output would duplicate attributes {sorted(clash)}; "
            f"rename one side first"
        )
    out = left.concat(rest)
    if node.how in ("left", "full"):
        # attributes from the nullable side lose their dimension tag: a
        # dimension cannot hold nulls.
        nullable = set(rest.names)
        if node.how == "full":
            nullable |= set(left.names)
        out = Schema(
            a.as_value() if (a.name in nullable and a.dimension) else a
            for a in out
        )
    return out


def _product(node: A.Product) -> Schema:
    return node.left.schema.concat(node.right.schema)


def _agg_output(input_schema: Schema, aggs: tuple[A.AggSpec, ...]) -> list[Attribute]:
    out = []
    for spec in aggs:
        if spec.func == "count":
            if spec.arg is not None:
                spec.arg.infer_type(input_schema)  # validate only
            out.append(Attribute(spec.name, DType.INT64))
            continue
        arg_type = spec.arg.infer_type(input_schema)
        if spec.func in ("sum", "mean"):
            if not arg_type.is_numeric:
                raise TypeMismatchError(
                    f"{spec.func}() needs a numeric argument, got {arg_type.name}"
                )
            result = DType.FLOAT64 if spec.func == "mean" else arg_type
        else:  # min / max
            result = arg_type
        out.append(Attribute(spec.name, result))
    return out


def _aggregate(node: A.Aggregate) -> Schema:
    child = node.child.schema
    child.require(node.group_by)
    if len(set(node.group_by)) != len(node.group_by):
        raise SchemaError(f"duplicate group-by keys: {list(node.group_by)}")
    keys = [child[name] for name in node.group_by]
    aggs = _agg_output(child, node.aggs)
    names = [a.name for a in keys] + [a.name for a in aggs]
    if len(set(names)) != len(names):
        raise SchemaError(f"aggregate output names collide: {names}")
    return Schema(keys + aggs)


def _sort(node: A.Sort) -> Schema:
    node.child.schema.require(node.keys)
    return node.child.schema


def _limit(node: A.Limit) -> Schema:
    return node.child.schema


def _reverse(node: A.Reverse) -> Schema:
    return node.child.schema


def _distinct(node: A.Distinct) -> Schema:
    return node.child.schema


def _set_op(node: A.Union | A.Intersect | A.Except) -> Schema:
    left = node.left.schema
    right = node.right.schema
    if left.names != right.names:
        raise SchemaError(
            f"set operation schemas differ: {list(left.names)} vs "
            f"{list(right.names)}"
        )
    attrs = []
    for la, ra in zip(left, right):
        if la.dtype is ra.dtype:
            attrs.append(la)
        elif la.dtype.is_numeric and ra.dtype.is_numeric:
            attrs.append(Attribute(la.name, promote(la.dtype, ra.dtype),
                                   dimension=False))
        else:
            raise TypeMismatchError(
                f"set operation attribute {la.name!r} has incompatible types "
                f"{la.dtype.name} vs {ra.dtype.name}"
            )
    return Schema(attrs)


# -- dimension-aware ------------------------------------------------------------


def _as_dims(node: A.AsDims) -> Schema:
    return node.child.schema.with_dimensions(node.dims)


def _require_dims(schema: Schema, names: tuple[str, ...], op: str) -> None:
    for name in names:
        schema.require([name])
        if not schema[name].dimension:
            raise SchemaError(
                f"{op} requires {name!r} to be a dimension; tag it with AsDims"
            )


def _slice_dims(node: A.SliceDims) -> Schema:
    schema = node.child.schema
    dims = tuple(d for d, _, _ in node.bounds)
    if len(set(dims)) != len(dims):
        raise SchemaError(f"duplicate dimensions in slice: {list(dims)}")
    _require_dims(schema, dims, "SliceDims")
    return schema


def _shift_dim(node: A.ShiftDim) -> Schema:
    _require_dims(node.child.schema, (node.dim,), "ShiftDim")
    return node.child.schema


def _regrid(node: A.Regrid) -> Schema:
    schema = node.child.schema
    dims = tuple(d for d, _ in node.factors)
    if len(set(dims)) != len(dims):
        raise SchemaError(f"duplicate dimensions in regrid: {list(dims)}")
    _require_dims(schema, dims, "Regrid")
    keys = [schema[d] for d in schema.dimension_names]
    aggs = _agg_output(schema, node.aggs)
    names = [a.name for a in keys] + [a.name for a in aggs]
    if len(set(names)) != len(names):
        raise SchemaError(f"regrid output names collide: {names}")
    return Schema(keys + aggs)


def _window(node: A.Window) -> Schema:
    schema = node.child.schema
    dims = tuple(d for d, _ in node.sizes)
    if len(set(dims)) != len(dims):
        raise SchemaError(f"duplicate dimensions in window: {list(dims)}")
    _require_dims(schema, dims, "Window")
    keys = [schema[d] for d in schema.dimension_names]
    aggs = _agg_output(schema, node.aggs)
    names = [a.name for a in keys] + [a.name for a in aggs]
    if len(set(names)) != len(names):
        raise SchemaError(f"window output names collide: {names}")
    return Schema(keys + aggs)


def _reduce_dims(node: A.ReduceDims) -> Schema:
    schema = node.child.schema
    _require_dims(schema, node.keep, "ReduceDims")
    keys = [schema[d] for d in schema.dimension_names if d in set(node.keep)]
    aggs = _agg_output(schema, node.aggs)
    names = [a.name for a in keys] + [a.name for a in aggs]
    if len(set(names)) != len(names):
        raise SchemaError(f"reduce output names collide: {names}")
    return Schema(keys + aggs)


def _transpose(node: A.TransposeDims) -> Schema:
    schema = node.child.schema
    dims = schema.dimension_names
    if sorted(node.order) != sorted(dims):
        raise SchemaError(
            f"transpose order {list(node.order)} must be a permutation of "
            f"dimensions {list(dims)}"
        )
    by_name = {a.name: a for a in schema}
    reordered = [by_name[d] for d in node.order]
    rest = [a for a in schema if not a.dimension]
    return Schema(reordered + rest)


def _matrix_side(schema: Schema, side: str) -> tuple[str, str, Attribute]:
    dims = schema.dimension_names
    values = schema.values
    if len(dims) != 2 or len(values) != 1:
        raise SchemaError(
            f"MatMul {side} input must have exactly 2 dimensions and 1 value "
            f"attribute, got dims={list(dims)}, values={[a.name for a in values]}"
        )
    if not values[0].dtype.is_numeric:
        raise TypeMismatchError(
            f"MatMul {side} value attribute {values[0].name!r} must be numeric"
        )
    return dims[0], dims[1], values[0]


def _matmul(node: A.MatMul) -> Schema:
    l0, l1, lval = _matrix_side(node.left.schema, "left")
    r0, r1, rval = _matrix_side(node.right.schema, "right")
    shared = ({l0, l1} & {r0, r1})
    if len(shared) != 1:
        raise SchemaError(
            f"MatMul inputs must share exactly one dimension; left has "
            f"({l0}, {l1}), right has ({r0}, {r1})"
        )
    inner = shared.pop()
    # contraction must use the left's column index and the right's row index
    if l1 != inner or r0 != inner:
        raise SchemaError(
            f"MatMul contracts left's second dimension with right's first; "
            f"got left=({l0}, {l1}), right=({r0}, {r1}) sharing {inner!r}"
        )
    out_value = Attribute(lval.name, promote(lval.dtype, rval.dtype))
    return Schema([
        Attribute(l0, DType.INT64, dimension=True),
        Attribute(r1, DType.INT64, dimension=True),
        out_value,
    ])


def _cell_join(node: A.CellJoin) -> Schema:
    left = node.left.schema
    right = node.right.schema
    shared = [d for d in left.dimension_names if d in set(right.dimension_names)]
    if not shared:
        raise SchemaError("CellJoin inputs share no dimensions")
    lvals = left.values
    rvals = right.values
    clash = {a.name for a in lvals} & {a.name for a in rvals}
    if clash:
        raise SchemaError(
            f"CellJoin value attributes collide: {sorted(clash)}; rename first"
        )
    extra_dims = [
        a for a in left.dimensions if a.name not in shared
    ] + [a for a in right.dimensions if a.name not in shared]
    if extra_dims:
        raise SchemaError(
            f"CellJoin requires identical dimension sets; extra dimensions "
            f"{[a.name for a in extra_dims]}"
        )
    dims = [left[d] for d in shared]
    return Schema(dims + list(lvals) + list(rvals))


# -- control ----------------------------------------------------------------------


def _iterate(node: A.Iterate) -> Schema:
    init = node.init.schema
    body = node.body.schema
    for var in node.body.walk():
        if isinstance(var, A.LoopVar) and var.name == node.var:
            if var.var_schema != init:
                raise SchemaError(
                    f"LoopVar({node.var!r}) schema {var.var_schema!r} does not "
                    f"match init schema {init!r}"
                )
    if body.names != init.names:
        raise SchemaError(
            f"Iterate body schema {list(body.names)} must match init schema "
            f"{list(init.names)}"
        )
    for ba, ia in zip(body, init):
        if not ia.dtype.accepts(ba.dtype):
            raise TypeMismatchError(
                f"Iterate body attribute {ba.name!r} has type {ba.dtype.name}, "
                f"init expects {ia.dtype.name}"
            )
    stop = node.stop
    if stop.value_attr is not None:
        init.require([stop.value_attr])
        if not init[stop.value_attr].dtype.is_numeric:
            raise TypeMismatchError(
                f"convergence attribute {stop.value_attr!r} must be numeric"
            )
        if not init.dimensions:
            raise SchemaError(
                "convergence-based Iterate needs dimension attributes to "
                "match successive states on"
            )
    return init


_HANDLERS = {
    A.Scan: _scan,
    A.InlineTable: _inline,
    A.LoopVar: _loop_var,
    A.Filter: _filter,
    A.Project: _project,
    A.Extend: _extend,
    A.Rename: _rename,
    A.Join: _join,
    A.Product: _product,
    A.Aggregate: _aggregate,
    A.Sort: _sort,
    A.Limit: _limit,
    A.Reverse: _reverse,
    A.Distinct: _distinct,
    A.Union: _set_op,
    A.Intersect: _set_op,
    A.Except: _set_op,
    A.AsDims: _as_dims,
    A.SliceDims: _slice_dims,
    A.ShiftDim: _shift_dim,
    A.Regrid: _regrid,
    A.Window: _window,
    A.ReduceDims: _reduce_dims,
    A.TransposeDims: _transpose,
    A.MatMul: _matmul,
    A.CellJoin: _cell_join,
    A.Iterate: _iterate,
}

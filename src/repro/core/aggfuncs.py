"""Reference semantics of the algebra's aggregate functions.

One place defines what ``count/sum/min/max/mean`` mean over a bag of Python
values (with ``None`` as null), so the reference interpreter, the array
engine's window/regrid paths and the relational engine's fallbacks all agree:

* ``count`` with no argument counts rows; with an argument counts non-nulls.
* ``sum``/``min``/``max``/``mean`` skip nulls and return null when no
  non-null input exists (SQL behaviour).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from .errors import ExecutionError


def apply_agg(func: str, values: Sequence[Any], *, count_rows: bool = False) -> Any:
    """Aggregate a bag of Python values (``None`` = null)."""
    if func == "count":
        if count_rows:
            return len(values)
        return sum(1 for v in values if v is not None)
    present = [v for v in values if v is not None]
    if not present:
        return None
    if func == "sum":
        return sum(present)
    if func == "min":
        return min(present)
    if func == "max":
        return max(present)
    if func == "mean":
        return sum(present) / len(present)
    raise ExecutionError(f"unknown aggregate function {func!r}")


def merge_agg(func: str, partials: Iterable[Any]) -> Any:
    """Combine partial aggregates (used by chunked/array execution).

    Only decomposable functions may be merged; ``mean`` must be computed from
    (sum, count) pairs by the caller.
    """
    parts = [p for p in partials if p is not None]
    if func == "count":
        return sum(parts) if parts else 0
    if not parts:
        return None
    if func == "sum":
        return sum(parts)
    if func == "min":
        return min(parts)
    if func == "max":
        return max(parts)
    raise ExecutionError(f"aggregate {func!r} cannot be merged from partials")

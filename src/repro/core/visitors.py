"""Generic traversal and transformation utilities for algebra trees.

The rewriter, intent recognizers, federation planner and engines all walk
trees; these helpers keep that code uniform.  Transformations rebuild nodes
with :meth:`Node.with_children`, which preserves intent tags by construction.
"""

from __future__ import annotations

from typing import Callable, Iterator, TypeVar

from . import algebra as A

N = TypeVar("N", bound=A.Node)

Transform = Callable[[A.Node], A.Node]


def transform_bottom_up(node: A.Node, fn: Transform) -> A.Node:
    """Rebuild the tree leaves-first, applying ``fn`` to every node.

    ``fn`` receives a node whose children have already been transformed and
    returns a replacement (or the node itself for no change).
    """
    children = node.children()
    if children:
        new_children = tuple(transform_bottom_up(c, fn) for c in children)
        if any(nc is not oc for nc, oc in zip(new_children, children)):
            node = node.with_children(new_children)
    return fn(node)


def transform_top_down(node: A.Node, fn: Transform) -> A.Node:
    """Apply ``fn`` to the node first, then recurse into the result's children."""
    node = fn(node)
    children = node.children()
    if not children:
        return node
    new_children = tuple(transform_top_down(c, fn) for c in children)
    if any(nc is not oc for nc, oc in zip(new_children, children)):
        node = node.with_children(new_children)
    return node


def find_all(node: A.Node, node_type: type[N]) -> Iterator[N]:
    """All nodes of the given type, in pre-order."""
    for n in node.walk():
        if isinstance(n, node_type):
            yield n


def count_ops(node: A.Node) -> dict[str, int]:
    """Histogram of operator names in the tree (used by coverage reports)."""
    out: dict[str, int] = {}
    for n in node.walk():
        out[n.op_name] = out.get(n.op_name, 0) + 1
    return out


def substitute_loop_var(body: A.Node, var: str, replacement: A.Node) -> A.Node:
    """Replace every ``LoopVar(var)`` in ``body`` with ``replacement``.

    Nested :class:`~repro.core.algebra.Iterate` nodes that rebind the same
    variable name shadow the outer binding and are left untouched.
    """

    def recurse(node: A.Node) -> A.Node:
        if isinstance(node, A.LoopVar) and node.name == var:
            return replacement
        if isinstance(node, A.Iterate) and node.var == var:
            new_init = recurse(node.init)
            if new_init is not node.init:
                return node.with_children((new_init, node.body))
            return node
        children = node.children()
        if not children:
            return node
        new_children = tuple(recurse(c) for c in children)
        if any(nc is not oc for nc, oc in zip(new_children, children)):
            return node.with_children(new_children)
        return node

    return recurse(body)

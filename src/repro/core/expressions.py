"""Scalar expression language used inside algebra operators.

Filters, computed columns, join conditions and aggregate arguments are all
expressed as trees of :class:`Expr` nodes.  The language is small and closed:
column references, literals, arithmetic, comparisons, boolean connectives,
a conditional, a null test, a cast, and a fixed set of math functions.

Two evaluation paths exist:

* :func:`eval_row` here — row-at-a-time over plain Python values, used by the
  reference interpreter (the semantics oracle).
* ``repro.relational.eval`` — vectorized over numpy columns, used by the
  columnar engines.  Both implement identical null semantics, which the test
  suite cross-checks.

Null semantics (documented deviation from SQL's three-valued logic, applied
uniformly by every engine): any operator with a null operand yields null,
except ``IsNull`` (never null) and ``If`` (a null condition selects the
``otherwise`` branch).  A filter keeps a row only when its predicate is
exactly ``True``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping

import numpy as np

from .errors import TypeMismatchError
from .schema import Schema
from .types import DType, comparable, common_type, promote

# --------------------------------------------------------------------------
# AST nodes
# --------------------------------------------------------------------------

ARITH_OPS = ("+", "-", "*", "/", "//", "%", "**")
COMPARE_OPS = ("==", "!=", "<", "<=", ">", ">=")
BOOL_OPS = ("and", "or")
UNARY_OPS = ("-", "not")

def _np_unary(fn: Callable) -> Callable[[float], float]:
    """Wrap a numpy ufunc for scalar use with IEEE semantics (nan/inf on
    domain errors) so the reference interpreter matches vectorized engines."""

    def apply(x: float) -> float:
        with np.errstate(all="ignore"):
            return float(fn(x))

    return apply


#: name -> (scalar implementation, result type or None meaning "same as arg").
#: Domain errors follow IEEE754 (sqrt(-1) = nan, log(0) = -inf), matching
#: the vectorized engines.
MATH_FUNCS: dict[str, tuple[Callable[[float], float], DType | None]] = {
    "sqrt": (_np_unary(np.sqrt), DType.FLOAT64),
    "exp": (_np_unary(np.exp), DType.FLOAT64),
    "log": (_np_unary(np.log), DType.FLOAT64),
    "log2": (_np_unary(np.log2), DType.FLOAT64),
    "sin": (_np_unary(np.sin), DType.FLOAT64),
    "cos": (_np_unary(np.cos), DType.FLOAT64),
    "tan": (_np_unary(np.tan), DType.FLOAT64),
    "abs": (abs, None),
    "floor": (_np_unary(np.floor), DType.FLOAT64),
    "ceil": (_np_unary(np.ceil), DType.FLOAT64),
    "sign": (lambda x: float((x > 0) - (x < 0)), DType.FLOAT64),
}

STRING_FUNCS: dict[str, Callable[[str], Any]] = {
    "upper": str.upper,
    "lower": str.lower,
    "length": len,
}


class Expr:
    """Base class for scalar expressions.

    Subclasses are frozen dataclasses; trees are immutable and hashable, so
    they can be dict keys and are safe to share between plans.  Operator
    overloads build larger expressions: ``(col("x") + 1) > col("y")``.
    """

    # -- builder sugar -------------------------------------------------------

    def _wrap(self, other: Any) -> "Expr":
        return other if isinstance(other, Expr) else Lit(other)

    def __add__(self, other: Any) -> "Expr":
        return BinOp("+", self, self._wrap(other))

    def __radd__(self, other: Any) -> "Expr":
        return BinOp("+", self._wrap(other), self)

    def __sub__(self, other: Any) -> "Expr":
        return BinOp("-", self, self._wrap(other))

    def __rsub__(self, other: Any) -> "Expr":
        return BinOp("-", self._wrap(other), self)

    def __mul__(self, other: Any) -> "Expr":
        return BinOp("*", self, self._wrap(other))

    def __rmul__(self, other: Any) -> "Expr":
        return BinOp("*", self._wrap(other), self)

    def __truediv__(self, other: Any) -> "Expr":
        return BinOp("/", self, self._wrap(other))

    def __rtruediv__(self, other: Any) -> "Expr":
        return BinOp("/", self._wrap(other), self)

    def __floordiv__(self, other: Any) -> "Expr":
        return BinOp("//", self, self._wrap(other))

    def __mod__(self, other: Any) -> "Expr":
        return BinOp("%", self, self._wrap(other))

    def __pow__(self, other: Any) -> "Expr":
        return BinOp("**", self, self._wrap(other))

    def __neg__(self) -> "Expr":
        return UnaryOp("-", self)

    def __eq__(self, other: Any) -> "Expr":  # type: ignore[override]
        return BinOp("==", self, self._wrap(other))

    def __ne__(self, other: Any) -> "Expr":  # type: ignore[override]
        return BinOp("!=", self, self._wrap(other))

    def __lt__(self, other: Any) -> "Expr":
        return BinOp("<", self, self._wrap(other))

    def __le__(self, other: Any) -> "Expr":
        return BinOp("<=", self, self._wrap(other))

    def __gt__(self, other: Any) -> "Expr":
        return BinOp(">", self, self._wrap(other))

    def __ge__(self, other: Any) -> "Expr":
        return BinOp(">=", self, self._wrap(other))

    def __and__(self, other: Any) -> "Expr":
        return BinOp("and", self, self._wrap(other))

    def __or__(self, other: Any) -> "Expr":
        return BinOp("or", self, self._wrap(other))

    def __invert__(self) -> "Expr":
        return UnaryOp("not", self)

    def is_null(self) -> "Expr":
        return IsNull(self)

    def cast(self, dtype: DType) -> "Expr":
        return Cast(self, dtype)

    # -- structural API --------------------------------------------------------

    def children(self) -> tuple["Expr", ...]:
        raise NotImplementedError

    def with_children(self, children: tuple["Expr", ...]) -> "Expr":
        raise NotImplementedError

    def columns(self) -> frozenset[str]:
        """Names of all columns the expression reads."""
        out: set[str] = set()
        for node in self.walk():
            if isinstance(node, Col):
                out.add(node.name)
        return frozenset(out)

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of the expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def infer_type(self, schema: Schema) -> DType:
        """Compute the result type, validating against ``schema``."""
        raise NotImplementedError

    # equality by structure (dataclass __eq__ is overridden by the == sugar,
    # so we expose an explicit structural comparison instead)
    def same_as(self, other: "Expr") -> bool:
        if type(self) is not type(other):
            return False
        if self._key() != other._key():
            return False
        mine, theirs = self.children(), other.children()
        if len(mine) != len(theirs):
            return False
        return all(a.same_as(b) for a, b in zip(mine, theirs))

    def _key(self) -> tuple:
        """Node-local identity (excluding children); see :meth:`same_as`."""
        return ()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key(), self.children()))


@dataclass(frozen=True, eq=False)
class Col(Expr):
    """Reference to an attribute of the input schema."""

    name: str

    def children(self) -> tuple[Expr, ...]:
        return ()

    def with_children(self, children: tuple[Expr, ...]) -> Expr:
        return self

    def infer_type(self, schema: Schema) -> DType:
        return schema[self.name].dtype

    def _key(self) -> tuple:
        return (self.name,)

    def __repr__(self) -> str:
        return f"col({self.name!r})"


@dataclass(frozen=True, eq=False)
class Lit(Expr):
    """A constant.  ``Lit(None, dtype)`` is a typed null."""

    value: Any
    dtype: DType | None = None

    def __post_init__(self) -> None:
        if self.value is None and self.dtype is None:
            raise TypeMismatchError("a null literal needs an explicit dtype")
        if self.value is not None and self.dtype is None:
            object.__setattr__(self, "dtype", DType.of_value(self.value))
        if self.value is not None and isinstance(self.value, bool) is False:
            # normalize numpy scalars to Python scalars for hashability/repr
            if hasattr(self.value, "item"):
                object.__setattr__(self, "value", self.value.item())

    def children(self) -> tuple[Expr, ...]:
        return ()

    def with_children(self, children: tuple[Expr, ...]) -> Expr:
        return self

    def infer_type(self, schema: Schema) -> DType:
        assert self.dtype is not None
        return self.dtype

    def _key(self) -> tuple:
        return (self.value, self.dtype)

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


@dataclass(frozen=True, eq=False)
class BinOp(Expr):
    """Binary operator: arithmetic, comparison, or boolean connective."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in ARITH_OPS + COMPARE_OPS + BOOL_OPS:
            raise TypeMismatchError(f"unknown binary operator {self.op!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def with_children(self, children: tuple[Expr, ...]) -> Expr:
        left, right = children
        return BinOp(self.op, left, right)

    def infer_type(self, schema: Schema) -> DType:
        lt = self.left.infer_type(schema)
        rt = self.right.infer_type(schema)
        if self.op in BOOL_OPS:
            if lt is not DType.BOOL or rt is not DType.BOOL:
                raise TypeMismatchError(
                    f"{self.op!r} needs BOOL operands, got {lt.name}, {rt.name}"
                )
            return DType.BOOL
        if self.op in COMPARE_OPS:
            if not comparable(lt, rt):
                raise TypeMismatchError(
                    f"cannot compare {lt.name} with {rt.name}"
                )
            return DType.BOOL
        # arithmetic
        if self.op == "+" and lt is DType.STRING and rt is DType.STRING:
            return DType.STRING  # concatenation
        result = promote(lt, rt)
        if self.op == "/":
            return DType.FLOAT64
        if self.op == "//":
            return result
        return result

    def _key(self) -> tuple:
        return (self.op,)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True, eq=False)
class UnaryOp(Expr):
    """Unary negation or logical not."""

    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in UNARY_OPS:
            raise TypeMismatchError(f"unknown unary operator {self.op!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def with_children(self, children: tuple[Expr, ...]) -> Expr:
        (operand,) = children
        return UnaryOp(self.op, operand)

    def infer_type(self, schema: Schema) -> DType:
        t = self.operand.infer_type(schema)
        if self.op == "-":
            if not t.is_numeric:
                raise TypeMismatchError(f"cannot negate {t.name}")
            return t
        if t is not DType.BOOL:
            raise TypeMismatchError(f"'not' needs BOOL, got {t.name}")
        return DType.BOOL

    def _key(self) -> tuple:
        return (self.op,)

    def __repr__(self) -> str:
        return f"({self.op} {self.operand!r})"


@dataclass(frozen=True, eq=False)
class Func(Expr):
    """Call to one of the built-in scalar functions."""

    name: str
    args: tuple[Expr, ...]

    def __post_init__(self) -> None:
        if self.name not in MATH_FUNCS and self.name not in STRING_FUNCS:
            raise TypeMismatchError(f"unknown function {self.name!r}")
        object.__setattr__(self, "args", tuple(self.args))
        if len(self.args) != 1:
            raise TypeMismatchError(
                f"function {self.name!r} takes 1 argument, got {len(self.args)}"
            )

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def with_children(self, children: tuple[Expr, ...]) -> Expr:
        return Func(self.name, children)

    def infer_type(self, schema: Schema) -> DType:
        arg_t = self.args[0].infer_type(schema)
        if self.name in MATH_FUNCS:
            if not arg_t.is_numeric:
                raise TypeMismatchError(
                    f"{self.name}() needs a numeric argument, got {arg_t.name}"
                )
            result = MATH_FUNCS[self.name][1]
            return arg_t if result is None else result
        # string functions
        if arg_t is not DType.STRING:
            raise TypeMismatchError(
                f"{self.name}() needs a STRING argument, got {arg_t.name}"
            )
        return DType.INT64 if self.name == "length" else DType.STRING

    def _key(self) -> tuple:
        return (self.name,)

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.name}({inner})"


@dataclass(frozen=True, eq=False)
class If(Expr):
    """Conditional: CASE WHEN cond THEN a ELSE b END."""

    cond: Expr
    then: Expr
    otherwise: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.cond, self.then, self.otherwise)

    def with_children(self, children: tuple[Expr, ...]) -> Expr:
        cond, then, otherwise = children
        return If(cond, then, otherwise)

    def infer_type(self, schema: Schema) -> DType:
        ct = self.cond.infer_type(schema)
        if ct is not DType.BOOL:
            raise TypeMismatchError(f"If condition must be BOOL, got {ct.name}")
        return common_type(
            self.then.infer_type(schema), self.otherwise.infer_type(schema)
        )

    def __repr__(self) -> str:
        return f"if_({self.cond!r}, {self.then!r}, {self.otherwise!r})"


@dataclass(frozen=True, eq=False)
class IsNull(Expr):
    """Null test; the only expression that never returns null."""

    operand: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def with_children(self, children: tuple[Expr, ...]) -> Expr:
        (operand,) = children
        return IsNull(operand)

    def infer_type(self, schema: Schema) -> DType:
        self.operand.infer_type(schema)  # validate
        return DType.BOOL

    def __repr__(self) -> str:
        return f"{self.operand!r}.is_null()"


@dataclass(frozen=True, eq=False)
class Cast(Expr):
    """Explicit conversion between scalar types."""

    operand: Expr
    to: DType

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def with_children(self, children: tuple[Expr, ...]) -> Expr:
        (operand,) = children
        return Cast(operand, self.to)

    def infer_type(self, schema: Schema) -> DType:
        src = self.operand.infer_type(schema)
        if src is self.to:
            return self.to
        allowed = {
            (DType.INT64, DType.FLOAT64),
            (DType.FLOAT64, DType.INT64),
            (DType.BOOL, DType.INT64),
            (DType.INT64, DType.STRING),
            (DType.FLOAT64, DType.STRING),
            (DType.STRING, DType.INT64),
            (DType.STRING, DType.FLOAT64),
        }
        if (src, self.to) not in allowed:
            raise TypeMismatchError(f"cannot cast {src.name} to {self.to.name}")
        return self.to

    def _key(self) -> tuple:
        return (self.to,)

    def __repr__(self) -> str:
        return f"{self.operand!r}.cast({self.to.name})"


# --------------------------------------------------------------------------
# Builder helpers (public API)
# --------------------------------------------------------------------------


def col(name: str) -> Col:
    """Reference an input attribute by name."""
    return Col(name)


def lit(value: Any, dtype: DType | None = None) -> Lit:
    """A literal constant; infers the type unless one is given."""
    return Lit(value, dtype)


def if_(cond: Expr, then: Any, otherwise: Any) -> If:
    """Conditional expression (CASE WHEN)."""
    wrap = lambda v: v if isinstance(v, Expr) else Lit(v)  # noqa: E731
    return If(cond, wrap(then), wrap(otherwise))


def func(name: str, arg: Expr) -> Func:
    """Call a built-in scalar function by name."""
    return Func(name, (arg,))


# --------------------------------------------------------------------------
# Row-at-a-time evaluation (reference semantics)
# --------------------------------------------------------------------------


def eval_row(expr: Expr, row: Mapping[str, Any]) -> Any:
    """Evaluate an expression against one row of Python values.

    ``row`` maps attribute name -> value, where ``None`` is null.  This is
    the reference semantics every vectorized engine must match.
    """
    if isinstance(expr, Col):
        return row[expr.name]
    if isinstance(expr, Lit):
        return expr.value
    if isinstance(expr, IsNull):
        return eval_row(expr.operand, row) is None
    if isinstance(expr, If):
        cond = eval_row(expr.cond, row)
        if cond is True:
            return eval_row(expr.then, row)
        return eval_row(expr.otherwise, row)
    if isinstance(expr, Cast):
        value = eval_row(expr.operand, row)
        if value is None:
            return None
        return _cast_value(value, expr.to)
    if isinstance(expr, UnaryOp):
        value = eval_row(expr.operand, row)
        if value is None:
            return None
        return -value if expr.op == "-" else (not value)
    if isinstance(expr, Func):
        value = eval_row(expr.args[0], row)
        if value is None:
            return None
        if expr.name in MATH_FUNCS:
            return MATH_FUNCS[expr.name][0](value)
        return STRING_FUNCS[expr.name](value)
    if isinstance(expr, BinOp):
        left = eval_row(expr.left, row)
        right = eval_row(expr.right, row)
        if left is None or right is None:
            return None
        return _apply_binop(expr.op, left, right)
    raise TypeMismatchError(f"cannot evaluate {type(expr).__name__}")


def _apply_binop(op: str, left: Any, right: Any) -> Any:
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        # IEEE semantics (x/0 = inf/nan), matching vectorized engines
        with np.errstate(all="ignore"):
            return float(np.divide(float(left), float(right)))
    if op == "//":
        return left // right
    if op == "%":
        return left % right
    if op == "**":
        return left**right
    if op == "==":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == "and":
        return left and right
    if op == "or":
        return left or right
    raise TypeMismatchError(f"unknown binary operator {op!r}")


def _cast_value(value: Any, to: DType) -> Any:
    if to is DType.INT64:
        return int(value)
    if to is DType.FLOAT64:
        return float(value)
    if to is DType.STRING:
        if isinstance(value, float) and value.is_integer():
            return str(value)
        return str(value)
    if to is DType.BOOL:
        return bool(value)
    raise TypeMismatchError(f"cannot cast to {to.name}")

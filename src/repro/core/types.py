"""Scalar type system for the Big Data algebra.

The algebra is deliberately small and closed: four scalar types cover the
tabular and array workloads the paper targets.  Dimensions are always
``INT64`` — array coordinates are integers in every array system the paper
cites (SciDB, ScaLAPACK).

Types know how to promote (``INT64 + FLOAT64 -> FLOAT64``), how they map to
numpy dtypes for the columnar engines, and how to validate Python values for
the row-at-a-time reference interpreter.
"""

from __future__ import annotations

import enum
from typing import Any

import numpy as np

from .errors import TypeMismatchError


class DType(enum.Enum):
    """A scalar type in the algebra's closed type system."""

    INT64 = "int64"
    FLOAT64 = "float64"
    BOOL = "bool"
    STRING = "string"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DType.{self.name}"

    @property
    def is_numeric(self) -> bool:
        return self in (DType.INT64, DType.FLOAT64)

    def to_numpy(self) -> np.dtype:
        """The numpy dtype used by the columnar storage layer."""
        return _NUMPY_DTYPES[self]

    @classmethod
    def from_numpy(cls, dtype: np.dtype) -> "DType":
        """Classify a numpy dtype into the algebra's type system."""
        kind = np.dtype(dtype).kind
        if kind in ("i", "u"):
            return cls.INT64
        if kind == "f":
            return cls.FLOAT64
        if kind == "b":
            return cls.BOOL
        if kind in ("U", "S", "O"):
            return cls.STRING
        raise TypeMismatchError(f"unsupported numpy dtype: {dtype!r}")

    @classmethod
    def of_value(cls, value: Any) -> "DType":
        """Classify a Python scalar; used when typing literals."""
        if isinstance(value, bool) or isinstance(value, np.bool_):
            return cls.BOOL
        if isinstance(value, (int, np.integer)):
            return cls.INT64
        if isinstance(value, (float, np.floating)):
            return cls.FLOAT64
        if isinstance(value, str):
            return cls.STRING
        raise TypeMismatchError(
            f"value {value!r} of Python type {type(value).__name__} has no "
            f"algebra type"
        )

    def validate(self, value: Any) -> bool:
        """Whether a Python value (or None) is a legal instance of the type."""
        if value is None:
            return True
        try:
            return self.accepts(DType.of_value(value))
        except TypeMismatchError:
            return False

    def accepts(self, other: "DType") -> bool:
        """Whether a value of type ``other`` may be stored in this type."""
        if self is other:
            return True
        return self is DType.FLOAT64 and other is DType.INT64


_NUMPY_DTYPES = {
    DType.INT64: np.dtype(np.int64),
    DType.FLOAT64: np.dtype(np.float64),
    DType.BOOL: np.dtype(np.bool_),
    DType.STRING: np.dtype(object),
}


def promote(left: DType, right: DType) -> DType:
    """Numeric promotion for arithmetic: the wider of two numeric types.

    Raises :class:`TypeMismatchError` for non-numeric operands — arithmetic
    on strings or booleans is a client error the type checker should catch
    before a provider ever sees the tree.
    """
    if not left.is_numeric or not right.is_numeric:
        raise TypeMismatchError(
            f"cannot promote non-numeric types {left.name} and {right.name}"
        )
    if DType.FLOAT64 in (left, right):
        return DType.FLOAT64
    return DType.INT64


def comparable(left: DType, right: DType) -> bool:
    """Whether two types may be compared with ``==``/``<`` etc."""
    if left is right:
        return True
    return left.is_numeric and right.is_numeric


def common_type(left: DType, right: DType) -> DType:
    """The type that can hold values of both inputs (for unions, CASE arms)."""
    if left is right:
        return left
    if left.is_numeric and right.is_numeric:
        return promote(left, right)
    raise TypeMismatchError(
        f"no common type for {left.name} and {right.name}"
    )

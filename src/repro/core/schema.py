"""Schemas for the dimensioned-table data model.

The paper's central modelling idea is "a fusion of tabular and array models,
with 0 or more attributes in a table structure being tagged as dimensions,
and operators being dimension-aware".  A :class:`Schema` is an ordered list
of :class:`Attribute`; each attribute is either a plain value attribute or a
*dimension* (an ``INT64`` coordinate).  A schema with no dimensions is an
ordinary relation; a schema whose dimensions form a key describes an array
whose cells hold the value attributes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Mapping, Sequence

from .errors import SchemaError
from .types import DType


@dataclass(frozen=True)
class Attribute:
    """One named, typed attribute; optionally tagged as a dimension.

    Dimensions must be ``INT64``: they are array coordinates.  The tag is
    logical metadata — it changes which operators apply (slice, regrid,
    matmul, ...) and how engines may lay the data out, but not the data
    itself.
    """

    name: str
    dtype: DType
    dimension: bool = False

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"attribute name must be a non-empty string, got {self.name!r}")
        if self.dimension and self.dtype is not DType.INT64:
            raise SchemaError(
                f"dimension attribute {self.name!r} must be INT64, got {self.dtype.name}"
            )

    def renamed(self, name: str) -> "Attribute":
        return replace(self, name=name)

    def as_dimension(self) -> "Attribute":
        if self.dtype is not DType.INT64:
            raise SchemaError(
                f"cannot tag {self.name!r} as dimension: type is {self.dtype.name}, not INT64"
            )
        return replace(self, dimension=True)

    def as_value(self) -> "Attribute":
        return replace(self, dimension=False)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tag = "*" if self.dimension else ""
        return f"{self.name}{tag}:{self.dtype.value}"


class Schema:
    """An ordered, duplicate-free sequence of attributes.

    Immutable.  Provides positional and by-name access, plus the structural
    operations the algebra's schema inference needs (project, rename,
    concat, retag dimensions).
    """

    __slots__ = ("_attributes", "_index")

    def __init__(self, attributes: Iterable[Attribute]):
        attrs = tuple(attributes)
        index: dict[str, int] = {}
        for pos, attr in enumerate(attrs):
            if not isinstance(attr, Attribute):
                raise SchemaError(f"expected Attribute, got {type(attr).__name__}")
            if attr.name in index:
                raise SchemaError(f"duplicate attribute name {attr.name!r}")
            index[attr.name] = pos
        self._attributes = attrs
        self._index = index

    # -- construction helpers -------------------------------------------------

    @classmethod
    def of(cls, *specs: tuple) -> "Schema":
        """Compact constructor: ``Schema.of(("i", DType.INT64, True), ("v", DType.FLOAT64))``.

        Each spec is ``(name, dtype)`` or ``(name, dtype, dimension)``.
        """
        attrs = []
        for spec in specs:
            if len(spec) == 2:
                name, dtype = spec
                attrs.append(Attribute(name, dtype))
            elif len(spec) == 3:
                name, dtype, dim = spec
                attrs.append(Attribute(name, dtype, dimension=dim))
            else:
                raise SchemaError(f"bad attribute spec: {spec!r}")
        return cls(attrs)

    # -- basic protocol --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __getitem__(self, key: int | str) -> Attribute:
        if isinstance(key, str):
            try:
                return self._attributes[self._index[key]]
            except KeyError:
                raise SchemaError(
                    f"no attribute named {key!r}; have {list(self.names)}"
                ) from None
        return self._attributes[key]

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(str(a) for a in self._attributes)
        return f"Schema[{inner}]"

    # -- accessors --------------------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self._attributes)

    @property
    def dimensions(self) -> tuple[Attribute, ...]:
        return tuple(a for a in self._attributes if a.dimension)

    @property
    def values(self) -> tuple[Attribute, ...]:
        return tuple(a for a in self._attributes if not a.dimension)

    @property
    def dimension_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.dimensions)

    @property
    def value_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.values)

    def position(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"no attribute named {name!r}; have {list(self.names)}"
            ) from None

    def dtype_of(self, name: str) -> DType:
        return self[name].dtype

    def require(self, names: Sequence[str]) -> None:
        """Raise unless every name exists in the schema."""
        missing = [n for n in names if n not in self._index]
        if missing:
            raise SchemaError(
                f"missing attributes {missing}; have {list(self.names)}"
            )

    # -- structural operations ---------------------------------------------------

    def project(self, names: Sequence[str]) -> "Schema":
        """Keep exactly ``names``, in the given order."""
        self.require(names)
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate names in projection: {list(names)}")
        return Schema(self[n] for n in names)

    def drop(self, names: Sequence[str]) -> "Schema":
        self.require(names)
        dropped = set(names)
        return Schema(a for a in self._attributes if a.name not in dropped)

    def rename(self, mapping: Mapping[str, str]) -> "Schema":
        self.require(list(mapping))
        return Schema(
            a.renamed(mapping.get(a.name, a.name)) for a in self._attributes
        )

    def concat(self, other: "Schema") -> "Schema":
        """Concatenate two schemas; duplicate names are an error."""
        return Schema(tuple(self._attributes) + tuple(other._attributes))

    def extend(self, attribute: Attribute) -> "Schema":
        return Schema(tuple(self._attributes) + (attribute,))

    def with_dimensions(self, names: Sequence[str]) -> "Schema":
        """Tag exactly ``names`` as dimensions, untagging all others."""
        self.require(names)
        wanted = set(names)
        return Schema(
            a.as_dimension() if a.name in wanted else a.as_value()
            for a in self._attributes
        )

    def without_dimensions(self) -> "Schema":
        """Untag all dimensions — view the table as a plain relation."""
        return Schema(a.as_value() for a in self._attributes)

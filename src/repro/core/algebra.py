"""The Big Data algebra: the paper's algebraic intermediate form.

Queries are immutable trees of :class:`Node`.  The operator set fuses the
relational algebra (scan, filter, project, join, aggregate, ...) with
dimension-aware array operators (slice, regrid, window, matmul, ...) and a
control-iteration operator (:class:`Iterate`) so convergence loops can run
inside a server.

Design rules:

* Nodes are pure logical structure — no engine types, no data.  The only
  leaves are :class:`Scan` (a named dataset, schema captured at build time),
  :class:`InlineTable` (literal rows embedded in the tree) and
  :class:`LoopVar` (the state variable inside an ``Iterate`` body).
* Every node carries an optional ``intent`` tag (desideratum 3): a
  frontend-level label such as ``"matmul"`` that transformations must
  preserve so a capable server can recognize the operation.
* ``node.schema`` computes (and caches) the output schema via
  ``repro.core.inference``, which performs full validation; constructors
  only do cheap structural checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Iterator, Sequence

from .errors import AlgebraError
from .expressions import Expr
from .schema import Schema

JOIN_KINDS = ("inner", "left", "full", "semi", "anti")
AGG_FUNCS = ("count", "sum", "min", "max", "mean")
NORMS = ("linf", "l1")


@dataclass(frozen=True)
class AggSpec:
    """One aggregate column: ``name = func(arg)``.

    ``arg`` may be None only for ``count`` (meaning COUNT(*)).
    """

    name: str
    func: str
    arg: Expr | None = None

    def __post_init__(self) -> None:
        if self.func not in AGG_FUNCS:
            raise AlgebraError(f"unknown aggregate function {self.func!r}")
        if self.arg is None and self.func != "count":
            raise AlgebraError(f"{self.func}() requires an argument expression")

    def __hash__(self) -> int:
        return hash((self.name, self.func, self.arg))


@dataclass(frozen=True)
class Convergence:
    """Stopping rule for :class:`Iterate`.

    The loop stops when the chosen norm of the change in ``value_attr``
    between successive states drops below ``tolerance`` (states are matched
    on their dimension attributes).  With ``value_attr=None`` the loop simply
    runs ``Iterate.max_iter`` times.
    """

    value_attr: str | None = None
    tolerance: float = 0.0
    norm: str = "linf"

    def __post_init__(self) -> None:
        if self.norm not in NORMS:
            raise AlgebraError(f"unknown norm {self.norm!r}; use one of {NORMS}")
        if self.value_attr is not None and self.tolerance <= 0:
            raise AlgebraError("convergence tolerance must be positive")


@dataclass(frozen=True, eq=False)
class Node:
    """Base class for all algebra operators."""

    intent: str | None = field(default=None, kw_only=True)

    # -- structural API -----------------------------------------------------

    def children(self) -> tuple["Node", ...]:
        return tuple(
            getattr(self, f.name)
            for f in fields(self)
            if f.metadata.get("child")
        )

    def with_children(self, children: Sequence["Node"]) -> "Node":
        """A copy of this node with its child slots replaced, tags kept."""
        child_fields = [f.name for f in fields(self) if f.metadata.get("child")]
        if len(child_fields) != len(children):
            raise AlgebraError(
                f"{type(self).__name__} has {len(child_fields)} children, "
                f"got {len(children)}"
            )
        return replace(self, **dict(zip(child_fields, children)))

    def with_intent(self, intent: str | None) -> "Node":
        return replace(self, intent=intent)

    def walk(self) -> Iterator["Node"]:
        """Pre-order traversal."""
        yield self
        for child in self.children():
            yield from child.walk()

    @property
    def schema(self) -> Schema:
        """Output schema (validated, cached)."""
        cached = self.__dict__.get("_schema_cache")
        if cached is None:
            from . import inference

            cached = inference.infer_schema(self)
            object.__setattr__(self, "_schema_cache", cached)
        return cached

    @property
    def op_name(self) -> str:
        return type(self).__name__

    def same_as(self, other: "Node") -> bool:
        """Structural equality (ignores schema caches)."""
        if type(self) is not type(other):
            return False
        for f in fields(self):
            if f.name == "intent":
                continue
            mine = getattr(self, f.name)
            theirs = getattr(other, f.name)
            if f.metadata.get("child"):
                if not mine.same_as(theirs):
                    return False
            elif isinstance(mine, Expr):
                if not isinstance(theirs, Expr) or not mine.same_as(theirs):
                    return False
            elif not _params_equal(mine, theirs):
                return False
        return self.intent == other.intent

    def __repr__(self) -> str:
        parts = []
        for f in fields(self):
            if f.name == "intent" or f.metadata.get("child"):
                continue
            value = getattr(self, f.name)
            parts.append(f"{f.name}={value!r}")
        inner = ", ".join(parts)
        kids = ", ".join(repr(c) for c in self.children())
        bits = ", ".join(p for p in (inner, kids) if p)
        tag = f" <{self.intent}>" if self.intent else ""
        return f"{self.op_name}({bits}){tag}"


def _params_equal(a: Any, b: Any) -> bool:
    if isinstance(a, tuple) and isinstance(b, tuple):
        return len(a) == len(b) and all(_params_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, Expr) or isinstance(b, Expr):
        return isinstance(a, Expr) and isinstance(b, Expr) and a.same_as(b)
    if isinstance(a, AggSpec) and isinstance(b, AggSpec):
        return (
            a.name == b.name
            and a.func == b.func
            and _params_equal(a.arg, b.arg)
        )
    if a is None or b is None:
        return a is b
    return bool(a == b)


def _child():
    """Marker for dataclass fields holding child nodes."""
    return field(metadata={"child": True})


# --------------------------------------------------------------------------
# Leaves
# --------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class Scan(Node):
    """Read a named dataset; the schema is captured when the tree is built.

    Names beginning with ``"@"`` are reserved for federation fragment inputs.
    """

    name: str
    source_schema: Schema

    def __post_init__(self) -> None:
        if not self.name:
            raise AlgebraError("Scan needs a dataset name")


@dataclass(frozen=True, eq=False)
class InlineTable(Node):
    """Literal rows embedded directly in the expression tree."""

    table_schema: Schema
    rows: tuple[tuple, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "rows", tuple(tuple(r) for r in self.rows))
        width = len(self.table_schema)
        for row in self.rows:
            if len(row) != width:
                raise AlgebraError(
                    f"inline row has {len(row)} values, schema has {width}"
                )


@dataclass(frozen=True, eq=False)
class LoopVar(Node):
    """The iteration state variable inside an :class:`Iterate` body."""

    name: str
    var_schema: Schema


# --------------------------------------------------------------------------
# Relational operators
# --------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class Filter(Node):
    """Keep rows where ``predicate`` evaluates to exactly True."""

    child: Node = _child()
    predicate: Expr = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if not isinstance(self.predicate, Expr):
            raise AlgebraError("Filter predicate must be an Expr")


@dataclass(frozen=True, eq=False)
class Project(Node):
    """Keep exactly the named attributes, in order."""

    child: Node = _child()
    names: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "names", tuple(self.names))
        if not self.names:
            raise AlgebraError("Project needs at least one attribute")


@dataclass(frozen=True, eq=False)
class Extend(Node):
    """Append computed value columns ``names[i] = exprs[i]``."""

    child: Node = _child()
    names: tuple[str, ...] = ()
    exprs: tuple[Expr, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "names", tuple(self.names))
        object.__setattr__(self, "exprs", tuple(self.exprs))
        if len(self.names) != len(self.exprs) or not self.names:
            raise AlgebraError("Extend needs matching non-empty names and exprs")


@dataclass(frozen=True, eq=False)
class Rename(Node):
    """Rename attributes; ``mapping`` is a tuple of (old, new) pairs."""

    child: Node = _child()
    mapping: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "mapping", tuple((o, n) for o, n in self.mapping)
        )
        if not self.mapping:
            raise AlgebraError("Rename needs at least one (old, new) pair")


@dataclass(frozen=True, eq=False)
class Join(Node):
    """Equi-join on attribute pairs; ``how`` in {inner, left, full, semi, anti}.

    Output schema: all left attributes, then right attributes minus the
    right-side join keys.  Remaining name collisions are a schema error —
    rename first.
    """

    left: Node = _child()
    right: Node = _child()
    on: tuple[tuple[str, str], ...] = ()
    how: str = "inner"

    def __post_init__(self) -> None:
        object.__setattr__(self, "on", tuple((l, r) for l, r in self.on))
        if not self.on:
            raise AlgebraError("Join needs at least one key pair; use Product for cross joins")
        if self.how not in JOIN_KINDS:
            raise AlgebraError(f"unknown join kind {self.how!r}")


@dataclass(frozen=True, eq=False)
class Product(Node):
    """Cartesian product; attribute names must be disjoint."""

    left: Node = _child()
    right: Node = _child()


@dataclass(frozen=True, eq=False)
class Aggregate(Node):
    """Group by ``group_by`` and compute ``aggs``; empty group_by = one row."""

    child: Node = _child()
    group_by: tuple[str, ...] = ()
    aggs: tuple[AggSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "group_by", tuple(self.group_by))
        object.__setattr__(self, "aggs", tuple(self.aggs))
        if not self.aggs:
            raise AlgebraError("Aggregate needs at least one AggSpec")


@dataclass(frozen=True, eq=False)
class Sort(Node):
    """Stable sort by ``keys``; ``ascending`` aligns with keys."""

    child: Node = _child()
    keys: tuple[str, ...] = ()
    ascending: tuple[bool, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "keys", tuple(self.keys))
        asc = tuple(self.ascending) or tuple(True for _ in self.keys)
        object.__setattr__(self, "ascending", asc)
        if not self.keys or len(self.keys) != len(self.ascending):
            raise AlgebraError("Sort needs keys with matching ascending flags")


@dataclass(frozen=True, eq=False)
class Limit(Node):
    """Keep ``count`` rows starting at ``offset`` (in current order)."""

    child: Node = _child()
    count: int = 0
    offset: int = 0

    def __post_init__(self) -> None:
        if self.count < 0 or self.offset < 0:
            raise AlgebraError("Limit count/offset must be non-negative")


@dataclass(frozen=True, eq=False)
class Reverse(Node):
    """Reverse row order — LINQ's ``Reverse()`` on ordered collections."""

    child: Node = _child()


@dataclass(frozen=True, eq=False)
class Distinct(Node):
    """Remove duplicate rows (all attributes considered)."""

    child: Node = _child()


@dataclass(frozen=True, eq=False)
class Union(Node):
    """Bag union; schemas must match by name and type."""

    left: Node = _child()
    right: Node = _child()


@dataclass(frozen=True, eq=False)
class Intersect(Node):
    """Set intersection (output is distinct)."""

    left: Node = _child()
    right: Node = _child()


@dataclass(frozen=True, eq=False)
class Except(Node):
    """Set difference (output is distinct)."""

    left: Node = _child()
    right: Node = _child()


# --------------------------------------------------------------------------
# Dimension-aware operators
# --------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class AsDims(Node):
    """Retag the schema: exactly ``dims`` become dimensions (must be INT64)."""

    child: Node = _child()
    dims: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "dims", tuple(self.dims))


@dataclass(frozen=True, eq=False)
class SliceDims(Node):
    """Restrict dimension ranges: ``bounds`` is ((dim, low, high), ...), inclusive."""

    child: Node = _child()
    bounds: tuple[tuple[str, int, int], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "bounds", tuple((d, int(lo), int(hi)) for d, lo, hi in self.bounds)
        )
        if not self.bounds:
            raise AlgebraError("SliceDims needs at least one bound")
        for dim, lo, hi in self.bounds:
            if lo > hi:
                raise AlgebraError(f"empty slice on {dim!r}: [{lo}, {hi}]")


@dataclass(frozen=True, eq=False)
class ShiftDim(Node):
    """Add ``offset`` to one dimension's coordinates."""

    child: Node = _child()
    dim: str = ""
    offset: int = 0


@dataclass(frozen=True, eq=False)
class Regrid(Node):
    """Coarsen dimensions: each listed dim is integer-divided by its factor
    and values falling into the same coarse cell are aggregated."""

    child: Node = _child()
    factors: tuple[tuple[str, int], ...] = ()
    aggs: tuple[AggSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "factors", tuple((d, int(f)) for d, f in self.factors))
        object.__setattr__(self, "aggs", tuple(self.aggs))
        if not self.factors or not self.aggs:
            raise AlgebraError("Regrid needs factors and aggs")
        for dim, factor in self.factors:
            if factor < 1:
                raise AlgebraError(f"regrid factor for {dim!r} must be >= 1")


@dataclass(frozen=True, eq=False)
class Window(Node):
    """Centered moving-window aggregate over dimensions.

    ``sizes`` is ((dim, radius), ...): each output cell aggregates input
    cells whose coordinate on ``dim`` is within ``radius``.  Dimensions not
    listed must match exactly.  Output has one row per input cell.
    """

    child: Node = _child()
    sizes: tuple[tuple[str, int], ...] = ()
    aggs: tuple[AggSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "sizes", tuple((d, int(s)) for d, s in self.sizes))
        object.__setattr__(self, "aggs", tuple(self.aggs))
        if not self.sizes or not self.aggs:
            raise AlgebraError("Window needs sizes and aggs")
        for dim, radius in self.sizes:
            if radius < 0:
                raise AlgebraError(f"window radius for {dim!r} must be >= 0")


@dataclass(frozen=True, eq=False)
class ReduceDims(Node):
    """Aggregate away all dimensions not in ``keep`` (dimension-aware group-by)."""

    child: Node = _child()
    keep: tuple[str, ...] = ()
    aggs: tuple[AggSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "keep", tuple(self.keep))
        object.__setattr__(self, "aggs", tuple(self.aggs))
        if not self.aggs:
            raise AlgebraError("ReduceDims needs at least one AggSpec")


@dataclass(frozen=True, eq=False)
class TransposeDims(Node):
    """Reorder the dimension attributes to ``order`` (schema-level transpose)."""

    child: Node = _child()
    order: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "order", tuple(self.order))


@dataclass(frozen=True, eq=False)
class MatMul(Node):
    """Dimension-aware matrix multiply.

    Each input must have exactly two dimensions and one numeric value
    attribute; the inputs must share exactly one dimension name (the
    contraction index).  Output dimensions are (left outer, right outer)
    with the value attribute named after the left input's value.

    This is the paper's flagship intent-preservation example: frontends tag
    this node (or a relational formulation of it) with ``intent="matmul"``
    so a linear-algebra server can claim it.
    """

    left: Node = _child()
    right: Node = _child()


@dataclass(frozen=True, eq=False)
class CellJoin(Node):
    """Join two dimensioned tables on all shared dimensions (array join).

    Output: shared dimensions, then both sides' value attributes (names must
    not collide).
    """

    left: Node = _child()
    right: Node = _child()


# --------------------------------------------------------------------------
# Control iteration
# --------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class Iterate(Node):
    """Repeat ``body`` until convergence — the paper's "control iteration".

    Evaluation: state := init; repeat state := body[var := state] until the
    :class:`Convergence` rule fires or ``max_iter`` is reached.  The body
    must produce the same schema as ``init``.  ``strict`` controls whether
    hitting ``max_iter`` without convergence raises
    :class:`~repro.core.errors.ConvergenceError` or returns the last state.
    """

    init: Node = _child()
    body: Node = _child()
    var: str = "state"
    stop: Convergence = field(default_factory=Convergence)
    max_iter: int = 100
    strict: bool = False

    def __post_init__(self) -> None:
        if self.max_iter < 1:
            raise AlgebraError("Iterate max_iter must be >= 1")
        uses = [
            n for n in self.body.walk()
            if isinstance(n, LoopVar) and n.name == self.var
        ]
        if not uses:
            raise AlgebraError(
                f"Iterate body never references LoopVar({self.var!r})"
            )


#: Operator registry used by serialization and capability declarations.
ALL_OPERATORS: tuple[type[Node], ...] = (
    Scan, InlineTable, LoopVar,
    Filter, Project, Extend, Rename, Join, Product, Aggregate, Sort, Limit,
    Reverse, Distinct, Union, Intersect, Except,
    AsDims, SliceDims, ShiftDim, Regrid, Window, ReduceDims, TransposeDims,
    MatMul, CellJoin,
    Iterate,
)

OPERATORS_BY_NAME: dict[str, type[Node]] = {c.__name__: c for c in ALL_OPERATORS}

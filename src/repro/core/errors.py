"""Exception hierarchy for the Big Data algebra framework.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch one type at the boundary.  Subclasses partition faults by layer:
schema/type problems, algebra construction problems, translation gaps in a
provider, planning failures, and execution failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A schema is malformed or an operator's schema constraints are violated.

    Examples: duplicate attribute names, referencing a missing attribute,
    joining on attributes of incompatible types.
    """


class TypeMismatchError(SchemaError):
    """A scalar expression combines values of incompatible types."""


class AlgebraError(ReproError):
    """An algebra tree is structurally invalid (bad arity, bad parameters)."""


class TranslationError(ReproError):
    """A provider cannot translate the given algebra tree.

    Raised by :meth:`Provider.execute` when asked to run a tree containing an
    operator outside the provider's declared capabilities.  The federation
    planner uses :meth:`Provider.accepts` to avoid this, so seeing this error
    from a federated query indicates a planner bug.
    """


class PlanningError(ReproError):
    """The federation planner could not produce a plan.

    Examples: a dataset is not registered with any server, or no combination
    of servers covers every operator in the query.
    """


class ExecutionError(ReproError):
    """A plan failed while executing (engine-level fault)."""


class ConvergenceError(ExecutionError):
    """An ``Iterate`` operator hit its iteration bound without converging."""


class ParseError(ReproError):
    """A frontend could not parse its input text."""

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)

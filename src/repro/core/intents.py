"""Intent preservation machinery (desideratum 3).

The paper's example: if a client's function is matrix multiply, the
framework must not lower it into a shape no server can recognize.  Two
mechanisms implement that here:

* **Intent tags** — every algebra node carries an optional ``intent`` string
  (``Node.intent``).  Frontends tag what they lower (the matrix frontend
  tags ``"matmul"``); ``with_children`` and every rewrite rule preserve tags
  by construction.

* **Recognizers** — structural pattern matchers that find a known intent in
  lowered form and replace it with the high-level operator.
  :func:`recognize_matmul` spots the relational join-aggregate formulation
  of matrix multiply and rewrites it to a :class:`~repro.core.algebra.MatMul`
  node, which a linear-algebra server executes natively.  Experiment E3
  measures exactly this rewrite's effect.

``matmul_as_join_aggregate`` builds the lowered formulation the recognizer
must undo — used by frontends that only speak relational algebra, and by
tests that check recognition round-trips.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import algebra as A
from .errors import AlgebraError
from .expressions import BinOp, Col

INTENT_MATMUL = "matmul"
INTENT_PAGERANK = "pagerank"

_I, _K, _J, _V, _W = "__mm_i", "__mm_k", "__mm_j", "__mm_v", "__mm_w"


def matmul_as_join_aggregate(left: A.Node, right: A.Node) -> A.Node:
    """Lower a matrix multiply to join + multiply + group-by + sum.

    Inputs must be dimensioned matrices (2 dims, 1 numeric value).  The
    result is tagged ``intent="matmul"`` so a capable server — or the
    recognizer — can still see what it is.
    """
    li, lk = left.schema.dimension_names
    lv = left.schema.value_names[0]
    rk, rj = right.schema.dimension_names
    rv = right.schema.value_names[0]
    if lk != rk and rk in (li, lk):
        raise AlgebraError("ambiguous contraction dimension")

    # canonicalize names so the join never collides
    left_c = A.Rename(left, ((li, _I), (lk, _K), (lv, _V)))
    right_c = A.Rename(right, ((rk, _K + "_r"), (rj, _J), (rv, _W)))
    joined = A.Join(left_c, right_c, ((_K, _K + "_r"),), "inner")
    product = A.Extend(joined, ("__mm_p",), (Col(_V) * Col(_W),))
    aggregated = A.Aggregate(
        product, (_I, _J), (A.AggSpec(_V, "sum", Col("__mm_p")),),
        intent=INTENT_MATMUL,
    )
    out = A.Rename(aggregated, ((_I, li), (_J, rj), (_V, lv)))
    out = A.AsDims(out, (li, rj))
    return out.with_intent(INTENT_MATMUL)


@dataclass(frozen=True)
class MatMulMatch:
    """A recognized lowered matrix multiply."""

    left: A.Node
    right: A.Node
    left_names: tuple[str, str, str]  # (i, k, value) in the left subtree
    right_names: tuple[str, str, str]  # (k, j, value) in the right subtree
    out_names: tuple[str, str, str]  # (i, j, value) of the aggregate output


def recognize_matmul(node: A.Node) -> MatMulMatch | None:
    """Detect the join-aggregate formulation of matrix multiply.

    The match anchors at the Aggregate node (the rewriter visits every node
    bottom-up, so outer renames or retags above it are untouched and stay
    valid).  It is conservative: inputs must already tag their (row, inner)
    attributes as dimensions — which guarantees coordinates are keys, so the
    rewrite is exactly semantics-preserving — unless the Aggregate carries
    an explicit ``intent="matmul"`` tag from a frontend asserting it.
    """
    if not isinstance(node, A.Aggregate):
        return None
    agg = node
    if len(agg.group_by) != 2 or len(agg.aggs) != 1:
        return None
    spec = agg.aggs[0]
    if spec.func != "sum" or not isinstance(spec.arg, Col):
        return None
    product_col = spec.arg.name

    child = agg.child
    while isinstance(child, A.Project):
        child = child.child
    if not isinstance(child, A.Extend):
        return None
    extend = child
    try:
        pos = extend.names.index(product_col)
    except ValueError:
        return None
    expr = extend.exprs[pos]
    if not (isinstance(expr, BinOp) and expr.op == "*"
            and isinstance(expr.left, Col) and isinstance(expr.right, Col)):
        return None
    factor_a, factor_b = expr.left.name, expr.right.name

    join = extend.child
    while isinstance(join, A.Project):
        join = join.child
    if not (isinstance(join, A.Join) and join.how == "inner" and len(join.on) == 1):
        return None
    left, right = join.left, join.right
    (k_left, k_right) = join.on[0]
    left_names = set(left.schema.names)
    right_rest = set(right.schema.names) - {k_right}

    g1, g2 = agg.group_by
    out_i, out_j = g1, g2
    if g1 in right_rest and g2 in left_names:
        out_i, out_j = g2, g1  # group keys listed (j, i); normalize
    if out_i not in left_names or out_j not in right_rest:
        return None
    a, b = factor_a, factor_b
    if a in right_rest and b in left_names:
        a, b = b, a
    if a not in left_names or b not in right_rest:
        return None
    if len({out_i, k_left, a}) != 3 or len({k_right, out_j, b}) != 3:
        return None

    trusted = agg.intent == INTENT_MATMUL
    if not trusted:
        lschema, rschema = left.schema, right.schema
        if not (lschema[out_i].dimension and lschema[k_left].dimension
                and rschema[k_right].dimension and rschema[out_j].dimension):
            return None
    if not left.schema[a].dtype.is_numeric or not right.schema[b].dtype.is_numeric:
        return None
    # group keys must be listed in (i, j) order in the aggregate output
    if (out_i, out_j) != tuple(agg.group_by):
        return None

    return MatMulMatch(
        left=left, right=right,
        left_names=(out_i, k_left, a),
        right_names=(k_right, out_j, b),
        out_names=(out_i, out_j, spec.name),
    )


def rewrite_matmul(node: A.Node) -> A.Node | None:
    """Replace a recognized lowered matmul with a native MatMul node.

    Returns None when the node does not match or the replacement's schema
    would not be identical to the original's.
    """
    match = recognize_matmul(node)
    if match is None:
        return None
    li, lk, lv = match.left_names
    rk, rj, rv = match.right_names
    oi, oj, ov = match.out_names

    left = A.AsDims(
        A.Rename(
            A.Project(match.left, (li, lk, lv)),
            ((li, _I), (lk, _K), (lv, _V)),
        ),
        (_I, _K),
    )
    right = A.AsDims(
        A.Rename(
            A.Project(match.right, (rk, rj, rv)),
            ((rk, _K), (rj, _J), (rv, _W)),
        ),
        (_K, _J),
    )
    mm = A.MatMul(left, right).with_intent(INTENT_MATMUL)
    out: A.Node = A.Rename(mm, ((_I, oi), (_J, oj), (_V, ov)))
    target = node.schema
    out = A.AsDims(out, target.dimension_names)
    out = out.with_intent(node.intent or INTENT_MATMUL)
    try:
        if out.schema != target:
            return None
    except Exception:
        return None
    return out


def tags_in(node: A.Node) -> dict[str, int]:
    """Histogram of intent tags in a tree (used by tag-preservation tests)."""
    out: dict[str, int] = {}
    for n in node.walk():
        if n.intent:
            out[n.intent] = out.get(n.intent, 0) + 1
    return out

"""Expression-tree serialization.

A defining LINQ property the paper wants to keep: the client ships a whole
query to a provider **as an expression tree**, not as a series of remote
calls.  This module is that wire format — a JSON-compatible dict encoding of
schemas, scalar expressions and algebra trees, with a strict decoder.

``dumps``/``loads`` round-trip any well-formed tree; the federation executor
serializes every fragment it ships so the byte counts it reports (experiment
E7) are real message sizes.
"""

from __future__ import annotations

import json
from typing import Any

from . import algebra as A
from . import expressions as E
from .errors import ReproError
from .schema import Attribute, Schema
from .types import DType


class SerializationError(ReproError):
    """Malformed payload passed to the decoder."""


# -- schema -------------------------------------------------------------------


def schema_to_dict(schema: Schema) -> list[dict[str, Any]]:
    return [
        {"name": a.name, "dtype": a.dtype.value, "dimension": a.dimension}
        for a in schema
    ]


def schema_from_dict(payload: Any) -> Schema:
    if not isinstance(payload, list):
        raise SerializationError(f"schema payload must be a list, got {type(payload).__name__}")
    attrs = []
    for item in payload:
        try:
            attrs.append(
                Attribute(
                    item["name"], DType(item["dtype"]),
                    dimension=bool(item.get("dimension", False)),
                )
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise SerializationError(f"bad attribute payload {item!r}: {exc}") from exc
    return Schema(attrs)


# -- scalar expressions -----------------------------------------------------------


def expr_to_dict(expr: E.Expr) -> dict[str, Any]:
    if isinstance(expr, E.Col):
        return {"expr": "Col", "name": expr.name}
    if isinstance(expr, E.Lit):
        return {"expr": "Lit", "value": expr.value, "dtype": expr.dtype.value}
    if isinstance(expr, E.BinOp):
        return {
            "expr": "BinOp", "op": expr.op,
            "left": expr_to_dict(expr.left), "right": expr_to_dict(expr.right),
        }
    if isinstance(expr, E.UnaryOp):
        return {"expr": "UnaryOp", "op": expr.op, "operand": expr_to_dict(expr.operand)}
    if isinstance(expr, E.Func):
        return {
            "expr": "Func", "name": expr.name,
            "args": [expr_to_dict(a) for a in expr.args],
        }
    if isinstance(expr, E.If):
        return {
            "expr": "If",
            "cond": expr_to_dict(expr.cond),
            "then": expr_to_dict(expr.then),
            "otherwise": expr_to_dict(expr.otherwise),
        }
    if isinstance(expr, E.IsNull):
        return {"expr": "IsNull", "operand": expr_to_dict(expr.operand)}
    if isinstance(expr, E.Cast):
        return {"expr": "Cast", "operand": expr_to_dict(expr.operand), "to": expr.to.value}
    raise SerializationError(f"cannot serialize expression {type(expr).__name__}")


def expr_from_dict(payload: Any) -> E.Expr:
    if not isinstance(payload, dict) or "expr" not in payload:
        raise SerializationError(f"bad expression payload: {payload!r}")
    kind = payload["expr"]
    try:
        if kind == "Col":
            return E.Col(payload["name"])
        if kind == "Lit":
            return E.Lit(payload["value"], DType(payload["dtype"]))
        if kind == "BinOp":
            return E.BinOp(
                payload["op"],
                expr_from_dict(payload["left"]),
                expr_from_dict(payload["right"]),
            )
        if kind == "UnaryOp":
            return E.UnaryOp(payload["op"], expr_from_dict(payload["operand"]))
        if kind == "Func":
            return E.Func(
                payload["name"],
                tuple(expr_from_dict(a) for a in payload["args"]),
            )
        if kind == "If":
            return E.If(
                expr_from_dict(payload["cond"]),
                expr_from_dict(payload["then"]),
                expr_from_dict(payload["otherwise"]),
            )
        if kind == "IsNull":
            return E.IsNull(expr_from_dict(payload["operand"]))
        if kind == "Cast":
            return E.Cast(expr_from_dict(payload["operand"]), DType(payload["to"]))
    except (KeyError, ValueError, TypeError) as exc:
        raise SerializationError(f"bad {kind} payload: {exc}") from exc
    raise SerializationError(f"unknown expression kind {kind!r}")


# -- aggregate specs ----------------------------------------------------------------


def _agg_to_dict(spec: A.AggSpec) -> dict[str, Any]:
    return {
        "name": spec.name,
        "func": spec.func,
        "arg": None if spec.arg is None else expr_to_dict(spec.arg),
    }


def _agg_from_dict(payload: Any) -> A.AggSpec:
    try:
        arg = payload["arg"]
        return A.AggSpec(
            payload["name"], payload["func"],
            None if arg is None else expr_from_dict(arg),
        )
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"bad AggSpec payload {payload!r}: {exc}") from exc


# -- algebra nodes -------------------------------------------------------------------


def node_to_dict(node: A.Node) -> dict[str, Any]:
    out: dict[str, Any] = {"op": node.op_name}
    if node.intent is not None:
        out["intent"] = node.intent

    if isinstance(node, A.Scan):
        out.update(name=node.name, schema=schema_to_dict(node.source_schema))
    elif isinstance(node, A.InlineTable):
        out.update(
            schema=schema_to_dict(node.table_schema),
            rows=[list(r) for r in node.rows],
        )
    elif isinstance(node, A.LoopVar):
        out.update(name=node.name, schema=schema_to_dict(node.var_schema))
    elif isinstance(node, A.Filter):
        out.update(child=node_to_dict(node.child), predicate=expr_to_dict(node.predicate))
    elif isinstance(node, A.Project):
        out.update(child=node_to_dict(node.child), names=list(node.names))
    elif isinstance(node, A.Extend):
        out.update(
            child=node_to_dict(node.child),
            names=list(node.names),
            exprs=[expr_to_dict(e) for e in node.exprs],
        )
    elif isinstance(node, A.Rename):
        out.update(child=node_to_dict(node.child), mapping=[list(p) for p in node.mapping])
    elif isinstance(node, A.Join):
        out.update(
            left=node_to_dict(node.left), right=node_to_dict(node.right),
            on=[list(p) for p in node.on], how=node.how,
        )
    elif isinstance(node, (A.Product, A.Union, A.Intersect, A.Except,
                           A.MatMul, A.CellJoin)):
        out.update(left=node_to_dict(node.left), right=node_to_dict(node.right))
    elif isinstance(node, A.Aggregate):
        out.update(
            child=node_to_dict(node.child),
            group_by=list(node.group_by),
            aggs=[_agg_to_dict(s) for s in node.aggs],
        )
    elif isinstance(node, A.Sort):
        out.update(
            child=node_to_dict(node.child),
            keys=list(node.keys), ascending=list(node.ascending),
        )
    elif isinstance(node, A.Limit):
        out.update(child=node_to_dict(node.child), count=node.count, offset=node.offset)
    elif isinstance(node, (A.Reverse, A.Distinct)):
        out.update(child=node_to_dict(node.child))
    elif isinstance(node, A.AsDims):
        out.update(child=node_to_dict(node.child), dims=list(node.dims))
    elif isinstance(node, A.SliceDims):
        out.update(child=node_to_dict(node.child), bounds=[list(b) for b in node.bounds])
    elif isinstance(node, A.ShiftDim):
        out.update(child=node_to_dict(node.child), dim=node.dim, offset=node.offset)
    elif isinstance(node, A.Regrid):
        out.update(
            child=node_to_dict(node.child),
            factors=[list(f) for f in node.factors],
            aggs=[_agg_to_dict(s) for s in node.aggs],
        )
    elif isinstance(node, A.Window):
        out.update(
            child=node_to_dict(node.child),
            sizes=[list(s) for s in node.sizes],
            aggs=[_agg_to_dict(s) for s in node.aggs],
        )
    elif isinstance(node, A.ReduceDims):
        out.update(
            child=node_to_dict(node.child),
            keep=list(node.keep),
            aggs=[_agg_to_dict(s) for s in node.aggs],
        )
    elif isinstance(node, A.TransposeDims):
        out.update(child=node_to_dict(node.child), order=list(node.order))
    elif isinstance(node, A.Iterate):
        out.update(
            init=node_to_dict(node.init),
            body=node_to_dict(node.body),
            var=node.var,
            stop={
                "value_attr": node.stop.value_attr,
                "tolerance": node.stop.tolerance,
                "norm": node.stop.norm,
            },
            max_iter=node.max_iter,
            strict=node.strict,
        )
    else:
        raise SerializationError(f"cannot serialize operator {node.op_name}")
    return out


def node_from_dict(payload: Any) -> A.Node:
    if not isinstance(payload, dict) or "op" not in payload:
        raise SerializationError(f"bad node payload: {payload!r}")
    op = payload["op"]
    intent = payload.get("intent")
    try:
        node = _decode_node(op, payload)
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"bad {op} payload: {exc}") from exc
    if intent is not None:
        node = node.with_intent(intent)
    return node


def _decode_node(op: str, p: dict[str, Any]) -> A.Node:
    if op == "Scan":
        return A.Scan(p["name"], schema_from_dict(p["schema"]))
    if op == "InlineTable":
        return A.InlineTable(
            schema_from_dict(p["schema"]),
            tuple(tuple(r) for r in p["rows"]),
        )
    if op == "LoopVar":
        return A.LoopVar(p["name"], schema_from_dict(p["schema"]))
    if op == "Filter":
        return A.Filter(node_from_dict(p["child"]), expr_from_dict(p["predicate"]))
    if op == "Project":
        return A.Project(node_from_dict(p["child"]), tuple(p["names"]))
    if op == "Extend":
        return A.Extend(
            node_from_dict(p["child"]),
            tuple(p["names"]),
            tuple(expr_from_dict(e) for e in p["exprs"]),
        )
    if op == "Rename":
        return A.Rename(node_from_dict(p["child"]), tuple(tuple(m) for m in p["mapping"]))
    if op == "Join":
        return A.Join(
            node_from_dict(p["left"]), node_from_dict(p["right"]),
            tuple(tuple(pair) for pair in p["on"]), p["how"],
        )
    if op in ("Product", "Union", "Intersect", "Except", "MatMul", "CellJoin"):
        cls = A.OPERATORS_BY_NAME[op]
        return cls(node_from_dict(p["left"]), node_from_dict(p["right"]))
    if op == "Aggregate":
        return A.Aggregate(
            node_from_dict(p["child"]),
            tuple(p["group_by"]),
            tuple(_agg_from_dict(s) for s in p["aggs"]),
        )
    if op == "Sort":
        return A.Sort(node_from_dict(p["child"]), tuple(p["keys"]), tuple(p["ascending"]))
    if op == "Limit":
        return A.Limit(node_from_dict(p["child"]), p["count"], p.get("offset", 0))
    if op in ("Reverse", "Distinct"):
        cls = A.OPERATORS_BY_NAME[op]
        return cls(node_from_dict(p["child"]))
    if op == "AsDims":
        return A.AsDims(node_from_dict(p["child"]), tuple(p["dims"]))
    if op == "SliceDims":
        return A.SliceDims(
            node_from_dict(p["child"]), tuple(tuple(b) for b in p["bounds"])
        )
    if op == "ShiftDim":
        return A.ShiftDim(node_from_dict(p["child"]), p["dim"], p["offset"])
    if op == "Regrid":
        return A.Regrid(
            node_from_dict(p["child"]),
            tuple(tuple(f) for f in p["factors"]),
            tuple(_agg_from_dict(s) for s in p["aggs"]),
        )
    if op == "Window":
        return A.Window(
            node_from_dict(p["child"]),
            tuple(tuple(s) for s in p["sizes"]),
            tuple(_agg_from_dict(s) for s in p["aggs"]),
        )
    if op == "ReduceDims":
        return A.ReduceDims(
            node_from_dict(p["child"]),
            tuple(p["keep"]),
            tuple(_agg_from_dict(s) for s in p["aggs"]),
        )
    if op == "TransposeDims":
        return A.TransposeDims(node_from_dict(p["child"]), tuple(p["order"]))
    if op == "Iterate":
        stop = p["stop"]
        return A.Iterate(
            node_from_dict(p["init"]),
            node_from_dict(p["body"]),
            var=p["var"],
            stop=A.Convergence(
                stop["value_attr"], stop["tolerance"], stop["norm"]
            ) if stop["value_attr"] is not None else A.Convergence(),
            max_iter=p["max_iter"],
            strict=p.get("strict", False),
        )
    raise SerializationError(f"unknown operator {op!r}")


# -- top-level helpers -----------------------------------------------------------------


def dumps(node: A.Node) -> str:
    """Serialize a whole query tree to a JSON string (the wire format)."""
    return json.dumps(node_to_dict(node), separators=(",", ":"))


def loads(payload: str) -> A.Node:
    """Decode a query tree from its JSON wire format."""
    try:
        data = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"payload is not valid JSON: {exc}") from exc
    return node_from_dict(data)

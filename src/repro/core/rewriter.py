"""Rule-based logical optimizer over the algebra.

Because the framework ships *whole expression trees* to providers (LINQ
property 2), optimization can happen centrally before routing.  The rules
here are classical and individually toggleable so the ablation bench (E8)
can measure each one:

* **filter fusion** — collapse stacked filters into one conjunction.
* **predicate pushdown** — move filters below projects/extends/sorts and
  into the legal side(s) of joins.
* **projection pruning** — narrow every subtree to the attributes actually
  consumed above it.
* **extend fusion** — merge adjacent Extend nodes when independent.
* **intent recognition** — replace a lowered join-aggregate matrix multiply
  with a native ``MatMul`` (desideratum 3; see :mod:`repro.core.intents`).

After the rule fixpoint, three *cost-based* passes from
:mod:`repro.opt.rewrite` run when the rewriter was built with a
statistics source — join reordering, eager-aggregation pushdown and
conjunct ordering.  They are estimate-gated (applied only when the shared
estimator says they strictly help), individually toggleable for ablation
(E15), and skipped entirely without statistics so the rule-only path is
unchanged.

Every rule preserves semantics (property-tested against the reference
interpreter) and preserves intent tags (checked by a dedicated test).
"""

from __future__ import annotations

from dataclasses import dataclass

from . import algebra as A
from . import intents
from .expressions import BinOp, Expr
from .visitors import transform_bottom_up


@dataclass
class RewriteOptions:
    """Which rules run; all on by default."""

    filter_fusion: bool = True
    predicate_pushdown: bool = True
    projection_pruning: bool = True
    extend_fusion: bool = True
    recognize_intents: bool = True
    max_passes: int = 5
    # cost-based passes (need a statistics source to do anything)
    join_reordering: bool = True
    conjunct_ordering: bool = True
    aggregate_pushdown: bool = True


class Rewriter:
    """Applies the enabled rules to a fixpoint (bounded by ``max_passes``).

    ``stats_source`` (a ``name -> TableStats | None`` callable, usually a
    catalog's ``table_stats``) grounds the cost-based passes; without one
    only the rule-based passes run.
    """

    def __init__(self, options: RewriteOptions | None = None,
                 stats_source=None):
        self.options = options or RewriteOptions()
        self.stats_source = stats_source

    def rewrite(self, node: A.Node) -> A.Node:
        opts = self.options
        current = node
        for _ in range(opts.max_passes):
            previous = current
            if opts.filter_fusion:
                current = transform_bottom_up(current, _fuse_filters)
            if opts.extend_fusion:
                current = transform_bottom_up(current, _fuse_extends)
            if opts.predicate_pushdown:
                current = transform_bottom_up(current, _push_filter)
            if opts.recognize_intents:
                current = transform_bottom_up(current, _recognize)
            if current.same_as(previous):
                break
        if opts.projection_pruning:
            current = prune_projections(current)
        rewritten = self._cost_based(current)
        if opts.projection_pruning and rewritten is not current:
            # join reordering widens intermediates by absorbing pruning
            # wrappers; re-prune so the new order is narrow again
            rewritten = prune_projections(rewritten)
        return rewritten

    def _cost_based(self, node: A.Node) -> A.Node:
        """Stats-driven passes; a fresh estimator per rewrite so estimates
        always reflect the current catalog contents."""
        opts = self.options
        if self.stats_source is None:
            return node
        if not (opts.join_reordering or opts.conjunct_ordering
                or opts.aggregate_pushdown):
            return node
        from ..opt.estimator import CardinalityEstimator
        from ..opt.rewrite import (
            order_conjuncts,
            push_aggregates,
            reorder_joins,
        )

        estimator = CardinalityEstimator(self.stats_source)
        if opts.join_reordering:
            node = reorder_joins(node, estimator)
        if opts.aggregate_pushdown:
            node = push_aggregates(node, estimator)
        if opts.conjunct_ordering:
            node = order_conjuncts(node, estimator)
        return node


# --------------------------------------------------------------------------
# Filter rules
# --------------------------------------------------------------------------


def _fuse_filters(node: A.Node) -> A.Node:
    if isinstance(node, A.Filter) and isinstance(node.child, A.Filter):
        inner = node.child
        merged = A.Filter(inner.child, BinOp("and", inner.predicate, node.predicate))
        return merged.with_intent(node.intent or inner.intent)
    return node


def _conjuncts(expr: Expr) -> list[Expr]:
    if isinstance(expr, BinOp) and expr.op == "and":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _conjoin(parts: list[Expr]) -> Expr:
    out = parts[0]
    for part in parts[1:]:
        out = BinOp("and", out, part)
    return out


def _push_filter(node: A.Node) -> A.Node:
    if not isinstance(node, A.Filter):
        return node
    child = node.child
    pred = node.predicate

    if isinstance(child, A.Project):
        pushed = A.Filter(child.child, pred).with_intent(node.intent)
        return A.Project(pushed, child.names, intent=child.intent)

    if isinstance(child, A.Sort):
        pushed = A.Filter(child.child, pred).with_intent(node.intent)
        return A.Sort(pushed, child.keys, child.ascending, intent=child.intent)

    if isinstance(child, A.Extend):
        new_cols = set(child.names)
        below = [c for c in _conjuncts(pred) if not (c.columns() & new_cols)]
        above = [c for c in _conjuncts(pred) if c.columns() & new_cols]
        if not below:
            return node
        pushed = A.Filter(child.child, _conjoin(below)).with_intent(node.intent)
        out: A.Node = A.Extend(pushed, child.names, child.exprs, intent=child.intent)
        if above:
            out = A.Filter(out, _conjoin(above))
        return out

    if isinstance(child, A.Join):
        return _push_filter_into_join(node, child)

    if isinstance(child, A.SliceDims):
        pushed = A.Filter(child.child, pred).with_intent(node.intent)
        return A.SliceDims(pushed, child.bounds, intent=child.intent)

    return node


def _push_filter_into_join(filt: A.Filter, join: A.Join) -> A.Node:
    left_cols = set(join.left.schema.names)
    if join.how in ("semi", "anti"):
        right_cols: set[str] = set()
    else:
        right_keys = {r for _, r in join.on}
        right_cols = set(join.right.schema.names) - right_keys

    push_left = join.how in ("inner", "left", "semi", "anti")
    push_right = join.how == "inner"

    to_left: list[Expr] = []
    to_right: list[Expr] = []
    stay: list[Expr] = []
    for conj in _conjuncts(filt.predicate):
        cols = conj.columns()
        if push_left and cols and cols <= left_cols:
            to_left.append(conj)
        elif push_right and cols and cols <= right_cols:
            to_right.append(conj)
        else:
            stay.append(conj)
    if not to_left and not to_right:
        return filt

    # the filter's intent tag follows its predicate: it stays with the
    # residual filter if any, else moves onto the first pushed filter
    residual_tag = filt.intent if stay else None
    pushed_tag = filt.intent if not stay else None
    left = join.left
    right = join.right
    if to_left:
        left = A.Filter(left, _conjoin(to_left), intent=pushed_tag)
        pushed_tag = None
    if to_right:
        right = A.Filter(right, _conjoin(to_right), intent=pushed_tag)
    new_join = A.Join(left, right, join.on, join.how, intent=join.intent)
    if stay:
        return A.Filter(new_join, _conjoin(stay)).with_intent(residual_tag)
    return new_join


# --------------------------------------------------------------------------
# Extend fusion
# --------------------------------------------------------------------------


def _fuse_extends(node: A.Node) -> A.Node:
    if not (isinstance(node, A.Extend) and isinstance(node.child, A.Extend)):
        return node
    inner = node.child
    inner_cols = set(inner.names)
    # outer expressions see the inner's output; fuse only when independent
    if any(e.columns() & inner_cols for e in node.exprs):
        return node
    merged = A.Extend(
        inner.child,
        inner.names + node.names,
        inner.exprs + node.exprs,
    )
    return merged.with_intent(node.intent or inner.intent)


# --------------------------------------------------------------------------
# Fusion eligibility (consumed by the physical layer, repro.exec.pipeline)
# --------------------------------------------------------------------------

#: Row-order-preserving unary operators a fused pipeline may absorb.  Every
#: other operator (Join, Aggregate, Sort, Iterate, ...) is a pipeline breaker.
FUSIBLE_OPS: tuple[type, ...] = (A.Filter, A.Project, A.Extend, A.Rename)


def split_fusible_chain(node: A.Node) -> tuple[list[A.Node], A.Node]:
    """Peel the maximal fusible run starting at ``node``.

    Returns ``(chain, source)`` where ``chain`` lists the fusible operators
    top-first (``chain[0] is node`` when non-empty) and ``source`` is the
    first non-fusible descendant — the subtree the pipeline consumes.
    An empty chain means ``node`` itself is a pipeline breaker.
    """
    chain: list[A.Node] = []
    current = node
    while isinstance(current, FUSIBLE_OPS):
        chain.append(current)
        current = current.child  # type: ignore[attr-defined]
    return chain, current


def fusion_regions(
    root: A.Node, min_length: int = 2
) -> list[tuple[list[A.Node], A.Node]]:
    """All maximal fusible regions in a tree, outermost first.

    A region is reported when its chain has at least ``min_length``
    operators (a single Filter gains nothing from fusion; two or more
    skip intermediate materializations).  Regions never overlap: the
    search resumes below each region's source.
    """
    regions: list[tuple[list[A.Node], A.Node]] = []

    def visit(node: A.Node) -> None:
        chain, source = split_fusible_chain(node)
        if len(chain) >= min_length:
            regions.append((chain, source))
            for child in source.children():
                visit(child)
        elif chain:
            for child in source.children():
                visit(child)
        else:
            for child in node.children():
                visit(child)

    visit(root)
    return regions


# --------------------------------------------------------------------------
# Intent recognition
# --------------------------------------------------------------------------


def _recognize(node: A.Node) -> A.Node:
    replacement = intents.rewrite_matmul(node)
    return replacement if replacement is not None else node


# --------------------------------------------------------------------------
# Projection pruning
# --------------------------------------------------------------------------


def prune_projections(root: A.Node) -> A.Node:
    """Narrow every subtree to the attributes its consumers actually read."""
    return _prune(root, root.schema.names)


def _ordered(schema_names: tuple[str, ...], wanted: set[str]) -> tuple[str, ...]:
    return tuple(n for n in schema_names if n in wanted)


def _wrap(node: A.Node, needed: tuple[str, ...]) -> A.Node:
    if node.schema.names == needed:
        return node
    return A.Project(node, needed)


def _prune(node: A.Node, needed: tuple[str, ...]) -> A.Node:
    names = node.schema.names
    needed = tuple(n for n in names if n in set(needed))
    if not needed:
        # nothing is consumed by name (e.g. a global COUNT(*)); keep one
        # column so the row count survives
        needed = names[:1]

    if isinstance(node, (A.Scan, A.InlineTable, A.LoopVar)):
        return _wrap(node, needed)

    if isinstance(node, A.Project):
        child = _prune(node.child, needed)
        if child.schema.names == needed:
            return child.with_intent(node.intent or child.intent)
        return A.Project(child, needed, intent=node.intent)

    if isinstance(node, A.Filter):
        child_names = node.child.schema.names
        child_needed = _ordered(
            child_names, set(needed) | node.predicate.columns()
        )
        child = _prune(node.child, child_needed)
        out: A.Node = A.Filter(child, node.predicate, intent=node.intent)
        return _wrap(out, needed)

    if isinstance(node, A.Extend):
        used_pairs = [
            (n, e) for n, e in zip(node.names, node.exprs) if n in set(needed)
        ]
        child_names = node.child.schema.names
        want = set(needed) & set(child_names)
        for _, expr in used_pairs:
            want |= expr.columns()
        child = _prune(node.child, _ordered(child_names, want))
        if used_pairs:
            out = A.Extend(
                child,
                tuple(n for n, _ in used_pairs),
                tuple(e for _, e in used_pairs),
                intent=node.intent,
            )
        else:
            out = child
        return _wrap(out, needed)

    if isinstance(node, A.Rename):
        forward = dict(node.mapping)
        inverse = {new: old for old, new in node.mapping}
        child_names = node.child.schema.names
        child_needed = _ordered(
            child_names, {inverse.get(n, n) for n in needed}
        )
        child = _prune(node.child, child_needed)
        mapping = tuple(
            (old, new) for old, new in node.mapping if old in child.schema
        )
        out = A.Rename(child, mapping, intent=node.intent) if mapping else child
        return _wrap(out, needed)

    if isinstance(node, A.Join):
        lkeys = [l for l, _ in node.on]
        rkeys = [r for _, r in node.on]
        left_names = node.left.schema.names
        right_names = node.right.schema.names
        left_needed = _ordered(left_names, set(needed) | set(lkeys))
        if node.how in ("semi", "anti"):
            right_needed = _ordered(right_names, set(rkeys))
        else:
            right_needed = _ordered(
                right_names, (set(needed) & set(right_names)) | set(rkeys)
            )
        left = _prune(node.left, left_needed)
        right = _prune(node.right, right_needed)
        out = A.Join(left, right, node.on, node.how, intent=node.intent)
        return _wrap(out, needed)

    if isinstance(node, A.Aggregate):
        want: set[str] = set(node.group_by)
        for spec in node.aggs:
            if spec.arg is not None:
                want |= spec.arg.columns()
        child = _prune(node.child, _ordered(node.child.schema.names, want))
        out = A.Aggregate(child, node.group_by, node.aggs, intent=node.intent)
        return _wrap(out, needed)

    if isinstance(node, A.Sort):
        child_needed = _ordered(
            node.child.schema.names, set(needed) | set(node.keys)
        )
        child = _prune(node.child, child_needed)
        out = A.Sort(child, node.keys, node.ascending, intent=node.intent)
        return _wrap(out, needed)

    if isinstance(node, (A.Limit, A.Reverse)):
        child = _prune(node.child, needed)
        return node.with_children((child,))

    if isinstance(node, A.SliceDims):
        dims = {d for d, _, __ in node.bounds}
        child_needed = _ordered(node.child.schema.names, set(needed) | dims)
        child = _prune(node.child, child_needed)
        out = A.SliceDims(child, node.bounds, intent=node.intent)
        return _wrap(out, needed)

    if isinstance(node, A.Iterate):
        init = _prune(node.init, node.init.schema.names)
        body = _prune(node.body, node.body.schema.names)
        out = A.Iterate(
            init, body, var=node.var, stop=node.stop,
            max_iter=node.max_iter, strict=node.strict, intent=node.intent,
        )
        return _wrap(out, needed)

    # operators that need (or may need) every attribute: recurse with all
    children = tuple(
        _prune(c, c.schema.names) for c in node.children()
    )
    out = node.with_children(children)
    return _wrap(out, needed)

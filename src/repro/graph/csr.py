"""Compressed sparse row adjacency — the graph engine's native structure.

A :class:`CSRGraph` is built from an edge table (``src``, ``dst``[,
``weight``]) — the same dimensioned-table data the algebra sees — and gives
the native algorithms O(1) neighbourhood access.  Vertices are dense ids
``0..n-1``; :func:`from_edge_table` compacts arbitrary integer vertex ids
and remembers the mapping.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import ExecutionError
from ..storage.table import ColumnTable


class CSRGraph:
    """Directed graph in CSR form (out-edges), with optional edge weights."""

    def __init__(
        self,
        num_vertices: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray | None = None,
        vertex_ids: np.ndarray | None = None,
    ):
        self.num_vertices = int(num_vertices)
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        #: dense position -> original vertex id
        self.vertex_ids = (
            vertex_ids if vertex_ids is not None
            else np.arange(num_vertices, dtype=np.int64)
        )
        if len(indptr) != num_vertices + 1:
            raise ExecutionError("indptr length must be num_vertices + 1")

    @property
    def num_edges(self) -> int:
        return len(self.indices)

    def out_degree(self) -> np.ndarray:
        return np.diff(self.indptr)

    def neighbors(self, vertex: int) -> np.ndarray:
        return self.indices[self.indptr[vertex]:self.indptr[vertex + 1]]

    def reverse(self) -> "CSRGraph":
        """The transpose graph (in-edges become out-edges)."""
        order = np.argsort(self.indices, kind="stable")
        new_indices = np.repeat(
            np.arange(self.num_vertices), self.out_degree()
        )[order]
        counts = np.bincount(self.indices, minlength=self.num_vertices)
        indptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        weights = None if self.weights is None else self.weights[order]
        return CSRGraph(
            self.num_vertices, indptr, new_indices, weights, self.vertex_ids
        )

    @classmethod
    def from_arrays(
        cls,
        src: np.ndarray,
        dst: np.ndarray,
        weights: np.ndarray | None = None,
        num_vertices: int | None = None,
    ) -> "CSRGraph":
        """Build from parallel edge arrays with dense 0-based vertex ids."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if len(src) != len(dst):
            raise ExecutionError("src and dst must have equal length")
        if num_vertices is None:
            num_vertices = int(max(src.max(initial=-1), dst.max(initial=-1))) + 1
        order = np.argsort(src, kind="stable")
        sorted_src = src[order]
        indices = dst[order]
        counts = np.bincount(sorted_src, minlength=num_vertices)
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        w = None if weights is None else np.asarray(weights, dtype=np.float64)[order]
        return cls(num_vertices, indptr, indices, w)

    @classmethod
    def from_edge_table(
        cls,
        edges: ColumnTable,
        src: str = "src",
        dst: str = "dst",
        weight: str | None = None,
    ) -> "CSRGraph":
        """Build from an edge ColumnTable, compacting sparse vertex ids."""
        src_col = edges.column(src)
        dst_col = edges.column(dst)
        if src_col.null_count or dst_col.null_count:
            raise ExecutionError("edge endpoints may not be null")
        raw_src = src_col.values.astype(np.int64)
        raw_dst = dst_col.values.astype(np.int64)
        vertex_ids = np.unique(np.concatenate([raw_src, raw_dst]))
        dense = {int(v): i for i, v in enumerate(vertex_ids)}
        compact_src = np.fromiter(
            (dense[int(v)] for v in raw_src), dtype=np.int64, count=len(raw_src)
        )
        compact_dst = np.fromiter(
            (dense[int(v)] for v in raw_dst), dtype=np.int64, count=len(raw_dst)
        )
        weights = None
        if weight is not None:
            wcol = edges.column(weight)
            if wcol.null_count:
                raise ExecutionError("edge weights may not be null")
            weights = wcol.values.astype(np.float64)
        graph = cls.from_arrays(
            compact_src, compact_dst, weights, num_vertices=len(vertex_ids)
        )
        graph.vertex_ids = vertex_ids
        return graph

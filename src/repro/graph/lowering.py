"""Logical→physical lowering for the graph-analytics provider.

The graph server is a relational engine plus one native fast path:
PageRank-shaped ``Iterate`` trees (recognized by
:func:`repro.graph.queries.match_pagerank`, with inputs the provider can
execute) lower to :class:`~repro.exec.physical.graph.PhysPageRank` on CSR
adjacency.  Everything else lowers through the embedded relational
engine's own pass, so generic iteration still happens in-server.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core import algebra as A
from ..exec.physical.base import PhysPlan, props_for
from ..exec.physical.graph import PhysPageRank
from . import queries

if TYPE_CHECKING:  # only for annotations; providers import this module
    from ..providers.graph_p import GraphProvider


def lower_graph(tree: A.Node, provider: "GraphProvider") -> PhysPlan:
    """Lower ``tree`` for the graph provider (native PageRank or generic)."""
    engine = provider.engine
    if isinstance(tree, A.Iterate):
        spec = queries.match_pagerank(tree)
        # the recognized inputs must themselves be executable here
        if (
            spec is not None
            and provider.accepts(spec.edges)
            and provider.accepts(spec.vertices)
        ):
            vertices = engine.plan_for(spec.vertices).root
            edges = engine.plan_for(spec.edges).root
            fallback = engine.plan_for(tree).root
            root = PhysPageRank(
                vertices, edges, spec, fallback, tree.schema,
                props_for(tree.schema, vertices.props.est_rows,
                          est_source=vertices.props.est_source),
                provider=provider,
            )
            return PhysPlan(root, engine="graph")
    return engine.plan_for(tree)

"""Native graph algorithms over CSR adjacency.

These are the "direct implementations" a graph server offers: vectorized
PageRank, BFS levels, connected components and triangle counting.  The
algebra can express the same computations with ``Iterate`` (see
:mod:`repro.graph.queries`); experiment E5 compares executing the algebra
form *inside* this engine against driving it from the client loop.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph


def pagerank(
    graph: CSRGraph,
    *,
    damping: float = 0.85,
    tolerance: float = 1e-8,
    max_iter: int = 100,
    norm: str = "linf",
) -> tuple[np.ndarray, int]:
    """Power-iteration PageRank.

    Matches the algebra formulation in :func:`repro.graph.queries.pagerank`:
    dangling vertices (out-degree 0) leak their mass — every vertex still
    receives the ``(1 - damping) / n`` teleport term.  Returns (ranks,
    iterations used).
    """
    n = graph.num_vertices
    if n == 0:
        return np.empty(0), 0
    ranks = np.full(n, 1.0 / n)
    out_deg = graph.out_degree().astype(np.float64)
    src_of_edge = np.repeat(np.arange(n), graph.out_degree())
    dst_of_edge = graph.indices
    teleport = (1.0 - damping) / n
    for iteration in range(1, max_iter + 1):
        contrib = np.zeros(n)
        share = np.where(out_deg > 0, ranks / np.maximum(out_deg, 1.0), 0.0)
        np.add.at(contrib, dst_of_edge, share[src_of_edge])
        new_ranks = teleport + damping * contrib
        deltas = np.abs(new_ranks - ranks)
        delta = float(deltas.max()) if norm == "linf" else float(deltas.sum())
        ranks = new_ranks
        if delta <= tolerance:
            return ranks, iteration
    return ranks, max_iter


def bfs_levels(graph: CSRGraph, source: int) -> np.ndarray:
    """Level of each vertex from ``source`` (-1 = unreachable)."""
    n = graph.num_vertices
    levels = np.full(n, -1, dtype=np.int64)
    levels[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while len(frontier):
        level += 1
        # gather all out-neighbours of the frontier at once
        starts = graph.indptr[frontier]
        stops = graph.indptr[frontier + 1]
        if int((stops - starts).sum()) == 0:
            break
        neighbors = np.concatenate([
            graph.indices[a:b] for a, b in zip(starts, stops)
        ])
        fresh = np.unique(neighbors[levels[neighbors] < 0])
        if len(fresh) == 0:
            break
        levels[fresh] = level
        frontier = fresh
    return levels


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Weakly connected component labels via label propagation."""
    n = graph.num_vertices
    labels = np.arange(n, dtype=np.int64)
    src = np.repeat(np.arange(n), graph.out_degree())
    dst = graph.indices
    # treat edges as undirected
    all_src = np.concatenate([src, dst])
    all_dst = np.concatenate([dst, src])
    while True:
        pulled = labels.copy()
        np.minimum.at(pulled, all_dst, labels[all_src])
        if np.array_equal(pulled, labels):
            break
        labels = pulled
    # canonicalize to dense component ids
    _, dense = np.unique(labels, return_inverse=True)
    return dense.astype(np.int64)


def triangle_count(graph: CSRGraph) -> int:
    """Number of undirected triangles, each counted exactly once.

    For every edge (u, v) with u < v, count common neighbours w with w > v —
    the standard ordered enumeration that visits each triangle once.
    """
    n = graph.num_vertices
    neighbor_sets: list[set[int]] = [set() for _ in range(n)]
    src = np.repeat(np.arange(n), graph.out_degree())
    for u, v in zip(src, graph.indices):
        if u != v:
            neighbor_sets[int(u)].add(int(v))
            neighbor_sets[int(v)].add(int(u))
    total = 0
    for u in range(n):
        higher_u = {v for v in neighbor_sets[u] if v > u}
        for v in higher_u:
            total += sum(1 for w in higher_u & neighbor_sets[v] if w > v)
    return total


def degree_table(graph: CSRGraph) -> np.ndarray:
    return graph.out_degree()
